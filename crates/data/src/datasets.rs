//! The paper's four evaluation datasets (§6.1.1), reproducible at any
//! scale.

use hpc_nmf::Input;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_sparse::gen::{chung_lu_power_law, erdos_renyi};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the paper's datasets to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Dense synthetic: uniform random plus Gaussian noise.
    Dsyn,
    /// Sparse synthetic: Erdős–Rényi, density 0.001 at paper scale.
    Ssyn,
    /// Dense real-world analogue: video frames as columns (static
    /// background + moving foreground object), tall and skinny.
    Video,
    /// Sparse real-world analogue: webbase-2001-like power-law digraph.
    Webbase,
}

impl DatasetKind {
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Ssyn,
        DatasetKind::Dsyn,
        DatasetKind::Webbase,
        DatasetKind::Video,
    ];

    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Dsyn => "DSYN",
            DatasetKind::Ssyn => "SSYN",
            DatasetKind::Video => "Video",
            DatasetKind::Webbase => "Webbase",
        }
    }

    /// The dimensions used in the paper's experiments.
    pub fn paper_dims(self) -> (usize, usize) {
        match self {
            DatasetKind::Dsyn | DatasetKind::Ssyn => (172_800, 115_200),
            DatasetKind::Video => (1_013_400, 2_400),
            DatasetKind::Webbase => (1_000_005, 1_000_005),
        }
    }

    /// Stored nonzeros at paper scale (dense: m·n).
    pub fn paper_nnz(self) -> usize {
        match self {
            DatasetKind::Dsyn => 172_800 * 115_200,
            DatasetKind::Ssyn => (172_800.0 * 115_200.0 * 0.001) as usize,
            DatasetKind::Video => 1_013_400 * 2_400,
            DatasetKind::Webbase => 3_105_536,
        }
    }

    pub fn is_sparse(self) -> bool {
        matches!(self, DatasetKind::Ssyn | DatasetKind::Webbase)
    }

    /// Builds the dataset with each paper dimension divided by `scale`
    /// (`scale = 1` is paper scale — only sensible for the sparse sets
    /// on one machine). Deterministic in `seed`.
    pub fn build(self, scale: usize, seed: u64) -> Dataset {
        assert!(scale >= 1);
        let (pm, pn) = self.paper_dims();
        let m = (pm / scale).max(8);
        let n = (pn / scale).max(8);
        let input = match self {
            DatasetKind::Dsyn => Input::Dense(dsyn(m, n, seed)),
            DatasetKind::Ssyn => {
                // Keep the *expected nonzeros per row* of the paper
                // (density 0.001 over n=115,200 ≈ 115/row) rather than
                // the raw density, so per-row work stays representative.
                let density = (0.001 * scale as f64).min(0.25);
                Input::Sparse(erdos_renyi(m, n, density, seed))
            }
            DatasetKind::Video => Input::Dense(video(m, n, seed)),
            DatasetKind::Webbase => {
                let edges = (self.paper_nnz() / scale).max(n);
                Input::Sparse(chung_lu_power_law(m, edges, 2.1, seed))
            }
        };
        Dataset { kind: self, input }
    }
}

/// A built dataset.
pub struct Dataset {
    pub kind: DatasetKind,
    pub input: Input,
}

/// DSYN: "a uniform random matrix ... and add random Gaussian noise"
/// (noise at 1% of the signal scale, truncated to keep entries
/// nonnegative — NMF input conventions).
fn dsyn(m: usize, n: usize, seed: u64) -> Mat {
    let mut a = Mat::uniform(m, n, seed);
    let noise = Mat::gaussian(m, n, seed ^ 0xD5);
    for (av, nv) in a.as_mut_slice().iter_mut().zip(noise.as_slice()) {
        *av = (*av + 0.01 * nv).max(0.0);
    }
    a
}

/// Video analogue: every column is one reshaped RGB frame. The scene is
/// a static low-rank background plus a small bright block that moves
/// across the frame over time — the structure that makes NMF separate
/// background (captured by `WH`) from foreground (the residual).
fn video(m: usize, n_frames: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    // Background: rank-3 nonnegative structure shared by all frames.
    let base = Mat::uniform(m, 3, seed ^ 0x51D); // m×3 spatial patterns
    let mut frames = Mat::zeros(m, n_frames);
    // Object: a contiguous run of pixels, 1% of the frame, sweeping
    // linearly over time.
    let obj_len = (m / 100).max(1);
    for t in 0..n_frames {
        let mix = [
            0.6 + 0.05 * ((t as f64) * 0.1).sin(),
            0.3,
            0.1 + 0.05 * ((t as f64) * 0.07).cos(),
        ];
        let start = if n_frames > 1 {
            (t * (m - obj_len)) / (n_frames - 1)
        } else {
            0
        };
        for i in 0..m {
            let bg: f64 = (0..3).map(|c| mix[c] * base[(i, c)]).sum();
            let fg = if i >= start && i < start + obj_len {
                0.8
            } else {
                0.0
            };
            let sensor_noise = 0.005 * rng.gen::<f64>();
            frames[(i, t)] = bg + fg + sensor_noise;
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dims_are_exact() {
        assert_eq!(DatasetKind::Dsyn.paper_dims(), (172_800, 115_200));
        assert_eq!(DatasetKind::Video.paper_dims(), (1_013_400, 2_400));
        assert_eq!(DatasetKind::Webbase.paper_nnz(), 3_105_536);
    }

    #[test]
    fn scaled_dsyn_is_dense_nonnegative() {
        let d = DatasetKind::Dsyn.build(1000, 1);
        assert!(!d.input.is_sparse());
        assert_eq!(d.input.shape(), (172, 115));
        if let Input::Dense(a) = &d.input {
            assert!(a.all_nonnegative());
            assert!(a.all_finite());
        }
    }

    #[test]
    fn scaled_ssyn_keeps_row_degree() {
        let d = DatasetKind::Ssyn.build(400, 2);
        let (m, _) = d.input.shape();
        // Paper: ~115 nonzeros/row. Scaled: density 0.4 over n=288 ≈ 115.
        let per_row = d.input.nnz() as f64 / m as f64;
        assert!(
            (60.0..200.0).contains(&per_row),
            "nnz per row {per_row} not representative"
        );
    }

    #[test]
    fn video_is_tall_skinny() {
        let d = DatasetKind::Video.build(400, 3);
        let (m, n) = d.input.shape();
        assert!(m > 50 * n, "video must be tall and skinny: {m}x{n}");
        if let Input::Dense(a) = &d.input {
            assert!(a.all_nonnegative());
        }
    }

    #[test]
    fn webbase_is_square_power_law() {
        let d = DatasetKind::Webbase.build(500, 4);
        let (m, n) = d.input.shape();
        assert_eq!(m, n);
        assert!(d.input.is_sparse());
        assert!(d.input.nnz() > 1000);
    }

    #[test]
    fn builds_are_deterministic() {
        for kind in DatasetKind::ALL {
            let a = kind.build(800, 9);
            let b = kind.build(800, 9);
            assert_eq!(
                a.input.nnz(),
                b.input.nnz(),
                "{} not deterministic",
                kind.name()
            );
            assert_eq!(a.input.fro_norm_sq(), b.input.fro_norm_sq());
        }
    }
}
