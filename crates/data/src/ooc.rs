//! Out-of-core materialization: datasets as `NMFS` files.
//!
//! The mmap ingest path ([`hpc_nmf::SharedInput::open_mmap`]) factorizes
//! matrices that never fully load into RAM — but something has to put
//! the `NMFS` file on disk first. These helpers bridge the generators in
//! [`crate::datasets`] (and any resident [`Input`]) to
//! [`nmf_sparse::io::write_csr_binary_path`], so a CI smoke job or a
//! one-off conversion is a single call:
//!
//! ```no_run
//! use nmf_data::{materialize_nmfs, DatasetKind};
//! materialize_nmfs(DatasetKind::Ssyn, 400, 42, "ssyn.nmfs")?;
//! let shared = hpc_nmf::SharedInput::open_mmap("ssyn.nmfs")?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Materialization builds the matrix resident once (the generators are
//! in-memory); the payoff is every *subsequent* run, which streams the
//! file in bounded row panels instead of holding the matrix.

use crate::datasets::DatasetKind;
use hpc_nmf::Input;
use nmf_sparse::io::write_csr_binary_path;
use std::io;
use std::path::Path;

/// Writes a sparse input as an `NMFS` binary at `path`. Dense inputs are
/// rejected: `NMFS` is a CSR container, and the out-of-core path exists
/// for matrices whose sparsity is the only reason they fit anywhere.
pub fn write_input_nmfs(input: &Input, path: impl AsRef<Path>) -> io::Result<()> {
    match input {
        Input::Sparse(a) => write_csr_binary_path(a, path),
        Input::Dense(_) => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "NMFS stores sparse CSR matrices; dense inputs have no out-of-core path",
        )),
    }
}

/// Builds `kind` at `scale`/`seed` and materializes it as an `NMFS`
/// file. Errors with [`io::ErrorKind::InvalidInput`] for the dense
/// datasets (DSYN, Video).
pub fn materialize_nmfs(
    kind: DatasetKind,
    scale: usize,
    seed: u64,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    write_input_nmfs(&kind.build(scale, seed).input, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_nmf::SharedInput;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nmf-ooc-{tag}-{}.nmfs", std::process::id()))
    }

    #[test]
    fn materialized_file_matches_resident_build() {
        let path = tmp("ssyn");
        materialize_nmfs(DatasetKind::Ssyn, 800, 7, &path).unwrap();
        let resident = DatasetKind::Ssyn.build(800, 7).input;
        let mapped = SharedInput::open_mmap(&path).unwrap();
        assert_eq!(mapped.shape(), resident.shape());
        assert_eq!(mapped.nnz(), resident.nnz());
        assert_eq!(
            mapped.fro_norm_sq().to_bits(),
            resident.fro_norm_sq().to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dense_datasets_are_rejected() {
        let err = materialize_nmfs(DatasetKind::Dsyn, 2000, 1, tmp("dsyn")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
