//! Analytic per-iteration performance model (Table 2 under α-β-γ).
//!
//! The paper's machine (600 cores of a Cray XC30) is out of reach for a
//! single-node reproduction, so paper-scale projections come from the
//! same cost analysis the paper derives in §4.3/§5, evaluated with
//! machine constants — either the Edison-like defaults or constants
//! *calibrated* from this machine's measured kernel rates
//! ([`KernelRates::calibrate`]). The real multithreaded runs at small `p`
//! validate the model's shape; the model then extends the curves to the
//! paper's processor counts.

use hpc_nmf::Grid;
use nmf_vmpi::CostModel;

/// Local-computation rates (flops/second achieved by this crate's
/// kernels, which stand in for the paper's BLAS).
#[derive(Clone, Copy, Debug)]
pub struct KernelRates {
    /// Dense/sparse matrix-multiply kernels (`MM` task).
    pub mm_flops: f64,
    /// Gram kernels.
    pub gram_flops: f64,
    /// NLS solve throughput in "normal-equation flops" (`≈ 4·r·k²` per
    /// BPP solve of `r` right-hand sides); MU/HALS run at `2·r·k²`.
    pub nls_flops: f64,
}

impl Default for KernelRates {
    /// Rates representative of one Edison core running tuned BLAS
    /// (the paper's setting): a few Gflop/s for BLAS-3, less for the
    /// irregular NLS work.
    fn default() -> Self {
        KernelRates {
            mm_flops: 5e9,
            gram_flops: 4e9,
            nls_flops: 1e9,
        }
    }
}

impl KernelRates {
    /// Measures this machine's actual kernel rates with short
    /// microbenchmarks (used by the bench harness so model projections
    /// reflect the Rust kernels rather than vendor BLAS).
    pub fn calibrate() -> Self {
        use nmf_matrix::rng::Fill;
        use nmf_matrix::Mat;
        use std::time::Instant;

        let (m, n, k) = (600, 400, 50);
        let a = Mat::uniform(m, n, 1);
        let ht = Mat::uniform(n, k, 2);

        let t0 = Instant::now();
        let _v = nmf_matrix::matmul(&a, &ht);
        let mm = 2.0 * (m * n * k) as f64 / t0.elapsed().as_secs_f64().max(1e-9);

        let t0 = Instant::now();
        let g = nmf_matrix::gram(&ht);
        let gram = (n * k * k) as f64 / t0.elapsed().as_secs_f64().max(1e-9);

        let ctb = nmf_matrix::matmul_ta(&Mat::uniform(n, m, 3), &a.transpose());
        let _ = &ctb;
        let bpp = nmf_nls_probe(&g, n, k);

        KernelRates {
            mm_flops: mm,
            gram_flops: gram,
            nls_flops: bpp,
        }
    }
}

fn nmf_nls_probe(g: &nmf_matrix::Mat, r: usize, k: usize) -> f64 {
    use nmf_matrix::rng::Fill;
    use nmf_matrix::Mat;
    use nmf_nls::{Bpp, NlsSolver};
    use std::time::Instant;
    let ctb = Mat::gaussian(r, k, 4);
    let mut x = Mat::zeros(r, k);
    let t0 = Instant::now();
    Bpp::default().update(g, &ctb, &mut x);
    4.0 * (r * k * k) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// A problem instance for the model.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// Stored nonzeros; `m·n` for dense inputs.
    pub nnz: usize,
    pub sparse: bool,
}

impl Workload {
    pub fn dense(m: usize, n: usize, k: usize) -> Self {
        Workload {
            m,
            n,
            k,
            nnz: m * n,
            sparse: false,
        }
    }

    pub fn sparse(m: usize, n: usize, k: usize, nnz: usize) -> Self {
        Workload {
            m,
            n,
            k,
            nnz,
            sparse: true,
        }
    }
}

/// Machine model: α-β-γ plus kernel rates.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    pub net: CostModel,
    pub rates: KernelRates,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            net: CostModel::edison_like(),
            rates: KernelRates::default(),
        }
    }
}

/// Modeled seconds per iteration, broken down by the paper's six tasks
/// (§6.3).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    pub mm: f64,
    pub nls: f64,
    pub gram: f64,
    pub all_gather: f64,
    pub reduce_scatter: f64,
    pub all_reduce: f64,
}

impl Breakdown {
    pub fn total(&self) -> f64 {
        self.mm + self.nls + self.gram + self.all_gather + self.reduce_scatter + self.all_reduce
    }

    pub fn comm(&self) -> f64 {
        self.all_gather + self.reduce_scatter + self.all_reduce
    }

    pub fn compute(&self) -> f64 {
        self.mm + self.nls + self.gram
    }
}

impl PerfModel {
    /// NLS cost shared by every algorithm: solve `(m+n)/p` right-hand
    /// sides of rank `k` (the paper's `C_BPP((m+n)/p, k)` term).
    fn nls_seconds(&self, w: &Workload, p: usize) -> f64 {
        4.0 * ((w.m + w.n) as f64 / p as f64) * (w.k * w.k) as f64 / self.rates.nls_flops
    }

    /// Per-iteration model of HPC-NMF (Algorithm 3) on `grid`.
    pub fn hpc(&self, w: &Workload, grid: Grid) -> Breakdown {
        let p = grid.size() as f64;
        let (m, n, k) = (w.m as f64, w.n as f64, w.k as f64);
        // MM: two products touching every stored entry once each
        // (2·nnz·k flops per product), split over p ranks.
        let mm_flops = 4.0 * (w.nnz as f64 / p) * k;
        // Gram: local k×k Grams of the factor slices.
        let gram_flops = (m + n) / p * k * k;
        Breakdown {
            mm: mm_flops / self.rates.mm_flops,
            nls: self.nls_seconds(w, grid.size()),
            gram: gram_flops / self.rates.gram_flops,
            all_gather: self
                .net
                .all_gather(grid.pr, (n / grid.pc as f64 * k) as usize)
                + self
                    .net
                    .all_gather(grid.pc, (m / grid.pr as f64 * k) as usize),
            reduce_scatter: self
                .net
                .reduce_scatter(grid.pc, (m / grid.pr as f64 * k) as usize)
                + self
                    .net
                    .reduce_scatter(grid.pr, (n / grid.pc as f64 * k) as usize),
            all_reduce: 2.0 * self.net.all_reduce(grid.size(), w.k * w.k),
        }
    }

    /// Per-iteration model of Naive-Parallel-NMF (Algorithm 2) on `p`
    /// ranks.
    pub fn naive(&self, w: &Workload, p: usize) -> Breakdown {
        let pf = p as f64;
        let (m, n, k) = (w.m as f64, w.n as f64, w.k as f64);
        // A is stored twice; each product touches one copy: 2·nnz·k per
        // product, each split over p.
        let mm_flops = 4.0 * (w.nnz as f64 / pf) * k;
        // Gram matrices are computed redundantly from the FULL factors.
        let gram_flops = (m + n) * k * k;
        Breakdown {
            mm: mm_flops / self.rates.mm_flops,
            nls: self.nls_seconds(w, p),
            gram: gram_flops / self.rates.gram_flops,
            all_gather: self.net.all_gather(p, (n * k) as usize)
                + self.net.all_gather(p, (m * k) as usize),
            reduce_scatter: 0.0,
            all_reduce: self.net.all_reduce(p, 2),
        }
    }

    /// Model for the named algorithm/grid combination.
    pub fn breakdown(&self, w: &Workload, algo: hpc_nmf::Algo, p: usize) -> Breakdown {
        match algo {
            hpc_nmf::Algo::Sequential => {
                let mut b = self.hpc(w, Grid::new(1, 1));
                b.all_gather = 0.0;
                b.reduce_scatter = 0.0;
                b.all_reduce = 0.0;
                b
            }
            hpc_nmf::Algo::Naive => self.naive(w, p),
            other => self.hpc(w, other.grid(w.m, w.n, p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_nmf::Algo;

    fn ssyn() -> Workload {
        Workload::sparse(
            172_800,
            115_200,
            50,
            (172_800.0 * 115_200.0 * 0.001) as usize,
        )
    }

    fn dsyn() -> Workload {
        Workload::dense(172_800, 115_200, 50)
    }

    fn video() -> Workload {
        Workload::dense(1_013_400, 2_400, 50)
    }

    #[test]
    fn hpc2d_beats_naive_on_squarish_at_scale() {
        let pm = PerfModel::default();
        for w in [ssyn(), dsyn()] {
            let naive = pm.breakdown(&w, Algo::Naive, 600);
            let hpc = pm.breakdown(&w, Algo::Hpc2D, 600);
            assert!(
                hpc.total() < naive.total(),
                "HPC-2D should win: {} vs {}",
                hpc.total(),
                naive.total()
            );
            assert!(hpc.comm() < naive.comm());
        }
    }

    #[test]
    fn naive_is_communication_bound_on_sparse() {
        // Fig 3a: Naive on SSYN spends most time in All-Gather.
        let pm = PerfModel::default();
        let b = pm.breakdown(&ssyn(), Algo::Naive, 600);
        assert!(
            b.comm() > b.compute(),
            "naive sparse should be comm-bound: {b:?}"
        );
    }

    #[test]
    fn hpc_stays_computation_bound() {
        // §7: "the problems remain computation bound on up to 600
        // processors" for HPC-NMF.
        let pm = PerfModel::default();
        for w in [dsyn(), video()] {
            let b = pm.breakdown(&w, Algo::Hpc2D, 600);
            assert!(b.compute() > b.comm(), "HPC should be compute-bound: {b:?}");
        }
    }

    #[test]
    fn video_1d_and_2d_are_comparable() {
        // Fig 3g: on the tall-skinny Video matrix both grids are
        // computation bound, so totals are close.
        let pm = PerfModel::default();
        let one = pm.breakdown(&video(), Algo::Hpc1D, 600);
        let two = pm.breakdown(&video(), Algo::Hpc2D, 600);
        let ratio = one.total() / two.total();
        assert!(
            (0.8..1.25).contains(&ratio),
            "1D/2D ratio {ratio} should be near 1"
        );
    }

    #[test]
    fn strong_scaling_decreases_compute() {
        let pm = PerfModel::default();
        let mut prev = f64::INFINITY;
        for p in [24, 96, 216, 384, 600] {
            let b = pm.breakdown(&dsyn(), Algo::Hpc2D, p);
            assert!(b.compute() < prev, "compute must shrink with p");
            prev = b.compute();
        }
    }

    #[test]
    fn naive_gram_does_not_scale() {
        let pm = PerfModel::default();
        let a = pm.breakdown(&dsyn(), Algo::Naive, 24);
        let b = pm.breakdown(&dsyn(), Algo::Naive, 600);
        assert_eq!(a.gram, b.gram, "redundant Gram is independent of p");
    }

    #[test]
    fn sequential_has_no_communication() {
        let pm = PerfModel::default();
        let b = pm.breakdown(&dsyn(), Algo::Sequential, 1);
        assert_eq!(b.comm(), 0.0);
    }

    #[test]
    fn calibration_returns_positive_rates() {
        let r = KernelRates::calibrate();
        assert!(r.mm_flops > 1e6 && r.mm_flops.is_finite());
        assert!(r.gram_flops > 1e6);
        assert!(r.nls_flops > 1e5);
    }
}
