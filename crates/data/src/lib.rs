//! Dataset builders and the analytic performance model.
//!
//! [`datasets`] recreates the paper's four evaluation inputs (§6.1.1) at
//! any scale — full paper dimensions for the analytic model, scaled-down
//! for real multithreaded runs on one machine:
//!
//! | Paper dataset | Dims (paper) | Analogue here |
//! |---|---|---|
//! | DSYN  | 172,800 × 115,200 dense | uniform + Gaussian noise |
//! | SSYN  | same dims, density 0.001 | Erdős–Rényi |
//! | Video | 1,013,400 × 2,400 dense | synthetic frames: static background + moving object |
//! | Webbase | 1,000,005 × 1,000,005, 3.1M nnz | Chung–Lu power-law digraph |
//!
//! [`ooc`] materializes the sparse datasets as `NMFS` binaries so the
//! out-of-core ingest path ([`hpc_nmf::SharedInput::open_mmap`]) has
//! something to stream.
//!
//! [`costmodel`] evaluates the paper's Table 2 cost expressions under the
//! α-β-γ machine model, with calibratable local-kernel rates; it produces
//! the paper-scale series for Figure 3 and Table 3 that a single machine
//! cannot run directly.

pub mod costmodel;
pub mod datasets;
pub mod ooc;

pub use costmodel::{Breakdown, KernelRates, PerfModel, Workload};
pub use datasets::{Dataset, DatasetKind};
pub use ooc::{materialize_nmfs, write_input_nmfs};
