//! Split-phase collectives: posted ops must deliver bit-identical results
//! to their synchronous counterparts, under arbitrary interleavings with
//! other collectives on the same arena, ragged counts, and sub-comms.

use nmf_vmpi::universe::run;
use nmf_vmpi::Op;
use proptest::collection::vec;
use proptest::prelude::*;

fn block(r: usize, len: usize, salt: u32) -> Vec<f64> {
    (0..len)
        .map(|i| (r * 97 + i) as f64 + salt as f64)
        .collect()
}

#[test]
fn posted_all_gatherv_matches_sync() {
    for p in 1..=9 {
        let counts: Vec<usize> = (0..p).map(|r| (r * 3 + 1) % 5).collect();
        let total: usize = counts.iter().sum();
        let counts2 = counts.clone();
        let results = run(p, move |comm| {
            let mine = block(comm.rank(), counts2[comm.rank()], 7);
            let sync = comm.all_gatherv(&mine, &counts2);
            let op = comm.post_all_gatherv(&mine, &counts2);
            let mut posted = vec![0.0; total];
            op.wait(&mut posted);
            (sync, posted)
        });
        for r in results {
            assert_eq!(r.result.0, r.result.1, "p={p}");
        }
    }
}

#[test]
fn posted_reduce_scatter_matches_sync() {
    for p in 1..=9 {
        let counts: Vec<usize> = (0..p).map(|r| (r * 2 + 1) % 4 + 1).collect();
        let total: usize = counts.iter().sum();
        let counts2 = counts.clone();
        let results = run(p, move |comm| {
            let r = comm.rank();
            let data: Vec<f64> = (0..total).map(|i| (i * (r + 1)) as f64).collect();
            let sync = comm.reduce_scatter(&data, &counts2);
            let op = comm.post_reduce_scatter(&data, &counts2);
            let mut posted = vec![0.0; counts2[r]];
            op.wait(&mut posted);
            (sync, posted)
        });
        for r in results {
            assert_eq!(r.result.0, r.result.1, "p={p}");
        }
    }
}

#[test]
fn posted_all_reduce_matches_sync() {
    for p in 1..=9 {
        for n in [0usize, 1, 5, 64, 129] {
            let results = run(p, move |comm| {
                let r = comm.rank();
                let data: Vec<f64> = (0..n).map(|i| (i + r * 13) as f64).collect();
                let sync = comm.all_reduce(&data);
                let op = comm.post_all_reduce(&data);
                let mut posted = vec![0.0; n];
                op.wait(&mut posted);
                (sync, posted)
            });
            for r in results {
                assert_eq!(r.result.0, r.result.1, "p={p} n={n}");
            }
        }
    }
}

/// The engine's actual pattern: post on a sub-comm, run other collectives
/// on other comms sharing the arena and channels, then wait.
#[test]
fn posted_op_survives_interleaved_collectives_on_other_comms() {
    for p in [4usize, 6, 8] {
        let results = run(p, move |comm| {
            let cols = 2;
            let row = comm.split(comm.rank() / cols, comm.rank() % cols);
            let col = comm.split(cols + comm.rank() % cols, comm.rank() / cols);

            let mine = block(comm.rank(), 3, 11);
            let counts = vec![3usize; col.size()];
            let posted_col = col.post_all_gatherv(&mine, &counts);

            // "Compute phase": world and row collectives run while the
            // column gather is in flight, drawing from the same arena.
            let world_sum = comm.all_reduce_scalar(comm.rank() as f64 + 1.0);
            let row_counts = vec![2usize; row.size()];
            let row_data: Vec<f64> = (0..2 * row.size()).map(|i| i as f64).collect();
            let mut row_rs = vec![0.0; 2];
            row.reduce_scatter_into(&row_data, &row_counts, &mut row_rs);

            let mut gathered = vec![0.0; 3 * col.size()];
            posted_col.wait(&mut gathered);

            // Reference: same gather done synchronously afterwards.
            let sync = col.all_gatherv(&mine, &counts);
            (gathered, sync, world_sum, row_rs)
        });
        let expect_sum = (p * (p + 1) / 2) as f64;
        for r in results {
            assert_eq!(r.result.0, r.result.1, "p={p}");
            assert_eq!(r.result.2, expect_sum);
        }
    }
}

/// Two ops in flight at once on different comms (the Grid2D schedule posts
/// a gather and a Gram all-reduce together), waited in post order.
#[test]
fn two_simultaneous_posted_ops_complete_in_order() {
    for p in [4usize, 9] {
        let results = run(p, move |comm| {
            let side = (p as f64).sqrt() as usize;
            let col = comm.split(comm.rank() % side, comm.rank() / side);

            let mine = block(comm.rank(), 4, 3);
            let counts = vec![4usize; col.size()];
            let ag = col.post_all_gatherv(&mine, &counts);
            let gram: Vec<f64> = (0..9).map(|i| (i + comm.rank()) as f64).collect();
            let ar = comm.post_all_reduce(&gram);

            let mut gathered = vec![0.0; 4 * col.size()];
            ag.wait(&mut gathered);
            let mut reduced = vec![0.0; 9];
            ar.wait(&mut reduced);

            let sync_ag = col.all_gatherv(&mine, &counts);
            let sync_ar = comm.all_reduce(&gram);
            (gathered == sync_ag, reduced == sync_ar)
        });
        for r in results {
            assert!(r.result.0 && r.result.1, "p={p}");
        }
    }
}

/// Posted and sync paths must put identical words and messages on the
/// wire — the exact-cost accounting cannot tell the schedules apart.
#[test]
fn posted_words_and_messages_match_sync_exactly() {
    for p in [3usize, 4, 8] {
        let results = run(p, move |comm| {
            let n = 24;
            let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let before = comm.stats();
            comm.all_reduce_into(&mut data.clone());
            let mid = comm.stats();
            let op = comm.post_all_reduce(&data);
            let mut out = vec![0.0; n];
            op.wait(&mut out);
            let after = comm.stats();

            let sync = mid.delta_since(&before).op(Op::AllReduce);
            let posted = after.delta_since(&mid).op(Op::AllReduce);
            (sync.words, sync.messages, posted.words, posted.messages)
        });
        for r in results {
            let (sw, sm, pw, pm) = r.result;
            assert_eq!(sw, pw, "p={p}: words differ");
            assert_eq!(sm, pm, "p={p}: messages differ");
        }
    }
}

#[test]
fn posted_stats_record_posts_and_overlap_window() {
    let results = run(4, |comm| {
        let data = vec![1.0; 64];
        let op = comm.post_all_reduce(&data);
        // A measurable compute window between post and wait.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut out = vec![0.0; 64];
        op.wait(&mut out);
        comm.stats().op(Op::AllReduce)
    });
    for r in results {
        assert_eq!(r.result.posts, 1);
        assert!(
            r.result.overlap >= std::time::Duration::from_millis(2),
            "overlap window should cover the compute phase, got {:?}",
            r.result.overlap
        );
        assert!(r.result.inflight >= r.result.overlap);
    }
}

/// Leaking a posted op without waiting is a programming error caught in
/// debug builds.
#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "dropped without wait")]
fn leaked_posted_op_is_debug_asserted() {
    run(2, |comm| {
        if comm.rank() == 0 {
            let op = comm.post_all_reduce(&[1.0, 2.0]);
            drop(op);
        } else {
            let op = comm.post_all_reduce(&[1.0, 2.0]);
            let mut out = vec![0.0; 2];
            op.wait(&mut out);
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    // Arbitrary ragged counts and an arbitrary number of interleaved
    // sync collectives between post and wait: the posted result must
    // equal the sequential reference.
    #[test]
    fn posted_gatherv_with_interleaved_compute_agrees_with_concat(
        p in 1usize..9,
        lens in vec(0usize..6, 9),
        interleave in 0usize..4,
        salt in 0u32..1000,
    ) {
        let counts: Vec<usize> = (0..p).map(|r| lens[r]).collect();
        let expect: Vec<f64> = (0..p).flat_map(|r| block(r, counts[r], salt)).collect();
        let total = expect.len();
        let counts2 = counts.clone();
        let results = run(p, move |comm| {
            let mine = block(comm.rank(), counts2[comm.rank()], salt);
            let op = comm.post_all_gatherv(&mine, &counts2);
            for _ in 0..interleave {
                comm.all_reduce_scalar(1.0);
                comm.barrier();
            }
            let mut out = vec![0.0; total];
            op.wait(&mut out);
            out
        });
        for r in results {
            prop_assert_eq!(&r.result, &expect);
        }
    }

    // Same for reduce-scatter: ragged counts, interleaved all-gathers.
    #[test]
    fn posted_reduce_scatter_with_interleaved_compute_agrees_with_reference(
        p in 1usize..9,
        lens in vec(1usize..5, 9),
        interleave in 0usize..3,
        salt in 1u32..50,
    ) {
        let counts: Vec<usize> = (0..p).map(|r| lens[r]).collect();
        let total: usize = counts.iter().sum();
        // Reference: element-wise sum of every rank's vector, sliced.
        let mut summed = vec![0.0; total];
        for r in 0..p {
            for (i, s) in summed.iter_mut().enumerate() {
                *s += (i * (r + 1) + salt as usize) as f64;
            }
        }
        let mut off = 0usize;
        let mut slices = Vec::new();
        for &c in &counts {
            slices.push(summed[off..off + c].to_vec());
            off += c;
        }
        let counts2 = counts.clone();
        let results = run(p, move |comm| {
            let r = comm.rank();
            let data: Vec<f64> =
                (0..total).map(|i| (i * (r + 1) + salt as usize) as f64).collect();
            let op = comm.post_reduce_scatter(&data, &counts2);
            for _ in 0..interleave {
                comm.all_gather(&[r as f64]);
            }
            let mut out = vec![0.0; counts2[r]];
            op.wait(&mut out);
            out
        });
        for r in results {
            prop_assert_eq!(&r.result, &slices[r.rank]);
        }
    }

    // All three posted ops in flight together across world and split
    // comms, with sync traffic interleaved — the stress shape closest to
    // the engine's overlapped iteration.
    #[test]
    fn three_posted_ops_interleaved_across_comms(
        pr in 1usize..4,
        pc in 1usize..4,
        n in 1usize..40,
        salt in 0u32..100,
    ) {
        let p = pr * pc;
        let results = run(p, move |comm| {
            let row = comm.split(comm.rank() / pc, comm.rank() % pc);
            let col = comm.split(pr + comm.rank() % pc, comm.rank() / pc);
            let r = comm.rank();

            let col_counts: Vec<usize> = (0..col.size()).map(|i| (i + 1) % 3 + 1).collect();
            let mine = block(r, col_counts[col.rank()], salt);
            let ag = col.post_all_gatherv(&mine, &col_counts);

            let gram: Vec<f64> = (0..n).map(|i| (i + r) as f64).collect();
            let ar = comm.post_all_reduce(&gram);

            let row_counts: Vec<usize> = vec![2; row.size()];
            let row_data: Vec<f64> = (0..2 * row.size()).map(|i| (i + r) as f64).collect();
            let rs = row.post_reduce_scatter(&row_data, &row_counts);

            comm.barrier(); // sync traffic while three ops are in flight

            let mut ag_out = vec![0.0; col_counts.iter().sum()];
            ag.wait(&mut ag_out);
            let mut ar_out = vec![0.0; n];
            ar.wait(&mut ar_out);
            let mut rs_out = vec![0.0; 2];
            rs.wait(&mut rs_out);

            // Sync references on the same comms afterwards.
            let ag_ref = col.all_gatherv(&mine, &col_counts);
            let ar_ref = comm.all_reduce(&gram);
            let rs_ref = row.reduce_scatter(&row_data, &row_counts);
            (ag_out == ag_ref, ar_out == ar_ref, rs_out == rs_ref)
        });
        for r in results {
            prop_assert!(r.result.0 && r.result.1 && r.result.2);
        }
    }

    // Repeated post/wait cycles reuse the arena: the steady-state cycle
    // must not corrupt results (pool discipline, not fresh allocations).
    #[test]
    fn repeated_posted_cycles_reuse_arena_without_corruption(
        p in 2usize..7,
        n in 1usize..30,
    ) {
        let results = run(p, move |comm| {
            let r = comm.rank();
            let mut ok = true;
            for iter in 0..12 {
                let data: Vec<f64> = (0..n).map(|i| (i + r + iter) as f64).collect();
                let op = comm.post_all_reduce(&data);
                let mut out = vec![0.0; n];
                op.wait(&mut out);
                let reference = comm.all_reduce(&data);
                ok &= out == reference;
            }
            ok
        });
        for r in results {
            prop_assert!(r.result);
        }
    }
}
