//! Property-based tests: collectives must agree with trivial sequential
//! references for arbitrary rank counts, block sizes, and payloads.

use nmf_vmpi::universe::run;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn all_gatherv_agrees_with_concat(
        p in 1usize..10,
        lens in vec(0usize..6, 10),
        salt in 0u32..1000,
    ) {
        let counts: Vec<usize> = (0..p).map(|r| lens[r]).collect();
        let block = |r: usize| -> Vec<f64> {
            (0..counts[r]).map(|i| (r * 100 + i) as f64 + salt as f64).collect()
        };
        let expect: Vec<f64> = (0..p).flat_map(block).collect();
        let counts2 = counts.clone();
        let results = run(p, move |comm| {
            let mine: Vec<f64> = (0..counts2[comm.rank()])
                .map(|i| (comm.rank() * 100 + i) as f64 + salt as f64)
                .collect();
            comm.all_gatherv(&mine, &counts2)
        });
        for r in results {
            prop_assert_eq!(&r.result, &expect);
        }
    }

    #[test]
    fn reduce_scatter_agrees_with_sum_then_slice(
        p in 1usize..10,
        lens in vec(0usize..5, 10),
        payload_salt in 1u32..100,
    ) {
        let counts: Vec<usize> = (0..p).map(|r| lens[r]).collect();
        let n: usize = counts.iter().sum();
        let value = |r: usize, i: usize| ((r + 1) * (i + 3) + payload_salt as usize) as f64;
        // Reference: elementwise sum, then slice by offsets.
        let total: Vec<f64> = (0..n).map(|i| (0..p).map(|r| value(r, i)).sum()).collect();
        let mut offsets = vec![0usize];
        for &c in &counts { offsets.push(offsets.last().unwrap() + c); }
        let counts2 = counts.clone();
        let results = run(p, move |comm| {
            let data: Vec<f64> = (0..n).map(|i| value(comm.rank(), i)).collect();
            comm.reduce_scatter(&data, &counts2)
        });
        for r in results {
            let expect = &total[offsets[r.rank]..offsets[r.rank + 1]];
            for (a, b) in r.result.iter().zip(expect) {
                prop_assert!((a - b).abs() < 1e-9, "rank {} mismatch", r.rank);
            }
        }
    }

    #[test]
    fn all_reduce_agrees_with_sum(
        p in 1usize..10,
        n in 0usize..40,
        salt in 0u32..50,
    ) {
        let value = |r: usize, i: usize| (r * 7 + i * 13 + salt as usize) as f64;
        let expect: Vec<f64> = (0..n).map(|i| (0..p).map(|r| value(r, i)).sum()).collect();
        let results = run(p, move |comm| {
            let data: Vec<f64> = (0..n).map(|i| value(comm.rank(), i)).collect();
            comm.all_reduce(&data)
        });
        for r in results {
            for (a, b) in r.result.iter().zip(&expect) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn broadcast_delivers_root_payload(
        p in 1usize..9,
        root_pick in 0usize..9,
        data in vec(-1e6f64..1e6, 0..20),
    ) {
        let root = root_pick % p;
        let data2 = data.clone();
        let results = run(p, move |comm| {
            let mine = if comm.rank() == root { data2.clone() } else { vec![] };
            comm.broadcast(root, &mine)
        });
        for r in results {
            prop_assert_eq!(&r.result, &data);
        }
    }
}
