//! Correctness tests for every collective, across power-of-two and
//! non-power-of-two rank counts (the paper's processor counts 24, 96,
//! 216, 384, 600 are all non-powers-of-two, so the fold paths matter).

use nmf_vmpi::stats::Op;
use nmf_vmpi::universe::run;

/// Rank r contributes the block [r*1000, r*1000+len(r)) as floats.
fn rank_block(r: usize, len: usize) -> Vec<f64> {
    (0..len).map(|i| (r * 1000 + i) as f64).collect()
}

#[test]
fn all_gather_equal_blocks() {
    for p in [1, 2, 3, 4, 5, 7, 8, 12, 13] {
        let results = run(p, |comm| comm.all_gather(&rank_block(comm.rank(), 3)));
        let expect: Vec<f64> = (0..p).flat_map(|r| rank_block(r, 3)).collect();
        for r in &results {
            assert_eq!(
                r.result, expect,
                "all_gather wrong at p={p}, rank {}",
                r.rank
            );
        }
    }
}

#[test]
fn all_gatherv_varied_blocks() {
    for p in [1, 2, 3, 5, 6, 9, 16] {
        let counts: Vec<usize> = (0..p).map(|r| (r * 7 + 1) % 5).collect();
        let results = run(p, |comm| {
            let counts: Vec<usize> = (0..comm.size()).map(|r| (r * 7 + 1) % 5).collect();
            comm.all_gatherv(&rank_block(comm.rank(), counts[comm.rank()]), &counts)
        });
        let expect: Vec<f64> = (0..p).flat_map(|r| rank_block(r, counts[r])).collect();
        for r in &results {
            assert_eq!(
                r.result, expect,
                "all_gatherv wrong at p={p}, rank {}",
                r.rank
            );
        }
    }
}

fn reduce_scatter_reference(p: usize, n_per: usize) -> Vec<Vec<f64>> {
    // Every rank contributes vector v_r with v_r[i] = r + i; the sum over
    // ranks of element i is p*i + p(p-1)/2.
    let total: Vec<f64> = (0..p * n_per)
        .map(|i| (p * i) as f64 + (p * (p - 1) / 2) as f64)
        .collect();
    (0..p)
        .map(|r| total[r * n_per..(r + 1) * n_per].to_vec())
        .collect()
}

#[test]
fn reduce_scatter_equal_counts() {
    for p in [1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 24] {
        let n_per = 4;
        let results = run(p, |comm| {
            let p = comm.size();
            let data: Vec<f64> = (0..p * n_per).map(|i| (comm.rank() + i) as f64).collect();
            comm.reduce_scatter(&data, &vec![n_per; p])
        });
        let expect = reduce_scatter_reference(p, n_per);
        for r in &results {
            assert_eq!(
                r.result, expect[r.rank],
                "reduce_scatter wrong at p={p}, rank {}",
                r.rank
            );
        }
    }
}

#[test]
fn reduce_scatter_uneven_counts() {
    for p in [2, 3, 5, 7, 10, 12] {
        let counts: Vec<usize> = (0..p).map(|r| r % 4).collect();
        let offsets: Vec<usize> = counts
            .iter()
            .scan(0, |acc, &c| {
                let o = *acc;
                *acc += c;
                Some(o)
            })
            .collect();
        let results = run(p, |comm| {
            let p = comm.size();
            let counts: Vec<usize> = (0..p).map(|r| r % 4).collect();
            let n: usize = counts.iter().sum();
            let data: Vec<f64> = (0..n)
                .map(|i| ((comm.rank() + 1) * (i + 1)) as f64)
                .collect();
            comm.reduce_scatter(&data, &counts)
        });
        // Sum over ranks of (r+1)*(i+1) = (i+1) * p(p+1)/2.
        let s = (p * (p + 1) / 2) as f64;
        for r in &results {
            let expect: Vec<f64> = (0..counts[r.rank])
                .map(|j| (offsets[r.rank] + j + 1) as f64 * s)
                .collect();
            assert_eq!(
                r.result, expect,
                "uneven reduce_scatter wrong at p={p} rank {}",
                r.rank
            );
        }
    }
}

#[test]
fn reduce_scatter_ring_matches_halving() {
    for p in [2, 3, 5, 8] {
        let counts: Vec<usize> = (0..p).map(|r| 2 + r % 3).collect();
        let halving = run(p, |comm| {
            let p = comm.size();
            let counts: Vec<usize> = (0..p).map(|r| 2 + r % 3).collect();
            let n: usize = counts.iter().sum();
            let data: Vec<f64> = (0..n).map(|i| (comm.rank() * 31 + i) as f64).collect();
            comm.reduce_scatter(&data, &counts)
        });
        let ring = run(p, |comm| {
            let p = comm.size();
            let counts: Vec<usize> = (0..p).map(|r| 2 + r % 3).collect();
            let n: usize = counts.iter().sum();
            let data: Vec<f64> = (0..n).map(|i| (comm.rank() * 31 + i) as f64).collect();
            comm.reduce_scatter_ring(&data, &counts)
        });
        for (h, g) in halving.iter().zip(&ring) {
            assert_eq!(
                h.result, g.result,
                "ring != halving at p={p} rank {}",
                h.rank
            );
        }
        let _ = counts;
    }
}

#[test]
fn all_reduce_sums() {
    for p in [1, 2, 3, 4, 6, 7, 8, 12, 24] {
        let n = 10;
        let results = run(p, |comm| {
            let data: Vec<f64> = (0..n).map(|i| (comm.rank() * n + i) as f64).collect();
            comm.all_reduce(&data)
        });
        let expect: Vec<f64> = (0..n)
            .map(|i| (0..p).map(|r| (r * n + i) as f64).sum())
            .collect();
        for r in &results {
            assert_eq!(
                r.result, expect,
                "all_reduce wrong at p={p} rank {}",
                r.rank
            );
        }
    }
}

#[test]
fn all_reduce_short_vector_many_ranks() {
    // n < p exercises zero-length segments in Rabenseifner.
    let results = run(9, |comm| comm.all_reduce(&[1.0, 2.0]));
    for r in &results {
        assert_eq!(r.result, vec![9.0, 18.0]);
    }
}

#[test]
fn all_reduce_tree_matches_rabenseifner() {
    for p in [1, 2, 3, 5, 8, 13] {
        let a = run(p, |comm| {
            let data: Vec<f64> = (0..7).map(|i| (comm.rank() + i * i) as f64).collect();
            comm.all_reduce(&data)
        });
        let b = run(p, |comm| {
            let data: Vec<f64> = (0..7).map(|i| (comm.rank() + i * i) as f64).collect();
            comm.all_reduce_tree(&data)
        });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result, y.result, "tree != rabenseifner at p={p}");
        }
    }
}

#[test]
fn broadcast_from_every_root() {
    for p in [1, 2, 3, 5, 8] {
        for root in 0..p {
            let results = run(p, |comm| {
                let data = if comm.rank() == root {
                    vec![42.0, root as f64]
                } else {
                    vec![]
                };
                comm.broadcast(root, &data)
            });
            for r in &results {
                assert_eq!(r.result, vec![42.0, root as f64], "bcast p={p} root={root}");
            }
        }
    }
}

#[test]
fn gather_and_scatter_round_trip() {
    for p in [1, 3, 6] {
        let results = run(p, |comm| {
            let mine = rank_block(comm.rank(), 2);
            let gathered = comm.gather(0, &mine);
            // Root redistributes what it gathered; everyone should get
            // their own block back.
            let chunks = gathered.map(|g| g.to_vec());
            comm.scatter(0, chunks.as_deref())
        });
        for r in &results {
            assert_eq!(r.result, rank_block(r.rank, 2), "gather/scatter p={p}");
        }
    }
}

#[test]
fn barrier_orders_phases() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let entered = AtomicUsize::new(0);
    let p = 8;
    run(p, |comm| {
        entered.fetch_add(1, Ordering::SeqCst);
        comm.barrier();
        // After the barrier every rank must observe all p entries.
        assert_eq!(
            entered.load(Ordering::SeqCst),
            p,
            "barrier let a rank through early"
        );
    });
}

#[test]
fn split_forms_grid_communicators() {
    // 6 ranks as a 2x3 grid: row comm groups ranks with equal row index,
    // column comm groups equal column index.
    let (pr, pc) = (2usize, 3usize);
    let results = run(pr * pc, |comm| {
        let (i, j) = (comm.rank() / pc, comm.rank() % pc);
        let row = comm.split(i, j); // peers across the row (pc ranks)
        let col = comm.split(j, i); // peers down the column (pr ranks)
        let row_sum = row.all_reduce_scalar(comm.rank() as f64);
        let col_sum = col.all_reduce_scalar(comm.rank() as f64);
        (row.size(), col.size(), row_sum, col_sum)
    });
    for r in &results {
        let (i, j) = (r.rank / pc, r.rank % pc);
        let expect_row: usize = (0..pc).map(|jj| i * pc + jj).sum();
        let expect_col: usize = (0..pr).map(|ii| ii * pc + j).sum();
        assert_eq!(r.result.0, pc);
        assert_eq!(r.result.1, pr);
        assert_eq!(r.result.2, expect_row as f64);
        assert_eq!(r.result.3, expect_col as f64);
    }
}

#[test]
fn nested_splits_stay_isolated() {
    // Split a 2x2x2 "cube": first by plane, then each plane by row —
    // collectives on a grandchild communicator must not interfere with
    // concurrent collectives on siblings.
    let results = run(8, |comm| {
        let plane = comm.rank() / 4;
        let plane_comm = comm.split(plane, comm.rank() % 4);
        let row = (comm.rank() % 4) / 2;
        let row_comm = plane_comm.split(row, comm.rank() % 2);
        assert_eq!(plane_comm.size(), 4);
        assert_eq!(row_comm.size(), 2);
        let plane_sum = plane_comm.all_reduce_scalar(comm.rank() as f64);
        let row_sum = row_comm.all_reduce_scalar(comm.rank() as f64);
        (plane_sum, row_sum)
    });
    for r in &results {
        let plane = r.rank / 4;
        let expect_plane: usize = (plane * 4..plane * 4 + 4).sum();
        let row_base = (r.rank / 2) * 2;
        let expect_row = row_base + row_base + 1;
        assert_eq!(r.result.0, expect_plane as f64);
        assert_eq!(r.result.1, expect_row as f64);
    }
}

#[test]
fn stats_are_shared_across_subcommunicators() {
    let results = run(4, |comm| {
        let sub = comm.split(comm.rank() % 2, comm.rank());
        sub.all_gather(&[1.0, 2.0]);
        comm.stats().total_messages()
    });
    for r in &results {
        assert!(
            r.result > 0,
            "sub-communicator traffic must appear in the rank's stats"
        );
        assert_eq!(r.stats.total_messages(), r.result);
    }
}

#[test]
fn point_to_point_ring() {
    let p = 5;
    let results = run(p, |comm| {
        let dst = (comm.rank() + 1) % comm.size();
        let src = (comm.rank() + comm.size() - 1) % comm.size();
        comm.send(dst, 3, &[comm.rank() as f64]);
        comm.recv(src, 3)[0]
    });
    for r in &results {
        assert_eq!(r.result as usize, (r.rank + p - 1) % p);
    }
}

#[test]
fn message_counting_all_gather_words() {
    // Bruck all-gather: each rank sends exactly (p-1)/p * total words.
    for p in [2, 4, 8, 16] {
        let n_per = 6;
        let results = run(p, |comm| {
            comm.all_gather(&rank_block(comm.rank(), n_per));
        });
        for r in &results {
            let ag = r.stats.op(Op::AllGather);
            assert_eq!(ag.words as usize, (p - 1) * n_per, "words at p={p}");
            assert_eq!(ag.messages, nmf_vmpi::collectives::log2_ceil(p) as u64);
        }
    }
}

#[test]
fn message_counting_reduce_scatter_is_logarithmic() {
    for p in [2, 3, 4, 6, 8, 24] {
        let results = run(p, |comm| {
            let p = comm.size();
            let data = vec![1.0; p * 4];
            comm.reduce_scatter(&data, &vec![4; p]);
        });
        let bound = nmf_vmpi::collectives::log2_ceil(p) as u64 + 2; // fold + unfold
        for r in &results {
            let rs = r.stats.op(Op::ReduceScatter);
            assert!(
                rs.messages <= bound,
                "reduce_scatter used {} messages at p={p}, bound {bound}",
                rs.messages
            );
        }
    }
}

#[test]
#[should_panic(expected = "tag mismatch")]
fn diverged_collective_sequence_is_detected() {
    run(2, |comm| {
        if comm.rank() == 0 {
            // Rank 0 calls barrier while rank 1 calls all_gather: the tag
            // assertion must catch the protocol divergence.
            comm.barrier();
        } else {
            comm.all_gather(&[1.0]);
        }
    });
}
