//! Equivalence tests for the `_into` collectives: every caller-owned-
//! buffer variant must produce bit-identical results to its allocating
//! counterpart (they share one algorithm) and to a trivial sequential
//! reference, for power-of-two and odd rank counts alike, and repeated
//! calls through the same communicator (exercising arena reuse) must not
//! corrupt results.

use nmf_vmpi::universe::run;

fn payload(rank: usize, i: usize, salt: usize) -> f64 {
    (rank * 131 + i * 7 + salt) as f64 * 0.5 - 3.0
}

#[test]
fn all_reduce_into_matches_allocating_and_reference() {
    for p in 1..=9usize {
        for n in [0usize, 1, 5, 64, 129] {
            let expect: Vec<f64> = (0..n)
                .map(|i| (0..p).map(|r| payload(r, i, 1)).sum())
                .collect();
            let results = run(p, move |comm| {
                let data: Vec<f64> = (0..n).map(|i| payload(comm.rank(), i, 1)).collect();
                let alloc = comm.all_reduce(&data);
                let mut inplace = data;
                comm.all_reduce_into(&mut inplace);
                (alloc, inplace)
            });
            for r in results {
                let (alloc, inplace) = r.result;
                assert_eq!(
                    alloc, inplace,
                    "p={p} n={n}: _into diverged from allocating"
                );
                for (a, e) in inplace.iter().zip(&expect) {
                    assert!((a - e).abs() < 1e-12, "p={p} n={n}: wrong sum");
                }
            }
        }
    }
}

#[test]
fn all_gather_into_matches_gatherv_and_concat() {
    for p in 1..=9usize {
        let len = 3usize;
        let expect: Vec<f64> = (0..p)
            .flat_map(|r| (0..len).map(move |i| payload(r, i, 2)))
            .collect();
        let results = run(p, move |comm| {
            let mine: Vec<f64> = (0..len).map(|i| payload(comm.rank(), i, 2)).collect();
            let eq = comm.all_gather(&mine);
            let mut eq_into = vec![0.0; len * comm.size()];
            comm.all_gather_into(&mine, &mut eq_into);
            let counts = vec![len; comm.size()];
            let v = comm.all_gatherv(&mine, &counts);
            let mut v_into = vec![0.0; len * comm.size()];
            comm.all_gatherv_into(&mine, &counts, &mut v_into);
            (eq, eq_into, v, v_into)
        });
        for r in results {
            let (eq, eq_into, v, v_into) = r.result;
            assert_eq!(eq, expect, "p={p}: equal-block all_gather wrong");
            assert_eq!(eq_into, expect, "p={p}: all_gather_into wrong");
            assert_eq!(v, expect, "p={p}: all_gatherv wrong");
            assert_eq!(v_into, expect, "p={p}: all_gatherv_into wrong");
        }
    }
}

#[test]
fn all_gatherv_into_handles_ragged_counts() {
    for p in 2..=8usize {
        // Ragged blocks, including empty ones.
        let counts: Vec<usize> = (0..p).map(|r| (r * 3 + 1) % 5).collect();
        let expect: Vec<f64> = (0..p)
            .flat_map(|r| (0..counts[r]).map(move |i| payload(r, i, 3)))
            .collect();
        let counts2 = counts.clone();
        let results = run(p, move |comm| {
            let me = comm.rank();
            let mine: Vec<f64> = (0..counts2[me]).map(|i| payload(me, i, 3)).collect();
            let mut out = vec![0.0; counts2.iter().sum()];
            comm.all_gatherv_into(&mine, &counts2, &mut out);
            out
        });
        for r in results {
            assert_eq!(r.result, expect, "p={p}: ragged all_gatherv_into wrong");
        }
    }
}

#[test]
fn reduce_scatter_into_matches_allocating_and_reference() {
    for p in 1..=9usize {
        let counts: Vec<usize> = (0..p).map(|r| (r * 2 + 3) % 6).collect();
        let n: usize = counts.iter().sum();
        let total: Vec<f64> = (0..n)
            .map(|i| (0..p).map(|r| payload(r, i, 4)).sum())
            .collect();
        let mut offsets = vec![0usize];
        for &c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let counts2 = counts.clone();
        let results = run(p, move |comm| {
            let data: Vec<f64> = (0..n).map(|i| payload(comm.rank(), i, 4)).collect();
            let alloc = comm.reduce_scatter(&data, &counts2);
            let mut into = vec![0.0; counts2[comm.rank()]];
            comm.reduce_scatter_into(&data, &counts2, &mut into);
            (alloc, into)
        });
        for r in results {
            let (alloc, into) = r.result;
            assert_eq!(alloc, into, "p={p}: _into diverged from allocating");
            let expect = &total[offsets[r.rank]..offsets[r.rank + 1]];
            for (a, e) in into.iter().zip(expect) {
                assert!((a - e).abs() < 1e-9, "p={p} rank {}: wrong segment", r.rank);
            }
        }
    }
}

#[test]
fn repeated_into_calls_reuse_arena_without_corruption() {
    // 20 back-to-back collectives through the same comm: results must be
    // identical every time (the arena recycles buffers between calls).
    let p = 6;
    let results = run(p, |comm| {
        let data: Vec<f64> = (0..48).map(|i| payload(comm.rank(), i, 5)).collect();
        let counts = vec![8usize; p];
        let first_ar = comm.all_reduce(&data);
        let first_ag = comm.all_gather(&data[..4]);
        let first_rs = comm.reduce_scatter(&data, &counts);
        for _ in 0..20 {
            let mut ar = data.clone();
            comm.all_reduce_into(&mut ar);
            assert_eq!(ar, first_ar);
            let mut ag = vec![0.0; 4 * p];
            comm.all_gather_into(&data[..4], &mut ag);
            assert_eq!(ag, first_ag);
            let mut rs = vec![0.0; 8];
            comm.reduce_scatter_into(&data, &counts, &mut rs);
            assert_eq!(rs, first_rs);
        }
        true
    });
    assert!(results.iter().all(|r| r.result));
}

#[test]
fn mixed_comm_and_subcomm_collectives_share_arena_safely() {
    // Split into row/col comms (as the 2D driver does) and interleave
    // collectives on all three communicators.
    let p = 6;
    let results = run(p, |comm| {
        let row = comm.split(comm.rank() % 2, comm.rank());
        let col = comm.split(2 + comm.rank() / 2, comm.rank());
        let mut x = vec![comm.rank() as f64; 10];
        comm.all_reduce_into(&mut x);
        let mut y = vec![0.0; 3 * row.size()];
        row.all_gather_into(&[row.rank() as f64; 3], &mut y);
        let mut z = vec![1.0; col.size() * 2];
        let counts = vec![2usize; col.size()];
        let mut out = vec![0.0; 2];
        z.iter_mut().enumerate().for_each(|(i, v)| *v = i as f64);
        col.reduce_scatter_into(&z, &counts, &mut out);
        (x[0], y.iter().sum::<f64>(), out[0])
    });
    let base = &results[0].result;
    // all_reduce result identical everywhere.
    for r in &results {
        assert_eq!(r.result.0, base.0);
    }
}
