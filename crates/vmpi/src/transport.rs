//! Point-to-point message transport between ranks.
//!
//! A `p × p` mesh of unbounded crossbeam channels, one per ordered pair of
//! ranks. Because each pair has a dedicated FIFO channel and every rank
//! executes the same (deterministic) program, message matching needs no
//! wildcard receives: a receive names its source, and the tag carried by
//! each message is *asserted*, not searched for — a mismatch is a protocol
//! bug and panics immediately (this is the "mismatched collective payload"
//! failure-injection behaviour tested in the crate tests).
//!
//! ## Out-of-order delivery under split-phase collectives
//!
//! Posted (nonblocking) collectives relax strict FIFO matching: while a
//! [`PendingOp`](crate::pending::PendingOp) is in flight, a peer may run
//! ahead and interleave messages of *later* operations on the same pair
//! channel. Each endpoint therefore keeps a small per-source stash: when
//! at least one posted op is outstanding, a tag-mismatched message is set
//! aside instead of panicking, and every receive checks the stash before
//! the channel. With no posted op outstanding a mismatch is still the
//! fail-fast protocol error it always was.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::cell::{Cell, RefCell};

/// A single message: an opaque tag (encodes communicator, operation kind,
/// and sequence number) plus a payload of `f64` words.
pub(crate) struct Msg {
    pub tag: u64,
    pub data: Box<[f64]>,
}

/// One rank's endpoints: senders to every rank and receivers from every
/// rank, indexed by world rank.
pub(crate) struct Endpoints {
    pub rank: usize,
    pub out: Vec<Sender<Msg>>,
    pub inc: Vec<Receiver<Msg>>,
    /// Messages received out of order while a posted op was in flight,
    /// indexed by source rank. Capacity is retained across iterations so
    /// steady-state stashing allocates nothing.
    stash: Vec<RefCell<Vec<Msg>>>,
    /// Number of posted (split-phase) collectives currently in flight on
    /// this rank. While nonzero, tag-mismatched receives stash instead of
    /// panicking.
    pending: Cell<usize>,
}

impl Endpoints {
    /// Creates the full mesh for `p` ranks.
    pub fn mesh(p: usize) -> Vec<Endpoints> {
        // chan[src][dst]
        let mut senders: Vec<Vec<Sender<Msg>>> = vec![Vec::with_capacity(p); p];
        let mut receivers: Vec<Vec<Receiver<Msg>>> = (0..p).map(|_| Vec::new()).collect();
        #[allow(clippy::needless_range_loop)] // index pair mirrors the mesh layout
        for src in 0..p {
            for dst in 0..p {
                let (tx, rx) = unbounded();
                senders[src].push(tx);
                receivers[dst].push(rx);
            }
        }
        // receivers[dst][src] currently appended in src-major order for a
        // fixed dst? No: loop order pushes (src, dst) into receivers[dst]
        // as src ascends — index = src. Correct.
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (out, inc))| Endpoints {
                rank,
                out,
                inc,
                stash: (0..p).map(|_| RefCell::new(Vec::new())).collect(),
                pending: Cell::new(0),
            })
            .collect()
    }

    /// Marks one more posted collective in flight (enables stashing).
    pub fn pending_inc(&self) {
        self.pending.set(self.pending.get() + 1);
    }

    /// Marks one posted collective retired.
    pub fn pending_dec(&self) {
        debug_assert!(self.pending.get() > 0, "pending-op counter underflow");
        self.pending.set(self.pending.get() - 1);
    }

    /// Sends `data` to world rank `dst` with `tag`.
    pub fn send(&self, dst: usize, tag: u64, data: Box<[f64]>) {
        self.out[dst]
            .send(Msg { tag, data })
            .unwrap_or_else(|_| panic!("rank {}: peer {dst} disconnected on send", self.rank));
    }

    /// Pulls the first stashed message from `src` matching `expect_tag`.
    fn take_stashed(&self, src: usize, expect_tag: u64) -> Option<Box<[f64]>> {
        let mut stash = self.stash[src].borrow_mut();
        let i = stash.iter().position(|m| m.tag == expect_tag)?;
        // Preserve arrival order of the remaining stashed messages.
        Some(stash.remove(i).data)
    }

    /// Stashes a mismatched message if a posted op may still claim it,
    /// otherwise reports the protocol divergence.
    fn stash_or_panic(&self, src: usize, msg: Msg, expect_tag: u64) {
        if self.pending.get() > 0 {
            self.stash[src].borrow_mut().push(msg);
        } else {
            panic!(
                "rank {}: tag mismatch receiving from {src}: got {:#x}, expected {:#x} \
                 (collective call sequence diverged between ranks)",
                self.rank, msg.tag, expect_tag
            );
        }
    }

    /// Receives the next message from world rank `src`, asserting the tag.
    pub fn recv(&self, src: usize, expect_tag: u64) -> Box<[f64]> {
        if let Some(data) = self.take_stashed(src, expect_tag) {
            return data;
        }
        loop {
            let msg = self.inc[src].recv().unwrap_or_else(|_| {
                panic!(
                    "rank {}: peer {src} disconnected (likely panicked) \
                     while expecting tag {expect_tag:#x}",
                    self.rank
                )
            });
            if msg.tag == expect_tag {
                return msg.data;
            }
            self.stash_or_panic(src, msg, expect_tag);
        }
    }

    /// Nonblocking receive from world rank `src`: returns the payload if a
    /// message with `expect_tag` is already available (stashed or queued),
    /// `None` if the channel is currently empty.
    pub fn try_recv(&self, src: usize, expect_tag: u64) -> Option<Box<[f64]>> {
        if let Some(data) = self.take_stashed(src, expect_tag) {
            return Some(data);
        }
        loop {
            match self.inc[src].try_recv() {
                Ok(msg) if msg.tag == expect_tag => return Some(msg.data),
                Ok(msg) => self.stash_or_panic(src, msg, expect_tag),
                Err(TryRecvError::Empty) => return None,
                Err(TryRecvError::Disconnected) => panic!(
                    "rank {}: peer {src} disconnected (likely panicked) \
                     while expecting tag {expect_tag:#x}",
                    self.rank
                ),
            }
        }
    }
}
