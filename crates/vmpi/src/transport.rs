//! Point-to-point message transport between ranks.
//!
//! A `p × p` mesh of unbounded crossbeam channels, one per ordered pair of
//! ranks. Because each pair has a dedicated FIFO channel and every rank
//! executes the same (deterministic) program, message matching needs no
//! wildcard receives: a receive names its source, and the tag carried by
//! each message is *asserted*, not searched for — a mismatch is a protocol
//! bug and panics immediately (this is the "mismatched collective payload"
//! failure-injection behaviour tested in the crate tests).

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A single message: an opaque tag (encodes communicator, operation kind,
/// and sequence number) plus a payload of `f64` words.
pub(crate) struct Msg {
    pub tag: u64,
    pub data: Box<[f64]>,
}

/// One rank's endpoints: senders to every rank and receivers from every
/// rank, indexed by world rank.
pub(crate) struct Endpoints {
    pub rank: usize,
    pub out: Vec<Sender<Msg>>,
    pub inc: Vec<Receiver<Msg>>,
}

impl Endpoints {
    /// Creates the full mesh for `p` ranks.
    pub fn mesh(p: usize) -> Vec<Endpoints> {
        // chan[src][dst]
        let mut senders: Vec<Vec<Sender<Msg>>> = vec![Vec::with_capacity(p); p];
        let mut receivers: Vec<Vec<Receiver<Msg>>> = (0..p).map(|_| Vec::new()).collect();
        #[allow(clippy::needless_range_loop)] // index pair mirrors the mesh layout
        for src in 0..p {
            for dst in 0..p {
                let (tx, rx) = unbounded();
                senders[src].push(tx);
                receivers[dst].push(rx);
            }
        }
        // receivers[dst][src] currently appended in src-major order for a
        // fixed dst? No: loop order pushes (src, dst) into receivers[dst]
        // as src ascends — index = src. Correct.
        senders
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(rank, (out, inc))| Endpoints { rank, out, inc })
            .collect()
    }

    /// Sends `data` to world rank `dst` with `tag`.
    pub fn send(&self, dst: usize, tag: u64, data: Box<[f64]>) {
        self.out[dst]
            .send(Msg { tag, data })
            .unwrap_or_else(|_| panic!("rank {}: peer {dst} disconnected on send", self.rank));
    }

    /// Receives the next message from world rank `src`, asserting the tag.
    pub fn recv(&self, src: usize, expect_tag: u64) -> Box<[f64]> {
        let msg = self.inc[src].recv().unwrap_or_else(|_| {
            panic!(
                "rank {}: peer {src} disconnected (likely panicked)",
                self.rank
            )
        });
        assert_eq!(
            msg.tag, expect_tag,
            "rank {}: tag mismatch receiving from {src}: got {:#x}, expected {:#x} \
             (collective call sequence diverged between ranks)",
            self.rank, msg.tag, expect_tag
        );
        msg.data
    }
}
