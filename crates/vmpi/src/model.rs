//! The α-β-γ communication/computation cost model (paper §2.2–2.3).
//!
//! A message of `n` words costs `α + nβ`; a flop costs `γ`. Collective
//! costs follow the paper's §2.3 expressions, which assume the optimal
//! algorithms implemented in [`crate::collectives`]:
//!
//! * all-gather:      `α·log p + β·((p−1)/p)·n`
//! * reduce-scatter:  `α·log p + (β+γ)·((p−1)/p)·n`
//! * all-reduce:      `2α·log p + (2β+γ)·((p−1)/p)·n`
//!
//! (`n` is the total data size; costs are zero at `p = 1`.) These
//! functions power the paper-scale analytic projections in `nmf-data`.

use crate::collectives::log2_ceil;

/// Machine constants for the α-β-γ model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Per-word (8-byte f64) transfer cost, seconds.
    pub beta: f64,
    /// Per-flop cost, seconds.
    pub gamma: f64,
}

impl CostModel {
    /// Constants resembling the paper's Cray XC30 "Edison" *per rank*:
    /// ranks are cores, and 24 cores share each node's Aries NIC, so the
    /// effective per-rank bandwidth is roughly 1/24 of the ~8 GB/s node
    /// bandwidth (~2.5e-8 s per 8-byte word); MPI latency ~2 µs; ~5
    /// Gflop/s per-core compute.
    pub fn edison_like() -> Self {
        CostModel {
            alpha: 2e-6,
            beta: 2.5e-8,
            gamma: 2e-10,
        }
    }

    fn frac(p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            (p - 1) as f64 / p as f64
        }
    }

    /// Cost of one point-to-point message of `n` words.
    pub fn message(&self, n: usize) -> f64 {
        self.alpha + self.beta * n as f64
    }

    /// All-gather of total size `n` words over `p` ranks.
    pub fn all_gather(&self, p: usize, n: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.alpha * log2_ceil(p) as f64 + self.beta * Self::frac(p) * n as f64
    }

    /// Reduce-scatter of total size `n` words over `p` ranks.
    pub fn reduce_scatter(&self, p: usize, n: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.alpha * log2_ceil(p) as f64 + (self.beta + self.gamma) * Self::frac(p) * n as f64
    }

    /// All-reduce of size `n` words over `p` ranks (Rabenseifner).
    pub fn all_reduce(&self, p: usize, n: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        2.0 * self.alpha * log2_ceil(p) as f64
            + (2.0 * self.beta + self.gamma) * Self::frac(p) * n as f64
    }

    /// Cost of `flops` floating-point operations.
    pub fn compute(&self, flops: f64) -> f64 {
        self.gamma * flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_are_free_on_one_rank() {
        let m = CostModel::edison_like();
        assert_eq!(m.all_gather(1, 1000), 0.0);
        assert_eq!(m.reduce_scatter(1, 1000), 0.0);
        assert_eq!(m.all_reduce(1, 1000), 0.0);
    }

    #[test]
    fn all_reduce_is_twice_all_gather_latency() {
        let m = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
        };
        assert_eq!(m.all_reduce(8, 100), 2.0 * m.all_gather(8, 100));
    }

    #[test]
    fn bandwidth_term_scales_with_words() {
        let m = CostModel {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
        };
        let c1 = m.all_gather(4, 400);
        assert!((c1 - 300.0).abs() < 1e-12); // (p-1)/p * n = 3/4 * 400
    }

    #[test]
    fn latency_grows_logarithmically() {
        let m = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
        };
        assert_eq!(m.all_gather(2, 0), 1.0);
        assert_eq!(m.all_gather(600, 0), 10.0); // ceil(log2 600) = 10
    }
}
