//! Virtual MPI: a thread-backed message-passing substrate.
//!
//! The HPC-NMF paper runs on MPI over a Cray interconnect. Rust's MPI
//! bindings are thin and awkward for a self-contained reproduction, so
//! this crate *is* the MPI substitute: each rank is an OS thread, ranks
//! exchange messages over dedicated FIFO channels, and all collectives
//! are built from those point-to-point messages using the same classic
//! algorithms (Bruck all-gather, recursive-halving reduce-scatter,
//! Rabenseifner all-reduce, binomial broadcast, dissemination barrier)
//! whose cost expressions the paper quotes in §2.3.
//!
//! Two properties make it a faithful stand-in for the paper's purposes:
//!
//! 1. **Real parallel execution** — ranks genuinely run concurrently on
//!    separate threads, so wall-clock timings of compute vs. communicate
//!    phases are meaningful;
//! 2. **Exact communication accounting** — every rank counts the words
//!    and messages it actually sends, per collective type, so the paper's
//!    Table 2 cost formulas can be checked against *counted* (not merely
//!    modeled) communication.
//!
//! ```
//! use nmf_vmpi::universe;
//!
//! let results = universe::run(4, |comm| {
//!     let contribution = vec![comm.rank() as f64];
//!     let all = comm.all_gather(&contribution);
//!     all.iter().sum::<f64>()
//! });
//! assert!(results.iter().all(|r| r.result == 6.0));
//! ```

pub mod collectives;
pub mod comm;
pub mod model;
pub mod pending;
pub mod stats;
mod transport;
pub mod universe;

pub use comm::Comm;
pub use model::CostModel;
pub use pending::PendingOp;
pub use stats::{CommStats, Op, OpStats};
pub use universe::{run, RankResult};
