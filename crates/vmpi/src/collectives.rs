//! Collective communication algorithms.
//!
//! Implemented *from point-to-point messages* with the classic algorithms
//! whose costs the paper quotes in §2.3 (following Chan et al. and
//! Thakur/Rabenseifner/Gropp):
//!
//! * **all-gather** — Bruck's algorithm: `⌈log₂ p⌉` rounds,
//!   `((p−1)/p)·n` words per rank. Handles any `p` and per-rank block
//!   sizes (`v` variant) because receivers know all counts.
//! * **reduce-scatter** — recursive halving with a fold step for
//!   non-power-of-two `p`: `⌈log₂ p⌉ (+2)` rounds, `((p−1)/p)·n` words
//!   plus the same number of additions.
//! * **all-reduce** — Rabenseifner's algorithm: a reduce-scatter followed
//!   by an all-gather, `2·⌈log₂ p⌉` rounds and `2·((p−1)/p)·n` words. A
//!   binomial-tree variant ([`Comm::all_reduce_tree`]) is provided for the
//!   latency/bandwidth ablation.
//! * **broadcast / reduce** — binomial trees (`⌈log₂ p⌉` rounds).
//! * **barrier** — dissemination (`⌈log₂ p⌉` rounds of empty messages).
//! * **gather / scatter** — direct (used only outside the iteration loop,
//!   for dataset distribution and result collection).
//!
//! Every payload word and message is recorded in the rank's
//! [`CommStats`](crate::stats::CommStats) so tests can compare counted
//! communication against the paper's Table 2 formulas.

use crate::comm::{Comm, Kind};
use crate::stats::Op;

/// `⌈log₂ p⌉` (0 for p ≤ 1); the latency factor of every collective here.
pub fn log2_ceil(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// Largest power of two `≤ p`.
pub fn prev_pow2(p: usize) -> usize {
    assert!(p >= 1);
    1 << (usize::BITS - 1 - p.leading_zeros())
}

fn prefix_sums(counts: &[usize]) -> Vec<usize> {
    let mut off = Vec::with_capacity(counts.len() + 1);
    off.push(0);
    for &c in counts {
        off.push(off.last().unwrap() + c);
    }
    off
}

fn add_into(acc: &mut [f64], other: &[f64]) {
    assert_eq!(acc.len(), other.len(), "reduction operand length mismatch");
    for (a, b) in acc.iter_mut().zip(other) {
        *a += b;
    }
}

impl Comm {
    // ------------------------------------------------------------------
    // all-gather
    // ------------------------------------------------------------------

    /// All-gather with equal block sizes: every rank contributes `send`
    /// and receives the concatenation over ranks in rank order.
    pub fn all_gather(&self, send: &[f64]) -> Vec<f64> {
        let counts = vec![send.len(); self.size()];
        self.all_gatherv(send, &counts)
    }

    /// All-gather with per-rank block sizes (`counts[r]` is rank `r`'s
    /// contribution length; must all be known on every rank, as in
    /// `MPI_Allgatherv`).
    pub fn all_gatherv(&self, send: &[f64], counts: &[usize]) -> Vec<f64> {
        let seq = self.next_seq();
        self.timed(Op::AllGather, || self.bruck_all_gatherv(send, counts, seq, Op::AllGather))
    }

    /// Bruck all-gather over point-to-point exchanges. `⌈log₂ p⌉` rounds;
    /// in round `t` a rank ships the `min(2ᵗ, p−2ᵗ)` blocks it holds.
    pub(crate) fn bruck_all_gatherv(
        &self,
        send: &[f64],
        counts: &[usize],
        seq: u64,
        op: Op,
    ) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        assert_eq!(counts.len(), p, "counts must have one entry per rank");
        assert_eq!(counts[r], send.len(), "my block length disagrees with counts");
        if p == 1 {
            return send.to_vec();
        }
        // blocks[i] holds the block of rank (r + i) mod p.
        let mut blocks: Vec<Box<[f64]>> = Vec::with_capacity(p);
        blocks.push(send.into());
        let mut have = 1usize;
        let mut round = 0u64;
        while have < p {
            let cnt = have.min(p - have);
            let dst = (r + p - have) % p;
            let src = (r + have) % p;
            let send_words: usize = blocks[..cnt].iter().map(|b| b.len()).sum();
            let mut buf = Vec::with_capacity(send_words);
            for b in &blocks[..cnt] {
                buf.extend_from_slice(b);
            }
            let tag = self.tag(Kind::AllGather, (seq << 6) | round);
            let data = self.exchange(dst, src, tag, &buf, op);
            // Incoming blocks belong to ranks src, src+1, ..., src+cnt-1.
            let mut off = 0;
            for t in 0..cnt {
                let len = counts[(src + t) % p];
                blocks.push(data[off..off + len].into());
                off += len;
            }
            assert_eq!(off, data.len(), "all-gather round payload length mismatch");
            have += cnt;
            round += 1;
        }
        // Unrotate: output block j is blocks[(j − r) mod p].
        let total: usize = counts.iter().sum();
        let mut out = Vec::with_capacity(total);
        for j in 0..p {
            out.extend_from_slice(&blocks[(j + p - r) % p]);
        }
        out
    }

    // ------------------------------------------------------------------
    // reduce-scatter
    // ------------------------------------------------------------------

    /// Reduce-scatter: element-wise sums `data` across ranks and leaves
    /// rank `r` with the segment of length `counts[r]` (segments in rank
    /// order). Recursive-halving algorithm with a fold step for
    /// non-power-of-two `p`.
    pub fn reduce_scatter(&self, data: &[f64], counts: &[usize]) -> Vec<f64> {
        let seq = self.next_seq();
        self.timed(Op::ReduceScatter, || {
            self.halving_reduce_scatter(data, counts, seq, Op::ReduceScatter)
        })
    }

    pub(crate) fn halving_reduce_scatter(
        &self,
        data: &[f64],
        counts: &[usize],
        seq: u64,
        op: Op,
    ) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        assert_eq!(counts.len(), p, "counts must have one entry per rank");
        let off = prefix_sums(counts);
        assert_eq!(data.len(), *off.last().unwrap(), "data length must equal sum of counts");
        if p == 1 {
            return data.to_vec();
        }
        let t = |round: u64| self.tag(Kind::ReduceScatter, (seq << 6) | round);

        let pof2 = prev_pow2(p);
        let rem = p - pof2;
        let mut buf = data.to_vec();

        // Fold: the first 2·rem ranks pair up; evens ship their whole
        // vector to their odd neighbour and drop out of the halving.
        let newrank: Option<usize> = if r < 2 * rem {
            if r % 2 == 0 {
                self.send_op(r + 1, t(0), &buf, op);
                None
            } else {
                let other = self.recv_op(r - 1, t(0));
                add_into(&mut buf, &other);
                Some(r / 2)
            }
        } else {
            Some(r - rem)
        };

        // Virtual chunk v aggregates the real chunks of the rank(s) that
        // fold onto surviving rank v: {2v, 2v+1} for v < rem, {v + rem}
        // otherwise. Virtual chunks are contiguous in `buf`.
        let vcounts: Vec<usize> = (0..pof2)
            .map(|v| if v < rem { counts[2 * v] + counts[2 * v + 1] } else { counts[v + rem] })
            .collect();
        let voff = prefix_sums(&vcounts);
        let real_of = |nr: usize| if nr < rem { 2 * nr + 1 } else { nr + rem };

        match newrank {
            Some(nr) => {
                let (mut lo, mut hi) = (0usize, pof2);
                let mut dist = pof2 / 2;
                let mut round = 1u64;
                while dist >= 1 {
                    let mid = lo + dist;
                    let partner = real_of(nr ^ dist);
                    if nr < mid {
                        let recv =
                            self.exchange(partner, partner, t(round), &buf[voff[mid]..voff[hi]], op);
                        add_into(&mut buf[voff[lo]..voff[mid]], &recv);
                        hi = mid;
                    } else {
                        let recv =
                            self.exchange(partner, partner, t(round), &buf[voff[lo]..voff[mid]], op);
                        add_into(&mut buf[voff[mid]..voff[hi]], &recv);
                        lo = mid;
                    }
                    dist /= 2;
                    round += 1;
                }
                debug_assert_eq!(lo, nr);
                debug_assert_eq!(hi, nr + 1);
                if nr < rem {
                    // My virtual chunk covers real ranks 2nr (my folded
                    // partner) and 2nr+1 (me). Ship the partner's segment
                    // back.
                    self.send_op(2 * nr, t(40), &buf[off[2 * nr]..off[2 * nr + 1]], op);
                    buf[off[2 * nr + 1]..off[2 * nr + 2]].to_vec()
                } else {
                    buf[off[nr + rem]..off[nr + rem + 1]].to_vec()
                }
            }
            None => self.recv_op(r + 1, t(40)).into_vec(),
        }
    }

    /// Ring reduce-scatter (ablation alternative): `p−1` rounds, same
    /// bandwidth as recursive halving but `Θ(p)` latency.
    ///
    /// Segments travel rightward around the ring accumulating partial
    /// sums; segment `s` starts at rank `s+1` and arrives, complete, at
    /// rank `s` on the final round.
    pub fn reduce_scatter_ring(&self, data: &[f64], counts: &[usize]) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        assert_eq!(counts.len(), p);
        let off = prefix_sums(counts);
        assert_eq!(data.len(), *off.last().unwrap());
        let seq = self.next_seq();
        self.timed(Op::ReduceScatter, || {
            if p == 1 {
                return data.to_vec();
            }
            let dst = (r + 1) % p;
            let src = (r + p - 1) % p;
            let seg = |s: usize| &data[off[s]..off[s + 1]];
            // Round t: send the running sum of segment (r−t−1), receive
            // segment (r−t−2) from the left and fold in my contribution.
            let mut acc: Vec<f64> = seg((r + p - 1) % p).to_vec();
            for t in 0..p - 1 {
                let tag = self.tag(Kind::ReduceScatter, (seq << 6) | t as u64);
                let incoming = self.exchange(dst, src, tag, &acc, Op::ReduceScatter);
                let recv_seg = (r + 2 * p - t - 2) % p;
                acc = seg(recv_seg).to_vec();
                add_into(&mut acc, &incoming);
            }
            // After p−1 rounds acc is my own segment, fully reduced.
            acc
        })
    }

    // ------------------------------------------------------------------
    // all-reduce
    // ------------------------------------------------------------------

    /// All-reduce (element-wise sum) via Rabenseifner's algorithm:
    /// reduce-scatter over near-equal segments, then all-gather.
    pub fn all_reduce(&self, data: &[f64]) -> Vec<f64> {
        let p = self.size();
        let seq = self.next_seq();
        self.timed(Op::AllReduce, || {
            if p == 1 {
                return data.to_vec();
            }
            let n = data.len();
            let base = n / p;
            let extra = n % p;
            let counts: Vec<usize> =
                (0..p).map(|r| base + usize::from(r < extra)).collect();
            let mine = self.halving_reduce_scatter(data, &counts, seq, Op::AllReduce);
            let seq2 = self.next_seq();
            self.bruck_all_gatherv(&mine, &counts, seq2, Op::AllReduce)
        })
    }

    /// All-reduce via binomial-tree reduce to rank 0 plus binomial
    /// broadcast (ablation alternative: lower latency for tiny payloads,
    /// double the bandwidth term and a serialized root).
    pub fn all_reduce_tree(&self, data: &[f64]) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        let seq = self.next_seq();
        self.timed(Op::AllReduce, || {
            if p == 1 {
                return data.to_vec();
            }
            let t = |round: u64| self.tag(Kind::AllReduce, (seq << 6) | round);
            let mut buf = data.to_vec();
            // Binomial reduce toward rank 0.
            let mut dist = 1usize;
            while dist < p {
                if r & dist != 0 {
                    self.send_op(r - dist, t(dist.trailing_zeros() as u64), &buf, Op::AllReduce);
                    break;
                } else if r + dist < p {
                    let other =
                        self.recv_op(r + dist, t(dist.trailing_zeros() as u64));
                    add_into(&mut buf, &other);
                }
                dist <<= 1;
            }
            // Binomial broadcast from rank 0.
            self.binomial_bcast(0, buf, seq, Op::AllReduce)
        })
    }

    /// Convenience: all-reduce of one scalar.
    pub fn all_reduce_scalar(&self, x: f64) -> f64 {
        self.all_reduce(&[x])[0]
    }

    // ------------------------------------------------------------------
    // broadcast / gather / scatter / barrier
    // ------------------------------------------------------------------

    /// Broadcast `data` from `root` (non-roots pass anything, e.g. `&[]`).
    pub fn broadcast(&self, root: usize, data: &[f64]) -> Vec<f64> {
        let seq = self.next_seq();
        self.timed(Op::Broadcast, || {
            self.binomial_bcast(root, data.to_vec(), seq, Op::Broadcast)
        })
    }

    fn binomial_bcast(&self, root: usize, data: Vec<f64>, seq: u64, op: Op) -> Vec<f64> {
        let p = self.size();
        if p == 1 {
            return data;
        }
        let r = self.rank();
        let vr = (r + p - root) % p;
        let t = |round: u64| self.tag(Kind::Broadcast, (seq << 6) | 32 | round);
        let mut buf = data;
        let mut dist = 1usize;
        let mut round = 0u64;
        while dist < p {
            if vr < dist {
                if vr + dist < p {
                    let dst = (vr + dist + root) % p;
                    self.send_op(dst, t(round), &buf, op);
                }
            } else if vr < 2 * dist {
                let src = (vr - dist + root) % p;
                buf = self.recv_op(src, t(round)).into_vec();
            }
            dist <<= 1;
            round += 1;
        }
        buf
    }

    /// Gathers every rank's `send` at `root`; returns `Some(blocks)` in
    /// rank order at the root, `None` elsewhere. Direct sends (used
    /// outside the iteration loop only).
    pub fn gather(&self, root: usize, send: &[f64]) -> Option<Vec<Vec<f64>>> {
        let p = self.size();
        let r = self.rank();
        let seq = self.next_seq();
        self.timed(Op::Gather, || {
            let tag = self.tag(Kind::Gather, seq << 6);
            if r == root {
                let mut out = Vec::with_capacity(p);
                for src in 0..p {
                    if src == root {
                        out.push(send.to_vec());
                    } else {
                        out.push(self.recv_op(src, tag).into_vec());
                    }
                }
                Some(out)
            } else {
                self.send_op(root, tag, send, Op::Gather);
                None
            }
        })
    }

    /// Scatters `chunks[i]` from `root` to rank `i`; returns this rank's
    /// chunk. Non-roots pass `None`.
    pub fn scatter(&self, root: usize, chunks: Option<&[Vec<f64>]>) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        let seq = self.next_seq();
        self.timed(Op::Scatter, || {
            let tag = self.tag(Kind::Scatter, seq << 6);
            if r == root {
                let chunks = chunks.expect("root must supply scatter chunks");
                assert_eq!(chunks.len(), p, "scatter needs one chunk per rank");
                for (dst, chunk) in chunks.iter().enumerate() {
                    if dst != root {
                        self.send_op(dst, tag, chunk, Op::Scatter);
                    }
                }
                chunks[root].clone()
            } else {
                self.recv_op(root, tag).into_vec()
            }
        })
    }

    /// Dissemination barrier: `⌈log₂ p⌉` rounds of empty messages; no
    /// rank exits before every rank has entered.
    pub fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let r = self.rank();
        let seq = self.next_seq();
        self.timed(Op::Barrier, || {
            let mut dist = 1usize;
            let mut round = 0u64;
            while dist < p {
                let tag = self.tag(Kind::Barrier, (seq << 6) | round);
                let dst = (r + dist) % p;
                let src = (r + p - dist) % p;
                let _ = self.exchange(dst, src, tag, &[], Op::Barrier);
                dist <<= 1;
                round += 1;
            }
        });
    }
}
