//! Collective communication algorithms.
//!
//! Implemented *from point-to-point messages* with the classic algorithms
//! whose costs the paper quotes in §2.3 (following Chan et al. and
//! Thakur/Rabenseifner/Gropp):
//!
//! * **all-gather** — Bruck's algorithm: `⌈log₂ p⌉` rounds,
//!   `((p−1)/p)·n` words per rank. Handles any `p` and per-rank block
//!   sizes (`v` variant) because receivers know all counts.
//! * **reduce-scatter** — recursive halving with a fold step for
//!   non-power-of-two `p`: `⌈log₂ p⌉ (+2)` rounds, `((p−1)/p)·n` words
//!   plus the same number of additions.
//! * **all-reduce** — Rabenseifner's algorithm: a reduce-scatter followed
//!   by an all-gather, `2·⌈log₂ p⌉` rounds and `2·((p−1)/p)·n` words. A
//!   binomial-tree variant ([`Comm::all_reduce_tree`]) is provided for the
//!   latency/bandwidth ablation.
//! * **broadcast / reduce** — binomial trees (`⌈log₂ p⌉` rounds).
//! * **barrier** — dissemination (`⌈log₂ p⌉` rounds of empty messages).
//! * **gather / scatter** — direct (used only outside the iteration loop,
//!   for dataset distribution and result collection).
//!
//! Every payload word and message is recorded in the rank's
//! [`CommStats`](crate::stats::CommStats) so tests can compare counted
//! communication against the paper's Table 2 formulas.
//!
//! ## Allocation discipline
//!
//! The hot collectives come in two forms: allocating (`all_reduce`,
//! `all_gatherv`, `reduce_scatter`) and caller-owned-output `_into`
//! variants (`all_reduce_into`, `all_gather_into`, `all_gatherv_into`,
//! `reduce_scatter_into`). The `_into` variants, combined with the
//! communicator's staging arena (see `comm::Arena`), perform **zero heap
//! allocations in steady state**: Bruck's rotated block buffer, the
//! halving accumulator, and all prefix-sum tables are checked out of the
//! arena and returned, retaining their capacity between calls. The NMF
//! iteration loops call only the `_into` forms. (Message payloads
//! crossing the channel transport are still boxed by the transport — that
//! is the virtual interconnect, not the compute path.)
//!
//! Equal-block collectives (`all_gather`, `all_gather_into`, and the
//! segment layout inside `all_reduce` when `p | n`) use a constant-space
//! `Counts::Eq` descriptor instead of materializing a `vec![len; p]`
//! per call.

use crate::comm::{Comm, Kind};
use crate::stats::Op;

/// `⌈log₂ p⌉` (0 for p ≤ 1); the latency factor of every collective here.
pub fn log2_ceil(p: usize) -> u32 {
    if p <= 1 {
        0
    } else {
        usize::BITS - (p - 1).leading_zeros()
    }
}

/// Largest power of two `≤ p`.
pub fn prev_pow2(p: usize) -> usize {
    assert!(p >= 1);
    1 << (usize::BITS - 1 - p.leading_zeros())
}

/// Per-rank block lengths of a `v`-style collective, without forcing the
/// equal-block case to materialize a vector.
#[derive(Clone, Copy)]
pub(crate) enum Counts<'a> {
    /// Every rank contributes the same number of words.
    Eq(usize),
    /// Rank `r` contributes `counts[r]` words.
    Var(&'a [usize]),
}

impl Counts<'_> {
    #[inline]
    pub(crate) fn get(&self, i: usize) -> usize {
        match self {
            Counts::Eq(len) => *len,
            Counts::Var(c) => c[i],
        }
    }

    #[inline]
    pub(crate) fn total(&self, p: usize) -> usize {
        match self {
            Counts::Eq(len) => len * p,
            Counts::Var(c) => c.iter().sum(),
        }
    }

    /// Collapses a per-rank counts slice to `Eq` when every entry is the
    /// same — the equal-counts fast path that lets Bruck's rotated offsets
    /// be computed arithmetically instead of via a prefix table.
    #[inline]
    pub(crate) fn detect(counts: &[usize]) -> Counts<'_> {
        if counts.windows(2).all(|w| w[0] == w[1]) {
            Counts::Eq(counts.first().copied().unwrap_or(0))
        } else {
            Counts::Var(counts)
        }
    }
}

/// Rotated-block prefix offsets for Bruck's all-gather: `at(t)` is the
/// number of words in rotated blocks `0..t`. Equal blocks need no table —
/// the offset is just `t · len` — which is what makes the equal-counts
/// fast path worthwhile for the split-phase gatherv on uniform grids.
pub(crate) enum RotOff {
    Eq(usize),
    /// Prefix table checked out of the communicator arena.
    Var(Vec<usize>),
}

impl RotOff {
    /// Builds offsets for rank `r` of `p`: rotated block `t` is the block
    /// of rank `(r + t) mod p`.
    pub(crate) fn build(core: &crate::comm::CommCore, counts: Counts<'_>, p: usize) -> RotOff {
        match counts {
            Counts::Eq(len) => RotOff::Eq(len),
            Counts::Var(_) => {
                let r = core.rank;
                let mut table = core.take_idx();
                prefix_sums_into(p, &mut table, |t| counts.get((r + t) % p));
                RotOff::Var(table)
            }
        }
    }

    #[inline]
    pub(crate) fn at(&self, t: usize) -> usize {
        match self {
            RotOff::Eq(len) => len * t,
            RotOff::Var(table) => table[t],
        }
    }

    /// Returns any arena scratch held by the offsets.
    pub(crate) fn release(self, core: &crate::comm::CommCore) {
        if let RotOff::Var(table) = self {
            core.put_idx(table);
        }
    }
}

/// Appends the prefix sums of `count_of(0..n)` to `out` (which must be
/// empty): `out[i] = Σ_{t<i} count_of(t)`, length `n + 1`. One
/// implementation for every offset table the collectives build (rotated
/// Bruck blocks, rank segments, virtual fold chunks).
pub(crate) fn prefix_sums_into(n: usize, out: &mut Vec<usize>, count_of: impl Fn(usize) -> usize) {
    debug_assert!(out.is_empty());
    out.push(0);
    for i in 0..n {
        out.push(out[i] + count_of(i));
    }
}

pub(crate) fn add_into(acc: &mut [f64], other: &[f64]) {
    assert_eq!(acc.len(), other.len(), "reduction operand length mismatch");
    for (a, b) in acc.iter_mut().zip(other) {
        *a += b;
    }
}

/// Copies Bruck's rotated staging back into rank order: output block `j`
/// is rotated block `(j − r) mod p`.
pub(crate) fn unrotate(rot: &[f64], rot_off: &RotOff, p: usize, r: usize, out: &mut [f64]) {
    let mut off = 0;
    for j in 0..p {
        let t = (j + p - r) % p;
        let len = rot_off.at(t + 1) - rot_off.at(t);
        out[off..off + len].copy_from_slice(&rot[rot_off.at(t)..rot_off.at(t) + len]);
        off += len;
    }
}

impl Comm {
    // ------------------------------------------------------------------
    // all-gather
    // ------------------------------------------------------------------

    /// All-gather with equal block sizes: every rank contributes `send`
    /// and receives the concatenation over ranks in rank order.
    pub fn all_gather(&self, send: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; send.len() * self.size()];
        self.all_gather_into(send, &mut out);
        out
    }

    /// Equal-block all-gather into caller-owned `out`
    /// (`send.len() * size()` words, blocks in rank order).
    pub fn all_gather_into(&self, send: &[f64], out: &mut [f64]) {
        let seq = self.next_seq();
        self.timed(Op::AllGather, || {
            self.bruck_all_gatherv_into(send, Counts::Eq(send.len()), out, seq, Op::AllGather)
        });
    }

    /// All-gather with per-rank block sizes (`counts[r]` is rank `r`'s
    /// contribution length; must all be known on every rank, as in
    /// `MPI_Allgatherv`).
    pub fn all_gatherv(&self, send: &[f64], counts: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0; counts.iter().sum()];
        self.all_gatherv_into(send, counts, &mut out);
        out
    }

    /// `v`-variant all-gather into caller-owned `out` (length must equal
    /// the sum of `counts`). Uniform counts (as produced by evenly
    /// divisible grids) take the equal-block fast path and skip the
    /// rotated prefix table.
    pub fn all_gatherv_into(&self, send: &[f64], counts: &[usize], out: &mut [f64]) {
        assert_eq!(
            counts.len(),
            self.size(),
            "counts must have one entry per rank"
        );
        let seq = self.next_seq();
        self.timed(Op::AllGather, || {
            self.bruck_all_gatherv_into(send, Counts::detect(counts), out, seq, Op::AllGather)
        });
    }

    /// Bruck all-gather over point-to-point exchanges. `⌈log₂ p⌉` rounds;
    /// in round `t` a rank ships the `min(2ᵗ, p−2ᵗ)` blocks it holds.
    ///
    /// Blocks are staged in *rotated* order (position `t` holds the block
    /// of rank `(r+t) mod p`): the initial block and every received run
    /// of blocks append contiguously, so each round's send is a prefix of
    /// the staging buffer and the only data movement beyond the wire is
    /// the final unrotation into `out`. The staging buffer and the
    /// rotated prefix table come from the communicator arena.
    pub(crate) fn bruck_all_gatherv_into(
        &self,
        send: &[f64],
        counts: Counts<'_>,
        out: &mut [f64],
        seq: u64,
        op: Op,
    ) {
        let p = self.size();
        let r = self.rank();
        assert_eq!(
            counts.get(r),
            send.len(),
            "my block length disagrees with counts"
        );
        assert_eq!(
            out.len(),
            counts.total(p),
            "all-gather output length mismatch"
        );
        if p == 1 {
            out.copy_from_slice(send);
            return;
        }

        // rot_off.at(t) = words of rotated blocks 0..t; rotated block t is
        // the block of rank (r + t) mod p. Equal counts need no table.
        let rot_off = RotOff::build(&self.core, counts, p);

        let mut rot = self.take_buf();
        rot.reserve(rot_off.at(p));
        rot.extend_from_slice(send);

        let mut have = 1usize;
        let mut round = 0u64;
        while have < p {
            let cnt = have.min(p - have);
            let dst = (r + p - have) % p;
            let src = (r + have) % p;
            let tag = self.tag(Kind::AllGather, (seq << 6) | round);
            // Ship rotated blocks [0, cnt): a contiguous prefix. Receive
            // the blocks of ranks src..src+cnt — rotated positions
            // have..have+cnt — which append contiguously.
            let data = self.exchange(dst, src, tag, &rot[..rot_off.at(cnt)], op);
            assert_eq!(
                data.len(),
                rot_off.at(have + cnt) - rot_off.at(have),
                "all-gather round payload length mismatch"
            );
            rot.extend_from_slice(&data);
            have += cnt;
            round += 1;
        }

        unrotate(&rot, &rot_off, p, r, out);
        self.put_buf(rot);
        rot_off.release(&self.core);
    }

    // ------------------------------------------------------------------
    // reduce-scatter
    // ------------------------------------------------------------------

    /// Reduce-scatter: element-wise sums `data` across ranks and leaves
    /// rank `r` with the segment of length `counts[r]` (segments in rank
    /// order). Recursive-halving algorithm with a fold step for
    /// non-power-of-two `p`.
    pub fn reduce_scatter(&self, data: &[f64], counts: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0; counts[self.rank()]];
        self.reduce_scatter_into(data, counts, &mut out);
        out
    }

    /// Reduce-scatter into caller-owned `out` (length `counts[rank]`).
    pub fn reduce_scatter_into(&self, data: &[f64], counts: &[usize], out: &mut [f64]) {
        assert_eq!(
            counts.len(),
            self.size(),
            "counts must have one entry per rank"
        );
        let seq = self.next_seq();
        self.timed(Op::ReduceScatter, || {
            self.halving_reduce_scatter_into(data, Counts::Var(counts), out, seq, Op::ReduceScatter)
        });
    }

    pub(crate) fn halving_reduce_scatter_into(
        &self,
        data: &[f64],
        counts: Counts<'_>,
        out: &mut [f64],
        seq: u64,
        op: Op,
    ) {
        let p = self.size();
        let r = self.rank();
        assert_eq!(
            data.len(),
            counts.total(p),
            "data length must equal sum of counts"
        );
        assert_eq!(
            out.len(),
            counts.get(r),
            "reduce-scatter output length mismatch"
        );
        if p == 1 {
            out.copy_from_slice(data);
            return;
        }
        let t = |round: u64| self.tag(Kind::ReduceScatter, (seq << 6) | round);

        // off[i] = start of rank i's segment in `data`.
        let mut off = self.take_idx();
        prefix_sums_into(p, &mut off, |i| counts.get(i));

        let pof2 = prev_pow2(p);
        let rem = p - pof2;
        let mut buf = self.take_buf();
        buf.extend_from_slice(data);

        // Fold: the first 2·rem ranks pair up; evens ship their whole
        // vector to their odd neighbour and drop out of the halving.
        let newrank: Option<usize> = if r < 2 * rem {
            if r.is_multiple_of(2) {
                self.send_op(r + 1, t(0), &buf, op);
                None
            } else {
                let other = self.recv_op(r - 1, t(0));
                add_into(&mut buf, &other);
                Some(r / 2)
            }
        } else {
            Some(r - rem)
        };

        // Virtual chunk v aggregates the real chunks of the rank(s) that
        // fold onto surviving rank v: {2v, 2v+1} for v < rem, {v + rem}
        // otherwise. Virtual chunks are contiguous in `buf`; voff is
        // their prefix-sum table.
        let mut voff = self.take_idx();
        prefix_sums_into(pof2, &mut voff, |v| {
            if v < rem {
                counts.get(2 * v) + counts.get(2 * v + 1)
            } else {
                counts.get(v + rem)
            }
        });
        let real_of = |nr: usize| if nr < rem { 2 * nr + 1 } else { nr + rem };

        match newrank {
            Some(nr) => {
                let (mut lo, mut hi) = (0usize, pof2);
                let mut dist = pof2 / 2;
                let mut round = 1u64;
                while dist >= 1 {
                    let mid = lo + dist;
                    let partner = real_of(nr ^ dist);
                    if nr < mid {
                        let recv = self.exchange(
                            partner,
                            partner,
                            t(round),
                            &buf[voff[mid]..voff[hi]],
                            op,
                        );
                        add_into(&mut buf[voff[lo]..voff[mid]], &recv);
                        hi = mid;
                    } else {
                        let recv = self.exchange(
                            partner,
                            partner,
                            t(round),
                            &buf[voff[lo]..voff[mid]],
                            op,
                        );
                        add_into(&mut buf[voff[mid]..voff[hi]], &recv);
                        lo = mid;
                    }
                    dist /= 2;
                    round += 1;
                }
                debug_assert_eq!(lo, nr);
                debug_assert_eq!(hi, nr + 1);
                if nr < rem {
                    // My virtual chunk covers real ranks 2nr (my folded
                    // partner) and 2nr+1 (me). Ship the partner's segment
                    // back.
                    self.send_op(2 * nr, t(40), &buf[off[2 * nr]..off[2 * nr + 1]], op);
                    out.copy_from_slice(&buf[off[2 * nr + 1]..off[2 * nr + 2]]);
                } else {
                    out.copy_from_slice(&buf[off[nr + rem]..off[nr + rem + 1]]);
                }
            }
            None => out.copy_from_slice(&self.recv_op(r + 1, t(40))),
        }
        self.put_buf(buf);
        self.put_idx(voff);
        self.put_idx(off);
    }

    /// Ring reduce-scatter (ablation alternative): `p−1` rounds, same
    /// bandwidth as recursive halving but `Θ(p)` latency.
    ///
    /// Segments travel rightward around the ring accumulating partial
    /// sums; segment `s` starts at rank `s+1` and arrives, complete, at
    /// rank `s` on the final round.
    pub fn reduce_scatter_ring(&self, data: &[f64], counts: &[usize]) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        assert_eq!(counts.len(), p);
        let mut off = Vec::with_capacity(p + 1);
        prefix_sums_into(p, &mut off, |i| counts[i]);
        assert_eq!(data.len(), *off.last().unwrap());
        let seq = self.next_seq();
        self.timed(Op::ReduceScatter, || {
            if p == 1 {
                return data.to_vec();
            }
            let dst = (r + 1) % p;
            let src = (r + p - 1) % p;
            let seg = |s: usize| &data[off[s]..off[s + 1]];
            // Round t: send the running sum of segment (r−t−1), receive
            // segment (r−t−2) from the left and fold in my contribution.
            let mut acc: Vec<f64> = seg((r + p - 1) % p).to_vec();
            for t in 0..p - 1 {
                let tag = self.tag(Kind::ReduceScatter, (seq << 6) | t as u64);
                let incoming = self.exchange(dst, src, tag, &acc, Op::ReduceScatter);
                let recv_seg = (r + 2 * p - t - 2) % p;
                acc = seg(recv_seg).to_vec();
                add_into(&mut acc, &incoming);
            }
            // After p−1 rounds acc is my own segment, fully reduced.
            acc
        })
    }

    // ------------------------------------------------------------------
    // all-reduce
    // ------------------------------------------------------------------

    /// All-reduce (element-wise sum) via Rabenseifner's algorithm:
    /// reduce-scatter over near-equal segments, then all-gather.
    pub fn all_reduce(&self, data: &[f64]) -> Vec<f64> {
        let mut out = data.to_vec();
        self.all_reduce_into(&mut out);
        out
    }

    /// In-place all-reduce: on return every rank's `data` holds the
    /// element-wise sum across ranks. Zero allocations in steady state
    /// (scratch comes from the communicator arena).
    pub fn all_reduce_into(&self, data: &mut [f64]) {
        let p = self.size();
        let seq = self.next_seq();
        self.timed(Op::AllReduce, || {
            if p == 1 {
                return;
            }
            let n = data.len();
            let base = n / p;
            let extra = n % p;
            let mut seg = self.take_buf();
            if extra == 0 {
                // Equal-segment fast path: no counts table at all.
                let counts = Counts::Eq(base);
                seg.resize(base, 0.0);
                self.halving_reduce_scatter_into(data, counts, &mut seg, seq, Op::AllReduce);
                let seq2 = self.next_seq();
                self.bruck_all_gatherv_into(&seg, counts, data, seq2, Op::AllReduce);
            } else {
                let mut cvec = self.take_idx();
                cvec.extend((0..p).map(|r| base + usize::from(r < extra)));
                let counts = Counts::Var(&cvec);
                seg.resize(cvec[self.rank()], 0.0);
                self.halving_reduce_scatter_into(data, counts, &mut seg, seq, Op::AllReduce);
                let seq2 = self.next_seq();
                self.bruck_all_gatherv_into(&seg, counts, data, seq2, Op::AllReduce);
                self.put_idx(cvec);
            }
            self.put_buf(seg);
        });
    }

    /// All-reduce via binomial-tree reduce to rank 0 plus binomial
    /// broadcast (ablation alternative: lower latency for tiny payloads,
    /// double the bandwidth term and a serialized root).
    pub fn all_reduce_tree(&self, data: &[f64]) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        let seq = self.next_seq();
        self.timed(Op::AllReduce, || {
            if p == 1 {
                return data.to_vec();
            }
            let t = |round: u64| self.tag(Kind::AllReduce, (seq << 6) | round);
            let mut buf = data.to_vec();
            // Binomial reduce toward rank 0.
            let mut dist = 1usize;
            while dist < p {
                if r & dist != 0 {
                    self.send_op(
                        r - dist,
                        t(dist.trailing_zeros() as u64),
                        &buf,
                        Op::AllReduce,
                    );
                    break;
                } else if r + dist < p {
                    let other = self.recv_op(r + dist, t(dist.trailing_zeros() as u64));
                    add_into(&mut buf, &other);
                }
                dist <<= 1;
            }
            // Binomial broadcast from rank 0.
            self.binomial_bcast(0, buf, seq, Op::AllReduce)
        })
    }

    /// Convenience: all-reduce of one scalar.
    pub fn all_reduce_scalar(&self, x: f64) -> f64 {
        let mut v = [x];
        self.all_reduce_into(&mut v);
        v[0]
    }

    // ------------------------------------------------------------------
    // broadcast / gather / scatter / barrier
    // ------------------------------------------------------------------

    /// Broadcast `data` from `root` (non-roots pass anything, e.g. `&[]`).
    pub fn broadcast(&self, root: usize, data: &[f64]) -> Vec<f64> {
        let seq = self.next_seq();
        self.timed(Op::Broadcast, || {
            self.binomial_bcast(root, data.to_vec(), seq, Op::Broadcast)
        })
    }

    fn binomial_bcast(&self, root: usize, data: Vec<f64>, seq: u64, op: Op) -> Vec<f64> {
        let p = self.size();
        if p == 1 {
            return data;
        }
        let r = self.rank();
        let vr = (r + p - root) % p;
        let t = |round: u64| self.tag(Kind::Broadcast, (seq << 6) | 32 | round);
        let mut buf = data;
        let mut dist = 1usize;
        let mut round = 0u64;
        while dist < p {
            if vr < dist {
                if vr + dist < p {
                    let dst = (vr + dist + root) % p;
                    self.send_op(dst, t(round), &buf, op);
                }
            } else if vr < 2 * dist {
                let src = (vr - dist + root) % p;
                buf = self.recv_op(src, t(round)).into_vec();
            }
            dist <<= 1;
            round += 1;
        }
        buf
    }

    /// Gathers every rank's `send` at `root`; returns `Some(blocks)` in
    /// rank order at the root, `None` elsewhere. Direct sends (used
    /// outside the iteration loop only).
    pub fn gather(&self, root: usize, send: &[f64]) -> Option<Vec<Vec<f64>>> {
        let p = self.size();
        let r = self.rank();
        let seq = self.next_seq();
        self.timed(Op::Gather, || {
            let tag = self.tag(Kind::Gather, seq << 6);
            if r == root {
                let mut out = Vec::with_capacity(p);
                for src in 0..p {
                    if src == root {
                        out.push(send.to_vec());
                    } else {
                        out.push(self.recv_op(src, tag).into_vec());
                    }
                }
                Some(out)
            } else {
                self.send_op(root, tag, send, Op::Gather);
                None
            }
        })
    }

    /// Scatters `chunks[i]` from `root` to rank `i`; returns this rank's
    /// chunk. Non-roots pass `None`.
    pub fn scatter(&self, root: usize, chunks: Option<&[Vec<f64>]>) -> Vec<f64> {
        let p = self.size();
        let r = self.rank();
        let seq = self.next_seq();
        self.timed(Op::Scatter, || {
            let tag = self.tag(Kind::Scatter, seq << 6);
            if r == root {
                let chunks = chunks.expect("root must supply scatter chunks");
                assert_eq!(chunks.len(), p, "scatter needs one chunk per rank");
                for (dst, chunk) in chunks.iter().enumerate() {
                    if dst != root {
                        self.send_op(dst, tag, chunk, Op::Scatter);
                    }
                }
                chunks[root].clone()
            } else {
                self.recv_op(root, tag).into_vec()
            }
        })
    }

    /// Dissemination barrier: `⌈log₂ p⌉` rounds of empty messages; no
    /// rank exits before every rank has entered.
    pub fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let r = self.rank();
        let seq = self.next_seq();
        self.timed(Op::Barrier, || {
            let mut dist = 1usize;
            let mut round = 0u64;
            while dist < p {
                let tag = self.tag(Kind::Barrier, (seq << 6) | round);
                let dst = (r + dist) % p;
                let src = (r + p - dist) % p;
                let _ = self.exchange(dst, src, tag, &[], Op::Barrier);
                dist <<= 1;
                round += 1;
            }
        });
    }
}
