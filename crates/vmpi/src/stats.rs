//! Per-rank communication accounting.
//!
//! Every send is charged to the collective (or point-to-point operation)
//! that issued it, giving exact *counted* words and messages per rank.
//! These counters are what the Table-2 reproduction checks against the
//! paper's analytic formulas, and the wall-clock timers feed the Figure-3
//! breakdown plots.

use std::time::Duration;

/// The communication operations we account separately.
///
/// `AllGather`, `ReduceScatter`, and `AllReduce` are the three tasks the
/// paper's time-breakdown figures name (`AllG`, `RedSc`, `AllR`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    P2p,
    Barrier,
    Broadcast,
    Gather,
    Scatter,
    AllGather,
    ReduceScatter,
    AllReduce,
}

impl Op {
    pub const ALL: [Op; 8] = [
        Op::P2p,
        Op::Barrier,
        Op::Broadcast,
        Op::Gather,
        Op::Scatter,
        Op::AllGather,
        Op::ReduceScatter,
        Op::AllReduce,
    ];

    #[inline]
    pub(crate) fn idx(self) -> usize {
        match self {
            Op::P2p => 0,
            Op::Barrier => 1,
            Op::Broadcast => 2,
            Op::Gather => 3,
            Op::Scatter => 4,
            Op::AllGather => 5,
            Op::ReduceScatter => 6,
            Op::AllReduce => 7,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Op::P2p => "p2p",
            Op::Barrier => "barrier",
            Op::Broadcast => "bcast",
            Op::Gather => "gather",
            Op::Scatter => "scatter",
            Op::AllGather => "all-gather",
            Op::ReduceScatter => "reduce-scatter",
            Op::AllReduce => "all-reduce",
        }
    }
}

/// Counters for one operation class.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpStats {
    /// Messages this rank sent.
    pub messages: u64,
    /// `f64` words this rank sent.
    pub words: u64,
    /// Wall-clock time this rank spent inside the operation (including
    /// blocking on peers). For split-phase ops this is post time plus
    /// wait time — the overlap window in between is *not* charged.
    pub time: Duration,
    /// Split-phase (post/wait) invocations of this operation.
    pub posts: u64,
    /// Wall-clock between a post returning and its wait starting: the
    /// window in which compute actually ran while the op was in flight.
    pub overlap: Duration,
    /// Wall-clock from post begin to wait end: total time the op was in
    /// flight (`time + overlap` for split-phase ops).
    pub inflight: Duration,
}

/// All counters for one rank.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    per_op: [OpStats; 8],
}

impl CommStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&mut self, op: Op, words: usize) {
        let s = &mut self.per_op[op.idx()];
        s.messages += 1;
        s.words += words as u64;
    }

    pub(crate) fn record_time(&mut self, op: Op, t: Duration) {
        self.per_op[op.idx()].time += t;
    }

    /// Charges one split-phase post.
    pub(crate) fn record_post(&mut self, op: Op) {
        self.per_op[op.idx()].posts += 1;
    }

    /// Charges a completed split-phase wait: `overlap` is the post→wait
    /// window, `inflight` the full post-begin→wait-end span.
    pub(crate) fn record_split_wait(&mut self, op: Op, overlap: Duration, inflight: Duration) {
        let s = &mut self.per_op[op.idx()];
        s.overlap += overlap;
        s.inflight += inflight;
    }

    /// Counters for one operation class.
    pub fn op(&self, op: Op) -> OpStats {
        self.per_op[op.idx()]
    }

    /// Total messages sent by this rank.
    pub fn total_messages(&self) -> u64 {
        self.per_op.iter().map(|s| s.messages).sum()
    }

    /// Total words sent by this rank.
    pub fn total_words(&self) -> u64 {
        self.per_op.iter().map(|s| s.words).sum()
    }

    /// Total time in communication.
    pub fn total_time(&self) -> Duration {
        self.per_op.iter().map(|s| s.time).sum()
    }

    /// Accumulates `other` into `self` (for summing across ranks or
    /// iterations).
    pub fn merge(&mut self, other: &CommStats) {
        for (a, b) in self.per_op.iter_mut().zip(&other.per_op) {
            a.messages += b.messages;
            a.words += b.words;
            a.time += b.time;
            a.posts += b.posts;
            a.overlap += b.overlap;
            a.inflight += b.inflight;
        }
    }

    /// Component-wise maximum with `other` (critical-path aggregation
    /// across ranks).
    pub fn max_merge(&mut self, other: &CommStats) {
        for (a, b) in self.per_op.iter_mut().zip(&other.per_op) {
            a.messages = a.messages.max(b.messages);
            a.words = a.words.max(b.words);
            a.time = a.time.max(b.time);
            a.posts = a.posts.max(b.posts);
            a.overlap = a.overlap.max(b.overlap);
            a.inflight = a.inflight.max(b.inflight);
        }
    }

    /// Difference `self − other` of the monotone counters (time included).
    /// Used to isolate one iteration's communication from cumulative
    /// counters.
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        let mut out = CommStats::new();
        for (i, o) in out.per_op.iter_mut().enumerate() {
            o.messages = self.per_op[i].messages - earlier.per_op[i].messages;
            o.words = self.per_op[i].words - earlier.per_op[i].words;
            o.time = self.per_op[i].time.saturating_sub(earlier.per_op[i].time);
            o.posts = self.per_op[i].posts - earlier.per_op[i].posts;
            o.overlap = self.per_op[i]
                .overlap
                .saturating_sub(earlier.per_op[i].overlap);
            o.inflight = self.per_op[i]
                .inflight
                .saturating_sub(earlier.per_op[i].inflight);
        }
        out
    }

    /// Total wall-clock of compute hidden behind in-flight split-phase
    /// collectives (sum of post→wait windows across ops).
    pub fn total_overlap(&self) -> Duration {
        self.per_op.iter().map(|s| s.overlap).sum()
    }

    /// Total split-phase posts across ops.
    pub fn total_posts(&self) -> u64 {
        self.per_op.iter().map(|s| s.posts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = CommStats::new();
        s.record_send(Op::AllGather, 100);
        s.record_send(Op::AllGather, 50);
        s.record_send(Op::P2p, 7);
        assert_eq!(s.op(Op::AllGather).messages, 2);
        assert_eq!(s.op(Op::AllGather).words, 150);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_words(), 157);
    }

    #[test]
    fn merge_and_delta_are_inverse() {
        let mut a = CommStats::new();
        a.record_send(Op::AllReduce, 10);
        let snapshot = a.clone();
        a.record_send(Op::AllReduce, 5);
        a.record_send(Op::Barrier, 0);
        let d = a.delta_since(&snapshot);
        assert_eq!(d.op(Op::AllReduce).messages, 1);
        assert_eq!(d.op(Op::AllReduce).words, 5);
        assert_eq!(d.op(Op::Barrier).messages, 1);
        let mut back = snapshot.clone();
        back.merge(&d);
        assert_eq!(back, a);
    }

    #[test]
    fn op_names_are_distinct() {
        let mut names: Vec<_> = Op::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
