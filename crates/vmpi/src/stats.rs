//! Per-rank communication accounting.
//!
//! Every send is charged to the collective (or point-to-point operation)
//! that issued it, giving exact *counted* words and messages per rank.
//! These counters are what the Table-2 reproduction checks against the
//! paper's analytic formulas, and the wall-clock timers feed the Figure-3
//! breakdown plots.

use std::time::Duration;

/// The communication operations we account separately.
///
/// `AllGather`, `ReduceScatter`, and `AllReduce` are the three tasks the
/// paper's time-breakdown figures name (`AllG`, `RedSc`, `AllR`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    P2p,
    Barrier,
    Broadcast,
    Gather,
    Scatter,
    AllGather,
    ReduceScatter,
    AllReduce,
}

impl Op {
    pub const ALL: [Op; 8] = [
        Op::P2p,
        Op::Barrier,
        Op::Broadcast,
        Op::Gather,
        Op::Scatter,
        Op::AllGather,
        Op::ReduceScatter,
        Op::AllReduce,
    ];

    #[inline]
    pub(crate) fn idx(self) -> usize {
        match self {
            Op::P2p => 0,
            Op::Barrier => 1,
            Op::Broadcast => 2,
            Op::Gather => 3,
            Op::Scatter => 4,
            Op::AllGather => 5,
            Op::ReduceScatter => 6,
            Op::AllReduce => 7,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Op::P2p => "p2p",
            Op::Barrier => "barrier",
            Op::Broadcast => "bcast",
            Op::Gather => "gather",
            Op::Scatter => "scatter",
            Op::AllGather => "all-gather",
            Op::ReduceScatter => "reduce-scatter",
            Op::AllReduce => "all-reduce",
        }
    }
}

/// Counters for one operation class.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpStats {
    /// Messages this rank sent.
    pub messages: u64,
    /// `f64` words this rank sent.
    pub words: u64,
    /// Wall-clock time this rank spent inside the operation (including
    /// blocking on peers).
    pub time: Duration,
}

/// All counters for one rank.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    per_op: [OpStats; 8],
}

impl CommStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&mut self, op: Op, words: usize) {
        let s = &mut self.per_op[op.idx()];
        s.messages += 1;
        s.words += words as u64;
    }

    pub(crate) fn record_time(&mut self, op: Op, t: Duration) {
        self.per_op[op.idx()].time += t;
    }

    /// Counters for one operation class.
    pub fn op(&self, op: Op) -> OpStats {
        self.per_op[op.idx()]
    }

    /// Total messages sent by this rank.
    pub fn total_messages(&self) -> u64 {
        self.per_op.iter().map(|s| s.messages).sum()
    }

    /// Total words sent by this rank.
    pub fn total_words(&self) -> u64 {
        self.per_op.iter().map(|s| s.words).sum()
    }

    /// Total time in communication.
    pub fn total_time(&self) -> Duration {
        self.per_op.iter().map(|s| s.time).sum()
    }

    /// Accumulates `other` into `self` (for summing across ranks or
    /// iterations).
    pub fn merge(&mut self, other: &CommStats) {
        for (a, b) in self.per_op.iter_mut().zip(&other.per_op) {
            a.messages += b.messages;
            a.words += b.words;
            a.time += b.time;
        }
    }

    /// Component-wise maximum with `other` (critical-path aggregation
    /// across ranks).
    pub fn max_merge(&mut self, other: &CommStats) {
        for (a, b) in self.per_op.iter_mut().zip(&other.per_op) {
            a.messages = a.messages.max(b.messages);
            a.words = a.words.max(b.words);
            a.time = a.time.max(b.time);
        }
    }

    /// Difference `self − other` of the monotone counters (time included).
    /// Used to isolate one iteration's communication from cumulative
    /// counters.
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        let mut out = CommStats::new();
        for (i, o) in out.per_op.iter_mut().enumerate() {
            o.messages = self.per_op[i].messages - earlier.per_op[i].messages;
            o.words = self.per_op[i].words - earlier.per_op[i].words;
            o.time = self.per_op[i].time.saturating_sub(earlier.per_op[i].time);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = CommStats::new();
        s.record_send(Op::AllGather, 100);
        s.record_send(Op::AllGather, 50);
        s.record_send(Op::P2p, 7);
        assert_eq!(s.op(Op::AllGather).messages, 2);
        assert_eq!(s.op(Op::AllGather).words, 150);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_words(), 157);
    }

    #[test]
    fn merge_and_delta_are_inverse() {
        let mut a = CommStats::new();
        a.record_send(Op::AllReduce, 10);
        let snapshot = a.clone();
        a.record_send(Op::AllReduce, 5);
        a.record_send(Op::Barrier, 0);
        let d = a.delta_since(&snapshot);
        assert_eq!(d.op(Op::AllReduce).messages, 1);
        assert_eq!(d.op(Op::AllReduce).words, 5);
        assert_eq!(d.op(Op::Barrier).messages, 1);
        let mut back = snapshot.clone();
        back.merge(&d);
        assert_eq!(back, a);
    }

    #[test]
    fn op_names_are_distinct() {
        let mut names: Vec<_> = Op::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
