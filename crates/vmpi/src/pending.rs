//! Split-phase (nonblocking) collectives: `post_*` / [`PendingOp::wait`].
//!
//! A posted collective runs the *same* algorithm as its synchronous
//! counterpart — Bruck all-gather, recursive-halving reduce-scatter,
//! Rabenseifner all-reduce — with identical tags, message counts, and
//! word counts, so the exact communication-cost accounting is unchanged.
//! What changes is the schedule: `post_*` stages the caller's input into
//! arena buffers, issues every send that does not depend on an unreceived
//! message (at minimum the whole first round), drains whatever replies
//! already arrived, and returns a [`PendingOp`]. The caller then computes
//! while peers' messages accumulate in the transport; `wait(out)` drives
//! the remaining rounds to completion and unstages the result into the
//! caller-owned output.
//!
//! Progress happens only inside `post_*` and `wait` — there is no
//! progress thread. That is enough to overlap, because every send is
//! buffered (channels are unbounded): once all ranks have posted, each
//! round's traffic for the in-flight op is already queued when `wait`
//! begins, so waits mostly collapse to local copies and additions.
//!
//! ## Ownership and deadlock rules
//!
//! * The machine owns all staging (checked out of the communicator
//!   arena), so the caller's buffers are free for compute the moment
//!   `post_*` returns, and the next collective simply checks out
//!   different arena buffers — double-buffering by pooling.
//! * Every rank must post and wait its collectives in the same program
//!   order. Posts never block, so every rank always reaches its next
//!   `wait`, and waits complete in order.
//! * A `PendingOp` must be waited before it is dropped (debug-asserted):
//!   a leaked post would leave peers blocked forever with no diagnostic.

use crate::collectives::{add_into, prefix_sums_into, prev_pow2, unrotate, Counts, RotOff};
use crate::comm::{Comm, CommCore, Kind};
use crate::stats::Op;
use std::time::Instant;

/// `Counts` that a pending machine can own across the post→wait window
/// (the borrowed form would tie the op to the caller's slice).
enum OwnedCounts {
    Eq(usize),
    /// Table checked out of the communicator arena.
    Var(Vec<usize>),
}

impl OwnedCounts {
    fn as_counts(&self) -> Counts<'_> {
        match self {
            OwnedCounts::Eq(len) => Counts::Eq(*len),
            OwnedCounts::Var(v) => Counts::Var(v),
        }
    }

    fn get(&self, i: usize) -> usize {
        self.as_counts().get(i)
    }

    fn release(self, core: &CommCore) {
        if let OwnedCounts::Var(v) = self {
            core.put_idx(v);
        }
    }
}

/// Receive helper. `budget` is the number of *parking* (blocking)
/// receives the caller still allows: an arrived message is always taken
/// for free; a missing one either consumes one budget unit and blocks,
/// or returns `None` so the machine can suspend. Driving with budget 0
/// is pure opportunistic progress; [`PendingOp::wait_with`] drives with
/// budget 1 per round-trip so it can advance *sibling* ops between
/// parks.
fn fetch(core: &CommCore, src: usize, tag: u64, budget: &mut usize) -> Option<Box<[f64]>> {
    if let Some(msg) = core.try_recv_op(src, tag) {
        return Some(msg);
    }
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    Some(core.recv_op(src, tag))
}

// ----------------------------------------------------------------------
// Bruck all-gather machine
// ----------------------------------------------------------------------

/// In-flight Bruck all-gather: identical rounds to
/// [`Comm::all_gatherv_into`], suspended between messages.
struct AgMachine {
    /// Rotated staging (arena): initial block + every received run.
    rot: Vec<f64>,
    rot_off: RotOff,
    seq: u64,
    p: usize,
    r: usize,
    have: usize,
    round: u64,
    /// Whether the current round's send has been issued (sends are issued
    /// exactly once even if the matching receive is retried).
    sent: bool,
}

impl AgMachine {
    fn new(core: &CommCore, send: &[f64], counts: Counts<'_>, seq: u64) -> AgMachine {
        let p = core.size();
        let r = core.rank;
        assert_eq!(
            counts.get(r),
            send.len(),
            "my block length disagrees with counts"
        );
        let rot_off = RotOff::build(core, counts, p);
        let mut rot = core.take_buf();
        rot.reserve(rot_off.at(p));
        rot.extend_from_slice(send);
        AgMachine {
            rot,
            rot_off,
            seq,
            p,
            r,
            have: 1,
            round: 0,
            sent: false,
        }
    }

    /// Drives rounds until complete (`true`) or until a message has not
    /// arrived and the blocking `budget` is spent (`false`).
    fn step(&mut self, core: &CommCore, op: Op, budget: &mut usize) -> bool {
        while self.have < self.p {
            let cnt = self.have.min(self.p - self.have);
            let dst = (self.r + self.p - self.have) % self.p;
            let src = (self.r + self.have) % self.p;
            let tag = core.tag(Kind::AllGather, (self.seq << 6) | self.round);
            if !self.sent {
                core.send_op(dst, tag, &self.rot[..self.rot_off.at(cnt)], op);
                self.sent = true;
            }
            let Some(data) = fetch(core, src, tag, budget) else {
                return false;
            };
            assert_eq!(
                data.len(),
                self.rot_off.at(self.have + cnt) - self.rot_off.at(self.have),
                "all-gather round payload length mismatch"
            );
            self.rot.extend_from_slice(&data);
            self.have += cnt;
            self.round += 1;
            self.sent = false;
        }
        true
    }

    fn finish_into(self, core: &CommCore, out: &mut [f64]) {
        debug_assert_eq!(self.have, self.p, "all-gather finished before completion");
        assert_eq!(
            out.len(),
            self.rot_off.at(self.p),
            "all-gather output length mismatch"
        );
        unrotate(&self.rot, &self.rot_off, self.p, self.r, out);
        core.put_buf(self.rot);
        self.rot_off.release(core);
    }

    fn abandon(self, core: &CommCore) {
        core.put_buf(self.rot);
        self.rot_off.release(core);
    }
}

// ----------------------------------------------------------------------
// Recursive-halving reduce-scatter machine
// ----------------------------------------------------------------------

#[derive(Clone, Copy)]
enum RsPhase {
    /// Even rank in the fold region: ship the whole vector, drop out.
    FoldSend,
    /// Odd rank in the fold region: absorb the neighbour's vector.
    FoldRecv { nr: usize },
    /// Surviving rank inside the halving rounds.
    Halve {
        nr: usize,
        lo: usize,
        hi: usize,
        dist: usize,
        round: u64,
        sent: bool,
    },
    /// Folded-out rank waiting for its finished segment.
    AwaitFinal,
    /// Result is `buf[start..start + len]`.
    Done { start: usize, len: usize },
}

/// In-flight recursive-halving reduce-scatter: identical message flow to
/// [`Comm::reduce_scatter_into`], suspended between messages.
struct RsMachine {
    /// Accumulator (arena): a staged copy of the caller's input.
    buf: Vec<f64>,
    /// Real segment offsets, `off[i]` = start of rank `i`'s segment.
    off: Vec<usize>,
    /// Virtual (folded) chunk offsets over the surviving ranks.
    voff: Vec<usize>,
    seq: u64,
    r: usize,
    pof2: usize,
    rem: usize,
    out_len: usize,
    phase: RsPhase,
}

impl RsMachine {
    fn new(core: &CommCore, data: &[f64], counts: Counts<'_>, seq: u64) -> RsMachine {
        let p = core.size();
        let r = core.rank;
        assert_eq!(
            data.len(),
            counts.total(p),
            "data length must equal sum of counts"
        );
        let out_len = counts.get(r);
        let mut buf = core.take_buf();
        buf.extend_from_slice(data);
        if p == 1 {
            return RsMachine {
                buf,
                off: core.take_idx(),
                voff: core.take_idx(),
                seq,
                r,
                pof2: 1,
                rem: 0,
                out_len,
                phase: RsPhase::Done {
                    start: 0,
                    len: out_len,
                },
            };
        }
        let mut off = core.take_idx();
        prefix_sums_into(p, &mut off, |i| counts.get(i));
        let pof2 = prev_pow2(p);
        let rem = p - pof2;
        let mut voff = core.take_idx();
        prefix_sums_into(pof2, &mut voff, |v| {
            if v < rem {
                counts.get(2 * v) + counts.get(2 * v + 1)
            } else {
                counts.get(v + rem)
            }
        });
        let phase = if r < 2 * rem {
            if r.is_multiple_of(2) {
                RsPhase::FoldSend
            } else {
                RsPhase::FoldRecv { nr: r / 2 }
            }
        } else {
            RsPhase::Halve {
                nr: r - rem,
                lo: 0,
                hi: pof2,
                dist: pof2 / 2,
                round: 1,
                sent: false,
            }
        };
        RsMachine {
            buf,
            off,
            voff,
            seq,
            r,
            pof2,
            rem,
            out_len,
            phase,
        }
    }

    fn tag(&self, core: &CommCore, round: u64) -> u64 {
        core.tag(Kind::ReduceScatter, (self.seq << 6) | round)
    }

    fn real_of(&self, nr: usize) -> usize {
        if nr < self.rem {
            2 * nr + 1
        } else {
            nr + self.rem
        }
    }

    fn step(&mut self, core: &CommCore, op: Op, budget: &mut usize) -> bool {
        loop {
            match self.phase {
                RsPhase::FoldSend => {
                    let tag = self.tag(core, 0);
                    core.send_op(self.r + 1, tag, &self.buf, op);
                    self.phase = RsPhase::AwaitFinal;
                }
                RsPhase::FoldRecv { nr } => {
                    let tag = self.tag(core, 0);
                    let Some(other) = fetch(core, self.r - 1, tag, budget) else {
                        return false;
                    };
                    add_into(&mut self.buf, &other);
                    self.phase = RsPhase::Halve {
                        nr,
                        lo: 0,
                        hi: self.pof2,
                        dist: self.pof2 / 2,
                        round: 1,
                        sent: false,
                    };
                }
                RsPhase::Halve {
                    nr,
                    lo,
                    hi,
                    dist,
                    round,
                    sent,
                } => {
                    if dist < 1 {
                        debug_assert_eq!(lo, nr);
                        debug_assert_eq!(hi, nr + 1);
                        self.finalize(core, op, nr);
                        continue;
                    }
                    let mid = lo + dist;
                    let partner = self.real_of(nr ^ dist);
                    let tag = self.tag(core, round);
                    let (s0, s1, k0, k1) = if nr < mid {
                        (self.voff[mid], self.voff[hi], self.voff[lo], self.voff[mid])
                    } else {
                        (self.voff[lo], self.voff[mid], self.voff[mid], self.voff[hi])
                    };
                    if !sent {
                        core.send_op(partner, tag, &self.buf[s0..s1], op);
                        self.phase = RsPhase::Halve {
                            nr,
                            lo,
                            hi,
                            dist,
                            round,
                            sent: true,
                        };
                    }
                    let Some(recv) = fetch(core, partner, tag, budget) else {
                        return false;
                    };
                    add_into(&mut self.buf[k0..k1], &recv);
                    let (lo, hi) = if nr < mid { (lo, mid) } else { (mid, hi) };
                    self.phase = RsPhase::Halve {
                        nr,
                        lo,
                        hi,
                        dist: dist / 2,
                        round: round + 1,
                        sent: false,
                    };
                }
                RsPhase::AwaitFinal => {
                    let tag = self.tag(core, 40);
                    let Some(data) = fetch(core, self.r + 1, tag, budget) else {
                        return false;
                    };
                    assert_eq!(data.len(), self.out_len);
                    self.buf[..data.len()].copy_from_slice(&data);
                    self.phase = RsPhase::Done {
                        start: 0,
                        len: data.len(),
                    };
                }
                RsPhase::Done { .. } => return true,
            }
        }
    }

    /// Halving finished: ship the folded partner's segment back (if any)
    /// and record where this rank's reduced segment lives.
    fn finalize(&mut self, core: &CommCore, op: Op, nr: usize) {
        let start = if nr < self.rem {
            let tag = self.tag(core, 40);
            let seg = &self.buf[self.off[2 * nr]..self.off[2 * nr + 1]];
            core.send_op(2 * nr, tag, seg, op);
            self.off[2 * nr + 1]
        } else {
            self.off[nr + self.rem]
        };
        self.phase = RsPhase::Done {
            start,
            len: self.out_len,
        };
    }

    fn finish_into(self, core: &CommCore, out: &mut [f64]) {
        let RsPhase::Done { start, len } = self.phase else {
            unreachable!("reduce-scatter finished before completion")
        };
        assert_eq!(out.len(), len, "reduce-scatter output length mismatch");
        out.copy_from_slice(&self.buf[start..start + len]);
        core.put_buf(self.buf);
        core.put_idx(self.off);
        core.put_idx(self.voff);
    }

    fn abandon(self, core: &CommCore) {
        core.put_buf(self.buf);
        core.put_idx(self.off);
        core.put_idx(self.voff);
    }
}

// ----------------------------------------------------------------------
// Rabenseifner all-reduce machine
// ----------------------------------------------------------------------

enum ArStage {
    /// `p == 1`: the staged input is already the answer.
    Identity(Vec<f64>),
    Rs(RsMachine),
    Ag(AgMachine),
}

/// In-flight Rabenseifner all-reduce: the reduce-scatter machine chained
/// into the all-gather machine, matching [`Comm::all_reduce_into`].
struct ArMachine {
    counts: OwnedCounts,
    stage: ArStage,
    seq_ag: u64,
    n: usize,
}

impl ArMachine {
    fn new(core: &CommCore, data: &[f64], seq_rs: u64, seq_ag: u64) -> ArMachine {
        let p = core.size();
        let n = data.len();
        if p == 1 {
            let mut buf = core.take_buf();
            buf.extend_from_slice(data);
            return ArMachine {
                counts: OwnedCounts::Eq(n),
                stage: ArStage::Identity(buf),
                seq_ag,
                n,
            };
        }
        let base = n / p;
        let extra = n % p;
        let counts = if extra == 0 {
            OwnedCounts::Eq(base)
        } else {
            let mut cvec = core.take_idx();
            cvec.extend((0..p).map(|r| base + usize::from(r < extra)));
            OwnedCounts::Var(cvec)
        };
        let rs = RsMachine::new(core, data, counts.as_counts(), seq_rs);
        ArMachine {
            counts,
            stage: ArStage::Rs(rs),
            seq_ag,
            n,
        }
    }

    fn step(&mut self, core: &CommCore, op: Op, budget: &mut usize) -> bool {
        if let ArStage::Rs(rs) = &mut self.stage {
            if !rs.step(core, op, budget) {
                return false;
            }
            // Reduce-scatter complete: unstage my reduced segment and
            // start the all-gather over the same segment layout.
            let done = std::mem::replace(&mut self.stage, ArStage::Identity(Vec::new()));
            let ArStage::Rs(rs) = done else {
                unreachable!()
            };
            let mut seg = core.take_buf();
            seg.resize(self.counts.get(core.rank), 0.0);
            rs.finish_into(core, &mut seg);
            let ag = AgMachine::new(core, &seg, self.counts.as_counts(), self.seq_ag);
            core.put_buf(seg);
            self.stage = ArStage::Ag(ag);
        }
        match &mut self.stage {
            ArStage::Identity(_) => true,
            ArStage::Ag(ag) => ag.step(core, op, budget),
            ArStage::Rs(_) => unreachable!(),
        }
    }

    fn finish_into(self, core: &CommCore, out: &mut [f64]) {
        assert_eq!(out.len(), self.n, "all-reduce output length mismatch");
        match self.stage {
            ArStage::Identity(buf) => {
                out.copy_from_slice(&buf);
                core.put_buf(buf);
            }
            ArStage::Ag(ag) => ag.finish_into(core, out),
            ArStage::Rs(_) => unreachable!("all-reduce finished before completion"),
        }
        self.counts.release(core);
    }

    fn abandon(self, core: &CommCore) {
        match self.stage {
            ArStage::Identity(buf) => core.put_buf(buf),
            ArStage::Ag(ag) => ag.abandon(core),
            ArStage::Rs(_) => unreachable!("all-reduce abandoned before completion"),
        }
        self.counts.release(core);
    }
}

// ----------------------------------------------------------------------
// The public handle
// ----------------------------------------------------------------------

enum Machine {
    Gather(AgMachine),
    Scatter(RsMachine),
    Reduce(ArMachine),
}

impl Machine {
    fn step(&mut self, core: &CommCore, op: Op, budget: &mut usize) -> bool {
        match self {
            Machine::Gather(m) => m.step(core, op, budget),
            Machine::Scatter(m) => m.step(core, op, budget),
            Machine::Reduce(m) => m.step(core, op, budget),
        }
    }

    fn finish_into(self, core: &CommCore, out: &mut [f64]) {
        match self {
            Machine::Gather(m) => m.finish_into(core, out),
            Machine::Scatter(m) => m.finish_into(core, out),
            Machine::Reduce(m) => m.finish_into(core, out),
        }
    }

    /// Completes the collective (blocking) and releases staging without
    /// producing output — the [`PendingOp::discard`] path.
    fn run_out(mut self, core: &CommCore, op: Op) {
        let mut unlimited = usize::MAX;
        let done = self.step(core, op, &mut unlimited);
        debug_assert!(done);
        match self {
            Machine::Gather(m) => m.abandon(core),
            Machine::Scatter(m) => m.abandon(core),
            Machine::Reduce(m) => m.abandon(core),
        }
    }
}

/// Handle to a posted collective. Obtain from [`Comm::post_all_gatherv`],
/// [`Comm::post_reduce_scatter`], or [`Comm::post_all_reduce`]; complete
/// with [`wait`](PendingOp::wait). Dropping an unwaited handle is a bug
/// (debug-asserted): peers block forever on the missing rounds.
pub struct PendingOp {
    core: CommCore,
    op: Op,
    machine: Option<Machine>,
    post_begin: Instant,
    post_end: Instant,
}

impl PendingOp {
    /// Blocks until the collective completes and writes the result into
    /// caller-owned `out` (same length contract as the synchronous
    /// `_into` variant). Records the wall-clock overlap window — the time
    /// between post returning and wait starting — in the comm stats.
    pub fn wait(self, out: &mut [f64]) {
        self.wait_with(out, || {});
    }

    /// [`wait`](PendingOp::wait), but with a progress hook: before every
    /// *parking* receive, `progress_siblings` runs so the caller can
    /// [`try_progress`](PendingOp::try_progress) its other in-flight ops.
    /// One thread activation then drains every arrived round across every
    /// pending collective instead of one round of one collective — the
    /// difference between `O(p · total rounds)` and `O(p · critical
    /// depth)` context switches when ranks are oversubscribed onto few
    /// cores. The hook must not wait (or drop) any posted op.
    pub fn wait_with(mut self, out: &mut [f64], mut progress_siblings: impl FnMut()) {
        let wait_begin = Instant::now();
        let mut machine = self
            .machine
            .take()
            .expect("PendingOp::wait on an already-waited op");
        loop {
            // Free pass first: batch everything that already arrived.
            if machine.step(&self.core, self.op, &mut 0) {
                break;
            }
            progress_siblings();
            // One parking receive, then drain opportunistically again.
            if machine.step(&self.core, self.op, &mut 1) {
                break;
            }
        }
        machine.finish_into(&self.core, out);
        self.core.ep.pending_dec();
        let wait_end = Instant::now();
        let mut stats = self.core.stats.borrow_mut();
        stats.record_time(self.op, wait_end - wait_begin);
        stats.record_split_wait(
            self.op,
            wait_begin.saturating_duration_since(self.post_end),
            wait_end.saturating_duration_since(self.post_begin),
        );
    }

    /// Drives the machine over every message that has already arrived,
    /// never blocking. Returns `true` once the collective is complete
    /// (its `wait` will then finish without parking). Safe to call any
    /// number of times, including after completion.
    pub fn try_progress(&mut self) -> bool {
        match &mut self.machine {
            Some(machine) => machine.step(&self.core, self.op, &mut 0),
            None => true,
        }
    }

    /// Drives the collective to completion and throws the result away —
    /// the cancellation path for a posted op whose consumer will never
    /// run (e.g. a prefetched collective on an engine dropped mid-run).
    /// Peers' rounds still depend on this rank's sends, so the machine
    /// must finish; only the local unstage is skipped.
    pub fn discard(mut self) {
        let wait_begin = Instant::now();
        let machine = self
            .machine
            .take()
            .expect("PendingOp::discard on an already-waited op");
        machine.run_out(&self.core, self.op);
        self.core.ep.pending_dec();
        let wait_end = Instant::now();
        let mut stats = self.core.stats.borrow_mut();
        stats.record_time(self.op, wait_end - wait_begin);
        stats.record_split_wait(
            self.op,
            wait_begin.saturating_duration_since(self.post_end),
            wait_end.saturating_duration_since(self.post_begin),
        );
    }
}

impl Drop for PendingOp {
    fn drop(&mut self) {
        if self.machine.is_some() {
            // Keep the counter honest even when the assertion is compiled
            // out; the run is still doomed to deadlock on peers.
            self.core.ep.pending_dec();
            if !std::thread::panicking() {
                debug_assert!(
                    false,
                    "PendingOp dropped without wait(): posted collectives must be \
                     waited (a leaked post deadlocks peers silently)"
                );
            }
        }
    }
}

impl Comm {
    /// Posts a `v`-variant all-gather (same contract as
    /// [`Comm::all_gatherv_into`]); `wait(out)` needs `out.len()` equal to
    /// the sum of `counts`. `send` is staged and free for reuse on return.
    pub fn post_all_gatherv(&self, send: &[f64], counts: &[usize]) -> PendingOp {
        assert_eq!(
            counts.len(),
            self.size(),
            "counts must have one entry per rank"
        );
        let post_begin = Instant::now();
        let seq = self.next_seq();
        let core = self.core.clone();
        core.ep.pending_inc();
        let machine = Machine::Gather(AgMachine::new(&core, send, Counts::detect(counts), seq));
        finish_post(core, Op::AllGather, machine, post_begin)
    }

    /// Posts a reduce-scatter (same contract as
    /// [`Comm::reduce_scatter_into`]); `wait(out)` needs `out.len()` equal
    /// to `counts[rank]`. `data` is staged and free for reuse on return.
    pub fn post_reduce_scatter(&self, data: &[f64], counts: &[usize]) -> PendingOp {
        assert_eq!(
            counts.len(),
            self.size(),
            "counts must have one entry per rank"
        );
        let post_begin = Instant::now();
        let seq = self.next_seq();
        let core = self.core.clone();
        core.ep.pending_inc();
        let machine = Machine::Scatter(RsMachine::new(&core, data, Counts::detect(counts), seq));
        finish_post(core, Op::ReduceScatter, machine, post_begin)
    }

    /// Posts an all-reduce (element-wise sum, same result as
    /// [`Comm::all_reduce_into`]); `wait(out)` needs `out.len()` equal to
    /// `data.len()`. `data` is staged and free for reuse on return.
    pub fn post_all_reduce(&self, data: &[f64]) -> PendingOp {
        let post_begin = Instant::now();
        let seq = self.next_seq();
        // Mirror the synchronous path's sequence consumption: p == 1 uses
        // one number, the reduce-scatter + all-gather pipeline two.
        let seq_ag = if self.size() > 1 {
            self.next_seq()
        } else {
            seq
        };
        let core = self.core.clone();
        core.ep.pending_inc();
        let machine = Machine::Reduce(ArMachine::new(&core, data, seq, seq_ag));
        finish_post(core, Op::AllReduce, machine, post_begin)
    }
}

fn finish_post(core: CommCore, op: Op, mut machine: Machine, post_begin: Instant) -> PendingOp {
    // Eager progress: issue the first round's sends (and any further
    // rounds whose inputs already arrived) before returning to compute.
    machine.step(&core, op, &mut 0);
    let post_end = Instant::now();
    {
        let mut stats = core.stats.borrow_mut();
        stats.record_post(op);
        stats.record_time(op, post_end.saturating_duration_since(post_begin));
    }
    PendingOp {
        core,
        op,
        machine: Some(machine),
        post_begin,
        post_end,
    }
}
