//! Launching a virtual-MPI job: one OS thread per rank.

use crate::comm::Comm;
use crate::stats::CommStats;
use crate::transport::Endpoints;

/// The result of one rank's execution.
#[derive(Debug)]
pub struct RankResult<R> {
    pub rank: usize,
    pub result: R,
    /// This rank's cumulative communication counters.
    pub stats: CommStats,
}

/// Runs `f` on `p` ranks, each on its own OS thread, and returns the
/// per-rank results in rank order.
///
/// Semantics mirror `mpiexec -n p`: every rank executes the same program;
/// a panic on any rank tears the whole job down (peers blocked on a
/// receive from the dead rank observe the disconnect and panic in turn,
/// and the first panic is propagated to the caller).
pub fn run<R, F>(p: usize, f: F) -> Vec<RankResult<R>>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let endpoints = Endpoints::mesh(p);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                let rank = ep.rank;
                std::thread::Builder::new()
                    .name(format!("vmpi-rank-{rank}"))
                    .spawn_scoped(scope, move || {
                        let comm = Comm::world(ep);
                        let result = f(&comm);
                        let stats = comm.stats();
                        RankResult {
                            rank,
                            result,
                            stats,
                        }
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_identity() {
        let results = run(4, |comm| (comm.rank(), comm.size()));
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.rank, i);
            assert_eq!(r.result, (i, 4));
        }
    }

    #[test]
    fn single_rank_runs() {
        let results = run(1, |comm| comm.rank());
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].result, 0);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        run(3, |comm| {
            if comm.rank() == 1 {
                panic!("injected fault on rank 1");
            }
            // Other ranks block on a message that will never come; the
            // disconnect must wake them rather than deadlock.
            let _ = comm.recv(1, 7);
        });
    }
}
