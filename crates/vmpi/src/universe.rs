//! Launching a virtual-MPI job: one OS thread per rank.
//!
//! Two entry points:
//!
//! * [`run`] — fork/join: spawn `p` scoped threads, run the same closure
//!   on each, collect per-rank results. The shape of every batch driver.
//! * [`seats`] — reserve a universe without running anything: each
//!   [`Seat`] is a movable (`Send`) claim on one rank that a long-lived
//!   owner (e.g. a serving session) converts into a [`Comm`] on whatever
//!   thread will host that rank for the universe's lifetime. The `Comm`
//!   itself is intentionally *not* `Send` (it carries per-rank `Rc`
//!   state), so the seat is the hand-off point.

use crate::comm::Comm;
use crate::stats::CommStats;
use crate::transport::Endpoints;

/// A reserved place in a universe: everything one rank needs to join,
/// movable across threads. Construct the set with [`seats`], move each
/// seat into its rank's thread, and call [`Seat::into_comm`] there.
///
/// Dropping a seat without joining disconnects that rank; peers that
/// later try to communicate with it will observe the disconnect and
/// panic (the fail-stop semantics of [`run`]).
pub struct Seat {
    ep: Endpoints,
}

impl Seat {
    /// The world rank this seat occupies.
    pub fn rank(&self) -> usize {
        self.ep.rank
    }

    /// Joins the universe: wraps the endpoints in this rank's world
    /// communicator. Call on the thread that will run the rank.
    pub fn into_comm(self) -> Comm {
        Comm::world(self.ep)
    }
}

/// Reserves a `p`-rank universe and returns one [`Seat`] per rank, in
/// rank order. Nothing runs until each seat's owner calls
/// [`Seat::into_comm`] and starts communicating.
pub fn seats(p: usize) -> Vec<Seat> {
    assert!(p >= 1, "need at least one rank");
    Endpoints::mesh(p)
        .into_iter()
        .map(|ep| Seat { ep })
        .collect()
}

/// The result of one rank's execution.
#[derive(Debug)]
pub struct RankResult<R> {
    pub rank: usize,
    pub result: R,
    /// This rank's cumulative communication counters.
    pub stats: CommStats,
}

/// Runs `f` on `p` ranks, each on its own OS thread, and returns the
/// per-rank results in rank order.
///
/// Semantics mirror `mpiexec -n p`: every rank executes the same program;
/// a panic on any rank tears the whole job down (peers blocked on a
/// receive from the dead rank observe the disconnect and panic in turn,
/// and the first panic is propagated to the caller).
pub fn run<R, F>(p: usize, f: F) -> Vec<RankResult<R>>
where
    R: Send,
    F: Fn(&Comm) -> R + Send + Sync,
{
    assert!(p >= 1, "need at least one rank");
    let endpoints = Endpoints::mesh(p);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|ep| {
                let rank = ep.rank;
                std::thread::Builder::new()
                    .name(format!("vmpi-rank-{rank}"))
                    .spawn_scoped(scope, move || {
                        let comm = Comm::world(ep);
                        let result = f(&comm);
                        let stats = comm.stats();
                        RankResult {
                            rank,
                            result,
                            stats,
                        }
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_identity() {
        let results = run(4, |comm| (comm.rank(), comm.size()));
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.rank, i);
            assert_eq!(r.result, (i, 4));
        }
    }

    #[test]
    fn single_rank_runs() {
        let results = run(1, |comm| comm.rank());
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].result, 0);
    }

    #[test]
    fn seats_form_a_working_universe() {
        // Move each seat to its own (non-scoped) thread, build the Comm
        // there, and run a collective — the long-lived-session pattern.
        let handles: Vec<_> = seats(3)
            .into_iter()
            .map(|seat| {
                std::thread::spawn(move || {
                    let comm = seat.into_comm();
                    comm.all_reduce_scalar(comm.rank() as f64 + 1.0)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6.0);
        }
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        run(3, |comm| {
            if comm.rank() == 1 {
                panic!("injected fault on rank 1");
            }
            // Other ranks block on a message that will never come; the
            // disconnect must wake them rather than deadlock.
            let _ = comm.recv(1, 7);
        });
    }
}
