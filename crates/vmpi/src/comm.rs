//! Communicators: rank identity, point-to-point messaging, and splitting.

use crate::stats::{CommStats, Op};
use crate::transport::Endpoints;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

/// Operation kinds encoded in message tags (low byte).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    P2p = 1,
    Barrier = 2,
    Broadcast = 3,
    Gather = 4,
    Scatter = 5,
    AllGather = 6,
    ReduceScatter = 7,
    AllReduce = 8,
}

/// Reusable staging buffers for the collective algorithms.
///
/// Every Bruck / recursive-halving round needs scratch storage (the
/// rotated block buffer, the reduction accumulator, prefix-sum tables).
/// Allocating those per call would put `malloc` on the per-iteration hot
/// path of the NMF drivers, so each rank keeps an arena of returned
/// buffers instead: a collective checks a buffer out, grows it if needed
/// (capacity is retained across calls), and checks it back in on exit.
/// After the first iteration of a steady-state loop every checkout is
/// allocation-free.
///
/// The arena is a *pool*, not a single slot: several buffers may be
/// checked out at once. That is what makes split-phase collectives safe —
/// a posted [`PendingOp`](crate::pending::PendingOp) owns its staging
/// buffers from post until wait, while any collective running inside the
/// overlap window checks out different buffers. The pool simply grows to
/// the high-water mark of concurrently live checkouts (double-buffering
/// when one op is in flight) and then reuses that set forever.
#[derive(Default)]
pub(crate) struct Arena {
    f64s: Vec<Vec<f64>>,
    usizes: Vec<Vec<usize>>,
}

impl Arena {
    fn take_f64(&mut self) -> Vec<f64> {
        let mut v = self.f64s.pop().unwrap_or_default();
        v.clear();
        v
    }

    fn take_usize(&mut self) -> Vec<usize> {
        let mut v = self.usizes.pop().unwrap_or_default();
        v.clear();
        v
    }
}

/// The detachable core of a communicator: endpoints, counters, arena, and
/// membership, all behind `Rc`s so a clone is a handful of refcount bumps.
///
/// A [`Comm`] is a `CommCore` plus the per-communicator sequence state.
/// Posted collectives clone the core into their
/// [`PendingOp`](crate::pending::PendingOp) handle so the in-flight op can
/// make progress (send, receive, check buffers in and out) without
/// borrowing the `Comm` it was posted on.
#[derive(Clone)]
pub(crate) struct CommCore {
    pub ep: Rc<Endpoints>,
    pub stats: Rc<RefCell<CommStats>>,
    /// Staging arena shared by this rank's communicators (buffers flow
    /// freely between the world comm, its splits, and in-flight ops).
    pub arena: Rc<RefCell<Arena>>,
    /// World ranks of the members, indexed by comm rank. `Rc<[usize]>`
    /// so pending ops share the table without copying it.
    pub members: Rc<[usize]>,
    /// This rank's position within `members`.
    pub rank: usize,
    pub comm_id: u64,
}

impl CommCore {
    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    pub fn tag(&self, kind: Kind, seq: u64) -> u64 {
        (self.comm_id << 32) | ((seq & 0xff_ffff) << 8) | kind as u64
    }

    /// Internal send in comm-rank space, charged to `op`.
    pub fn send_op(&self, dst: usize, tag: u64, data: &[f64], op: Op) {
        self.stats.borrow_mut().record_send(op, data.len());
        self.ep.send(self.members[dst], tag, data.into());
    }

    /// Internal receive in comm-rank space.
    pub fn recv_op(&self, src: usize, tag: u64) -> Box<[f64]> {
        self.ep.recv(self.members[src], tag)
    }

    /// Nonblocking internal receive in comm-rank space.
    pub fn try_recv_op(&self, src: usize, tag: u64) -> Option<Box<[f64]>> {
        self.ep.try_recv(self.members[src], tag)
    }

    /// Checks a reusable `f64` staging buffer out of the arena.
    pub fn take_buf(&self) -> Vec<f64> {
        self.arena.borrow_mut().take_f64()
    }

    /// Returns a staging buffer to the arena for reuse.
    pub fn put_buf(&self, v: Vec<f64>) {
        self.arena.borrow_mut().f64s.push(v);
    }

    /// Checks a reusable `usize` scratch table out of the arena.
    pub fn take_idx(&self) -> Vec<usize> {
        self.arena.borrow_mut().take_usize()
    }

    /// Returns a scratch table to the arena for reuse.
    pub fn put_idx(&self, v: Vec<usize>) {
        self.arena.borrow_mut().usizes.push(v);
    }
}

/// A communicator: a named, ordered group of ranks sharing a collective
/// sequence space, analogous to an `MPI_Comm`.
///
/// Sub-communicators created by [`Comm::split`] reuse the parent's
/// channels; isolation comes from the communicator id embedded in every
/// message tag (asserted on receive).
pub struct Comm {
    pub(crate) core: CommCore,
    /// Collective sequence number; advanced identically on every member
    /// because collectives are called (or posted) in program order.
    seq: Cell<u64>,
    /// Number of `split` calls made on this comm (for child id derivation).
    children: Cell<u64>,
}

impl Comm {
    /// The world communicator for one rank, wrapping its endpoints.
    pub(crate) fn world(ep: Endpoints) -> Comm {
        let p = ep.out.len();
        let rank = ep.rank;
        Comm {
            core: CommCore {
                ep: Rc::new(ep),
                stats: Rc::new(RefCell::new(CommStats::new())),
                arena: Rc::new(RefCell::new(Arena::default())),
                members: (0..p).collect(),
                rank,
                comm_id: 0x1,
            },
            seq: Cell::new(0),
            children: Cell::new(0),
        }
    }

    /// Rank of this process within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.core.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.core.size()
    }

    /// This rank's world (top-level) rank.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.core.ep.rank
    }

    /// A snapshot of this rank's cumulative communication counters.
    ///
    /// Counters are shared between a world communicator and all
    /// sub-communicators derived from it, so this is the rank's total.
    pub fn stats(&self) -> CommStats {
        self.core.stats.borrow().clone()
    }

    /// Checks a reusable `f64` staging buffer out of the arena (empty,
    /// with whatever capacity past calls built up).
    pub(crate) fn take_buf(&self) -> Vec<f64> {
        self.core.take_buf()
    }

    /// Returns a staging buffer to the arena for reuse.
    pub(crate) fn put_buf(&self, v: Vec<f64>) {
        self.core.put_buf(v)
    }

    /// Checks a reusable `usize` scratch table (offsets, counts) out of
    /// the arena.
    pub(crate) fn take_idx(&self) -> Vec<usize> {
        self.core.take_idx()
    }

    /// Returns a scratch table to the arena for reuse.
    pub(crate) fn put_idx(&self, v: Vec<usize>) {
        self.core.put_idx(v)
    }

    pub(crate) fn tag(&self, kind: Kind, seq: u64) -> u64 {
        self.core.tag(kind, seq)
    }

    /// Next collective sequence number (identical across members).
    pub(crate) fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Internal send in comm-rank space, charged to `op`.
    pub(crate) fn send_op(&self, dst: usize, tag: u64, data: &[f64], op: Op) {
        self.core.send_op(dst, tag, data, op)
    }

    /// Internal receive in comm-rank space.
    pub(crate) fn recv_op(&self, src: usize, tag: u64) -> Box<[f64]> {
        self.core.recv_op(src, tag)
    }

    /// Times `body` and charges the elapsed wall-clock to `op`.
    pub(crate) fn timed<T>(&self, op: Op, body: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = body();
        self.core.stats.borrow_mut().record_time(op, t0.elapsed());
        out
    }

    /// Point-to-point send of `data` to comm rank `dst` with a user `tag`
    /// (must fit in 24 bits).
    pub fn send(&self, dst: usize, tag: u32, data: &[f64]) {
        assert!(tag < (1 << 24), "user tag must fit in 24 bits");
        self.timed(Op::P2p, || {
            self.send_op(dst, self.tag(Kind::P2p, tag as u64), data, Op::P2p)
        });
    }

    /// Point-to-point receive from comm rank `src` with a user `tag`.
    pub fn recv(&self, src: usize, tag: u32) -> Vec<f64> {
        assert!(tag < (1 << 24), "user tag must fit in 24 bits");
        self.timed(Op::P2p, || {
            self.recv_op(src, self.tag(Kind::P2p, tag as u64))
                .into_vec()
        })
    }

    /// Simultaneous exchange used by the collective inner loops: sends to
    /// `dst` and receives from `src` under one internal tag. Never
    /// deadlocks because channel sends are non-blocking.
    pub(crate) fn exchange(
        &self,
        dst: usize,
        src: usize,
        tag: u64,
        data: &[f64],
        op: Op,
    ) -> Box<[f64]> {
        self.send_op(dst, tag, data, op);
        self.recv_op(src, tag)
    }

    /// Splits the communicator: ranks passing the same `color` form a new
    /// communicator, ordered by `(key, parent rank)`.
    ///
    /// Collective over the parent communicator.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        // Exchange (color, key) via an internal all-gather so every rank
        // can compute every group deterministically.
        let seq = self.next_seq();
        let mine = [color as f64, key as f64];
        let mut gathered = vec![0.0; 2 * self.size()];
        self.bruck_all_gatherv_into(
            &mine,
            crate::collectives::Counts::Eq(2),
            &mut gathered,
            seq,
            Op::P2p,
        );
        let child_index = self.children.get();
        self.children.set(child_index + 1);

        let mut group: Vec<(usize, usize)> = Vec::new(); // (key, parent rank)
        for (r, chunk) in gathered.chunks_exact(2).enumerate() {
            if chunk[0] as usize == color {
                group.push((chunk[1] as usize, r));
            }
        }
        group.sort_unstable();
        let members: Rc<[usize]> = group.iter().map(|&(_, r)| self.core.members[r]).collect();
        let rank = group
            .iter()
            .position(|&(_, r)| r == self.core.rank)
            .expect("calling rank must be in its own color group");

        Comm {
            core: CommCore {
                ep: Rc::clone(&self.core.ep),
                stats: Rc::clone(&self.core.stats),
                arena: Rc::clone(&self.core.arena),
                members,
                rank,
                comm_id: splitmix64(
                    self.core.comm_id ^ (child_index << 40) ^ ((color as u64) << 8) ^ 0x5eed,
                ),
            },
            seq: Cell::new(0),
            children: Cell::new(0),
        }
    }
}

/// SplitMix64 finalizer; spreads communicator ids across the tag space.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    // Keep ids nonzero and clear of the reserved world id.
    ((z ^ (z >> 31)) | 0x2) & 0xffff_ffff
}
