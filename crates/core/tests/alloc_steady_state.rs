//! Proof of the zero-allocation hot path: a counting global allocator
//! measures whole factorizations at different iteration counts. If the
//! steady-state loop is allocation-free, the total allocation count is
//! *independent of the iteration count* for the sequential driver (no
//! transport), and grows by a near-constant per-iteration amount for
//! the distributed driver (the channel-transport message boxes — the
//! virtual interconnect, which is outside the compute path — with a few
//! allocations of amortized channel block storage).
//!
//! HALS/MU are used as the NLS solvers here because their scratch usage
//! is shape-static; BPP is also workspace-backed but its per-group
//! buffer pool can legitimately grow on an iteration whose pivoting
//! discovers more distinct passive sets than any before it, which would
//! make an exact-equality assertion data-dependent.

use hpc_nmf::prelude::*;
use hpc_nmf::seq::nmf_seq;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The two tests share one global counter; serialize them (ignoring
/// poisoning so one failure doesn't cascade into the other).
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn count<T>(f: impl FnOnce() -> T) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    drop(out);
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn run_seq(iters: usize, solver: SolverKind) -> u64 {
    let input = Input::Dense(Mat::uniform(48, 36, 11));
    let config = NmfConfig::new(5)
        .with_max_iters(iters)
        .with_solver(solver)
        .with_seed(3);
    count(|| nmf_seq(&input, &config))
}

#[test]
fn sequential_steady_state_iterations_allocate_nothing() {
    let _guard = serial_guard();
    for solver in [SolverKind::Hals, SolverKind::Mu] {
        let base = run_seq(2, solver);
        let more = run_seq(6, solver);
        assert_eq!(
            more, base,
            "{solver:?}: 4 extra iterations changed the allocation count \
             ({base} for 2 iters vs {more} for 6) — the steady-state loop allocated"
        );
    }
}

fn run_hpc(iters: usize) -> u64 {
    let input = Input::Dense(Mat::uniform(40, 32, 19));
    let config = NmfConfig::new(4)
        .with_max_iters(iters)
        .with_solver(SolverKind::Hals)
        .with_seed(7);
    count(|| factorize(&input, 4, Algo::Hpc2D, &config))
}

#[test]
fn hpc_per_iteration_allocations_are_exactly_the_transport() {
    let _guard = serial_guard();
    // Warm once (thread-spawn and lazy-init costs of the first run).
    let _ = run_hpc(2);
    let a2 = run_hpc(2);
    let a4 = run_hpc(4);
    let a6 = run_hpc(6);
    let d1 = a4 - a2;
    let d2 = a6 - a4;
    // The per-iteration delta is the transport traffic (boxed message
    // payloads). It is *nearly* constant — the channel's internal block
    // storage amortizes one allocation per ~32 messages, so consecutive
    // deltas can differ by a few block allocations, but never by
    // anything matrix-shaped.
    let spread = d1.abs_diff(d2);
    assert!(
        spread <= 16,
        "per-iteration allocation delta varies too much ({d1} vs {d2}) — \
         something in the iteration loop allocates beyond the message transport"
    );
    // Sanity: the per-iteration count is a few dozen boxed messages for
    // 4 ranks, not matrix-sized churn.
    assert!(
        d1 / 2 < 400,
        "per-iteration allocation count {} is too high to be transport-only",
        d1 / 2
    );
}
