//! Workspace-reuse correctness: the zero-allocation iteration path must
//! be a pure optimization — identical results run-to-run, identical
//! results when a caller-held workspace is reused across factorizations,
//! and identical results between the parallel drivers and the sequential
//! reference (the paper's §6.1.3 same-computations protocol).

use hpc_nmf::dist::Dist1D;
use hpc_nmf::hpc::{hpc_nmf_rank, hpc_nmf_rank_with_workspace};
use hpc_nmf::prelude::*;
use hpc_nmf::seq::nmf_seq;
use hpc_nmf::workspace::IterWorkspace;
use hpc_nmf::{factorize_from, init_ht, init_w};
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_vmpi::universe;

fn test_input(m: usize, n: usize, seed: u64) -> Input {
    Input::Dense(Mat::uniform(m, n, seed))
}

/// Runs HPC-NMF on `p` ranks, handing each rank a workspace produced by
/// `make_ws`; returns each rank's (w_local, ht_local, objective).
fn run_hpc_with_ws(
    input: &Input,
    grid: Grid,
    config: &NmfConfig,
    make_ws: impl Fn() -> Option<IterWorkspace> + Sync,
) -> Vec<(Mat, Mat, f64)> {
    let (m, n) = input.shape();
    let w0 = init_w(m, config.k, config.seed);
    let ht0 = init_ht(n, config.k, config.seed);
    let dist_m = Dist1D::new(m, grid.pr);
    let dist_n = Dist1D::new(n, grid.pc);
    universe::run(grid.size(), |comm| {
        let (i, j) = grid.coords(comm.rank());
        let rows = dist_m.part(i);
        let cols = dist_n.part(j);
        let local = input.block(rows.offset, cols.offset, rows.len, cols.len);
        let sub_rows = Dist1D::new(rows.len, grid.pc);
        let sub_cols = Dist1D::new(cols.len, grid.pr);
        let wpart = sub_rows.part(j);
        let hpart = sub_cols.part(i);
        let w0_local = w0.rows_block(rows.offset + wpart.offset, wpart.len);
        let ht0_local = ht0.rows_block(cols.offset + hpart.offset, hpart.len);
        let out = match make_ws() {
            Some(mut ws) => hpc_nmf_rank_with_workspace(
                comm,
                grid,
                (m, n),
                &local,
                w0_local,
                ht0_local,
                config,
                &mut ws,
            ),
            None => hpc_nmf_rank(comm, grid, (m, n), &local, w0_local, ht0_local, config),
        };
        (out.w_local, out.ht_local, out.objective)
    })
    .into_iter()
    .map(|r| r.result)
    .collect()
}

#[test]
fn two_consecutive_runs_are_bit_identical() {
    let input = test_input(36, 28, 91);
    let config = NmfConfig::new(4).with_max_iters(2).with_seed(5);
    let grid = Grid::new(2, 2);
    let a = run_hpc_with_ws(&input, grid, &config, || None);
    let b = run_hpc_with_ws(&input, grid, &config, || None);
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.0, rb.0, "w_local must be deterministic");
        assert_eq!(ra.1, rb.1, "ht_local must be deterministic");
        assert_eq!(ra.2, rb.2, "objective must be deterministic");
    }
}

#[test]
fn caller_held_workspace_matches_internal_workspace() {
    let input = test_input(30, 42, 17);
    let config = NmfConfig::new(3).with_max_iters(3).with_seed(9);
    let grid = Grid::new(2, 2);
    let internal = run_hpc_with_ws(&input, grid, &config, || None);
    // Fresh caller-held workspace, correctly sized by the driver.
    let external = run_hpc_with_ws(&input, grid, &config, || Some(IterWorkspace::default()));
    // A deliberately mis-sized workspace must be resized and still agree.
    let missized = run_hpc_with_ws(&input, grid, &config, || {
        Some(IterWorkspace::for_seq(7, 5, 2))
    });
    for ((a, b), c) in internal.iter().zip(&external).zip(&missized) {
        assert_eq!(a.0, b.0, "caller-held workspace changed W");
        assert_eq!(a.1, b.1, "caller-held workspace changed H");
        assert_eq!(a.0, c.0, "mis-sized workspace changed W");
        assert_eq!(a.1, c.1, "mis-sized workspace changed H");
    }
}

#[test]
fn workspace_reused_across_two_factorizations_is_pure() {
    // Run two factorizations back-to-back on each rank through ONE
    // workspace; the second must match a fresh-workspace run exactly —
    // the workspace carries capacity, never information.
    let input = test_input(24, 32, 3);
    let config = NmfConfig::new(3).with_max_iters(2).with_seed(13);
    let grid = Grid::new(2, 1);
    let (m, n) = input.shape();
    let w0 = init_w(m, config.k, config.seed);
    let ht0 = init_ht(n, config.k, config.seed);
    let dist_m = Dist1D::new(m, grid.pr);
    let dist_n = Dist1D::new(n, grid.pc);

    let reused = universe::run(grid.size(), |comm| {
        let (i, j) = grid.coords(comm.rank());
        let rows = dist_m.part(i);
        let cols = dist_n.part(j);
        let local = input.block(rows.offset, cols.offset, rows.len, cols.len);
        let wpart = Dist1D::new(rows.len, grid.pc).part(j);
        let hpart = Dist1D::new(cols.len, grid.pr).part(i);
        let w0_local = w0.rows_block(rows.offset + wpart.offset, wpart.len);
        let ht0_local = ht0.rows_block(cols.offset + hpart.offset, hpart.len);
        let mut ws = IterWorkspace::default();
        let _first = hpc_nmf_rank_with_workspace(
            comm,
            grid,
            (m, n),
            &local,
            w0_local.clone(),
            ht0_local.clone(),
            &config,
            &mut ws,
        );
        hpc_nmf_rank_with_workspace(
            comm,
            grid,
            (m, n),
            &local,
            w0_local,
            ht0_local,
            &config,
            &mut ws,
        )
    });
    let fresh = run_hpc_with_ws(&input, grid, &config, || None);
    for (r, f) in reused.iter().zip(&fresh) {
        assert_eq!(
            r.result.w_local, f.0,
            "reused workspace leaked state into W"
        );
        assert_eq!(
            r.result.ht_local, f.1,
            "reused workspace leaked state into H"
        );
    }
}

#[test]
fn hpc_workspace_path_matches_sequential_reference() {
    // The paper's same-computations protocol, now through the fully
    // workspace-backed path: every driver and grid shape agrees with the
    // sequential reference to reassociation tolerance.
    for (m, n, p, algo) in [
        (24usize, 18usize, 4usize, Algo::Hpc2D),
        (21, 33, 3, Algo::Hpc1D),
        (16, 16, 4, Algo::Naive),
        (26, 19, 6, Algo::Hpc2D),
    ] {
        let input = test_input(m, n, (m * n) as u64);
        let config = NmfConfig::new(3).with_max_iters(3).with_seed(7);
        let seq = nmf_seq(&input, &config);
        let par = factorize_from(
            &input,
            p,
            algo,
            &config,
            init_w(m, config.k, config.seed),
            init_ht(n, config.k, config.seed),
        );
        assert!(
            par.w.max_abs_diff(&seq.w) < 1e-8,
            "{:?} p={p} {m}x{n}: W diverged from sequential",
            algo
        );
        assert!(
            par.h.max_abs_diff(&seq.h) < 1e-8,
            "{:?} p={p} {m}x{n}: H diverged from sequential",
            algo
        );
    }
}

#[test]
fn sparse_input_workspace_path_matches_sequential() {
    use nmf_sparse::gen::erdos_renyi;
    let a = erdos_renyi(40, 30, 0.15, 77);
    let input = Input::Sparse(a);
    let config = NmfConfig::new(4).with_max_iters(3).with_seed(21);
    let seq = nmf_seq(&input, &config);
    let par = factorize(&input, 4, Algo::Hpc2D, &config);
    assert!(par.w.max_abs_diff(&seq.w) < 1e-8, "sparse W diverged");
    assert!(par.h.max_abs_diff(&seq.h) < 1e-8, "sparse H diverged");
}
