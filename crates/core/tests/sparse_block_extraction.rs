//! Regression lock: extracting a rank block from a *sparse* input stays
//! sparse — it must never materialize the block densely, not even as a
//! transient. A byte-counting global allocator bounds the whole
//! extraction (block CSR + CSC view + scratch) far below the dense
//! footprint, so a densify regression of any kind trips the cap.

use hpc_nmf::prelude::*;
use hpc_nmf::LocalMat;
use nmf_sparse::gen::erdos_renyi;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct ByteCountingAlloc;

static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for ByteCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: ByteCountingAlloc = ByteCountingAlloc;

fn bytes_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = BYTES.load(Ordering::Relaxed);
    let out = f();
    (out, BYTES.load(Ordering::Relaxed) - before)
}

#[test]
fn sparse_block_extraction_never_densifies() {
    // 2000×2000 at density 2e-3: ~8k nonzeros. A 1000×1000 block holds
    // ~2k of them (~70 KiB with both index views); the same block dense
    // would be 8 MB — two orders of magnitude of headroom between the
    // cap and the regression.
    let (m, n) = (2000, 2000);
    let input = Input::Sparse(erdos_renyi(m, n, 2e-3, 17));
    let (block, allocated) = bytes_during(|| input.block(m / 4, n / 4, m / 2, n / 2));

    let LocalMat::Sparse(sp) = &block else {
        panic!("a sparse input must extract sparse blocks");
    };
    assert!(sp.nnz() > 100, "block unexpectedly empty: {}", sp.nnz());

    let dense_bytes = 8 * (m / 2) as u64 * (n / 2) as u64;
    assert!(
        allocated < dense_bytes / 4,
        "block extraction allocated {allocated} bytes — within reach of the \
         {dense_bytes}-byte dense footprint; did the sparse path densify?"
    );
}

/// The whole-session variant of the same lock: building a model on a
/// sparse input must not allocate anything near the dense footprint of
/// the input (factors, workspaces, and transport are all O((m+n)k)).
#[test]
fn sparse_build_stays_sparse_end_to_end() {
    let (m, n) = (1200, 900);
    let input = Input::Sparse(erdos_renyi(m, n, 3e-3, 23));
    let ((), allocated) = bytes_during(|| {
        let mut model = Nmf::on(&input)
            .rank(4)
            .ranks(4)
            .algo(Algo::Hpc2D)
            .max_iters(2)
            .build()
            .expect("valid request");
        model.run();
    });
    let dense_bytes = 8 * m as u64 * n as u64;
    assert!(
        allocated < dense_bytes / 2,
        "sparse 2-iteration build allocated {allocated} bytes \
         (dense input would be {dense_bytes}); something densified"
    );
}
