//! HPC-NMF (Algorithm 3): the paper's communication-optimal algorithm.
//!
//! The data matrix is distributed once, as `pr × pc` blocks `Aᵢⱼ`; the
//! factors live in 1D distributions (`W` row-wise, `H` column-wise) with
//! each grid row/column collectively owning one block. Per iteration and
//! per factor, the algorithm performs exactly one all-reduce (`k×k` Gram),
//! one all-gather (assembling the factor block along the grid dimension
//! that shares it), and one reduce-scatter (summing the local matrix
//! products and slicing the result back to the 1D distribution) — giving
//! the `O(√(mnk²/p))`-word, `O(log p)`-message costs of Table 2.
//!
//! Line numbers in comments refer to Algorithm 3 in the paper.
//!
//! # Performance notes: the zero-allocation iteration loop
//!
//! The steady-state loop performs **no heap allocations in the compute
//! path**. Three mechanisms combine to achieve that:
//!
//! 1. every per-iteration matrix — Grams, assembled factor blocks, `MM`
//!    products, reduce-scatter outputs — lives in an [`IterWorkspace`]
//!    allocated once before the loop and overwritten in place each
//!    iteration ([`nmf_matrix::matmul_into`], `gram_into`,
//!    `mm_a_ht_into`, …);
//! 2. the collectives are the `_into` variants
//!    ([`Comm::all_reduce_into`](nmf_vmpi::Comm::all_reduce_into) & co.),
//!    which write into those workspace buffers and draw their own round
//!    staging from a per-rank arena inside the communicator;
//! 3. the NLS solvers hold their pivoting state and factorization
//!    buffers in solver-owned scratch reused across iterations.
//!
//! What still allocates: the one-time setup (sub-communicators, counts,
//! workspace), the per-iteration `IterRecord` bookkeeping pushed onto the
//! result vector (instrumentation, reserved up front), and the message
//! boxes inside the channel transport (the "interconnect" — a real MPI
//! would hand those to the NIC). The Criterion suite
//! `benches/nmf_iteration.rs` tracks the resulting per-iteration times.

use crate::config::{apply_ridge, IterRecord, NmfConfig, TaskTimes};
use crate::dist::Dist1D;
use crate::grid::Grid;
use crate::input::LocalMat;
use crate::naive::RankNmfOutput;
use crate::workspace::IterWorkspace;
use nmf_matrix::gram::gram_into;
use nmf_matrix::Mat;
use nmf_vmpi::Comm;
use std::time::Instant;

/// Runs Algorithm 3 on one rank of a `grid.pr × grid.pc` processor grid.
///
/// * `local` — this rank's block `Aᵢⱼ` (`≈ m/pr × n/pc`);
/// * `w0`    — this rank's `(Wᵢ)ⱼ` slice of the global `W` init
///   (`≈ m/p × k`);
/// * `ht0`   — this rank's `(Hⱼ)ᵢ` slice of the global `H` init, stored
///   transposed (`≈ n/p × k`).
///
/// Allocates an [`IterWorkspace`] and delegates to
/// [`hpc_nmf_rank_with_workspace`]; callers running repeated
/// factorizations (warm restarts, parameter sweeps) can hold the
/// workspace themselves and skip even the setup allocations.
pub fn hpc_nmf_rank(
    comm: &Comm,
    grid: Grid,
    dims: (usize, usize),
    local: &LocalMat,
    w0: Mat,
    ht0: Mat,
    config: &NmfConfig,
) -> RankNmfOutput {
    let mut ws = IterWorkspace::for_hpc(
        local.nrows(),
        local.ncols(),
        w0.nrows(),
        ht0.nrows(),
        config.k,
    );
    hpc_nmf_rank_with_workspace(comm, grid, dims, local, w0, ht0, config, &mut ws)
}

/// [`hpc_nmf_rank`] with a caller-owned workspace (resized to fit if the
/// shapes differ from its previous use).
#[allow(clippy::too_many_arguments)]
pub fn hpc_nmf_rank_with_workspace(
    comm: &Comm,
    grid: Grid,
    dims: (usize, usize),
    local: &LocalMat,
    w0: Mat,
    ht0: Mat,
    config: &NmfConfig,
    ws: &mut IterWorkspace,
) -> RankNmfOutput {
    let (m, n) = dims;
    let k = config.k;
    assert_eq!(
        comm.size(),
        grid.size(),
        "communicator size must match grid"
    );
    let (gi, gj) = grid.coords(comm.rank());

    // Sub-communicators: `row_comm` spans this grid row (pc ranks,
    // ordered by column index), `col_comm` this grid column (pr ranks,
    // ordered by row index).
    let row_comm = comm.split(gi, gj);
    let col_comm = comm.split(grid.pr + gj, gi);
    debug_assert_eq!(row_comm.size(), grid.pc);
    debug_assert_eq!(col_comm.size(), grid.pr);

    // Distributions: A's rows over grid rows, A's columns over grid
    // columns; within a block, W's rows over the grid row's members and
    // H's columns over the grid column's members.
    let dist_m = Dist1D::new(m, grid.pr);
    let dist_n = Dist1D::new(n, grid.pc);
    let my_rows = dist_m.part(gi);
    let my_cols = dist_n.part(gj);
    assert_eq!(local.nrows(), my_rows.len, "local block height mismatch");
    assert_eq!(local.ncols(), my_cols.len, "local block width mismatch");
    let sub_rows = Dist1D::new(my_rows.len, grid.pc); // (Wᵢ)ⱼ heights
    let sub_cols = Dist1D::new(my_cols.len, grid.pr); // (Hⱼ)ᵢ heights
    assert_eq!(w0.shape(), (sub_rows.part(gj).len, k));
    assert_eq!(ht0.shape(), (sub_cols.part(gi).len, k));

    // Size (or re-size) the workspace; a no-op when already sized.
    ws.gram_w.resize(k, k);
    ws.gram_solve.resize(k, k);
    ws.gram_local.resize(k, k);
    ws.ht_gather.resize(my_cols.len, k);
    ws.w_gather.resize(my_rows.len, k);
    ws.mm_w.resize(my_rows.len, k);
    ws.mm_h.resize(my_cols.len, k);
    ws.aht.resize(sub_rows.part(gj).len, k);
    ws.wta.resize(sub_cols.part(gi).len, k);

    let mut solver = config.solver.build();
    let mut w_local = w0; // (Wᵢ)ⱼ
    let mut ht_local = ht0; // (Hⱼ)ᵢ, stored n/p × k

    let w_counts = sub_rows.lens_scaled(k); // reduce-scatter counts, grid row
    let h_counts = sub_cols.lens_scaled(k); // reduce-scatter counts, grid col

    let norm_a_sq = comm.all_reduce_scalar(local.fro_norm_sq());

    // Line 3 for the first iteration: Uᵢⱼ = (Hⱼ)ᵢ(Hⱼ)ᵢᵀ. Later
    // iterations reuse the Gram computed for the objective.
    gram_into(&ht_local, &mut ws.gram_local);

    let mut iters = Vec::with_capacity(config.max_iters);
    let mut prev_obj = f64::INFINITY;
    let mut first_obj = None;
    let mut objective = norm_a_sq;
    let mut comm_base = comm.stats();

    for _it in 0..config.max_iters {
        let mut tt = TaskTimes::default();

        /* ---- Compute W given H (lines 3–8) ---- */
        // Line 4: HHᵀ = Σᵢⱼ Uᵢⱼ, all-reduce across all ranks — straight
        // into the solve buffer; nothing reads the un-ridged HHᵀ later.
        ws.gram_solve.copy_from(&ws.gram_local);
        comm.all_reduce_into(ws.gram_solve.as_mut_slice());

        // Line 5: assemble Hⱼ (as Hⱼᵀ, n/pc × k) via all-gather across
        // the processor column.
        col_comm.all_gatherv_into(ht_local.as_slice(), &h_counts, ws.ht_gather.as_mut_slice());

        // Line 6: Vᵢⱼ = Aᵢⱼ·Hⱼᵀ (m/pr × k).
        let t0 = Instant::now();
        local.mm_a_ht_into(&ws.ht_gather, &mut ws.mm_w);
        tt.mm += t0.elapsed();

        // Line 7: (AHᵀ)ᵢ via reduce-scatter across the processor row;
        // this rank keeps ((AHᵀ)ᵢ)ⱼ (m/p × k).
        row_comm.reduce_scatter_into(ws.mm_w.as_slice(), &w_counts, ws.aht.as_mut_slice());

        // Line 8: (Wᵢ)ⱼ ← argmin ‖W̃(HHᵀ) − ((AHᵀ)ᵢ)ⱼ‖, local NLS.
        let t0 = Instant::now();
        apply_ridge(&mut ws.gram_solve, config.l2_w);
        solver.update(&ws.gram_solve, &ws.aht, &mut w_local);
        tt.nls += t0.elapsed();

        /* ---- Compute H given W (lines 9–14) ---- */
        // Line 9: Xᵢⱼ = (Wᵢ)ⱼᵀ(Wᵢ)ⱼ.
        let t0 = Instant::now();
        gram_into(&w_local, &mut ws.gram_local);
        tt.gram += t0.elapsed();

        // Line 10: WᵀW all-reduce across all ranks.
        ws.gram_w.copy_from(&ws.gram_local);
        comm.all_reduce_into(ws.gram_w.as_mut_slice());

        // Line 11: assemble Wᵢ (m/pr × k) via all-gather across the
        // processor row.
        row_comm.all_gatherv_into(w_local.as_slice(), &w_counts, ws.w_gather.as_mut_slice());

        // Line 12: Yᵢⱼ = Wᵢᵀ·Aᵢⱼ, stored transposed (n/pc × k).
        let t0 = Instant::now();
        local.mm_at_w_into(&ws.w_gather, &mut ws.mm_h);
        tt.mm += t0.elapsed();

        // Line 13: (WᵀA)ⱼ via reduce-scatter across the processor
        // column; this rank keeps ((WᵀA)ⱼ)ᵢ (n/p × k, transposed).
        col_comm.reduce_scatter_into(ws.mm_h.as_slice(), &h_counts, ws.wta.as_mut_slice());

        // Line 14: (Hⱼ)ᵢ ← argmin ‖(WᵀW)H̃ − ((WᵀA)ⱼ)ᵢ‖, local NLS.
        let t0 = Instant::now();
        ws.gram_solve.copy_from(&ws.gram_w);
        apply_ridge(&mut ws.gram_solve, config.l2_h);
        solver.update(&ws.gram_solve, &ws.wta, &mut ht_local);
        tt.nls += t0.elapsed();

        /* ---- Objective via the Gram identity ----
         * ‖A−WH‖² = ‖A‖² − 2·⟨WᵀA, H⟩ + ⟨WᵀW, HHᵀ⟩, with both inner
         * products decomposing over the 1D distribution of H. The local
         * H Gram doubles as next iteration's Uᵢⱼ (line 3), so Gram is
         * still computed once per factor per iteration. */
        let t0 = Instant::now();
        gram_into(&ht_local, &mut ws.gram_local);
        tt.gram += t0.elapsed();
        let mut s = [ws.wta.fro_dot(&ht_local), ws.gram_w.fro_dot(&ws.gram_local)];
        comm.all_reduce_into(&mut s);
        objective = norm_a_sq - 2.0 * s[0] + s[1];

        let now = comm.stats();
        iters.push(IterRecord {
            objective,
            compute: tt,
            comm: now.delta_since(&comm_base),
        });
        comm_base = now;

        let f0 = *first_obj.get_or_insert(objective.max(f64::MIN_POSITIVE));
        if let Some(tol) = config.tol {
            if prev_obj.is_finite() && (prev_obj - objective) / f0 < tol {
                break;
            }
        }
        prev_obj = objective;
    }

    RankNmfOutput {
        w_local,
        ht_local,
        objective,
        iters,
    }
}
