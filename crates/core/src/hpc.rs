//! HPC-NMF (Algorithm 3): the paper's communication-optimal algorithm.
//!
//! The data matrix is distributed once, as `pr × pc` blocks `Aᵢⱼ`; the
//! factors live in 1D distributions (`W` row-wise, `H` column-wise) with
//! each grid row/column collectively owning one block. Per iteration and
//! per factor, the algorithm performs exactly one all-reduce (`k×k` Gram),
//! one all-gather (assembling the factor block along the grid dimension
//! that shares it), and one reduce-scatter (summing the local matrix
//! products and slicing the result back to the 1D distribution) — giving
//! the `O(√(mnk²/p))`-word, `O(log p)`-message costs of Table 2.
//!
//! Line numbers in comments refer to Algorithm 3 in the paper.

use crate::config::{apply_ridge, IterRecord, NmfConfig, TaskTimes};
use crate::dist::Dist1D;
use crate::grid::Grid;
use crate::input::LocalMat;
use crate::naive::RankNmfOutput;
use nmf_matrix::gram::gram;
use nmf_matrix::Mat;
use nmf_vmpi::Comm;
use std::time::Instant;

/// Runs Algorithm 3 on one rank of a `grid.pr × grid.pc` processor grid.
///
/// * `local` — this rank's block `Aᵢⱼ` (`≈ m/pr × n/pc`);
/// * `w0`    — this rank's `(Wᵢ)ⱼ` slice of the global `W` init
///   (`≈ m/p × k`);
/// * `ht0`   — this rank's `(Hⱼ)ᵢ` slice of the global `H` init, stored
///   transposed (`≈ n/p × k`).
pub fn hpc_nmf_rank(
    comm: &Comm,
    grid: Grid,
    dims: (usize, usize),
    local: &LocalMat,
    w0: Mat,
    ht0: Mat,
    config: &NmfConfig,
) -> RankNmfOutput {
    let (m, n) = dims;
    let k = config.k;
    assert_eq!(comm.size(), grid.size(), "communicator size must match grid");
    let (gi, gj) = grid.coords(comm.rank());

    // Sub-communicators: `row_comm` spans this grid row (pc ranks,
    // ordered by column index), `col_comm` this grid column (pr ranks,
    // ordered by row index).
    let row_comm = comm.split(gi, gj);
    let col_comm = comm.split(grid.pr + gj, gi);
    debug_assert_eq!(row_comm.size(), grid.pc);
    debug_assert_eq!(col_comm.size(), grid.pr);

    // Distributions: A's rows over grid rows, A's columns over grid
    // columns; within a block, W's rows over the grid row's members and
    // H's columns over the grid column's members.
    let dist_m = Dist1D::new(m, grid.pr);
    let dist_n = Dist1D::new(n, grid.pc);
    let my_rows = dist_m.part(gi);
    let my_cols = dist_n.part(gj);
    assert_eq!(local.nrows(), my_rows.len, "local block height mismatch");
    assert_eq!(local.ncols(), my_cols.len, "local block width mismatch");
    let sub_rows = Dist1D::new(my_rows.len, grid.pc); // (Wᵢ)ⱼ heights
    let sub_cols = Dist1D::new(my_cols.len, grid.pr); // (Hⱼ)ᵢ heights
    assert_eq!(w0.shape(), (sub_rows.part(gj).len, k));
    assert_eq!(ht0.shape(), (sub_cols.part(gi).len, k));

    let solver = config.solver.build();
    let mut w_local = w0; // (Wᵢ)ⱼ
    let mut ht_local = ht0; // (Hⱼ)ᵢ, stored n/p × k

    let w_counts = sub_rows.lens_scaled(k); // reduce-scatter counts, grid row
    let h_counts = sub_cols.lens_scaled(k); // reduce-scatter counts, grid col

    let norm_a_sq = comm.all_reduce_scalar(local.fro_norm_sq());

    // Line 3 for the first iteration: Uᵢⱼ = (Hⱼ)ᵢ(Hⱼ)ᵢᵀ. Later
    // iterations reuse the Gram computed for the objective.
    let mut u_local = gram(&ht_local);

    let mut iters = Vec::with_capacity(config.max_iters);
    let mut prev_obj = f64::INFINITY;
    let mut first_obj = None;
    let mut objective = norm_a_sq;
    let mut comm_base = comm.stats();

    for _it in 0..config.max_iters {
        let mut tt = TaskTimes::default();

        /* ---- Compute W given H (lines 3–8) ---- */
        // Line 4: HHᵀ = Σᵢⱼ Uᵢⱼ, all-reduce across all ranks.
        let hht = Mat::from_vec(k, k, comm.all_reduce(u_local.as_slice()));

        // Line 5: assemble Hⱼ (as Hⱼᵀ, n/pc × k) via all-gather across
        // the processor column.
        let ht_j =
            Mat::from_vec(my_cols.len, k, col_comm.all_gatherv(ht_local.as_slice(), &h_counts));

        // Line 6: Vᵢⱼ = Aᵢⱼ·Hⱼᵀ (m/pr × k).
        let t0 = Instant::now();
        let v = local.mm_a_ht(&ht_j);
        tt.mm += t0.elapsed();

        // Line 7: (AHᵀ)ᵢ via reduce-scatter across the processor row;
        // this rank keeps ((AHᵀ)ᵢ)ⱼ (m/p × k).
        let aht_local = Mat::from_vec(
            sub_rows.part(gj).len,
            k,
            row_comm.reduce_scatter(v.as_slice(), &w_counts),
        );

        // Line 8: (Wᵢ)ⱼ ← argmin ‖W̃(HHᵀ) − ((AHᵀ)ᵢ)ⱼ‖, local NLS.
        let t0 = Instant::now();
        let mut hht_solve = hht;
        apply_ridge(&mut hht_solve, config.l2_w);
        solver.update(&hht_solve, &aht_local, &mut w_local);
        tt.nls += t0.elapsed();

        /* ---- Compute H given W (lines 9–14) ---- */
        // Line 9: Xᵢⱼ = (Wᵢ)ⱼᵀ(Wᵢ)ⱼ.
        let t0 = Instant::now();
        let x_local = gram(&w_local);
        tt.gram += t0.elapsed();

        // Line 10: WᵀW all-reduce across all ranks.
        let wtw = Mat::from_vec(k, k, comm.all_reduce(x_local.as_slice()));

        // Line 11: assemble Wᵢ (m/pr × k) via all-gather across the
        // processor row.
        let w_i =
            Mat::from_vec(my_rows.len, k, row_comm.all_gatherv(w_local.as_slice(), &w_counts));

        // Line 12: Yᵢⱼ = Wᵢᵀ·Aᵢⱼ, stored transposed (n/pc × k).
        let t0 = Instant::now();
        let y = local.mm_at_w(&w_i);
        tt.mm += t0.elapsed();

        // Line 13: (WᵀA)ⱼ via reduce-scatter across the processor
        // column; this rank keeps ((WᵀA)ⱼ)ᵢ (n/p × k, transposed).
        let wta_local = Mat::from_vec(
            sub_cols.part(gi).len,
            k,
            col_comm.reduce_scatter(y.as_slice(), &h_counts),
        );

        // Line 14: (Hⱼ)ᵢ ← argmin ‖(WᵀW)H̃ − ((WᵀA)ⱼ)ᵢ‖, local NLS.
        let t0 = Instant::now();
        let mut wtw_solve = wtw.clone();
        apply_ridge(&mut wtw_solve, config.l2_h);
        solver.update(&wtw_solve, &wta_local, &mut ht_local);
        tt.nls += t0.elapsed();

        /* ---- Objective via the Gram identity ----
         * ‖A−WH‖² = ‖A‖² − 2·⟨WᵀA, H⟩ + ⟨WᵀW, HHᵀ⟩, with both inner
         * products decomposing over the 1D distribution of H. The local
         * H Gram doubles as next iteration's Uᵢⱼ (line 3), so Gram is
         * still computed once per factor per iteration. */
        let t0 = Instant::now();
        u_local = gram(&ht_local);
        tt.gram += t0.elapsed();
        let s = comm.all_reduce(&[wta_local.fro_dot(&ht_local), wtw.fro_dot(&u_local)]);
        objective = norm_a_sq - 2.0 * s[0] + s[1];

        let now = comm.stats();
        iters.push(IterRecord { objective, compute: tt, comm: now.delta_since(&comm_base) });
        comm_base = now;

        let f0 = *first_obj.get_or_insert(objective.max(f64::MIN_POSITIVE));
        if let Some(tol) = config.tol {
            if prev_obj.is_finite() && (prev_obj - objective) / f0 < tol {
                break;
            }
        }
        prev_obj = objective;
    }

    RankNmfOutput { w_local, ht_local, objective, iters }
}
