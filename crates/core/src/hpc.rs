//! HPC-NMF (Algorithm 3): the paper's communication-optimal algorithm.
//!
//! The data matrix is distributed once, as `pr × pc` blocks `Aᵢⱼ`; the
//! factors live in 1D distributions (`W` row-wise, `H` column-wise) with
//! each grid row/column collectively owning one block. Per iteration and
//! per factor, the algorithm performs exactly one all-reduce (`k×k` Gram),
//! one all-gather (assembling the factor block along the grid dimension
//! that shares it), and one reduce-scatter (summing the local matrix
//! products and slicing the result back to the 1D distribution) — giving
//! the `O(√(mnk²/p))`-word, `O(log p)`-message costs of Table 2.
//!
//! The iteration loop itself lives in [`crate::engine`]: this module is
//! a thin constructor that binds the engine to the [`Grid2D`] scheme
//! (whose methods carry the paper's Algorithm 3 line-number comments).
//!
//! # Performance notes: the zero-allocation iteration loop
//!
//! The steady-state loop performs **no heap allocations in the compute
//! path**. Three mechanisms combine to achieve that:
//!
//! 1. every per-iteration matrix — Grams, assembled factor blocks, `MM`
//!    products, reduce-scatter outputs — lives in an [`IterWorkspace`]
//!    allocated once before the loop and overwritten in place each
//!    iteration ([`nmf_matrix::matmul_into`], `gram_into`,
//!    `mm_a_ht_into`, …);
//! 2. the collectives are the `_into` variants
//!    ([`Comm::all_reduce_into`](nmf_vmpi::Comm::all_reduce_into) & co.),
//!    which write into those workspace buffers and draw their own round
//!    staging from a per-rank arena inside the communicator;
//! 3. the NLS solvers hold their pivoting state and factorization
//!    buffers in solver-owned scratch reused across iterations.
//!
//! What still allocates: the one-time setup (sub-communicators, counts,
//! workspace), the per-iteration `IterRecord` bookkeeping pushed onto the
//! result vector (instrumentation, reserved up front), and the message
//! boxes inside the channel transport (the "interconnect" — a real MPI
//! would hand those to the NIC). The Criterion suite
//! `benches/nmf_iteration.rs` tracks the resulting per-iteration times.

use crate::config::NmfConfig;
use crate::engine::{AnlsEngine, Grid2D};
use crate::grid::Grid;
use crate::input::LocalMat;
use crate::naive::RankNmfOutput;
use crate::workspace::IterWorkspace;
use nmf_matrix::Mat;
use nmf_vmpi::Comm;

/// Runs Algorithm 3 on one rank of a `grid.pr × grid.pc` processor grid.
///
/// * `local` — this rank's block `Aᵢⱼ` (`≈ m/pr × n/pc`);
/// * `w0`    — this rank's `(Wᵢ)ⱼ` slice of the global `W` init
///   (`≈ m/p × k`);
/// * `ht0`   — this rank's `(Hⱼ)ᵢ` slice of the global `H` init, stored
///   transposed (`≈ n/p × k`).
///
/// Allocates an [`IterWorkspace`] and delegates to
/// [`hpc_nmf_rank_with_workspace`]; callers running repeated
/// factorizations (warm restarts, parameter sweeps) can hold the
/// workspace themselves and skip even the setup allocations.
pub fn hpc_nmf_rank(
    comm: &Comm,
    grid: Grid,
    dims: (usize, usize),
    local: &LocalMat,
    w0: Mat,
    ht0: Mat,
    config: &NmfConfig,
) -> RankNmfOutput {
    let mut ws = IterWorkspace::for_hpc(
        local.nrows(),
        local.ncols(),
        w0.nrows(),
        ht0.nrows(),
        config.k,
    );
    hpc_nmf_rank_with_workspace(comm, grid, dims, local, w0, ht0, config, &mut ws)
}

/// [`hpc_nmf_rank`] with a caller-owned workspace (resized to fit if the
/// shapes differ from its previous use).
///
/// A thin constructor over [`AnlsEngine`] with the [`Grid2D`] scheme,
/// which owns the grid-row/grid-column sub-communicators and performs
/// Algorithm 3's collectives (lines 4–7 and 10–13) inside the engine's
/// shared loop body.
#[allow(clippy::too_many_arguments)]
pub fn hpc_nmf_rank_with_workspace(
    comm: &Comm,
    grid: Grid,
    dims: (usize, usize),
    local: &LocalMat,
    w0: Mat,
    ht0: Mat,
    config: &NmfConfig,
    ws: &mut IterWorkspace,
) -> RankNmfOutput {
    let scheme = Grid2D::new(comm, grid, dims, config.k).with_overlap(config.overlap);
    assert_eq!(
        (local.nrows(), local.ncols()),
        scheme.block_shape(),
        "local block shape mismatch"
    );
    assert_eq!(w0.shape(), scheme.w_shape());
    assert_eq!(ht0.shape(), scheme.ht_shape());

    let mut engine = AnlsEngine::with_workspace(scheme, local, config, w0, ht0, std::mem::take(ws));
    engine.run();
    let (out, ws_back) = engine.into_rank_output_and_workspace();
    *ws = ws_back;
    out
}
