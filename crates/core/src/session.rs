//! The session API: the primary public surface of the crate.
//!
//! [`Nmf::on`] opens a fallible builder over an input matrix;
//! [`NmfBuilder::build`] validates the whole request up front (rank
//! bounds, grid divisibility, solver limits, policy sanity, warm-start
//! shapes) and returns a [`Model`] — a long-lived, `Send` handle on a
//! factorization in flight:
//!
//! ```
//! use hpc_nmf::prelude::*;
//! use nmf_matrix::rng::Fill;
//! use nmf_matrix::Mat;
//!
//! let a = Input::Dense(Mat::uniform(30, 20, 7));
//! let mut model = Nmf::on(&a)
//!     .rank(4)
//!     .ranks(4)
//!     .algo(Algo::Hpc2D)
//!     .solver(SolverKind::Bpp)
//!     .max_iters(8)
//!     .build()
//!     .expect("valid request");
//! model.step();                       // one collective ANLS iteration
//! let (w, h) = model.factors();       // live mid-run factors
//! assert_eq!((w.shape(), h.shape()), ((30, 4), (4, 20)));
//! let reason = model.run();           // drive to the stopping condition
//! assert_eq!(reason, StopReason::MaxIters);
//! ```
//!
//! ## How the generics disappear
//!
//! The iteration core is `AnlsEngine<S: CommScheme, D: AnlsData>`, whose
//! scheme borrows a rank-local communicator and whose data borrows
//! rank-local matrix blocks — lifetimes a long-lived handle cannot name.
//! The session inverts the ownership: [`Model`] owns a virtual-MPI
//! universe ([`nmf_vmpi::universe::seats`]) and one OS thread per rank;
//! each worker thread owns its communicator and its data block(s),
//! builds the concrete engine *in its own stack frame*, and serves it
//! through the object-safe [`EngineDyn`] — so the controller speaks one
//! protocol regardless of which of the three communication schemes is
//! running. Iterations remain collective: every command is broadcast to
//! all ranks and their replies are aggregated exactly as the batch
//! harness aggregated per-rank results.
//!
//! ## Pause, persist, resume
//!
//! A model can be checkpointed at any iteration boundary with
//! [`Model::save`] and reconstructed — in a new process, against a
//! freshly loaded input — with [`Model::load`]; the resumed trajectory
//! is bit-identical to the uninterrupted one (`tests/checkpoint_resume.rs`
//! drives this through disk for all three schemes). [`Model::refit`]
//! restarts the same universe on a new configuration (e.g. the next `k`
//! of a rank sweep) without respawning threads or re-sharding the data.

use crate::checkpoint::{
    read_checkpoint, write_checkpoint, write_checkpoint_rotated, Checkpoint, CheckpointMeta,
};
use crate::config::{
    init_ht, init_w, ConvergencePolicy, IterRecord, NmfConfig, NmfOutput, StopReason, TaskTimes,
};
use crate::dist::{Dist1D, Part};
use crate::engine::{
    AnlsEngine, ConvergenceState, EngineDyn, Grid2D, LocalScheme, Replicated1D, SplitBlocks,
};
use crate::error::{grid_fits, NmfError};
use crate::grid::Grid;
use crate::harness::Algo;
use crate::input::Input;
use crate::regrid::RegridTarget;
use crate::shared::{extract_rank_data, RankData, ShardKey, SharedInput};
use crate::workspace::IterWorkspace;
use nmf_matrix::Mat;
use nmf_nls::SolverKind;
use nmf_vmpi::universe::{seats, Seat};
use nmf_vmpi::{Comm, CommStats};
use std::path::Path;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where a build gets its data: a borrowed whole matrix (blocks are
/// extracted fresh) or a [`SharedInput`] (blocks come from its sharding
/// cache).
#[derive(Clone, Copy)]
enum InputSource<'a> {
    Whole(&'a Input),
    Shared(&'a SharedInput),
}

impl InputSource<'_> {
    fn shape(&self) -> (usize, usize) {
        match self {
            InputSource::Whole(input) => input.shape(),
            InputSource::Shared(shared) => shared.shape(),
        }
    }

    fn fro_norm_sq(&self) -> f64 {
        match self {
            InputSource::Whole(input) => input.fro_norm_sq(),
            InputSource::Shared(shared) => shared.fro_norm_sq(),
        }
    }

    /// The per-rank blocks for `key`: freshly extracted for a whole
    /// matrix, served from (and populated into) the sharding cache for
    /// a shared input.
    fn rank_data(&self, key: ShardKey) -> Arc<Vec<RankData>> {
        match self {
            InputSource::Whole(input) => {
                let (m, n) = input.shape();
                Arc::new(extract_rank_data(
                    &|r0, c0, nr, nc| input.block(r0, c0, nr, nc),
                    key,
                    m,
                    n,
                ))
            }
            InputSource::Shared(shared) => shared.rank_data(key),
        }
    }
}

/// Entry point of the session API. See the [module docs](self).
pub struct Nmf;

impl Nmf {
    /// Starts building a factorization of `input`. The builder borrows
    /// the input only until [`build`](NmfBuilder::build); the resulting
    /// [`Model`] owns copies of the per-rank blocks and is `'static`.
    pub fn on(input: &Input) -> NmfBuilder<'_> {
        Nmf::from_source(InputSource::Whole(input))
    }

    /// Starts building a factorization over a [`SharedInput`], reusing
    /// its cached per-rank blocks (and populating the cache on first
    /// use). Successive builds with the same algorithm shape — a rank
    /// sweep, serving tenants over one dataset — share the resident
    /// blocks instead of re-extracting them.
    pub fn on_shared(input: &SharedInput) -> NmfBuilder<'_> {
        Nmf::from_source(InputSource::Shared(input))
    }

    fn from_source(input: InputSource<'_>) -> NmfBuilder<'_> {
        NmfBuilder {
            input,
            config: NmfConfig::new(1),
            k_set: false,
            algo: Algo::Sequential,
            ranks: 1,
            grid_override: None,
            warm: None,
            resume: None,
        }
    }

    /// Starts resuming an already-read [`Checkpoint`] — on its recorded
    /// grid by default (a pure, bit-identical resume), or *elastically*
    /// on a different algorithm/grid/rank-count via the builder's
    /// [`algo`](ResumeBuilder::algo) / [`grid`](ResumeBuilder::grid) /
    /// [`ranks`](ResumeBuilder::ranks) overrides (see [`crate::regrid`]).
    /// An input must be attached with [`on`](ResumeBuilder::on) or
    /// [`on_shared`](ResumeBuilder::on_shared) before
    /// [`build`](ResumeBuilder::build).
    pub fn resume_from(ck: Checkpoint) -> ResumeBuilder<'static> {
        ResumeBuilder {
            ck,
            input: None,
            target: RegridTarget::new(),
            max_iters: None,
        }
    }
}

/// Resumes a checkpoint, optionally on a different grid, scheme, or
/// rank count. Produced by [`Nmf::resume_from`]; the one-shot wrappers
/// are [`Model::load_regrid`] and [`Model::load_regrid_shared`].
///
/// The checkpoint's `k`, solver, seed, and regularization are the
/// trajectory being continued and cannot be overridden (use
/// [`Model::refit`] to start a new trajectory); `max_iters` *can* be
/// raised, since extending a resumed run past its original budget is
/// the point of resuming.
pub struct ResumeBuilder<'a> {
    ck: Checkpoint,
    input: Option<InputSource<'a>>,
    target: RegridTarget,
    max_iters: Option<usize>,
}

impl<'a> ResumeBuilder<'a> {
    /// Attaches the data matrix the checkpoint was taken from (shape is
    /// verified at build; content is the caller's contract — the
    /// checkpoint stores factors, not data).
    pub fn on<'b>(self, input: &'b Input) -> ResumeBuilder<'b> {
        ResumeBuilder {
            ck: self.ck,
            input: Some(InputSource::Whole(input)),
            target: self.target,
            max_iters: self.max_iters,
        }
    }

    /// Attaches a [`SharedInput`]: the resumed model draws its blocks
    /// from the shared sharding cache — the regrid re-sharder path, and
    /// how an mmap-backed input resumes without loading the matrix.
    pub fn on_shared<'b>(self, input: &'b SharedInput) -> ResumeBuilder<'b> {
        ResumeBuilder {
            ck: self.ck,
            input: Some(InputSource::Shared(input)),
            target: self.target,
            max_iters: self.max_iters,
        }
    }

    /// Overrides the algorithm / communication scheme.
    pub fn algo(mut self, algo: Algo) -> Self {
        self.target = self.target.algo(algo);
        self
    }

    /// Overrides the rank count (the grid is re-derived to fit).
    pub fn ranks(mut self, p: usize) -> Self {
        self.target = self.target.ranks(p);
        self
    }

    /// Overrides the processor grid explicitly.
    pub fn grid(mut self, grid: Grid) -> Self {
        self.target = self.target.grid(grid);
        self
    }

    /// Replaces the whole override set at once (the [`RegridTarget`]
    /// form used by `Model::load_regrid` and the serving layer).
    pub fn target(mut self, target: RegridTarget) -> Self {
        self.target = target;
        self
    }

    /// Raises (or lowers) the total-iteration cap for the resumed run.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = Some(iters);
        self
    }

    /// Resolves the target against the checkpoint, globalized factors
    /// become the warm start, and the session builder re-shards them
    /// (and the input) along the target layout. Validation is the full
    /// [`NmfBuilder::build`] pass, so an unfittable target grid fails
    /// with the usual actionable [`NmfError`].
    pub fn build(self) -> Result<Model, NmfError> {
        let input = self.input.ok_or(NmfError::MissingInput)?;
        let (m, n) = input.shape();
        self.ck.meta.check_compatible(m, n)?;
        let (algo, ranks, grid_override) = self.target.resolve(&self.ck.meta);
        let mut config = self.ck.meta.config;
        if let Some(iters) = self.max_iters {
            config.max_iters = iters;
        }
        let mut b = Nmf::from_source(input)
            .config(config)
            .algo(algo)
            .ranks(ranks)
            .warm_start(self.ck.w, self.ck.ht)
            .resume_state(self.ck.state);
        if let Some(g) = grid_override {
            b = b.grid_override(g);
        }
        b.build()
    }
}

/// A fallible builder for a [`Model`]. Every setter is infallible;
/// [`build`](NmfBuilder::build) performs all validation at once and
/// reports the first violated constraint as an [`NmfError`] with an
/// actionable message.
pub struct NmfBuilder<'a> {
    input: InputSource<'a>,
    config: NmfConfig,
    k_set: bool,
    algo: Algo,
    ranks: usize,
    /// Exact grid to use for the HPC algorithms (set by checkpoint
    /// resume so the restarted run replays the recorded grid even if
    /// [`Grid::optimal`]'s tie-breaking ever changes).
    grid_override: Option<Grid>,
    warm: Option<(Mat, Mat)>,
    resume: Option<ConvergenceState>,
}

impl<'a> NmfBuilder<'a> {
    /// Sets the factorization rank `k`. Required (directly or via
    /// [`config`](Self::config)).
    pub fn rank(mut self, k: usize) -> Self {
        self.config.k = k;
        self.k_set = true;
        self
    }

    /// Sets the number of virtual MPI ranks (default 1).
    pub fn ranks(mut self, p: usize) -> Self {
        self.ranks = p;
        self
    }

    /// Sets the algorithm / communication scheme (default
    /// [`Algo::Sequential`]).
    pub fn algo(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Sets the local NLS solver (default BPP).
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.config.solver = solver;
        self
    }

    /// Sets the outer-iteration cap (default 20).
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.config.max_iters = iters;
        self
    }

    /// Sets the relative-improvement early-stop tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.config.tol = Some(tol);
        self
    }

    /// Sets an explicit convergence policy (overrides [`tol`](Self::tol)).
    pub fn convergence(mut self, policy: ConvergencePolicy) -> Self {
        self.config.convergence = Some(policy);
        self
    }

    /// Sets the factor-initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets Frobenius regularization on both factors (validated at
    /// build time, unlike [`NmfConfig::with_l2`] which asserts).
    pub fn l2(mut self, l2_w: f64, l2_h: f64) -> Self {
        self.config.l2_w = l2_w;
        self.config.l2_h = l2_h;
        self
    }

    /// Replaces the entire configuration (the bridge from the classic
    /// [`NmfConfig`] API; implies [`rank`](Self::rank)).
    pub fn config(mut self, config: NmfConfig) -> Self {
        self.config = config;
        self.k_set = true;
        self
    }

    /// Starts from explicit factors instead of the seeded random
    /// initialization: `w0` is `m×k`, `ht0` is `n×k` (`H` transposed).
    pub fn warm_start(mut self, w0: Mat, ht0: Mat) -> Self {
        self.warm = Some((w0, ht0));
        self
    }

    pub(crate) fn resume_state(mut self, state: ConvergenceState) -> Self {
        self.resume = Some(state);
        self
    }

    pub(crate) fn grid_override(mut self, grid: Grid) -> Self {
        self.grid_override = Some(grid);
        self
    }

    /// Validates the whole request and spawns the model's universe.
    pub fn build(self) -> Result<Model, NmfError> {
        let (m, n) = self.input.shape();
        if !self.k_set {
            return Err(NmfError::MissingRank);
        }
        let grid = validate_run(
            m,
            n,
            self.algo,
            self.grid_override,
            self.ranks,
            &self.config,
        )?;
        let k = self.config.k;

        let (w0, ht0) = match self.warm {
            Some((w0, ht0)) => {
                for (which, mat, expected) in [("W", &w0, (m, k)), ("H^T", &ht0, (n, k))] {
                    if mat.shape() != expected {
                        return Err(NmfError::WarmStartShape {
                            which,
                            expected,
                            got: mat.shape(),
                        });
                    }
                    if !mat.all_nonnegative() || !mat.all_finite() {
                        return Err(NmfError::WarmStartInvalid { which });
                    }
                }
                (w0, ht0)
            }
            None => (
                init_w(m, k, self.config.seed),
                init_ht(n, k, self.config.seed),
            ),
        };

        Ok(Model::spawn(
            self.input,
            self.config,
            self.algo,
            grid,
            self.ranks,
            w0,
            ht0,
            self.resume,
        ))
    }
}

/// Validates a run request (shared by [`NmfBuilder::build`] and
/// [`Model::refit`]) and returns the processor grid it will use.
fn validate_run(
    m: usize,
    n: usize,
    algo: Algo,
    grid_override: Option<Grid>,
    ranks: usize,
    config: &NmfConfig,
) -> Result<Grid, NmfError> {
    if m == 0 || n == 0 {
        return Err(NmfError::EmptyInput { m, n });
    }
    let k = config.k;
    if k == 0 || k > m.min(n) {
        return Err(NmfError::RankOutOfRange { k, m, n });
    }
    // BPP tracks passive sets in fixed-width bitmasks (see
    // `nmf_nls::bpp`); beyond its limit the solver would assert at the
    // first iteration, deep inside the harness.
    const BPP_K_LIMIT: usize = 128;
    if config.solver == SolverKind::Bpp && k > BPP_K_LIMIT {
        return Err(NmfError::SolverRankLimit {
            solver: config.solver,
            k,
            limit: BPP_K_LIMIT,
        });
    }
    if ranks == 0 {
        return Err(NmfError::NoRanks);
    }
    if let Some(t) = config.tol {
        if !t.is_finite() || t < 0.0 {
            return Err(NmfError::InvalidTolerance { tol: t });
        }
    }
    match config.convergence {
        Some(ConvergencePolicy::RelTol { tol }) if !tol.is_finite() || tol < 0.0 => {
            return Err(NmfError::InvalidTolerance { tol });
        }
        Some(ConvergencePolicy::WindowedBudget { window, tol, .. }) => {
            if window == 0 {
                return Err(NmfError::InvalidWindow);
            }
            if tol.is_nan() || tol < 0.0 {
                return Err(NmfError::InvalidTolerance { tol });
            }
        }
        _ => {}
    }
    if !(config.l2_w.is_finite() && config.l2_h.is_finite())
        || config.l2_w < 0.0
        || config.l2_h < 0.0
    {
        return Err(NmfError::InvalidRegularization {
            l2_w: config.l2_w,
            l2_h: config.l2_h,
        });
    }

    match algo {
        Algo::Sequential => {
            if ranks != 1 {
                return Err(NmfError::SequentialRanks { ranks });
            }
            Ok(Grid::new(1, 1))
        }
        Algo::Naive => {
            if ranks > m.min(n) {
                return Err(NmfError::TooManyRanks {
                    algo: "Naive-Parallel",
                    ranks,
                    m,
                    n,
                });
            }
            Ok(Grid::one_dimensional(ranks))
        }
        Algo::Hpc1D | Algo::Hpc2D | Algo::HpcGrid(_) => {
            let grid = match grid_override {
                Some(g) => g,
                None => match algo {
                    Algo::HpcGrid(g) => g,
                    _ => algo.grid(m, n, ranks),
                },
            };
            if grid.size() != ranks {
                return Err(NmfError::GridMismatch { grid, ranks });
            }
            if !grid_fits(grid, m, n) {
                return Err(NmfError::GridTooLarge { grid, m, n });
            }
            Ok(grid)
        }
    }
}

/// Where one rank's factor slices live in the global matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RankLayout {
    /// Global `W`-row slice.
    pub(crate) w: Part,
    /// Global `H`-column slice (rows of `Hᵀ`).
    pub(crate) ht: Part,
}

/// The factor slicing a `(algo, grid, ranks)` triple induces on the
/// global `W` (`m×k`) and `Hᵀ` (`n×k`) matrices, one entry per rank.
///
/// The single source of truth shared by session spawn (scattering warm
/// starts), snapshot reassembly, the versioned checkpoint factor
/// section, and the regrid globalizer — all four must agree on these
/// offsets for resume to be bit-identical.
pub(crate) fn factor_layouts(
    algo: Algo,
    grid: Grid,
    ranks: usize,
    m: usize,
    n: usize,
) -> Vec<RankLayout> {
    match algo {
        Algo::Sequential => vec![RankLayout {
            w: Part { offset: 0, len: m },
            ht: Part { offset: 0, len: n },
        }],
        Algo::Naive => {
            let dist_m = Dist1D::new(m, ranks);
            let dist_n = Dist1D::new(n, ranks);
            (0..ranks)
                .map(|r| RankLayout {
                    w: dist_m.part(r),
                    ht: dist_n.part(r),
                })
                .collect()
        }
        Algo::Hpc1D | Algo::Hpc2D | Algo::HpcGrid(_) => (0..ranks)
            .map(|r| {
                let lay = hpc_rank_layout(grid, m, n, r);
                RankLayout {
                    w: lay.w,
                    ht: lay.ht,
                }
            })
            .collect(),
    }
}

/// Which scheme a worker should build (the data blocks already encode
/// the distribution).
#[derive(Clone, Copy, Debug)]
enum Spec {
    Seq,
    Naive,
    Hpc(Grid),
}

impl Spec {
    /// The sharding this scheme needs for `ranks` ranks (the
    /// [`SharedInput`] cache key).
    fn shard_key(&self, ranks: usize) -> ShardKey {
        match self {
            Spec::Seq => ShardKey::Seq,
            Spec::Naive => ShardKey::Naive { p: ranks },
            Spec::Hpc(g) => ShardKey::Grid { pr: g.pr, pc: g.pc },
        }
    }
}

/// Controller → worker commands. Every command is answered by exactly
/// one [`Reply`]; `Shutdown` ends the worker.
enum Cmd {
    Step,
    Snapshot,
    /// Communication counters only — no factor clones, for callers that
    /// just want instrumentation.
    Stats,
    SetPolicy(ConvergencePolicy),
    Reinit(Box<ReinitMsg>),
    Shutdown,
}

/// Payload of [`Cmd::Reinit`] (boxed to keep the command enum small).
struct ReinitMsg {
    config: NmfConfig,
    w0: Mat,
    ht0: Mat,
    state: Option<ConvergenceState>,
}

/// Worker → controller replies.
enum Reply {
    Step {
        rec: IterRecord,
        stop: Option<StopReason>,
    },
    Snapshot {
        w: Mat,
        ht: Mat,
        state: ConvergenceState,
        stats: CommStats,
    },
    Stats(CommStats),
    Ack,
}

/// Builds the concrete engine for one rank, erasing the scheme/data
/// generics. Collective when the scheme is (communicator splits, the
/// `‖A‖²` all-reduce), so every rank must call it in the same sequence.
#[allow(clippy::too_many_arguments)]
fn build_engine<'a>(
    comm: &'a Comm,
    spec: Spec,
    dims: (usize, usize),
    data: &'a RankData,
    config: &NmfConfig,
    w0: Mat,
    ht0: Mat,
    ws: IterWorkspace,
) -> Box<dyn EngineDyn + 'a> {
    match (spec, data) {
        (Spec::Seq, RankData::Single(a)) => Box::new(AnlsEngine::with_workspace(
            LocalScheme::new(dims.0, dims.1),
            a.as_ref(),
            config,
            w0,
            ht0,
            ws,
        )),
        (Spec::Naive, RankData::Split { row, col }) => Box::new(AnlsEngine::with_workspace(
            Replicated1D::new(comm, dims, config.k),
            SplitBlocks {
                row_block: row.as_ref(),
                col_block: col.as_ref(),
            },
            config,
            w0,
            ht0,
            ws,
        )),
        (Spec::Hpc(grid), RankData::Single(a)) => Box::new(AnlsEngine::with_workspace(
            Grid2D::new(comm, grid, dims, config.k).with_overlap(config.overlap),
            a.as_ref(),
            config,
            w0,
            ht0,
            ws,
        )),
        _ => unreachable!("scheme spec does not match the data distribution"),
    }
}

/// One rank's service loop: owns the communicator and data blocks for
/// the lifetime of the session, rebuilding the engine only on `Reinit`.
#[allow(clippy::too_many_arguments)]
fn worker(
    seat: Seat,
    spec: Spec,
    dims: (usize, usize),
    data: RankData,
    config: NmfConfig,
    w0: Mat,
    ht0: Mat,
    resume: Option<ConvergenceState>,
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<Reply>,
) {
    let comm = seat.into_comm();
    let mut engine = build_engine(
        &comm,
        spec,
        dims,
        &data,
        &config,
        w0,
        ht0,
        IterWorkspace::default(),
    );
    if let Some(st) = resume {
        engine.restore_convergence_state(st);
    }
    while let Ok(cmd) = rx.recv() {
        let reply = match cmd {
            Cmd::Step => {
                let rec = engine.step_dyn();
                Reply::Step {
                    rec,
                    stop: engine.stop_reason(),
                }
            }
            Cmd::Snapshot => {
                let (w, ht) = engine.factors();
                Reply::Snapshot {
                    w: w.clone(),
                    ht: ht.clone(),
                    state: engine.convergence_state(),
                    stats: engine.comm_stats(),
                }
            }
            Cmd::Stats => Reply::Stats(engine.comm_stats()),
            Cmd::SetPolicy(p) => {
                engine.set_policy(p);
                Reply::Ack
            }
            Cmd::Reinit(msg) => {
                let ReinitMsg {
                    config,
                    w0,
                    ht0,
                    state,
                } = *msg;
                let ws = engine.take_workspace();
                engine = build_engine(&comm, spec, dims, &data, &config, w0, ht0, ws);
                if let Some(st) = state {
                    engine.restore_convergence_state(st);
                }
                Reply::Ack
            }
            Cmd::Shutdown => return,
        };
        if tx.send(reply).is_err() {
            return; // controller dropped; unwind quietly
        }
    }
}

struct WorkerHandle {
    cmd: mpsc::Sender<Cmd>,
    reply: mpsc::Receiver<Reply>,
}

/// What a bounded [`Model::step_up_to`] slice accomplished.
#[derive(Clone, Copy, Debug)]
pub struct StepProgress {
    /// Iterations actually executed in this slice (`< n` iff the model
    /// finished mid-slice or had already finished).
    pub steps_run: usize,
    /// Total iterations of the model after the slice.
    pub iterations: usize,
    /// Objective after the slice.
    pub objective: f64,
    /// The stop condition, if the run is over.
    pub stop: Option<StopReason>,
}

/// A live factorization session: the object-safe, `Send` handle the
/// builder produces. See the [module docs](self) for the design.
///
/// All methods that advance or inspect the distributed state are
/// collective under the hood but look like ordinary method calls; the
/// handle may be moved freely across threads (each worker's
/// communicator stays pinned to its own rank thread).
pub struct Model {
    m: usize,
    n: usize,
    norm_a_sq: f64,
    config: NmfConfig,
    algo: Algo,
    grid: Grid,
    ranks: usize,
    layout: Vec<RankLayout>,
    workers: Vec<WorkerHandle>,
    handles: Vec<JoinHandle<()>>,
    /// Aggregated per-iteration records (critical-path compute, merged
    /// comm) for the iterations run by *this* handle.
    records: Vec<IterRecord>,
    /// Iterations executed before this handle existed (checkpoint
    /// resume).
    base_iterations: usize,
    /// Objective to report before the first post-resume iteration.
    initial_objective: f64,
    stop: Option<StopReason>,
}

impl Model {
    #[allow(clippy::too_many_arguments)]
    fn spawn(
        input: InputSource<'_>,
        config: NmfConfig,
        algo: Algo,
        grid: Grid,
        ranks: usize,
        w0: Mat,
        ht0: Mat,
        resume: Option<ConvergenceState>,
    ) -> Model {
        let (m, n) = input.shape();
        let norm_a_sq = input.fro_norm_sq();
        let spec = match algo {
            Algo::Sequential => Spec::Seq,
            Algo::Naive => Spec::Naive,
            _ => Spec::Hpc(grid),
        };
        let layout = factor_layouts(algo, grid, ranks, m, n);

        let base_iterations = resume.as_ref().map_or(0, |s| s.iterations_done);
        let initial_objective = resume
            .as_ref()
            .map(|s| s.prev_objective)
            .filter(|o| o.is_finite())
            .unwrap_or(norm_a_sq);

        // One sharding for the whole universe: a shared input serves
        // (or fills) its cache, a whole input extracts fresh. Either
        // way each worker receives cheap `Arc` clones of its blocks.
        let rank_data = input.rank_data(spec.shard_key(ranks));
        debug_assert_eq!(rank_data.len(), ranks);

        let mut workers = Vec::with_capacity(ranks);
        let mut handles = Vec::with_capacity(ranks);
        for (r, seat) in seats(ranks).into_iter().enumerate() {
            let data = rank_data[r].clone();
            let lay = layout[r];
            let w0_local = w0.rows_block(lay.w.offset, lay.w.len);
            let ht0_local = ht0.rows_block(lay.ht.offset, lay.ht.len);
            let (cmd_tx, cmd_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            let st = resume.clone();
            let handle = std::thread::Builder::new()
                .name(format!("nmf-session-rank-{r}"))
                .spawn(move || {
                    worker(
                        seat,
                        spec,
                        (m, n),
                        data,
                        config,
                        w0_local,
                        ht0_local,
                        st,
                        cmd_rx,
                        reply_tx,
                    )
                })
                .expect("failed to spawn session rank thread");
            workers.push(WorkerHandle {
                cmd: cmd_tx,
                reply: reply_rx,
            });
            handles.push(handle);
        }

        Model {
            m,
            n,
            norm_a_sq,
            config,
            algo,
            grid,
            ranks,
            layout,
            workers,
            handles,
            records: Vec::new(),
            base_iterations,
            initial_objective,
            stop: None,
        }
    }

    fn send(&self, r: usize, cmd: Cmd) {
        self.workers[r]
            .cmd
            .send(cmd)
            .unwrap_or_else(|_| panic!("session worker {r} exited unexpectedly"));
    }

    fn recv(&self, r: usize) -> Reply {
        self.workers[r]
            .reply
            .recv()
            .unwrap_or_else(|_| panic!("session worker {r} died (a rank thread panicked)"))
    }

    fn expect_acks(&self) {
        for r in 0..self.workers.len() {
            match self.recv(r) {
                Reply::Ack => {}
                _ => panic!("protocol mismatch from session worker {r}"),
            }
        }
    }

    /// Executes exactly one collective ANLS outer iteration and returns
    /// its aggregated record (critical-path compute times across ranks,
    /// merged communication counters).
    ///
    /// Like [`AnlsEngine::step`], this ignores `max_iters` and any
    /// previously reached stop condition — stepping past a stop is
    /// legitimate for serving loops with spare capacity.
    pub fn step(&mut self) -> &IterRecord {
        for r in 0..self.workers.len() {
            self.send(r, Cmd::Step);
        }
        let mut agg: Option<IterRecord> = None;
        let mut stop = None;
        for r in 0..self.workers.len() {
            let Reply::Step { rec, stop: s } = self.recv(r) else {
                panic!("protocol mismatch from session worker {r}");
            };
            match &mut agg {
                None => {
                    agg = Some(rec);
                    stop = s;
                }
                Some(a) => {
                    debug_assert!(
                        (a.objective - rec.objective).abs() <= 1e-9 * a.objective.abs().max(1.0),
                        "objective must agree across ranks"
                    );
                    debug_assert_eq!(stop, s, "stop decision must agree across ranks");
                    a.compute = a.compute.max(&rec.compute);
                    a.comm.max_merge(&rec.comm);
                }
            }
        }
        self.records.push(agg.expect("at least one rank"));
        self.stop = stop;
        self.records.last().expect("just pushed")
    }

    /// Runs **at most** `n` collective iterations, stopping early at the
    /// convergence policy or the `max_iters` cap, and reports how far it
    /// got. Unlike [`run`](Self::run) this never drives to completion:
    /// it is the scheduling primitive for serving loops that interleave
    /// many models on one machine — grant a model a bounded slice of
    /// engine time, observe its progress, move to the next model.
    ///
    /// Reaching the `max_iters` cap here records
    /// [`StopReason::MaxIters`], exactly as [`run`](Self::run) would, so
    /// [`is_finished`](Self::is_finished) flips without the caller ever
    /// blocking for the rest of the run.
    pub fn step_up_to(&mut self, n: usize) -> StepProgress {
        let mut steps_run = 0;
        while steps_run < n && !self.is_finished() {
            self.step();
            steps_run += 1;
        }
        if self.stop.is_none() && self.iterations() >= self.config.max_iters {
            self.stop = Some(StopReason::MaxIters);
        }
        StepProgress {
            steps_run,
            iterations: self.iterations(),
            objective: self.objective(),
            stop: self.stop,
        }
    }

    /// Whether this model has nothing left to do: a stop condition fired
    /// or the iteration cap is spent. Purely local bookkeeping — no
    /// worker round-trip — so schedulers can poll it per quantum.
    pub fn is_finished(&self) -> bool {
        self.stop.is_some() || self.iterations() >= self.config.max_iters
    }

    /// Iterations left under the `max_iters` cap (0 when
    /// [`is_finished`](Self::is_finished); stop conditions can end the
    /// run earlier).
    pub fn remaining_iters(&self) -> usize {
        if self.stop.is_some() {
            return 0;
        }
        self.config.max_iters.saturating_sub(self.iterations())
    }

    /// Bytes of factor state this session keeps resident: one assembled
    /// copy of `W` (`m×k`) and `Hᵀ` (`n×k`) distributed across its rank
    /// threads. The admission-control currency of the serving layer
    /// (input blocks and iteration workspaces are excluded — they scale
    /// the same way and the quota is a budget, not an audit).
    pub fn factor_bytes(&self) -> usize {
        8 * (self.m + self.n) * self.config.k
    }

    /// Drives [`step`](Self::step) until the configured convergence
    /// policy stops or `max_iters` total iterations (including any from
    /// before a resume) have run.
    pub fn run(&mut self) -> StopReason {
        self.run_observed(|_, _| {})
    }

    /// [`run`](Self::run) with a different convergence policy from this
    /// point on (broadcast to every rank before the first step, so the
    /// collective schedule stays agreed).
    pub fn run_with(&mut self, policy: ConvergencePolicy) -> StopReason {
        for r in 0..self.workers.len() {
            self.send(r, Cmd::SetPolicy(policy));
        }
        self.expect_acks();
        self.run()
    }

    /// [`run`](Self::run), invoking `observer` with `(iteration_index,
    /// record)` after every iteration — the hook for progress reporting
    /// or periodic checkpoint triggers.
    pub fn run_observed(&mut self, mut observer: impl FnMut(usize, &IterRecord)) -> StopReason {
        while self.iterations() < self.config.max_iters {
            self.step();
            let idx = self.iterations() - 1;
            observer(idx, self.records.last().expect("step pushed a record"));
            if let Some(reason) = self.stop {
                return reason;
            }
        }
        self.stop = Some(StopReason::MaxIters);
        StopReason::MaxIters
    }

    /// The assembled global factors as of the latest iteration:
    /// `(W, H)` with `W` `m×k` and `H` `k×n`. Valid mid-run — this is
    /// the serving/export path.
    pub fn factors(&self) -> (Mat, Mat) {
        let (w, ht, _, _) = self.snapshot();
        (w, ht.transpose())
    }

    /// Aggregated per-iteration records for the iterations this handle
    /// has run (a resumed model's records start at the checkpoint).
    pub fn records(&self) -> &[IterRecord] {
        &self.records
    }

    /// Total iterations executed, including those before a resume.
    pub fn iterations(&self) -> usize {
        self.base_iterations + self.records.len()
    }

    /// Objective after the latest iteration (`‖A‖²`, the objective of
    /// the all-zero factorization, before the first).
    pub fn objective(&self) -> f64 {
        self.records
            .last()
            .map_or(self.initial_objective, |r| r.objective)
    }

    /// Relative error `‖A − WH‖_F / ‖A‖_F` as of the latest iteration.
    pub fn rel_error(&self) -> f64 {
        self.objective().max(0.0).sqrt() / self.norm_a_sq.sqrt().max(f64::MIN_POSITIVE)
    }

    /// Why the model last decided to stop, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// The run configuration.
    pub fn config(&self) -> &NmfConfig {
        &self.config
    }

    /// The algorithm this session runs.
    pub fn algo(&self) -> Algo {
        self.algo
    }

    /// The processor grid in use.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// The number of virtual ranks (and worker threads) this model owns.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The input shape `(m, n)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Raises or lowers the total-iteration cap consulted by
    /// [`run`](Self::run) — e.g. to extend a resumed run past its
    /// original budget.
    pub fn set_max_iters(&mut self, max_iters: usize) {
        self.config.max_iters = max_iters;
    }

    /// Writes a durable checkpoint of the current state to `path`
    /// (atomically; see [`crate::checkpoint`] for the format). The
    /// session stays live — call it between [`step`](Self::step)s from
    /// a driving loop to checkpoint every N iterations (the pattern
    /// `nmf_cli --checkpoint-every` uses; the `run_observed` observer
    /// cannot call it, as the observer borrows the model).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), NmfError> {
        let (w, ht, state, _) = self.snapshot();
        let ck = Checkpoint {
            meta: self.meta(),
            state,
            w,
            ht,
        };
        write_checkpoint(path.as_ref(), &ck)
    }

    /// [`save`](Self::save) with a bounded history: before the new
    /// checkpoint lands at `path`, prior generations shift down the
    /// chain `path → path.1 → … → path.keep` (see
    /// [`write_checkpoint_rotated`]). `keep == 0` behaves like `save`.
    pub fn save_rotated(&self, path: impl AsRef<Path>, keep: usize) -> Result<(), NmfError> {
        let (w, ht, state, _) = self.snapshot();
        let ck = Checkpoint {
            meta: self.meta(),
            state,
            w,
            ht,
        };
        write_checkpoint_rotated(path.as_ref(), &ck, keep)
    }

    /// Reconstructs a model from a checkpoint written by
    /// [`save`](Self::save), continuing the **bit-identical** trajectory
    /// of the interrupted run. `input` must be the same data matrix the
    /// checkpoint was taken from (its shape is verified; its content is
    /// the caller's contract — the checkpoint stores factors, not data).
    pub fn load(path: impl AsRef<Path>, input: &Input) -> Result<Model, NmfError> {
        Self::load_from(path, InputSource::Whole(input))
    }

    /// [`load`](Self::load) against a [`SharedInput`]: the resumed
    /// model draws its blocks from the shared sharding cache (an
    /// mmap-backed input resumes without ever loading the whole
    /// matrix).
    pub fn load_shared(path: impl AsRef<Path>, input: &SharedInput) -> Result<Model, NmfError> {
        Self::load_from(path, InputSource::Shared(input))
    }

    /// [`load`](Self::load) onto a **different** grid, scheme, or rank
    /// count: the checkpoint's globalized factors seed a fresh session
    /// on whatever `target` asks for (an empty target is a pure resume).
    /// See [`crate::regrid`] for the elasticity rules.
    pub fn load_regrid(
        path: impl AsRef<Path>,
        input: &Input,
        target: RegridTarget,
    ) -> Result<Model, NmfError> {
        let ck = read_checkpoint(path.as_ref())?;
        Nmf::resume_from(ck).on(input).target(target).build()
    }

    /// [`load_regrid`](Self::load_regrid) against a [`SharedInput`]:
    /// the target layout's blocks come from (and populate) the shared
    /// sharding cache.
    pub fn load_regrid_shared(
        path: impl AsRef<Path>,
        input: &SharedInput,
        target: RegridTarget,
    ) -> Result<Model, NmfError> {
        let ck = read_checkpoint(path.as_ref())?;
        Nmf::resume_from(ck).on_shared(input).target(target).build()
    }

    fn load_from(path: impl AsRef<Path>, input: InputSource<'_>) -> Result<Model, NmfError> {
        let ck = read_checkpoint(path.as_ref())?;
        ResumeBuilder {
            ck,
            input: Some(input),
            target: RegridTarget::new(),
            max_iters: None,
        }
        .build()
    }

    /// The checkpoint metadata this model would write.
    pub fn meta(&self) -> CheckpointMeta {
        CheckpointMeta {
            m: self.m,
            n: self.n,
            ranks: self.ranks,
            algo: self.algo,
            grid: self.grid,
            config: self.config,
        }
    }

    /// Restarts this session on a new configuration — same data, same
    /// universe, same sharding; fresh seeded factors. The rank-sweep
    /// primitive: stepping `k` through several values reuses the spawned
    /// threads, the distributed input blocks, and each rank's iteration
    /// workspace instead of rebuilding the world per candidate rank.
    pub fn refit(&mut self, config: NmfConfig) -> Result<(), NmfError> {
        validate_run(
            self.m,
            self.n,
            self.algo,
            Some(self.grid),
            self.ranks,
            &config,
        )?;
        let w0 = init_w(self.m, config.k, config.seed);
        let ht0 = init_ht(self.n, config.k, config.seed);
        for (r, lay) in self.layout.iter().enumerate() {
            self.send(
                r,
                Cmd::Reinit(Box::new(ReinitMsg {
                    config,
                    w0: w0.rows_block(lay.w.offset, lay.w.len),
                    ht0: ht0.rows_block(lay.ht.offset, lay.ht.len),
                    state: None,
                })),
            );
        }
        self.expect_acks();
        self.config = config;
        self.records.clear();
        self.base_iterations = 0;
        self.initial_objective = self.norm_a_sq;
        self.stop = None;
        Ok(())
    }

    /// Finishes the session and assembles the classic [`NmfOutput`]
    /// (what [`crate::harness::factorize`] returns).
    pub fn into_output(mut self) -> NmfOutput {
        let (w, ht, _, stats) = self.snapshot();
        let objective = self.objective();
        let iters = std::mem::take(&mut self.records);
        NmfOutput {
            w,
            h: ht.transpose(),
            objective,
            rel_error: objective.max(0.0).sqrt() / self.norm_a_sq.sqrt().max(f64::MIN_POSITIVE),
            iterations: iters.len(),
            stop: self.stop.unwrap_or(StopReason::MaxIters),
            iters,
            // The sequential driver has no communicator; keep its
            // historical "no per-rank stats" shape.
            rank_comm: if matches!(self.algo, Algo::Sequential) {
                Vec::new()
            } else {
                stats
            },
        }
    }

    /// Per-rank cumulative communication counters (empty for
    /// [`Algo::Sequential`], which has no communicator). Cheap: unlike
    /// [`factors`](Self::factors), this gathers only the counters, not
    /// the factor blocks.
    pub fn rank_comm(&self) -> Vec<CommStats> {
        if matches!(self.algo, Algo::Sequential) {
            return Vec::new();
        }
        for r in 0..self.workers.len() {
            self.send(r, Cmd::Stats);
        }
        (0..self.workers.len())
            .map(|r| match self.recv(r) {
                Reply::Stats(st) => st,
                _ => panic!("protocol mismatch from session worker {r}"),
            })
            .collect()
    }

    /// Sum of all ranks' communication counters (the session analogue
    /// of [`crate::harness::total_comm`]).
    pub fn total_comm(&self) -> CommStats {
        let mut total = CommStats::new();
        for s in self.rank_comm() {
            total.merge(&s);
        }
        total
    }

    /// Sum of the per-iteration compute breakdowns of
    /// [`records`](Self::records) (the session analogue of
    /// [`NmfOutput::compute_total`]).
    pub fn compute_total(&self) -> TaskTimes {
        let mut t = TaskTimes::default();
        for r in &self.records {
            t.merge(&r.compute);
        }
        t
    }

    /// Collects every rank's factors, convergence state, and comm
    /// counters; assembles the global factor matrices.
    fn snapshot(&self) -> (Mat, Mat, ConvergenceState, Vec<CommStats>) {
        for r in 0..self.workers.len() {
            self.send(r, Cmd::Snapshot);
        }
        let k = self.config.k;
        let mut w_full = Mat::zeros(self.m, k);
        let mut ht_full = Mat::zeros(self.n, k);
        let mut state0: Option<ConvergenceState> = None;
        let mut max_elapsed = Duration::ZERO;
        let mut stats = Vec::with_capacity(self.workers.len());
        for r in 0..self.workers.len() {
            let Reply::Snapshot {
                w,
                ht,
                state,
                stats: st,
            } = self.recv(r)
            else {
                panic!("protocol mismatch from session worker {r}");
            };
            w_full.set_block(self.layout[r].w.offset, 0, &w);
            ht_full.set_block(self.layout[r].ht.offset, 0, &ht);
            // The numeric state is identical on every rank (it derives
            // from all-reduced objectives); the wall clock is not — take
            // the slowest rank's, the conservative budget accounting.
            max_elapsed = max_elapsed.max(state.elapsed);
            if state0.is_none() {
                state0 = Some(state);
            }
            stats.push(st);
        }
        let mut state = state0.expect("at least one rank");
        state.elapsed = max_elapsed;
        (w_full, ht_full, state, stats)
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("shape", &(self.m, self.n))
            .field("k", &self.config.k)
            .field("algo", &self.algo)
            .field("grid", &self.grid)
            .field("ranks", &self.ranks)
            .field("iterations", &self.iterations())
            .field("stop", &self.stop)
            .finish_non_exhaustive()
    }
}

impl Drop for Model {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.cmd.send(Cmd::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One HPC rank's pieces in global coordinates: its `Aᵢⱼ` block extent
/// and its 1D factor slices. The single source of truth for the offset
/// arithmetic shared by block extraction (at spawn) and factor
/// reassembly (at snapshot).
pub(crate) struct HpcRankLayout {
    pub rows: Part,
    pub cols: Part,
    pub w: Part,
    pub ht: Part,
}

pub(crate) fn hpc_rank_layout(grid: Grid, m: usize, n: usize, rank: usize) -> HpcRankLayout {
    let dist_m = Dist1D::new(m, grid.pr);
    let dist_n = Dist1D::new(n, grid.pc);
    let (i, j) = grid.coords(rank);
    let rows = dist_m.part(i);
    let cols = dist_n.part(j);
    let wpart = Dist1D::new(rows.len, grid.pc).part(j);
    let hpart = Dist1D::new(cols.len, grid.pr).part(i);
    HpcRankLayout {
        rows,
        cols,
        w: Part {
            offset: rows.offset + wpart.offset,
            len: wpart.len,
        },
        ht: Part {
            offset: cols.offset + hpart.offset,
            len: hpart.len,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::rng::Fill;

    fn _model_is_send(m: Model) -> impl Send {
        m
    }

    #[test]
    fn builder_defaults_to_sequential_single_rank() {
        let a = Input::Dense(Mat::uniform(20, 14, 5));
        let mut model = Nmf::on(&a).rank(3).max_iters(3).build().expect("valid");
        assert_eq!(model.ranks(), 1);
        assert_eq!(model.algo(), Algo::Sequential);
        let reason = model.run();
        assert_eq!(reason, StopReason::MaxIters);
        assert_eq!(model.iterations(), 3);
        let (w, h) = model.factors();
        assert_eq!(w.shape(), (20, 3));
        assert_eq!(h.shape(), (3, 14));
        assert!(w.all_nonnegative() && h.all_nonnegative());
    }

    #[test]
    fn model_is_a_live_handle_mid_run() {
        let a = Input::Dense(Mat::uniform(24, 18, 9));
        let mut model = Nmf::on(&a)
            .rank(4)
            .ranks(4)
            .algo(Algo::Hpc2D)
            .max_iters(6)
            .build()
            .expect("valid");
        let first = model.step().objective;
        let mid = model.factors();
        assert_eq!(mid.0.shape(), (24, 4));
        let second = model.step().objective;
        assert!(second <= first * (1.0 + 1e-9) + 1e-9);
        assert_eq!(model.iterations(), 2);
        assert_eq!(model.records().len(), 2);
    }

    #[test]
    fn refit_restarts_on_the_same_universe() {
        let a = Input::Dense(Mat::uniform(30, 22, 3));
        let mut model = Nmf::on(&a)
            .rank(3)
            .ranks(4)
            .algo(Algo::Hpc2D)
            .max_iters(4)
            .build()
            .expect("valid");
        model.run();
        let obj_k3 = model.objective();
        model
            .refit(NmfConfig::new(5).with_max_iters(4))
            .expect("refit");
        assert_eq!(model.iterations(), 0);
        model.run();
        assert_eq!(model.iterations(), 4);
        // A fresh model with the same config must agree bit-for-bit —
        // the reused workspace carries no information between fits.
        let mut fresh = Nmf::on(&a)
            .config(NmfConfig::new(5).with_max_iters(4))
            .ranks(4)
            .algo(Algo::Hpc2D)
            .build()
            .expect("valid");
        fresh.run();
        assert_eq!(model.factors().0, fresh.factors().0);
        assert_eq!(model.factors().1, fresh.factors().1);
        assert!(model.objective().is_finite() && obj_k3.is_finite());
    }

    #[test]
    fn run_with_overrides_the_policy() {
        let a = Input::Dense(Mat::uniform(26, 20, 13));
        let mut model = Nmf::on(&a)
            .rank(3)
            .ranks(2)
            .algo(Algo::Naive)
            .max_iters(100)
            .build()
            .expect("valid");
        let reason = model.run_with(ConvergencePolicy::RelTol { tol: 1e-6 });
        assert!(
            matches!(
                reason,
                StopReason::Converged | StopReason::ObjectiveIncreased
            ),
            "policy override should stop early, got {reason:?}"
        );
        assert!(model.iterations() < 100);
    }
}
