//! Processor grids: the `pr × pc` layout of Algorithm 3.

/// A `pr × pc` processor grid with row-major rank order
/// (`rank = i·pc + j`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    pub pr: usize,
    pub pc: usize,
}

impl Grid {
    pub fn new(pr: usize, pc: usize) -> Self {
        assert!(pr >= 1 && pc >= 1);
        Grid { pr, pc }
    }

    /// The 1D grid (`pr = p`, `pc = 1`) the paper prescribes for
    /// tall-and-skinny inputs (`m/p > n`).
    pub fn one_dimensional(p: usize) -> Self {
        Grid { pr: p, pc: 1 }
    }

    /// The communication-minimizing grid for an `m×n` matrix over `p`
    /// processors: the divisor pair `pr·pc = p` minimizing the
    /// per-iteration bandwidth `(pr−1)·n + (pc−1)·m`, which realizes the
    /// paper's prescription `m/pr ≈ n/pc ≈ √(mn/p)` (and degenerates to
    /// the 1D grid when `m/p > n`).
    pub fn optimal(m: usize, n: usize, p: usize) -> Self {
        assert!(p >= 1);
        let mut best = Grid { pr: p, pc: 1 };
        let mut best_cost = f64::INFINITY;
        for pr in 1..=p {
            if !p.is_multiple_of(pr) {
                continue;
            }
            let pc = p / pr;
            let cost = (pr - 1) as f64 * n as f64 + (pc - 1) as f64 * m as f64;
            if cost < best_cost {
                best_cost = cost;
                best = Grid { pr, pc };
            }
        }
        best
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    /// Grid coordinates `(i, j)` of `rank`.
    #[inline]
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank / self.pc, rank % self.pc)
    }

    /// Rank at grid coordinates `(i, j)`.
    #[inline]
    pub fn rank_of(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.pr && j < self.pc);
        i * self.pc + j
    }

    /// Whether this is the degenerate 1D layout.
    pub fn is_one_dimensional(&self) -> bool {
        self.pc == 1 || self.pr == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let g = Grid::new(3, 4);
        for r in 0..12 {
            let (i, j) = g.coords(r);
            assert_eq!(g.rank_of(i, j), r);
        }
    }

    #[test]
    fn optimal_is_square_for_square_matrices() {
        let g = Grid::optimal(10_000, 10_000, 16);
        assert_eq!((g.pr, g.pc), (4, 4));
    }

    #[test]
    fn optimal_is_1d_for_tall_skinny() {
        // Video-like: m/p >> n.
        let g = Grid::optimal(1_013_400, 2_400, 16);
        assert_eq!(g.pc, 1, "tall-skinny input wants a 1D grid, got {g:?}");
    }

    #[test]
    fn optimal_matches_aspect_ratio() {
        // m = 4n, p = 64: ideal pr/pc = m/n = 4 → pr=16, pc=4.
        let g = Grid::optimal(40_000, 10_000, 64);
        assert_eq!((g.pr, g.pc), (16, 4));
    }

    #[test]
    fn optimal_divides_p() {
        for p in [1usize, 6, 24, 96, 216, 384, 600] {
            let g = Grid::optimal(172_800, 115_200, p);
            assert_eq!(g.pr * g.pc, p);
        }
    }

    #[test]
    fn paper_grid_for_ssyn_at_600() {
        // 172800×115200 at p=600: aspect ratio 1.5, best divisor pair is
        // pr=30, pc=20 (30/20 = 1.5 exactly).
        let g = Grid::optimal(172_800, 115_200, 600);
        assert_eq!((g.pr, g.pc), (30, 20));
    }
}
