//! Input matrices: dense or sparse, global or per-rank local blocks.
//!
//! The parallel drivers are generic over density through [`LocalMat`]:
//! the two matrix-multiply kernels (`A·Hᵀ` and `Aᵀ·W`) are the only
//! operations that touch the data matrix, exactly as in the paper
//! ("the data matrix itself is never communicated").

use crate::workspace::SessionPack;
use nmf_matrix::{
    matmul, matmul_into, matmul_packed_scratch_into, matmul_ta, matmul_ta_into, Mat, PackedPanels,
};
use nmf_sparse::{
    spmm_at_dense, spmm_at_dense_auto, spmm_at_dense_auto_into, spmm_at_dense_into, spmm_dense_t,
    spmm_dense_t_into, Csr, SpBlock,
};

/// A whole input matrix (held by the test/benchmark harness; in a real
/// MPI deployment each rank would read only its block from disk).
#[derive(Clone, Debug)]
pub enum Input {
    Dense(Mat),
    Sparse(Csr),
}

impl Input {
    pub fn nrows(&self) -> usize {
        match self {
            Input::Dense(a) => a.nrows(),
            Input::Sparse(a) => a.nrows(),
        }
    }

    pub fn ncols(&self) -> usize {
        match self {
            Input::Dense(a) => a.ncols(),
            Input::Sparse(a) => a.ncols(),
        }
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.nrows(), self.ncols())
    }

    /// Stored nonzeros (dense matrices report `m·n`).
    pub fn nnz(&self) -> usize {
        match self {
            Input::Dense(a) => a.len(),
            Input::Sparse(a) => a.nnz(),
        }
    }

    pub fn is_sparse(&self) -> bool {
        matches!(self, Input::Sparse(_))
    }

    pub fn fro_norm_sq(&self) -> f64 {
        match self {
            Input::Dense(a) => a.fro_norm_sq(),
            Input::Sparse(a) => a.fro_norm_sq(),
        }
    }

    /// Extracts the local block rows `r0..r0+nr`, cols `c0..c0+nc`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> LocalMat {
        match self {
            Input::Dense(a) => LocalMat::Dense(a.block(r0, c0, nr, nc)),
            Input::Sparse(a) => LocalMat::Sparse(SpBlock::from_csr(a.block(r0, c0, nr, nc))),
        }
    }

    /// `A·Hᵀ` with `Hᵀ` supplied as `ht` (`n×k`); output `m×k`.
    pub fn mm_a_ht(&self, ht: &Mat) -> Mat {
        match self {
            Input::Dense(a) => matmul(a, ht),
            Input::Sparse(a) => spmm_dense_t(a, ht),
        }
    }

    /// `A·Hᵀ` into caller-owned `out` (the workspace path).
    pub fn mm_a_ht_into(&self, ht: &Mat, out: &mut Mat) {
        match self {
            Input::Dense(a) => matmul_into(a, ht, out),
            Input::Sparse(a) => spmm_dense_t_into(a, ht, out),
        }
    }

    /// `Aᵀ·W` (`n×k`) for `w` of shape `m×k`.
    pub fn mm_at_w(&self, w: &Mat) -> Mat {
        match self {
            Input::Dense(a) => matmul_ta(a, w),
            Input::Sparse(a) => spmm_at_dense(a, w),
        }
    }

    /// `Aᵀ·W` into caller-owned `out` (the workspace path).
    pub fn mm_at_w_into(&self, w: &Mat, out: &mut Mat) {
        match self {
            Input::Dense(a) => matmul_ta_into(a, w, out),
            Input::Sparse(a) => spmm_at_dense_into(a, w, out),
        }
    }

    /// Builds the once-per-session [`SessionPack`]: dense inputs pack
    /// both operand forms (`A` and `Aᵀ`) into microkernel panels and
    /// pre-size the tile scratch for `·×k` right operands; sparse inputs
    /// clear the pack (their `MM` kernels read the CSR directly).
    pub fn pack_session(&self, pack: &mut SessionPack, k: usize) {
        match self {
            Input::Dense(a) => {
                pack.a.pack_into(a);
                pack.at.pack_transposed_into(a);
            }
            Input::Sparse(_) => pack.clear(),
        }
        pack.reserve_scratch(k);
    }

    /// [`mm_a_ht_into`](Input::mm_a_ht_into) reading the session-packed
    /// `A` panels when present (falls back to pack-per-call if not).
    pub fn mm_a_ht_packed_into(&self, pack: &mut SessionPack, ht: &Mat, out: &mut Mat) {
        match self {
            Input::Dense(a) if pack.a.is_empty() => matmul_into(a, ht, out),
            Input::Dense(_) => matmul_packed_scratch_into(&pack.a, ht, out, &mut pack.bpack),
            Input::Sparse(a) => spmm_dense_t_into(a, ht, out),
        }
    }

    /// [`mm_at_w_into`](Input::mm_at_w_into) reading the session-packed
    /// `Aᵀ` panels when present (falls back to pack-per-call if not).
    pub fn mm_at_w_packed_into(&self, pack: &mut SessionPack, w: &Mat, out: &mut Mat) {
        match self {
            Input::Dense(a) if pack.at.is_empty() => matmul_ta_into(a, w, out),
            Input::Dense(_) => matmul_packed_scratch_into(&pack.at, w, out, &mut pack.bpack),
            Input::Sparse(a) => spmm_at_dense_into(a, w, out),
        }
    }
}

/// One rank's block of the input matrix. Sparse blocks carry both the
/// CSR and its column view over one shared values ordering
/// ([`SpBlock`]), so `A_loc·Hᵀ` runs row-major and `A_locᵀ·W` runs the
/// forward-traversal CSC kernel — bit-identical to the transposed CSR
/// pass, without its scattered output writes.
#[derive(Clone, Debug)]
pub enum LocalMat {
    Dense(Mat),
    Sparse(SpBlock),
}

impl LocalMat {
    pub fn nrows(&self) -> usize {
        match self {
            LocalMat::Dense(a) => a.nrows(),
            LocalMat::Sparse(a) => a.nrows(),
        }
    }

    pub fn ncols(&self) -> usize {
        match self {
            LocalMat::Dense(a) => a.ncols(),
            LocalMat::Sparse(a) => a.ncols(),
        }
    }

    pub fn nnz(&self) -> usize {
        match self {
            LocalMat::Dense(a) => a.len(),
            LocalMat::Sparse(a) => a.nnz(),
        }
    }

    pub fn fro_norm_sq(&self) -> f64 {
        match self {
            LocalMat::Dense(a) => a.fro_norm_sq(),
            LocalMat::Sparse(a) => a.fro_norm_sq(),
        }
    }

    /// Local `A_loc·Hᵀ` (the `MM` task of the `W` update).
    pub fn mm_a_ht(&self, ht: &Mat) -> Mat {
        match self {
            LocalMat::Dense(a) => matmul(a, ht),
            LocalMat::Sparse(a) => spmm_dense_t(a.csr(), ht),
        }
    }

    /// Local `A_loc·Hᵀ` into caller-owned `out` (the workspace path).
    pub fn mm_a_ht_into(&self, ht: &Mat, out: &mut Mat) {
        match self {
            LocalMat::Dense(a) => matmul_into(a, ht, out),
            LocalMat::Sparse(a) => spmm_dense_t_into(a.csr(), ht, out),
        }
    }

    /// Local `A_locᵀ·W` (the `MM` task of the `H` update).
    pub fn mm_at_w(&self, w: &Mat) -> Mat {
        match self {
            LocalMat::Dense(a) => matmul_ta(a, w),
            LocalMat::Sparse(a) => spmm_at_dense_auto(a.csr(), a.csc(), w),
        }
    }

    /// Local `A_locᵀ·W` into caller-owned `out` (the workspace path).
    /// Sparse blocks dispatch by output size: column-forward off the
    /// block's CSC view when `n_loc·k` outgrows the last-level cache,
    /// the CSR transposed pass (bit-identical) otherwise.
    pub fn mm_at_w_into(&self, w: &Mat, out: &mut Mat) {
        match self {
            LocalMat::Dense(a) => matmul_ta_into(a, w, out),
            LocalMat::Sparse(a) => spmm_at_dense_auto_into(a.csr(), a.csc(), w, out),
        }
    }

    /// Packs this block into left-operand panels for `A_loc·Hᵀ` (dense;
    /// sparse blocks clear `p` — the CSR kernels need no packing).
    pub fn pack_a_into(&self, p: &mut PackedPanels) {
        match self {
            LocalMat::Dense(a) => p.pack_into(a),
            LocalMat::Sparse(_) => p.clear(),
        }
    }

    /// Packs this block's transpose into left-operand panels for
    /// `A_locᵀ·W` (dense; sparse blocks clear `p`).
    pub fn pack_at_into(&self, p: &mut PackedPanels) {
        match self {
            LocalMat::Dense(a) => p.pack_transposed_into(a),
            LocalMat::Sparse(_) => p.clear(),
        }
    }

    /// [`mm_a_ht_into`](LocalMat::mm_a_ht_into) reading session-packed
    /// panels when present (falls back to pack-per-call if not).
    pub fn mm_a_ht_packed_into(
        &self,
        p: &PackedPanels,
        ht: &Mat,
        out: &mut Mat,
        scratch: &mut Vec<f64>,
    ) {
        match self {
            LocalMat::Dense(a) if p.is_empty() => matmul_into(a, ht, out),
            LocalMat::Dense(_) => matmul_packed_scratch_into(p, ht, out, scratch),
            LocalMat::Sparse(a) => spmm_dense_t_into(a.csr(), ht, out),
        }
    }

    /// [`mm_at_w_into`](LocalMat::mm_at_w_into) reading session-packed
    /// transpose panels when present (falls back to pack-per-call if not).
    pub fn mm_at_w_packed_into(
        &self,
        p: &PackedPanels,
        w: &Mat,
        out: &mut Mat,
        scratch: &mut Vec<f64>,
    ) {
        match self {
            LocalMat::Dense(a) if p.is_empty() => matmul_ta_into(a, w, out),
            LocalMat::Dense(_) => matmul_packed_scratch_into(p, w, out, scratch),
            LocalMat::Sparse(a) => spmm_at_dense_auto_into(a.csr(), a.csc(), w, out),
        }
    }

    /// Flop count of one `MM` call on this block with rank `k`
    /// (`2·nnz·k`, which for dense equals `2·(m/pr)·(n/pc)·k`).
    pub fn mm_flops(&self, k: usize) -> f64 {
        2.0 * self.nnz() as f64 * k as f64
    }

    /// Resident heap bytes of this block (values plus, for sparse
    /// blocks, both index structures) — the input-side currency of the
    /// serving layer's shared-dataset accounting.
    pub fn resident_bytes(&self) -> usize {
        match self {
            LocalMat::Dense(a) => 8 * a.len(),
            LocalMat::Sparse(a) => a.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::rng::Fill;
    use nmf_sparse::gen::banded;

    #[test]
    fn dense_and_sparse_kernels_agree() {
        let s = banded(12, 2);
        let d = s.to_dense();
        let dense = Input::Dense(d.clone());
        let sparse = Input::Sparse(s);
        let ht = Mat::uniform(12, 4, 1);
        assert!(dense.mm_a_ht(&ht).max_abs_diff(&sparse.mm_a_ht(&ht)) < 1e-12);
        let w = Mat::uniform(12, 4, 2);
        assert!(dense.mm_at_w(&w).max_abs_diff(&sparse.mm_at_w(&w)) < 1e-12);
        assert_eq!(dense.fro_norm_sq(), sparse.fro_norm_sq());
    }

    #[test]
    fn blocks_agree_between_representations() {
        let s = banded(10, 3);
        let dense = Input::Dense(s.to_dense());
        let sparse = Input::Sparse(s);
        let bd = dense.block(2, 1, 5, 6);
        let bs = sparse.block(2, 1, 5, 6);
        match (bd, bs) {
            (LocalMat::Dense(d), LocalMat::Sparse(sp)) => {
                assert!(d.max_abs_diff(&sp.csr().to_dense()) < 1e-15);
            }
            _ => panic!("unexpected block variants"),
        }
    }

    #[test]
    fn mm_flops_counts() {
        let s = banded(10, 1);
        let nnz = s.nnz();
        let lm = LocalMat::Sparse(SpBlock::from_csr(s));
        assert_eq!(lm.mm_flops(5), (2 * nnz * 5) as f64);
        let ld = LocalMat::Dense(Mat::zeros(4, 6));
        assert_eq!(ld.mm_flops(2), (2 * 24 * 2) as f64);
    }
}
