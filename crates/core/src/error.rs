//! The error type of the session API.
//!
//! Every way a factorization request can be invalid — and every way a
//! checkpoint file can be unusable — is a variant of [`NmfError`], so
//! callers branch on *what* went wrong instead of parsing panic strings.
//! Messages are written to be actionable: they state the constraint that
//! was violated **and** a concrete value that would satisfy it (e.g. a
//! grid mismatch lists the grids that do divide the requested rank
//! count).
//!
//! The legacy [`factorize`](crate::harness::factorize) wrappers keep
//! their historical panic behaviour by construction: they build through
//! [`NmfBuilder`](crate::session::NmfBuilder) and panic on `Err`, so the
//! validation logic exists exactly once.

use crate::grid::Grid;
use nmf_nls::SolverKind;
use std::fmt;
use std::path::PathBuf;

/// Why a session request (build, refit, save, load) failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum NmfError {
    /// The input matrix has a zero dimension.
    EmptyInput { m: usize, n: usize },
    /// The builder was never told the factorization rank `k`.
    MissingRank,
    /// A resume builder was never given a data matrix.
    MissingInput,
    /// `k` outside `1..=min(m, n)`.
    RankOutOfRange { k: usize, m: usize, n: usize },
    /// The chosen NLS solver cannot handle this `k`.
    SolverRankLimit {
        solver: SolverKind,
        k: usize,
        limit: usize,
    },
    /// Zero virtual ranks requested.
    NoRanks,
    /// [`Algo::Sequential`](crate::harness::Algo::Sequential) on more
    /// than one rank.
    SequentialRanks { ranks: usize },
    /// A 1D algorithm was given more ranks than the shorter matrix
    /// dimension supports.
    TooManyRanks {
        algo: &'static str,
        ranks: usize,
        m: usize,
        n: usize,
    },
    /// An explicit grid whose size differs from the requested rank count.
    GridMismatch { grid: Grid, ranks: usize },
    /// A grid that leaves some rank without any factor rows/columns.
    GridTooLarge { grid: Grid, m: usize, n: usize },
    /// A negative or non-finite convergence tolerance.
    InvalidTolerance { tol: f64 },
    /// A windowed convergence policy with an empty window.
    InvalidWindow,
    /// Negative or non-finite Frobenius regularization.
    InvalidRegularization { l2_w: f64, l2_h: f64 },
    /// A warm-start factor with the wrong shape. `which` is `"W"` or
    /// `"H^T"`.
    WarmStartShape {
        which: &'static str,
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// A warm-start factor with negative or non-finite entries.
    WarmStartInvalid { which: &'static str },
    /// An I/O failure while reading or writing a checkpoint.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// A checkpoint file that is not a valid checkpoint (bad magic,
    /// truncation, or a payload checksum mismatch).
    Corrupt { path: PathBuf, reason: String },
    /// A checkpoint written by an incompatible format version.
    UnsupportedVersion {
        path: PathBuf,
        found: u32,
        supported: u32,
    },
    /// A checkpoint whose recorded problem shape disagrees with the
    /// input (or with its own factor blocks).
    CheckpointMismatch {
        field: &'static str,
        expected: usize,
        found: usize,
    },
    /// A checkpoint whose stored config fingerprint does not match its
    /// stored config fields (in-place edit or config drift).
    FingerprintMismatch { expected: u64, found: u64 },
    /// One or more invalid command-line arguments (every problem found,
    /// not just the first).
    InvalidArgs { errors: Vec<String> },
}

/// Divisor pairs `(pr, pc)` with `pr·pc = p`, pr ascending — the valid
/// explicit grids for `p` ranks.
fn grids_for(p: usize) -> String {
    let pairs: Vec<String> = (1..=p)
        .filter(|pr| p.is_multiple_of(*pr))
        .map(|pr| format!("{pr}x{}", p / pr))
        .collect();
    pairs.join(", ")
}

/// The largest rank count `≤ p` whose optimal grid fits an `m×n` input
/// (every rank owns at least one `W` row and one `H` column).
pub(crate) fn max_fitting_ranks(m: usize, n: usize, p: usize) -> usize {
    for q in (1..=p).rev() {
        let g = Grid::optimal(m, n, q);
        if grid_fits(g, m, n) {
            return q;
        }
    }
    1
}

/// Whether every rank of `grid` owns at least one `W` row and one `H`
/// column of an `m×n` input (the smallest block must still be divisible
/// among the ranks that share it).
pub(crate) fn grid_fits(grid: Grid, m: usize, n: usize) -> bool {
    m / grid.pr >= grid.pc && n / grid.pc >= grid.pr
}

impl fmt::Display for NmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NmfError::EmptyInput { m, n } => write!(
                f,
                "input matrix is {m}x{n}; both dimensions must be at least 1"
            ),
            NmfError::MissingRank => write!(
                f,
                "no factorization rank set; call .rank(k) (or .config(..)) before .build()"
            ),
            NmfError::MissingInput => write!(
                f,
                "no input attached to the resume; call .on(&input) or .on_shared(&shared) \
                 before .build()"
            ),
            NmfError::RankOutOfRange { k, m, n } => write!(
                f,
                "rank k={k} is outside the valid range 1..={} for a {m}x{n} input",
                m.min(n)
            ),
            NmfError::SolverRankLimit { solver, k, limit } => write!(
                f,
                "solver {solver:?} supports k <= {limit}, but k={k} was requested; \
                 use k <= {limit} or a different solver (e.g. Hals)"
            ),
            NmfError::NoRanks => {
                write!(
                    f,
                    "at least one virtual rank is required; call .ranks(p) with p >= 1"
                )
            }
            NmfError::SequentialRanks { ranks } => write!(
                f,
                "Algo::Sequential runs on exactly one rank, but {ranks} were requested; \
                 use .ranks(1) or a parallel algorithm"
            ),
            NmfError::TooManyRanks { algo, ranks, m, n } => write!(
                f,
                "{algo} distributes both factors over all ranks, so a {m}x{n} input \
                 supports at most {} ranks ({ranks} requested)",
                m.min(n)
            ),
            NmfError::GridMismatch { grid, ranks } => write!(
                f,
                "a {}x{} grid needs {} ranks but {ranks} were requested; \
                 valid grids for {ranks} ranks: {}",
                grid.pr,
                grid.pc,
                grid.size(),
                grids_for(*ranks)
            ),
            NmfError::GridTooLarge { grid, m, n } => write!(
                f,
                "a {}x{} grid over a {m}x{n} input leaves some rank without factor rows \
                 (needs m/pr >= pc and n/pc >= pr); at most {} ranks fit this shape",
                grid.pr,
                grid.pc,
                max_fitting_ranks(*m, *n, grid.size())
            ),
            NmfError::InvalidTolerance { tol } => write!(
                f,
                "convergence tolerance must be finite and >= 0, got {tol}"
            ),
            NmfError::InvalidWindow => write!(
                f,
                "WindowedBudget needs window >= 1 (a 0-iteration look-back can never fire)"
            ),
            NmfError::InvalidRegularization { l2_w, l2_h } => write!(
                f,
                "regularization must be finite and >= 0, got l2_w={l2_w}, l2_h={l2_h}"
            ),
            NmfError::WarmStartShape {
                which,
                expected,
                got,
            } => write!(
                f,
                "warm-start {which} must be {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            NmfError::WarmStartInvalid { which } => write!(
                f,
                "warm-start {which} must be nonnegative and finite \
                 (project with Mat::project_nonnegative first)"
            ),
            NmfError::Io { path, source } => {
                write!(f, "checkpoint I/O failed for {}: {source}", path.display())
            }
            NmfError::Corrupt { path, reason } => {
                write!(f, "checkpoint {} is corrupt: {reason}", path.display())
            }
            NmfError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "checkpoint {} has format version {found}; this build reads versions 1 \
                 through {supported}",
                path.display()
            ),
            NmfError::CheckpointMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint does not match this input: {field} is {found} in the file \
                 but {expected} here"
            ),
            NmfError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint config fingerprint {found:#018x} does not match its own \
                 config fields ({expected:#018x}); the header was altered"
            ),
            NmfError::InvalidArgs { errors } => {
                write!(f, "invalid arguments:")?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for NmfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NmfError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_suggestions_list_divisor_pairs() {
        let e = NmfError::GridMismatch {
            grid: Grid::new(2, 3),
            ranks: 4,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("1x4") && msg.contains("2x2") && msg.contains("4x1"),
            "{msg}"
        );
    }

    #[test]
    fn grid_fits_matches_per_rank_ownership() {
        assert!(grid_fits(Grid::new(2, 2), 20, 16));
        // 20/8 = 2 < 8 columns sharing each block.
        assert!(!grid_fits(Grid::new(8, 8), 20, 16));
        assert!(grid_fits(Grid::new(4, 1), 4, 100));
        assert!(!grid_fits(Grid::new(5, 1), 4, 100));
    }

    #[test]
    fn max_fitting_ranks_is_sane() {
        assert_eq!(max_fitting_ranks(8, 8, 4), 4);
        assert!(max_fitting_ranks(4, 4, 64) <= 16);
        assert!(max_fitting_ranks(1, 1, 10) == 1);
    }
}
