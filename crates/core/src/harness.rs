//! Convenience front-end: run any driver on a shared input matrix.
//!
//! In a production MPI deployment each rank reads its own block from
//! storage; in this reproduction the harness holds the global matrix,
//! launches a virtual-MPI universe, hands every rank its block(s), and
//! reassembles the distributed factors afterwards. Only the block
//! extraction is "free" relative to a real deployment — all iteration
//! communication goes through the virtual MPI and is fully counted.

use crate::config::{init_ht, init_w, IterRecord, NmfConfig, NmfOutput};
use crate::dist::{Dist1D, Part};
use crate::grid::Grid;
use crate::hpc::hpc_nmf_rank;
use crate::input::Input;
use crate::naive::{naive_nmf_rank, RankNmfOutput};

use nmf_matrix::Mat;
use nmf_vmpi::{universe, CommStats, RankResult};

/// Which parallel algorithm (and grid) to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Single-process ANLS (Algorithm 1); ignores `p`.
    Sequential,
    /// Naive-Parallel-NMF (Algorithm 2) on `p` ranks.
    Naive,
    /// HPC-NMF (Algorithm 3) with a 1D grid (`pr = p, pc = 1`).
    Hpc1D,
    /// HPC-NMF with the communication-optimal 2D grid for the input
    /// shape ([`Grid::optimal`]).
    Hpc2D,
    /// HPC-NMF with an explicit grid.
    HpcGrid(Grid),
}

impl Algo {
    /// Grid used for `p` ranks on an `m×n` input.
    pub fn grid(&self, m: usize, n: usize, p: usize) -> Grid {
        match self {
            Algo::Sequential => Grid::new(1, 1),
            Algo::Naive | Algo::Hpc1D => Grid::one_dimensional(p),
            Algo::Hpc2D => Grid::optimal(m, n, p),
            Algo::HpcGrid(g) => {
                assert_eq!(g.size(), p, "explicit grid must have p ranks");
                *g
            }
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Algo::Sequential => "Sequential",
            Algo::Naive => "Naive",
            Algo::Hpc1D => "HPC-NMF-1D",
            Algo::Hpc2D => "HPC-NMF-2D",
            Algo::HpcGrid(_) => "HPC-NMF-grid",
        }
    }
}

/// Runs `algo` on `p` ranks over `input` and returns assembled factors
/// plus per-rank instrumentation.
pub fn factorize(input: &Input, p: usize, algo: Algo, config: &NmfConfig) -> NmfOutput {
    let (m, n) = input.shape();
    let w0 = init_w(m, config.k, config.seed);
    let ht0 = init_ht(n, config.k, config.seed);
    factorize_from(input, p, algo, config, w0, ht0)
}

/// Like [`factorize`], but starting from explicit factors (warm start):
/// `w0` is `m×k` and `ht0` is `n×k` (`H` transposed, row `j` = column
/// `j` of `H`). Use this to refine a factorization after the data
/// changes incrementally — e.g. appending frames to the video matrix —
/// instead of re-solving from a random initialization.
pub fn factorize_from(
    input: &Input,
    p: usize,
    algo: Algo,
    config: &NmfConfig,
    w0: Mat,
    ht0: Mat,
) -> NmfOutput {
    let (m, n) = input.shape();
    assert_eq!(w0.shape(), (m, config.k), "w0 shape mismatch");
    assert_eq!(ht0.shape(), (n, config.k), "ht0 shape mismatch");
    match algo {
        Algo::Sequential => crate::seq::nmf_seq_from(input, config, w0, ht0),
        Algo::Naive => factorize_naive(input, p, config, &w0, &ht0),
        _ => factorize_hpc(input, algo.grid(m, n, p), config, &w0, &ht0),
    }
}

fn factorize_naive(input: &Input, p: usize, config: &NmfConfig, w0: &Mat, ht0: &Mat) -> NmfOutput {
    let (m, n) = input.shape();
    let k = config.k;
    let dist_m = Dist1D::new(m, p);
    let dist_n = Dist1D::new(n, p);

    let results = universe::run(p, |comm| {
        let r = comm.rank();
        let rows = dist_m.part(r);
        let cols = dist_n.part(r);
        // Algorithm 2 stores A twice: row block and column block.
        let row_block = input.block(rows.offset, 0, rows.len, n);
        let col_block = input.block(0, cols.offset, m, cols.len);
        let w0_local = w0.rows_block(rows.offset, rows.len);
        let ht0_local = ht0.rows_block(cols.offset, cols.len);
        naive_nmf_rank(
            comm,
            (m, n),
            &row_block,
            &col_block,
            w0_local,
            ht0_local,
            config,
        )
    });

    let w_offsets: Vec<usize> = (0..p).map(|r| dist_m.part(r).offset).collect();
    let h_offsets: Vec<usize> = (0..p).map(|r| dist_n.part(r).offset).collect();
    assemble(input, results, &w_offsets, &h_offsets, k)
}

/// Where one HPC-NMF rank's pieces live in the global matrices: its
/// `Aᵢⱼ` block extent and its 1D factor slices in *global* coordinates.
///
/// One source of truth for the offset arithmetic shared by block
/// extraction (before the run) and factor reassembly (after it).
struct HpcRankLayout {
    /// Global rows of this rank's `Aᵢⱼ` block.
    rows: Part,
    /// Global columns of this rank's `Aᵢⱼ` block.
    cols: Part,
    /// Global `W`-row slice `(Wᵢ)ⱼ`.
    w: Part,
    /// Global `H`-column slice `(Hⱼ)ᵢ`.
    ht: Part,
}

fn hpc_rank_layout(grid: Grid, dist_m: &Dist1D, dist_n: &Dist1D, rank: usize) -> HpcRankLayout {
    let (i, j) = grid.coords(rank);
    let rows = dist_m.part(i);
    let cols = dist_n.part(j);
    let wpart = Dist1D::new(rows.len, grid.pc).part(j);
    let hpart = Dist1D::new(cols.len, grid.pr).part(i);
    HpcRankLayout {
        rows,
        cols,
        w: Part {
            offset: rows.offset + wpart.offset,
            len: wpart.len,
        },
        ht: Part {
            offset: cols.offset + hpart.offset,
            len: hpart.len,
        },
    }
}

fn factorize_hpc(input: &Input, grid: Grid, config: &NmfConfig, w0: &Mat, ht0: &Mat) -> NmfOutput {
    let (m, n) = input.shape();
    let k = config.k;
    let p = grid.size();
    let dist_m = Dist1D::new(m, grid.pr);
    let dist_n = Dist1D::new(n, grid.pc);

    let results = universe::run(p, |comm| {
        let lay = hpc_rank_layout(grid, &dist_m, &dist_n, comm.rank());
        let local = input.block(lay.rows.offset, lay.cols.offset, lay.rows.len, lay.cols.len);
        let w0_local = w0.rows_block(lay.w.offset, lay.w.len);
        let ht0_local = ht0.rows_block(lay.ht.offset, lay.ht.len);
        hpc_nmf_rank(comm, grid, (m, n), &local, w0_local, ht0_local, config)
    });

    let (w_offsets, h_offsets): (Vec<usize>, Vec<usize>) = (0..p)
        .map(|r| {
            let lay = hpc_rank_layout(grid, &dist_m, &dist_n, r);
            (lay.w.offset, lay.ht.offset)
        })
        .unzip();
    assemble(input, results, &w_offsets, &h_offsets, k)
}

/// Places each rank's factor slices at their global offsets and
/// aggregates instrumentation (critical-path max across ranks).
fn assemble(
    input: &Input,
    results: Vec<RankResult<RankNmfOutput>>,
    w_offsets: &[usize],
    h_offsets: &[usize],
    k: usize,
) -> NmfOutput {
    let (m, n) = input.shape();
    let mut w = Mat::zeros(m, k);
    let mut ht = Mat::zeros(n, k);
    let iterations = results
        .iter()
        .map(|r| r.result.iters.len())
        .max()
        .unwrap_or(0);
    let mut iters: Vec<IterRecord> = Vec::with_capacity(iterations);
    let mut rank_comm = Vec::with_capacity(results.len());
    let stop = results[0].result.stop;

    for r in &results {
        let out = &r.result;
        w.set_block(w_offsets[r.rank], 0, &out.w_local);
        ht.set_block(h_offsets[r.rank], 0, &out.ht_local);
        rank_comm.push(r.stats.clone());
        debug_assert_eq!(out.stop, stop, "stop reason must agree across ranks");
        for (idx, rec) in out.iters.iter().enumerate() {
            if idx == iters.len() {
                iters.push(rec.clone());
            } else {
                let agg = &mut iters[idx];
                agg.compute = agg.compute.max(&rec.compute);
                agg.comm.max_merge(&rec.comm);
                debug_assert!(
                    (agg.objective - rec.objective).abs() <= 1e-9 * agg.objective.abs().max(1.0),
                    "objective must agree across ranks"
                );
            }
        }
    }

    let norm_a_sq = input.fro_norm_sq();
    // The final objective comes from the aggregated records — the value
    // every rank agreed on via the objective all-reduce — not from a
    // peek at rank 0's private field.
    let objective = iters.last().map_or(norm_a_sq, |r| r.objective);
    NmfOutput {
        w,
        h: ht.transpose(),
        objective,
        rel_error: objective.max(0.0).sqrt() / norm_a_sq.sqrt().max(f64::MIN_POSITIVE),
        iters,
        iterations,
        stop,
        rank_comm,
    }
}

/// Sum of all ranks' communication counters.
pub fn total_comm(out: &NmfOutput) -> CommStats {
    let mut total = CommStats::new();
    for s in &out.rank_comm {
        total.merge(s);
    }
    total
}
