//! Batch front-end: run any algorithm to completion on a shared input.
//!
//! Since the session API landed, this module is a thin compatibility
//! wrapper: [`factorize`] builds a [`Model`](crate::session::Model)
//! through [`Nmf`](crate::session::Nmf::on), runs it to its stopping
//! condition, and assembles the classic [`NmfOutput`]. One-shot
//! factorization is now a specialization of the resumable session, not
//! the other way around — new code should prefer
//! [`Nmf::on(..)`](crate::session::Nmf::on) directly, which reports
//! invalid requests as [`NmfError`](crate::error::NmfError) values
//! instead of this wrapper's historical panics.

use crate::config::{NmfConfig, NmfOutput};
use crate::grid::Grid;
use crate::input::Input;
use crate::session::Nmf;

use nmf_matrix::Mat;
use nmf_vmpi::CommStats;

/// Which parallel algorithm (and grid) to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Single-process ANLS (Algorithm 1); ignores `p`.
    Sequential,
    /// Naive-Parallel-NMF (Algorithm 2) on `p` ranks.
    Naive,
    /// HPC-NMF (Algorithm 3) with a 1D grid (`pr = p, pc = 1`).
    Hpc1D,
    /// HPC-NMF with the communication-optimal 2D grid for the input
    /// shape ([`Grid::optimal`]).
    Hpc2D,
    /// HPC-NMF with an explicit grid.
    HpcGrid(Grid),
}

impl Algo {
    /// Grid used for `p` ranks on an `m×n` input.
    pub fn grid(&self, m: usize, n: usize, p: usize) -> Grid {
        match self {
            Algo::Sequential => Grid::new(1, 1),
            Algo::Naive | Algo::Hpc1D => Grid::one_dimensional(p),
            Algo::Hpc2D => Grid::optimal(m, n, p),
            Algo::HpcGrid(g) => {
                assert_eq!(g.size(), p, "explicit grid must have p ranks");
                *g
            }
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Algo::Sequential => "Sequential",
            Algo::Naive => "Naive",
            Algo::Hpc1D => "HPC-NMF-1D",
            Algo::Hpc2D => "HPC-NMF-2D",
            Algo::HpcGrid(_) => "HPC-NMF-grid",
        }
    }
}

/// Runs `algo` on `p` ranks over `input` and returns assembled factors
/// plus per-rank instrumentation.
pub fn factorize(input: &Input, p: usize, algo: Algo, config: &NmfConfig) -> NmfOutput {
    let (m, n) = input.shape();
    let w0 = crate::config::init_w(m, config.k, config.seed);
    let ht0 = crate::config::init_ht(n, config.k, config.seed);
    factorize_from(input, p, algo, config, w0, ht0)
}

/// Like [`factorize`], but starting from explicit factors (warm start):
/// `w0` is `m×k` and `ht0` is `n×k` (`H` transposed, row `j` = column
/// `j` of `H`). Use this to refine a factorization after the data
/// changes incrementally — e.g. appending frames to the video matrix —
/// instead of re-solving from a random initialization.
pub fn factorize_from(
    input: &Input,
    p: usize,
    algo: Algo,
    config: &NmfConfig,
    w0: Mat,
    ht0: Mat,
) -> NmfOutput {
    let (m, n) = input.shape();
    // Historical panic contract, kept for source compatibility (the
    // builder would report these as NmfError::WarmStartShape).
    assert_eq!(w0.shape(), (m, config.k), "w0 shape mismatch");
    assert_eq!(ht0.shape(), (n, config.k), "ht0 shape mismatch");
    // The classic API ignored `p` for the sequential algorithm.
    let ranks = if matches!(algo, Algo::Sequential) {
        1
    } else {
        p
    };
    let mut model = Nmf::on(input)
        .config(*config)
        .algo(algo)
        .ranks(ranks)
        .warm_start(w0, ht0)
        .build()
        .unwrap_or_else(|e| panic!("invalid factorization request: {e}"));
    model.run();
    model.into_output()
}

/// Sum of all ranks' communication counters.
pub fn total_comm(out: &NmfOutput) -> CommStats {
    let mut total = CommStats::new();
    for s in &out.rank_comm {
        total.merge(s);
    }
    total
}
