//! Per-iteration workspaces for the NMF drivers.
//!
//! Every ANLS outer iteration of every driver produces the same cast of
//! intermediate matrices — two `k×k` Grams and their globally-reduced
//! and ridge-shifted copies, the assembled factor block, the `MM`
//! products, and (for HPC-NMF) the reduce-scattered normal-equation
//! right-hand sides. The seed implementation allocated each of these
//! fresh every iteration; [`IterWorkspace`] owns them all, so a driver
//! allocates exactly once before its loop and the steady-state iteration
//! performs **zero heap allocations in the compute path** (the NLS
//! solvers hold their own scratch the same way, and the `_into`
//! collectives draw staging from the communicator arena).
//!
//! One struct serves all three drivers; each constructor sizes exactly
//! the buffers its driver touches and leaves the rest `0×0`.

use nmf_matrix::{Mat, PackedPanels};

/// The once-per-session packed form of this rank's data matrix, plus the
/// `B`-tile scratch the packed GEMM repacks per call.
///
/// ANLS structure: the data matrix `A` never changes across iterations,
/// so its microkernel panels (`a`, feeding `A·Hᵀ`) and its transpose's
/// (`at`, feeding `Aᵀ·W`) are built **once** at engine construction by
/// [`AnlsData::pack_session`](crate::engine::AnlsData::pack_session) and
/// every iteration's `MM` reads only packed panels. Sparse inputs leave
/// both panel sets empty (their `MM` kernels walk the CSR directly).
///
/// `bpack` is the right-operand tile scratch, pre-sized by
/// [`reserve_scratch`](SessionPack::reserve_scratch) to the largest
/// `KC`-deep block either product needs, so even the *first* iteration's
/// packed GEMMs allocate nothing — the counting-allocator tests assert
/// iteration-count-independent totals with no warmup.
#[derive(Clone, Debug, Default)]
pub struct SessionPack {
    /// Panels of the local `A` block (left operand of `A·Hᵀ`).
    pub a: PackedPanels,
    /// Panels of the local `Aᵀ` (left operand of `Aᵀ·W`), packed from
    /// `A`'s rows without materializing the transpose.
    pub at: PackedPanels,
    /// Per-call `B`-tile scratch shared by both packed products.
    pub bpack: Vec<f64>,
}

impl SessionPack {
    /// Whether no operand is packed (sparse input, or never primed).
    pub fn is_empty(&self) -> bool {
        self.a.is_empty() && self.at.is_empty()
    }

    /// Drop any packed operands (retains allocations for reuse).
    pub fn clear(&mut self) {
        self.a.clear();
        self.at.clear();
    }

    /// Grow `bpack` to the bound both packed products need for a `·×k`
    /// right operand; afterwards steady-state GEMMs never resize it.
    pub fn reserve_scratch(&mut self, k: usize) {
        let need = self.a.b_scratch_len(k).max(self.at.b_scratch_len(k));
        if self.bpack.len() < need {
            self.bpack.resize(need, 0.0);
        }
    }

    /// Bytes of packed panel storage currently held (both operands).
    pub fn packed_bytes(&self) -> usize {
        self.a.packed_bytes() + self.at.packed_bytes()
    }
}

/// Owned storage for every per-iteration matrix of an NMF driver.
///
/// Field names follow the update in which the buffer is produced; the
/// table maps them to the paper's Algorithm 1–3 symbols:
///
/// | field        | sequential (Alg. 1) | naive (Alg. 2)      | HPC (Alg. 3)          |
/// |--------------|---------------------|---------------------|-----------------------|
/// | `gram_w`     | `WᵀW`               | `WᵀW` (redundant)   | `WᵀW` (all-reduced)   |
/// | `gram_solve` | `HHᵀ`+ridge, then ridged `WᵀW` copy | same | same              |
/// | `gram_local` | next `HHᵀ`          | local `HHᵀ`         | `Uᵢⱼ` / `Xᵢⱼ`        |
/// | `ht_gather`  | —                   | assembled `Hᵀ`      | `Hⱼᵀ` (col gather)    |
/// | `w_gather`   | —                   | assembled `W`       | `Wᵢ` (row gather)     |
/// | `mm_w`       | `AHᵀ`               | `AᵢHᵀ`              | `Vᵢⱼ = AᵢⱼHⱼᵀ`       |
/// | `mm_h`       | `AᵀW`               | `(Aʲ)ᵀW`            | `Yᵢⱼ = (Wᵢᵀ Aᵢⱼ)ᵀ`   |
/// | `aht`        | —                   | —                   | `((AHᵀ)ᵢ)ⱼ` (rs out)  |
/// | `wta`        | —                   | —                   | `((WᵀA)ⱼ)ᵢ` (rs out)  |
///
/// `pack` is not a per-iteration buffer but the once-per-session
/// [`SessionPack`]ed form of the data matrix; it lives here so the
/// warm-restart path
/// ([`AnlsEngine::with_workspace`](crate::engine::AnlsEngine::with_workspace)
/// → `take_workspace`) carries the packed panels' storage across
/// engines too.
#[derive(Clone, Debug, Default)]
pub struct IterWorkspace {
    pub gram_w: Mat,
    pub gram_solve: Mat,
    pub gram_local: Mat,
    pub ht_gather: Mat,
    pub w_gather: Mat,
    pub mm_w: Mat,
    pub mm_h: Mat,
    pub aht: Mat,
    pub wta: Mat,
    pub pack: SessionPack,
}

impl IterWorkspace {
    /// Sizes the three `k×k` Gram buffers every scheme uses.
    fn size_grams(&mut self, k: usize) {
        self.gram_w.resize(k, k);
        self.gram_solve.resize(k, k);
        self.gram_local.resize(k, k);
    }

    /// In-place (re)sizing for the sequential driver on an `m×n` input
    /// at rank `k`; a no-op when already sized. The single source of
    /// truth for which buffers Algorithm 1 touches — used by both
    /// [`for_seq`](Self::for_seq) and the engine's `LocalScheme`.
    pub fn size_for_seq(&mut self, m: usize, n: usize, k: usize) {
        self.size_grams(k);
        self.mm_w.resize(m, k);
        self.mm_h.resize(n, k);
    }

    /// In-place (re)sizing for one rank of the naive driver: `m×n`
    /// global dims, `rows`/`cols` this rank's row-block height and
    /// column-block width. Used by both [`for_naive`](Self::for_naive)
    /// and the engine's `Replicated1D`.
    pub fn size_for_naive(&mut self, m: usize, n: usize, rows: usize, cols: usize, k: usize) {
        self.size_grams(k);
        self.ht_gather.resize(n, k);
        self.w_gather.resize(m, k);
        self.mm_w.resize(rows, k);
        self.mm_h.resize(cols, k);
    }

    /// In-place (re)sizing for one rank of HPC-NMF:
    /// `block_rows`/`block_cols` the local `Aᵢⱼ` dimensions,
    /// `w_rows`/`ht_rows` the heights of this rank's 1D factor slices
    /// (`(Wᵢ)ⱼ` and `(Hⱼ)ᵢ`). Used by both [`for_hpc`](Self::for_hpc)
    /// and the engine's `Grid2D`.
    pub fn size_for_hpc(
        &mut self,
        block_rows: usize,
        block_cols: usize,
        w_rows: usize,
        ht_rows: usize,
        k: usize,
    ) {
        self.size_grams(k);
        self.ht_gather.resize(block_cols, k);
        self.w_gather.resize(block_rows, k);
        self.mm_w.resize(block_rows, k);
        self.mm_h.resize(block_cols, k);
        self.aht.resize(w_rows, k);
        self.wta.resize(ht_rows, k);
    }

    /// Workspace for the sequential driver on an `m×n` input at rank `k`.
    pub fn for_seq(m: usize, n: usize, k: usize) -> Self {
        let mut ws = Self::default();
        ws.size_for_seq(m, n, k);
        ws
    }

    /// Workspace for one rank of the naive driver: `m×n` global dims,
    /// `rows`/`cols` this rank's row-block height and column-block width.
    pub fn for_naive(m: usize, n: usize, rows: usize, cols: usize, k: usize) -> Self {
        let mut ws = Self::default();
        ws.size_for_naive(m, n, rows, cols, k);
        ws
    }

    /// Workspace for one rank of HPC-NMF: `block_rows`/`block_cols` the
    /// local `Aᵢⱼ` dimensions, `w_rows`/`ht_rows` the heights of this
    /// rank's 1D factor slices (`(Wᵢ)ⱼ` and `(Hⱼ)ᵢ`).
    pub fn for_hpc(
        block_rows: usize,
        block_cols: usize,
        w_rows: usize,
        ht_rows: usize,
        k: usize,
    ) -> Self {
        let mut ws = Self::default();
        ws.size_for_hpc(block_rows, block_cols, w_rows, ht_rows, k);
        ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_size_only_what_each_driver_uses() {
        let seq = IterWorkspace::for_seq(10, 8, 3);
        assert_eq!(seq.mm_w.shape(), (10, 3));
        assert_eq!(seq.mm_h.shape(), (8, 3));
        assert_eq!(seq.ht_gather.shape(), (0, 0));
        assert_eq!(seq.aht.shape(), (0, 0));

        let naive = IterWorkspace::for_naive(10, 8, 5, 4, 3);
        assert_eq!(naive.ht_gather.shape(), (8, 3));
        assert_eq!(naive.w_gather.shape(), (10, 3));
        assert_eq!(naive.mm_w.shape(), (5, 3));
        assert_eq!(naive.mm_h.shape(), (4, 3));

        let hpc = IterWorkspace::for_hpc(6, 5, 3, 2, 4);
        assert_eq!(hpc.ht_gather.shape(), (5, 4));
        assert_eq!(hpc.w_gather.shape(), (6, 4));
        assert_eq!(hpc.mm_w.shape(), (6, 4));
        assert_eq!(hpc.mm_h.shape(), (5, 4));
        assert_eq!(hpc.aht.shape(), (3, 4));
        assert_eq!(hpc.wta.shape(), (2, 4));
        assert_eq!(hpc.gram_solve.shape(), (4, 4));
    }
}
