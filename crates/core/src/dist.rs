//! Block distributions of an index range over processors.

/// One processor's slice of a distributed dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Part {
    pub offset: usize,
    pub len: usize,
}

impl Part {
    pub fn end(&self) -> usize {
        self.offset + self.len
    }
}

/// A block distribution of `total` indices over `parts` processors:
/// the first `total mod parts` processors get `⌈total/parts⌉` indices,
/// the rest `⌊total/parts⌋`. (The paper sizes its datasets so blocks
/// divide evenly; this handles the general case so arbitrary problem
/// sizes work.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dist1D {
    total: usize,
    parts: usize,
}

impl Dist1D {
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(parts >= 1, "need at least one part");
        Dist1D { total, parts }
    }

    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    #[inline]
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The slice owned by processor `i`.
    pub fn part(&self, i: usize) -> Part {
        assert!(i < self.parts, "part index out of range");
        let base = self.total / self.parts;
        let rem = self.total % self.parts;
        let len = base + usize::from(i < rem);
        let offset = i * base + i.min(rem);
        Part { offset, len }
    }

    /// Lengths of every part (e.g. the `counts` argument of a
    /// reduce-scatter over this dimension).
    pub fn lens(&self) -> Vec<usize> {
        (0..self.parts).map(|i| self.part(i).len).collect()
    }

    /// Lengths scaled by a row width (counts in words for a matrix whose
    /// rows are distributed by this distribution).
    pub fn lens_scaled(&self, width: usize) -> Vec<usize> {
        (0..self.parts).map(|i| self.part(i).len * width).collect()
    }

    /// Which part owns global index `g`.
    pub fn owner(&self, g: usize) -> usize {
        assert!(g < self.total);
        let base = self.total / self.parts;
        let rem = self.total % self.parts;
        let boundary = rem * (base + 1);
        if g < boundary {
            g / (base + 1)
        } else {
            rem + (g - boundary) / base.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_tile_exactly() {
        for total in [0usize, 1, 7, 12, 100, 101] {
            for parts in [1usize, 2, 3, 5, 8, 13] {
                let d = Dist1D::new(total, parts);
                let mut covered = 0;
                for i in 0..parts {
                    let p = d.part(i);
                    assert_eq!(p.offset, covered, "parts must be contiguous");
                    covered += p.len;
                }
                assert_eq!(covered, total, "parts must cover the range");
            }
        }
    }

    #[test]
    fn parts_are_balanced() {
        let d = Dist1D::new(103, 10);
        let lens = d.lens();
        let max = lens.iter().max().unwrap();
        let min = lens.iter().min().unwrap();
        assert!(max - min <= 1, "block distribution must be balanced");
    }

    #[test]
    fn owner_is_consistent_with_part() {
        for total in [5usize, 17, 64] {
            for parts in [1usize, 3, 4, 7] {
                let d = Dist1D::new(total, parts);
                for g in 0..total {
                    let o = d.owner(g);
                    let p = d.part(o);
                    assert!(
                        g >= p.offset && g < p.end(),
                        "owner({g}) = {o} but part {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lens_scaled_multiplies() {
        let d = Dist1D::new(10, 3);
        assert_eq!(d.lens_scaled(4), vec![16, 12, 12]);
    }
}
