//! Configuration and result types shared by all NMF drivers.

use nmf_matrix::rng::random_factor;
use nmf_matrix::Mat;
use nmf_nls::SolverKind;
use nmf_vmpi::CommStats;
use std::time::Duration;

/// Why a factorization stopped iterating.
///
/// Every stopping decision is made from collectively-known values (the
/// all-reduced objective, or a budget flag summed across ranks), so all
/// ranks of a distributed run report the same reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The configured `max_iters` iterations all ran.
    MaxIters,
    /// The relative objective improvement fell below the tolerance.
    Converged,
    /// The objective *increased* between consecutive iterations. With an
    /// exact per-block solver (BPP) ANLS is monotone, so an increase
    /// signals numerical trouble (ill-conditioned Grams, aggressive
    /// regularization changes) — it is reported as its own reason rather
    /// than being silently conflated with convergence, which is what the
    /// raw `(f_prev − f)/f₀ < tol` test used to do (any negative
    /// improvement passes that comparison).
    ObjectiveIncreased,
    /// The wall-clock budget of
    /// [`ConvergencePolicy::WindowedBudget`] ran out on some rank.
    BudgetExhausted,
}

impl StopReason {
    /// Stable lowercase token for machine-readable output.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::MaxIters => "max_iters",
            StopReason::Converged => "converged",
            StopReason::ObjectiveIncreased => "objective_increased",
            StopReason::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// When to stop iterating, beyond the hard `max_iters` cap.
///
/// The decision is evaluated by [`crate::engine::AnlsEngine`] after each
/// iteration, on the all-reduced objective — so every rank decides
/// identically and no rank can leave a collective early.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConvergencePolicy {
    /// Run exactly `max_iters` iterations.
    MaxIters,
    /// Stop when the one-step relative improvement `(f_prev − f)/f₀`
    /// drops below `tol` (or the objective increases — reported as
    /// [`StopReason::ObjectiveIncreased`]).
    RelTol { tol: f64 },
    /// Stop when the relative improvement *summed over the last `window`
    /// iterations* `(f_{i−window} − f_i)/f₀` drops below `tol` — robust
    /// to solvers (MU, HALS) whose per-step progress is jagged: a
    /// transient single-step uptick neither stops the run nor counts as
    /// convergence, and only a *net* increase over the whole window is
    /// reported as [`StopReason::ObjectiveIncreased`]. Additionally
    /// stops when `budget` of wall-clock time has elapsed on any rank;
    /// the budget decision is folded into the objective all-reduce, so
    /// it is collective despite clocks differing across ranks.
    WindowedBudget {
        window: usize,
        tol: f64,
        budget: Option<Duration>,
    },
}

impl ConvergencePolicy {
    /// Whether this policy carries a wall-clock budget (and therefore
    /// needs the extra flag word in the objective reduction).
    pub fn has_budget(&self) -> bool {
        matches!(
            self,
            ConvergencePolicy::WindowedBudget {
                budget: Some(_),
                ..
            }
        )
    }

    /// Whether `elapsed` exhausts the budget (false for budget-free
    /// policies).
    pub fn budget_exceeded(&self, elapsed: Duration) -> bool {
        match self {
            ConvergencePolicy::WindowedBudget {
                budget: Some(b), ..
            } => elapsed >= *b,
            _ => false,
        }
    }

    /// The stopping decision after an iteration: `prev` and `obj` are
    /// the previous and current all-reduced objectives, `f0` the first
    /// iteration's objective, `history` every objective so far (the
    /// current iteration last, including any iterations run before a
    /// checkpoint/resume), and `budget_hit` the collectively-reduced
    /// budget flag.
    pub fn decide(
        &self,
        prev: f64,
        obj: f64,
        f0: f64,
        history: &[f64],
        budget_hit: bool,
    ) -> Option<StopReason> {
        if budget_hit {
            return Some(StopReason::BudgetExhausted);
        }
        match *self {
            ConvergencePolicy::MaxIters => None,
            ConvergencePolicy::RelTol { tol } => {
                if !prev.is_finite() {
                    None
                } else if obj > prev {
                    Some(StopReason::ObjectiveIncreased)
                } else if (prev - obj) / f0 < tol {
                    Some(StopReason::Converged)
                } else {
                    None
                }
            }
            ConvergencePolicy::WindowedBudget { window, tol, .. } => {
                // Both tests look back over the whole window, so a
                // jagged solver's transient uptick is tolerated.
                let n = history.len();
                if n <= window {
                    return None;
                }
                let improvement = (history[n - 1 - window] - obj) / f0;
                if improvement < 0.0 {
                    Some(StopReason::ObjectiveIncreased)
                } else if improvement < tol {
                    Some(StopReason::Converged)
                } else {
                    None
                }
            }
        }
    }
}

/// Settings for one factorization run.
#[derive(Clone, Copy, Debug)]
pub struct NmfConfig {
    /// Low rank `k` of the approximation.
    pub k: usize,
    /// Maximum ANLS outer iterations.
    pub max_iters: usize,
    /// Optional early stop: halt when the relative objective improvement
    /// `(f_prev − f) / f₀` drops below this. Shorthand for
    /// [`ConvergencePolicy::RelTol`]; ignored when `convergence` is set
    /// explicitly.
    pub tol: Option<f64>,
    /// Explicit convergence policy; when `None`, derived from `tol` (see
    /// [`NmfConfig::policy`]).
    pub convergence: Option<ConvergencePolicy>,
    /// Local NLS solver.
    pub solver: SolverKind,
    /// Seed for the factor initialization. The same seed produces the
    /// same initial `H` (and `W`) in every driver — sequential, naive,
    /// and HPC — which is the paper's §6.1.3 protocol for making the
    /// algorithms perform identical computations.
    pub seed: u64,
    /// Frobenius (L2) regularization `λ_W‖W‖²_F` on the left factor.
    ///
    /// Extension beyond the paper's objective (standard in the ANLS
    /// literature, e.g. Kim/He/Park 2014): implemented by shifting the
    /// Gram matrix `HHᵀ + λ_W·I` before the local NLS solves, so it
    /// costs nothing extra in communication.
    pub l2_w: f64,
    /// Frobenius (L2) regularization `λ_H‖H‖²_F` on the right factor.
    pub l2_h: f64,
    /// Whether distributed schemes may overlap communication with
    /// compute via split-phase collectives (default: true). Affects only
    /// the schedule, never the words on the wire or the factor
    /// trajectory; must agree across ranks.
    pub overlap: bool,
}

impl NmfConfig {
    pub fn new(k: usize) -> Self {
        NmfConfig {
            k,
            max_iters: 20,
            tol: None,
            convergence: None,
            solver: SolverKind::Bpp,
            seed: 0x5eed,
            l2_w: 0.0,
            l2_h: 0.0,
            overlap: true,
        }
    }

    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    pub fn with_max_iters(mut self, it: usize) -> Self {
        self.max_iters = it;
        self
    }

    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = Some(tol);
        self
    }

    /// Sets an explicit convergence policy (overrides `tol`).
    pub fn with_convergence(mut self, policy: ConvergencePolicy) -> Self {
        self.convergence = Some(policy);
        self
    }

    /// The effective convergence policy: `convergence` when set,
    /// otherwise [`ConvergencePolicy::RelTol`] from `tol`, otherwise
    /// [`ConvergencePolicy::MaxIters`].
    pub fn policy(&self) -> ConvergencePolicy {
        if let Some(policy) = self.convergence {
            policy
        } else if let Some(tol) = self.tol {
            ConvergencePolicy::RelTol { tol }
        } else {
            ConvergencePolicy::MaxIters
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables communication/compute overlap in distributed
    /// schemes (see [`NmfConfig::overlap`]).
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Sets Frobenius regularization on both factors.
    pub fn with_l2(mut self, l2_w: f64, l2_h: f64) -> Self {
        assert!(
            l2_w >= 0.0 && l2_h >= 0.0,
            "regularization must be nonnegative"
        );
        self.l2_w = l2_w;
        self.l2_h = l2_h;
        self
    }
}

/// Adds `lambda` to the diagonal of a Gram matrix in place (the
/// normal-equation form of Frobenius regularization).
pub fn apply_ridge(gram: &mut Mat, lambda: f64) {
    if lambda > 0.0 {
        for i in 0..gram.nrows() {
            gram[(i, i)] += lambda;
        }
    }
}

/// The deterministic global initialization of `H`, stored transposed
/// (`n×k`, row `j` holds column `j` of `H`). Every driver slices this
/// same matrix, so iterates agree across drivers and processor counts.
pub fn init_ht(n: usize, k: usize, seed: u64) -> Mat {
    random_factor(n, k, k, seed ^ 0x48)
}

/// Deterministic global initialization of `W` (`m×k`). Only consumed by
/// the iterative solvers (MU/HALS); BPP overwrites it (the paper notes
/// "W need not be initialized" for BPP).
pub fn init_w(m: usize, k: usize, seed: u64) -> Mat {
    random_factor(m, k, k, seed ^ 0x57)
}

/// Per-iteration wall-clock breakdown of the local computation tasks
/// (paper §6.3 names: MM, NLS, Gram).
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskTimes {
    pub mm: Duration,
    pub nls: Duration,
    pub gram: Duration,
}

impl TaskTimes {
    pub fn total(&self) -> Duration {
        self.mm + self.nls + self.gram
    }

    pub fn merge(&mut self, other: &TaskTimes) {
        self.mm += other.mm;
        self.nls += other.nls;
        self.gram += other.gram;
    }

    /// Component-wise maximum (critical-path aggregation across ranks).
    pub fn max(&self, other: &TaskTimes) -> TaskTimes {
        TaskTimes {
            mm: self.mm.max(other.mm),
            nls: self.nls.max(other.nls),
            gram: self.gram.max(other.gram),
        }
    }
}

/// One outer iteration's record on one rank.
#[derive(Clone, Debug)]
pub struct IterRecord {
    /// Objective `‖A − WH‖²_F` after this iteration's `H` update.
    pub objective: f64,
    /// Local computation breakdown.
    pub compute: TaskTimes,
    /// Communication this iteration (words/messages/time per collective).
    pub comm: CommStats,
}

/// Result of a factorization.
#[derive(Debug)]
pub struct NmfOutput {
    /// Left factor, `m×k`, nonnegative.
    pub w: Mat,
    /// Right factor, `k×n`, nonnegative.
    pub h: Mat,
    /// Final objective `‖A − WH‖²_F`.
    pub objective: f64,
    /// Final relative error `‖A − WH‖_F / ‖A‖_F`.
    pub rel_error: f64,
    /// Per-iteration records aggregated across ranks (max time per task —
    /// the critical path; comm counters from the max-total-words rank).
    pub iters: Vec<IterRecord>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Why the run stopped (identical on every rank — see
    /// [`StopReason`]).
    pub stop: StopReason,
    /// Per-rank total communication counters, rank order.
    pub rank_comm: Vec<CommStats>,
}

impl NmfOutput {
    /// Objective history across iterations.
    pub fn history(&self) -> Vec<f64> {
        self.iters.iter().map(|r| r.objective).collect()
    }

    /// Sum of per-iteration compute breakdowns.
    pub fn compute_total(&self) -> TaskTimes {
        let mut t = TaskTimes::default();
        for r in &self.iters {
            t.merge(&r.compute);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_chains() {
        let c = NmfConfig::new(10)
            .with_solver(SolverKind::Hals)
            .with_max_iters(5)
            .with_tol(1e-4)
            .with_seed(9);
        assert_eq!(c.k, 10);
        assert_eq!(c.solver, SolverKind::Hals);
        assert_eq!(c.max_iters, 5);
        assert_eq!(c.tol, Some(1e-4));
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn policy_derivation_from_tol() {
        assert_eq!(NmfConfig::new(3).policy(), ConvergencePolicy::MaxIters);
        assert_eq!(
            NmfConfig::new(3).with_tol(1e-5).policy(),
            ConvergencePolicy::RelTol { tol: 1e-5 }
        );
        // Explicit policy wins over tol.
        let c = NmfConfig::new(3)
            .with_tol(1e-5)
            .with_convergence(ConvergencePolicy::MaxIters);
        assert_eq!(c.policy(), ConvergencePolicy::MaxIters);
    }

    #[test]
    fn rel_tol_distinguishes_increase_from_convergence() {
        let p = ConvergencePolicy::RelTol { tol: 1e-4 };
        let h = [100.0, 99.0];
        // First iteration: no previous objective, never stops.
        assert_eq!(p.decide(f64::INFINITY, 100.0, 100.0, &h[..1], false), None);
        // Healthy progress: keep going.
        assert_eq!(p.decide(100.0, 99.0, 100.0, &h, false), None);
        // Tiny improvement: converged.
        assert_eq!(
            p.decide(99.0, 98.9999, 100.0, &h, false),
            Some(StopReason::Converged)
        );
        // Increase: its own reason, not "converged" (the raw comparison
        // would have returned Converged here — negative improvement is
        // below any tolerance).
        assert_eq!(
            p.decide(99.0, 99.5, 100.0, &h, false),
            Some(StopReason::ObjectiveIncreased)
        );
    }

    #[test]
    fn windowed_policy_looks_back_window_iterations() {
        let p = ConvergencePolicy::WindowedBudget {
            window: 2,
            tol: 1e-3,
            budget: None,
        };
        // Each step improves by 0.04% of f0 — below a per-step 0.1% test,
        // but the 2-step window sees 0.08%; still below 0.1% → stop.
        let h = [1000.0, 999.6, 999.2];
        assert_eq!(
            p.decide(999.6, 999.2, 1000.0, &h, false),
            Some(StopReason::Converged)
        );
        // Big drops within the window: keep going.
        let h = [1000.0, 900.0, 800.0];
        assert_eq!(p.decide(900.0, 800.0, 1000.0, &h, false), None);
        // Not enough history yet: keep going.
        let h = [1000.0, 999.9];
        assert_eq!(p.decide(1000.0, 999.9, 1000.0, &h, false), None);
        // A transient single-step uptick inside a window of net progress
        // is tolerated (the jagged-solver case the window exists for)...
        let h = [1000.0, 900.0, 890.0, 891.0];
        assert_eq!(p.decide(890.0, 891.0, 1000.0, &h, false), None);
        // ...but a net increase over the whole window is its own stop.
        let h = [1000.0, 900.0, 890.0, 905.0];
        assert_eq!(
            p.decide(890.0, 905.0, 1000.0, &h, false),
            Some(StopReason::ObjectiveIncreased)
        );
        // Budget flag overrides everything.
        let h = [1000.0, 999.9];
        assert_eq!(
            p.decide(900.0, 800.0, 1000.0, &h, true),
            Some(StopReason::BudgetExhausted)
        );
    }

    #[test]
    fn budget_plumbing() {
        let p = ConvergencePolicy::WindowedBudget {
            window: 4,
            tol: 0.0,
            budget: Some(Duration::from_millis(10)),
        };
        assert!(p.has_budget());
        assert!(!p.budget_exceeded(Duration::from_millis(9)));
        assert!(p.budget_exceeded(Duration::from_millis(10)));
        assert!(!ConvergencePolicy::MaxIters.has_budget());
        assert!(!ConvergencePolicy::RelTol { tol: 1e-4 }.has_budget());
    }

    #[test]
    fn init_is_deterministic_and_nonnegative() {
        let a = init_ht(20, 4, 1);
        let b = init_ht(20, 4, 1);
        assert_eq!(a, b);
        assert!(a.all_nonnegative());
        assert_ne!(init_ht(20, 4, 1), init_ht(20, 4, 2));
        // W and H seeds must differ to avoid correlated factors.
        assert_ne!(init_w(20, 4, 1), init_ht(20, 4, 1));
    }

    #[test]
    fn task_times_aggregate() {
        let a = TaskTimes {
            mm: Duration::from_millis(3),
            nls: Duration::from_millis(1),
            gram: Duration::from_millis(2),
        };
        let b = TaskTimes {
            mm: Duration::from_millis(1),
            nls: Duration::from_millis(5),
            gram: Duration::from_millis(2),
        };
        let m = a.max(&b);
        assert_eq!(m.mm, Duration::from_millis(3));
        assert_eq!(m.nls, Duration::from_millis(5));
        let mut s = a;
        s.merge(&b);
        assert_eq!(s.total(), Duration::from_millis(14));
    }
}
