//! Configuration and result types shared by all NMF drivers.

use nmf_matrix::rng::random_factor;
use nmf_matrix::Mat;
use nmf_nls::SolverKind;
use nmf_vmpi::CommStats;
use std::time::Duration;

/// Settings for one factorization run.
#[derive(Clone, Copy, Debug)]
pub struct NmfConfig {
    /// Low rank `k` of the approximation.
    pub k: usize,
    /// Maximum ANLS outer iterations.
    pub max_iters: usize,
    /// Optional early stop: halt when the relative objective improvement
    /// `(f_prev − f) / f₀` drops below this.
    pub tol: Option<f64>,
    /// Local NLS solver.
    pub solver: SolverKind,
    /// Seed for the factor initialization. The same seed produces the
    /// same initial `H` (and `W`) in every driver — sequential, naive,
    /// and HPC — which is the paper's §6.1.3 protocol for making the
    /// algorithms perform identical computations.
    pub seed: u64,
    /// Frobenius (L2) regularization `λ_W‖W‖²_F` on the left factor.
    ///
    /// Extension beyond the paper's objective (standard in the ANLS
    /// literature, e.g. Kim/He/Park 2014): implemented by shifting the
    /// Gram matrix `HHᵀ + λ_W·I` before the local NLS solves, so it
    /// costs nothing extra in communication.
    pub l2_w: f64,
    /// Frobenius (L2) regularization `λ_H‖H‖²_F` on the right factor.
    pub l2_h: f64,
}

impl NmfConfig {
    pub fn new(k: usize) -> Self {
        NmfConfig {
            k,
            max_iters: 20,
            tol: None,
            solver: SolverKind::Bpp,
            seed: 0x5eed,
            l2_w: 0.0,
            l2_h: 0.0,
        }
    }

    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    pub fn with_max_iters(mut self, it: usize) -> Self {
        self.max_iters = it;
        self
    }

    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = Some(tol);
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets Frobenius regularization on both factors.
    pub fn with_l2(mut self, l2_w: f64, l2_h: f64) -> Self {
        assert!(
            l2_w >= 0.0 && l2_h >= 0.0,
            "regularization must be nonnegative"
        );
        self.l2_w = l2_w;
        self.l2_h = l2_h;
        self
    }
}

/// Adds `lambda` to the diagonal of a Gram matrix in place (the
/// normal-equation form of Frobenius regularization).
pub fn apply_ridge(gram: &mut Mat, lambda: f64) {
    if lambda > 0.0 {
        for i in 0..gram.nrows() {
            gram[(i, i)] += lambda;
        }
    }
}

/// The deterministic global initialization of `H`, stored transposed
/// (`n×k`, row `j` holds column `j` of `H`). Every driver slices this
/// same matrix, so iterates agree across drivers and processor counts.
pub fn init_ht(n: usize, k: usize, seed: u64) -> Mat {
    random_factor(n, k, k, seed ^ 0x48)
}

/// Deterministic global initialization of `W` (`m×k`). Only consumed by
/// the iterative solvers (MU/HALS); BPP overwrites it (the paper notes
/// "W need not be initialized" for BPP).
pub fn init_w(m: usize, k: usize, seed: u64) -> Mat {
    random_factor(m, k, k, seed ^ 0x57)
}

/// Per-iteration wall-clock breakdown of the local computation tasks
/// (paper §6.3 names: MM, NLS, Gram).
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskTimes {
    pub mm: Duration,
    pub nls: Duration,
    pub gram: Duration,
}

impl TaskTimes {
    pub fn total(&self) -> Duration {
        self.mm + self.nls + self.gram
    }

    pub fn merge(&mut self, other: &TaskTimes) {
        self.mm += other.mm;
        self.nls += other.nls;
        self.gram += other.gram;
    }

    /// Component-wise maximum (critical-path aggregation across ranks).
    pub fn max(&self, other: &TaskTimes) -> TaskTimes {
        TaskTimes {
            mm: self.mm.max(other.mm),
            nls: self.nls.max(other.nls),
            gram: self.gram.max(other.gram),
        }
    }
}

/// One outer iteration's record on one rank.
#[derive(Clone, Debug)]
pub struct IterRecord {
    /// Objective `‖A − WH‖²_F` after this iteration's `H` update.
    pub objective: f64,
    /// Local computation breakdown.
    pub compute: TaskTimes,
    /// Communication this iteration (words/messages/time per collective).
    pub comm: CommStats,
}

/// Result of a factorization.
#[derive(Debug)]
pub struct NmfOutput {
    /// Left factor, `m×k`, nonnegative.
    pub w: Mat,
    /// Right factor, `k×n`, nonnegative.
    pub h: Mat,
    /// Final objective `‖A − WH‖²_F`.
    pub objective: f64,
    /// Final relative error `‖A − WH‖_F / ‖A‖_F`.
    pub rel_error: f64,
    /// Per-iteration records aggregated across ranks (max time per task —
    /// the critical path; comm counters from the max-total-words rank).
    pub iters: Vec<IterRecord>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Per-rank total communication counters, rank order.
    pub rank_comm: Vec<CommStats>,
}

impl NmfOutput {
    /// Objective history across iterations.
    pub fn history(&self) -> Vec<f64> {
        self.iters.iter().map(|r| r.objective).collect()
    }

    /// Sum of per-iteration compute breakdowns.
    pub fn compute_total(&self) -> TaskTimes {
        let mut t = TaskTimes::default();
        for r in &self.iters {
            t.merge(&r.compute);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_chains() {
        let c = NmfConfig::new(10)
            .with_solver(SolverKind::Hals)
            .with_max_iters(5)
            .with_tol(1e-4)
            .with_seed(9);
        assert_eq!(c.k, 10);
        assert_eq!(c.solver, SolverKind::Hals);
        assert_eq!(c.max_iters, 5);
        assert_eq!(c.tol, Some(1e-4));
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn init_is_deterministic_and_nonnegative() {
        let a = init_ht(20, 4, 1);
        let b = init_ht(20, 4, 1);
        assert_eq!(a, b);
        assert!(a.all_nonnegative());
        assert_ne!(init_ht(20, 4, 1), init_ht(20, 4, 2));
        // W and H seeds must differ to avoid correlated factors.
        assert_ne!(init_w(20, 4, 1), init_ht(20, 4, 1));
    }

    #[test]
    fn task_times_aggregate() {
        let a = TaskTimes {
            mm: Duration::from_millis(3),
            nls: Duration::from_millis(1),
            gram: Duration::from_millis(2),
        };
        let b = TaskTimes {
            mm: Duration::from_millis(1),
            nls: Duration::from_millis(5),
            gram: Duration::from_millis(2),
        };
        let m = a.max(&b);
        assert_eq!(m.mm, Duration::from_millis(3));
        assert_eq!(m.nls, Duration::from_millis(5));
        let mut s = a;
        s.merge(&b);
        assert_eq!(s.total(), Duration::from_millis(14));
    }
}
