//! Sequential ANLS-NMF (Algorithm 1): the single-process reference.
//!
//! Every parallel driver must reproduce this driver's iterates (to
//! floating-point reassociation tolerance) when started from the same
//! seed — that is the core correctness property of the reproduction,
//! mirroring the paper's §6.1.3 protocol.

use crate::config::{init_ht, init_w, NmfConfig, NmfOutput};
use crate::engine::{AnlsEngine, LocalScheme};
use crate::input::Input;
use nmf_matrix::Mat;

/// Runs ANLS-NMF on a single process from the seeded initialization.
pub fn nmf_seq(input: &Input, config: &NmfConfig) -> NmfOutput {
    let (m, n) = input.shape();
    let ht = init_ht(n, config.k, config.seed);
    let w = init_w(m, config.k, config.seed);
    nmf_seq_from(input, config, w, ht)
}

/// Runs ANLS-NMF from explicit initial factors (warm start): `w` is
/// `m×k`, `ht` is `n×k` (`H` transposed). This is the entry point for
/// incremental/streaming refactorization — e.g. re-fitting the video
/// background model as new frames arrive (the paper's §6.1.1 scenario).
///
/// A thin constructor over [`AnlsEngine`] with the no-communication
/// [`LocalScheme`]; callers that need mid-run access (checkpointing,
/// per-iteration observers, serving partially converged factors) should
/// build the engine themselves and drive [`AnlsEngine::step`].
pub fn nmf_seq_from(input: &Input, config: &NmfConfig, w: Mat, ht: Mat) -> NmfOutput {
    let (m, n) = input.shape();
    let k = config.k;
    assert!(
        k >= 1 && k <= m.min(n),
        "rank k must satisfy 1 <= k <= min(m, n)"
    );
    assert_eq!(w.shape(), (m, k), "w init shape mismatch");
    assert_eq!(ht.shape(), (n, k), "ht init shape mismatch");
    assert!(
        w.all_nonnegative() && ht.all_nonnegative(),
        "initial factors must be nonnegative"
    );
    let mut engine = AnlsEngine::new(LocalScheme::new(m, n), input, config, w, ht);
    engine.run();
    engine.into_output()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::ops::dense_relative_error;
    use nmf_matrix::rng::Fill;
    use nmf_matrix::{matmul, Mat};
    use nmf_nls::SolverKind;
    use nmf_sparse::gen::erdos_renyi;

    fn low_rank_input(m: usize, n: usize, k: usize, seed: u64) -> Input {
        let w = Mat::uniform(m, k, seed);
        let h = Mat::uniform(k, n, seed + 1);
        Input::Dense(matmul(&w, &h))
    }

    #[test]
    fn recovers_exact_low_rank_structure() {
        // A has exact nonnegative rank 4; BPP-ANLS should drive the
        // relative error near zero.
        let input = low_rank_input(40, 30, 4, 81);
        let out = nmf_seq(&input, &NmfConfig::new(4).with_max_iters(50).with_seed(3));
        // ANLS converges to a stationary point, not necessarily the
        // global optimum; <1% on exact rank-4 data demonstrates the
        // structure is recovered (the initial error is ~30%).
        assert!(
            out.rel_error < 1e-2,
            "rel_error {} too large",
            out.rel_error
        );
        assert!(out.w.all_nonnegative());
        assert!(out.h.all_nonnegative());
        if let Input::Dense(a) = &input {
            let direct = dense_relative_error(a, &out.w, &out.h);
            assert!(
                (direct - out.rel_error).abs() < 1e-6 + 0.05 * direct,
                "Gram-identity error {} vs direct {}",
                out.rel_error,
                direct
            );
        }
    }

    #[test]
    fn objective_decreases_for_every_solver() {
        let input = low_rank_input(25, 20, 3, 82);
        for solver in SolverKind::ALL {
            let out = nmf_seq(
                &input,
                &NmfConfig::new(5)
                    .with_solver(solver)
                    .with_max_iters(15)
                    .with_seed(4),
            );
            let hist = out.history();
            for win in hist.windows(2) {
                assert!(
                    win[1] <= win[0] * (1.0 + 1e-9) + 1e-9,
                    "{solver:?} objective increased: {win:?}"
                );
            }
        }
    }

    #[test]
    fn sparse_input_works() {
        let a = erdos_renyi(60, 50, 0.1, 83);
        let out = nmf_seq(&Input::Sparse(a), &NmfConfig::new(6).with_max_iters(10));
        assert!(out.rel_error < 1.0);
        assert!(out.w.all_nonnegative() && out.h.all_nonnegative());
        assert_eq!(out.w.shape(), (60, 6));
        assert_eq!(out.h.shape(), (6, 50));
    }

    #[test]
    fn tolerance_stops_early() {
        let input = low_rank_input(30, 25, 3, 84);
        let out = nmf_seq(
            &input,
            &NmfConfig::new(3).with_max_iters(200).with_tol(1e-6),
        );
        assert!(out.iterations < 200, "tolerance should trigger early exit");
    }

    #[test]
    fn same_seed_same_result() {
        let input = low_rank_input(20, 15, 3, 85);
        let a = nmf_seq(&input, &NmfConfig::new(4).with_max_iters(5).with_seed(7));
        let b = nmf_seq(&input, &NmfConfig::new(4).with_max_iters(5).with_seed(7));
        assert_eq!(a.w, b.w);
        assert_eq!(a.h, b.h);
    }
}
