//! Shared pre-sharded inputs: extract per-rank blocks once, reuse them
//! everywhere.
//!
//! The paper's MPI-FAUN algorithms assume each rank owns its block of
//! `A` *once* and reuses it every iteration — but a plain
//! [`Nmf::on`](crate::session::Nmf::on)`(…).build()` re-extracts the
//! per-rank blocks from the whole resident matrix on every call, so a
//! rank sweep, a [`refit`](crate::session::Model::refit) after a
//! checkpoint reload, or ten serving tenants over one dataset all pay
//! the sharding cost again.
//!
//! [`SharedInput`] fixes the ownership: it holds the source matrix
//! (resident, or a memory-mapped `NMFS` file that never fully loads)
//! plus a cache of per-rank block sets keyed by the distribution shape
//! ([`ShardKey`]). Blocks are `Arc`'d [`LocalMat`]s, so every build that
//! asks for the same grid shape hands the *same* resident blocks to its
//! rank threads — cloning an `Arc`, not a matrix. Sparse blocks carry
//! CSR + CSC views over one values ordering (see [`nmf_sparse::SpBlock`]),
//! so the one-time extraction also pays the one-time column-view build
//! that makes `Aᵀ·W` a forward-traversal kernel.
//!
//! ```
//! use hpc_nmf::prelude::*;
//! use nmf_matrix::{rng::Fill, Mat};
//!
//! let shared = SharedInput::new(Input::Dense(Mat::uniform(30, 20, 7)));
//! for k in [2, 3, 4] {
//!     let mut model = Nmf::on_shared(&shared)
//!         .rank(k)
//!         .ranks(4)
//!         .algo(Algo::Hpc2D)
//!         .max_iters(2)
//!         .build()
//!         .expect("valid request");
//!     model.run();
//! }
//! assert_eq!(shared.extractions(), 1); // one sharding served all three
//! ```
//!
//! Out-of-core ingest goes through [`SharedInput::open_mmap`]: block
//! extraction streams bounded row panels of the file (see
//! [`nmf_sparse::io::MmapCsr`]), so peak memory is the extracted blocks
//! plus one panel window — the dense whole is never materialized, and
//! the extracted blocks are bit-identical to what the resident path
//! produces.

use crate::dist::Dist1D;
use crate::error::NmfError;
use crate::grid::Grid;
use crate::input::{Input, LocalMat};
use crate::session::hpc_rank_layout;
use nmf_sparse::io::{MmError, MmapCsr, DEFAULT_PANEL_BYTES};
use nmf_sparse::{Csr, SpBlock};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One rank's share of the input matrix. Cloning is cheap — blocks are
/// behind `Arc`s — which is what lets a cached sharding fan out to any
/// number of builds.
#[derive(Clone)]
pub(crate) enum RankData {
    /// One 2D (or whole-matrix) block.
    Single(Arc<LocalMat>),
    /// The naive algorithm's doubly-stored 1D stripes.
    Split {
        row: Arc<LocalMat>,
        col: Arc<LocalMat>,
    },
}

impl RankData {
    fn resident_bytes(&self) -> usize {
        match self {
            RankData::Single(a) => a.resident_bytes(),
            RankData::Split { row, col } => row.resident_bytes() + col.resident_bytes(),
        }
    }
}

/// How the input is dealt onto ranks — the cache key of a sharding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShardKey {
    /// The whole matrix on a single rank (sequential).
    Seq,
    /// 1D row stripes plus 1D column stripes over `p` ranks (naive).
    Naive { p: usize },
    /// 2D blocks on a `pr × pc` grid (MPI-FAUN).
    Grid { pr: usize, pc: usize },
}

/// The matrix behind a [`SharedInput`].
enum Source {
    /// Fully resident, dense or sparse.
    Resident(Input),
    /// An `NMFS` file, read in bounded row-panel windows.
    Mmap(MmapCsr),
}

/// A shareable, shard-once input. See the [module docs](self).
///
/// `SharedInput` is `Send + Sync`; wrap it in an `Arc` to share one
/// dataset across threads or serving tenants.
pub struct SharedInput {
    source: Source,
    m: usize,
    n: usize,
    norm_a_sq: f64,
    cache: Mutex<HashMap<ShardKey, Arc<Vec<RankData>>>>,
    /// How many distinct shardings have been extracted (cache misses).
    extractions: AtomicUsize,
}

impl SharedInput {
    /// Wraps a resident input matrix.
    pub fn new(input: Input) -> SharedInput {
        let (m, n) = input.shape();
        let norm_a_sq = input.fro_norm_sq();
        SharedInput {
            source: Source::Resident(input),
            m,
            n,
            norm_a_sq,
            cache: Mutex::new(HashMap::new()),
            extractions: AtomicUsize::new(0),
        }
    }

    /// Opens an `NMFS` file (see [`nmf_sparse::io::write_csr_binary`])
    /// for panel-streamed sharding. Only the header and row pointers
    /// stay mapped; `‖A‖²_F` is computed here with one bounded streaming
    /// pass (bit-identical to the resident sum).
    pub fn open_mmap(path: impl AsRef<Path>) -> Result<SharedInput, NmfError> {
        let path = path.as_ref();
        let wrap = |e: MmError| match e {
            MmError::Io(source) => NmfError::Io {
                path: path.to_path_buf(),
                source,
            },
            MmError::Parse(reason) => NmfError::Corrupt {
                path: path.to_path_buf(),
                reason,
            },
        };
        let mm = MmapCsr::open(path).map_err(wrap)?;
        let norm_a_sq = mm.fro_norm_sq().map_err(wrap)?;
        let (m, n) = mm.shape();
        Ok(SharedInput {
            source: Source::Mmap(mm),
            m,
            n,
            norm_a_sq,
            cache: Mutex::new(HashMap::new()),
            extractions: AtomicUsize::new(0),
        })
    }

    pub fn nrows(&self) -> usize {
        self.m
    }

    pub fn ncols(&self) -> usize {
        self.n
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Stored entries of the source (dense inputs count every entry).
    pub fn nnz(&self) -> usize {
        match &self.source {
            Source::Resident(input) => input.nnz(),
            Source::Mmap(mm) => mm.nnz(),
        }
    }

    /// Squared Frobenius norm of the input (computed once at
    /// construction).
    pub fn fro_norm_sq(&self) -> f64 {
        self.norm_a_sq
    }

    pub fn is_sparse(&self) -> bool {
        match &self.source {
            Source::Resident(input) => input.is_sparse(),
            Source::Mmap(_) => true,
        }
    }

    /// Whether this input streams from an `NMFS` file instead of a
    /// resident matrix.
    pub fn is_mmap(&self) -> bool {
        matches!(self.source, Source::Mmap(_))
    }

    /// How many times a sharding has actually been extracted (cache
    /// misses). A rank sweep of any length over one algorithm shape
    /// leaves this at 1 — the acceptance metric for block-extraction
    /// sharing.
    pub fn extractions(&self) -> usize {
        self.extractions.load(Ordering::Relaxed)
    }

    /// Shardings currently cached.
    pub fn cached_shardings(&self) -> usize {
        self.cache.lock().expect("shard cache poisoned").len()
    }

    /// Resident heap bytes held by this input: the source matrix (0 for
    /// mmap-backed inputs — the file pages are the kernel's) plus every
    /// cached sharding's blocks. The serving layer charges these bytes
    /// once per *dataset*, not once per tenant.
    pub fn resident_bytes(&self) -> usize {
        let source = match &self.source {
            Source::Resident(Input::Dense(a)) => 8 * a.len(),
            Source::Resident(Input::Sparse(a)) => {
                8 * a.nnz() + std::mem::size_of::<usize>() * (a.indptr().len() + a.indices().len())
            }
            Source::Mmap(_) => 0,
        };
        let cache = self.cache.lock().expect("shard cache poisoned");
        source
            + cache
                .values()
                .flat_map(|set| set.iter())
                .map(RankData::resident_bytes)
                .sum::<usize>()
    }

    /// The per-rank blocks for `key`, extracting them on first request
    /// and serving the cached `Arc` afterwards.
    pub(crate) fn rank_data(&self, key: ShardKey) -> Arc<Vec<RankData>> {
        let mut cache = self.cache.lock().expect("shard cache poisoned");
        if let Some(hit) = cache.get(&key) {
            return Arc::clone(hit);
        }
        self.extractions.fetch_add(1, Ordering::Relaxed);
        let set = Arc::new(extract_rank_data(
            &|r0, c0, nr, nc| self.block(r0, c0, nr, nc),
            key,
            self.m,
            self.n,
        ));
        cache.insert(key, Arc::clone(&set));
        set
    }

    /// Drops all cached shardings (the blocks themselves survive as
    /// long as live models hold their `Arc`s).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("shard cache poisoned").clear();
    }

    /// Extracts one block from the source, streaming row panels when
    /// the source is mmap-backed.
    fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> LocalMat {
        match &self.source {
            Source::Resident(input) => input.block(r0, c0, nr, nc),
            Source::Mmap(mm) => LocalMat::Sparse(SpBlock::from_csr(mmap_block(mm, r0, c0, nr, nc))),
        }
    }
}

impl std::fmt::Debug for SharedInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedInput")
            .field("shape", &(self.m, self.n))
            .field("mmap", &self.is_mmap())
            .field("extractions", &self.extractions())
            .field("cached_shardings", &self.cached_shardings())
            .finish_non_exhaustive()
    }
}

/// Extracts the per-rank block set for a distribution shape, pulling
/// blocks through `block` (which hides resident vs mmap sourcing). The
/// single source of truth for which block every rank owns — the session
/// uses the same function whether or not the input is shared.
pub(crate) fn extract_rank_data(
    block: &dyn Fn(usize, usize, usize, usize) -> LocalMat,
    key: ShardKey,
    m: usize,
    n: usize,
) -> Vec<RankData> {
    match key {
        ShardKey::Seq => vec![RankData::Single(Arc::new(block(0, 0, m, n)))],
        ShardKey::Naive { p } => {
            let dist_m = Dist1D::new(m, p);
            let dist_n = Dist1D::new(n, p);
            (0..p)
                .map(|r| {
                    let rows = dist_m.part(r);
                    let cols = dist_n.part(r);
                    RankData::Split {
                        row: Arc::new(block(rows.offset, 0, rows.len, n)),
                        col: Arc::new(block(0, cols.offset, m, cols.len)),
                    }
                })
                .collect()
        }
        ShardKey::Grid { pr, pc } => {
            let grid = Grid::new(pr, pc);
            (0..pr * pc)
                .map(|r| {
                    let lay = hpc_rank_layout(grid, m, n, r);
                    RankData::Single(Arc::new(block(
                        lay.rows.offset,
                        lay.cols.offset,
                        lay.rows.len,
                        lay.cols.len,
                    )))
                })
                .collect()
        }
    }
}

/// `Csr::block` semantics over an mmap-backed file, streaming bounded
/// row panels and stacking their column windows — peak mapped bytes is
/// one panel, never the file. The per-row data is identical to what
/// `Csr::block` produces on the resident matrix, so the result is
/// bit-identical.
fn mmap_block(mm: &MmapCsr, r0: usize, c0: usize, nr: usize, nc: usize) -> Csr {
    let step = mm.panel_rows_for_budget(DEFAULT_PANEL_BYTES);
    let mut parts = Vec::new();
    let mut r = r0;
    while r < r0 + nr {
        let h = step.min(r0 + nr - r);
        let panel = mm
            .panel(r, h)
            .unwrap_or_else(|e| panic!("mmap panel read failed: {e}"));
        parts.push(panel.cols_block(c0, nc));
        r += h;
    }
    Csr::vstack(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::rng::Fill;
    use nmf_matrix::Mat;
    use nmf_sparse::gen::erdos_renyi;
    use nmf_sparse::io::write_csr_binary_path;

    fn block_of(lm: &LocalMat) -> &SpBlock {
        match lm {
            LocalMat::Sparse(b) => b,
            LocalMat::Dense(_) => panic!("expected a sparse block"),
        }
    }

    #[test]
    fn cache_hits_do_not_re_extract() {
        let shared = SharedInput::new(Input::Dense(Mat::uniform(12, 10, 3)));
        let a = shared.rank_data(ShardKey::Grid { pr: 2, pc: 2 });
        let b = shared.rank_data(ShardKey::Grid { pr: 2, pc: 2 });
        assert_eq!(shared.extractions(), 1);
        // Same Arc'd blocks, not equal copies.
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (RankData::Single(p), RankData::Single(q)) => assert!(Arc::ptr_eq(p, q)),
                _ => panic!("grid sharding must be Single blocks"),
            }
        }
        shared.rank_data(ShardKey::Seq);
        assert_eq!(shared.extractions(), 2);
        assert_eq!(shared.cached_shardings(), 2);
        shared.clear_cache();
        assert_eq!(shared.cached_shardings(), 0);
    }

    #[test]
    fn mmap_sharding_matches_resident_sharding() {
        let a = erdos_renyi(37, 29, 0.15, 5);
        let path = std::env::temp_dir().join(format!("nmf-shared-{}.nmfs", std::process::id()));
        write_csr_binary_path(&a, &path).unwrap();
        let resident = SharedInput::new(Input::Sparse(a));
        let mapped = SharedInput::open_mmap(&path).unwrap();
        assert_eq!(mapped.shape(), resident.shape());
        assert_eq!(
            mapped.fro_norm_sq().to_bits(),
            resident.fro_norm_sq().to_bits()
        );
        for key in [
            ShardKey::Seq,
            ShardKey::Naive { p: 3 },
            ShardKey::Grid { pr: 3, pc: 2 },
        ] {
            let rs = resident.rank_data(key);
            let ms = mapped.rank_data(key);
            assert_eq!(rs.len(), ms.len());
            for (x, y) in rs.iter().zip(ms.iter()) {
                match (x, y) {
                    (RankData::Single(p), RankData::Single(q)) => {
                        assert_eq!(block_of(p).csr(), block_of(q).csr());
                    }
                    (
                        RankData::Split { row: r1, col: c1 },
                        RankData::Split { row: r2, col: c2 },
                    ) => {
                        assert_eq!(block_of(r1).csr(), block_of(r2).csr());
                        assert_eq!(block_of(c1).csr(), block_of(c2).csr());
                    }
                    _ => panic!("sharding variants must agree"),
                }
            }
        }
        assert!(mapped.resident_bytes() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resident_bytes_count_source_and_cache() {
        let shared = SharedInput::new(Input::Sparse(erdos_renyi(20, 20, 0.1, 1)));
        let base = shared.resident_bytes();
        assert!(base > 0);
        shared.rank_data(ShardKey::Grid { pr: 2, pc: 2 });
        assert!(shared.resident_bytes() > base);
    }
}
