//! Durable checkpoints: a versioned, endian-stable on-disk snapshot of a
//! factorization in flight.
//!
//! A checkpoint is *complete*: the assembled global factors, the
//! [`ConvergenceState`], and the full run configuration (shape, grid,
//! algorithm, solver, seed, policy). Because the engine's iterate
//! trajectory is a pure function of the factors (no hidden solver or
//! workspace state carries information between iterations — the property
//! pinned down by `tests/checkpoint_resume.rs`), a run resumed from a
//! checkpoint continues the **bit-identical** trajectory of the
//! uninterrupted run, on any machine with the same float semantics.
//!
//! ## Format (version 2; version 1 still readable)
//!
//! All multi-byte values are **little-endian**; floats are IEEE-754
//! `f64` bit patterns (written with `to_le_bytes`, so `NaN`/`±inf`
//! round-trip exactly). See `docs/checkpoint-format.md` for the
//! byte-level layout. In outline:
//!
//! ```text
//! magic "NMFCKPT\0" | version u32 | meta | fingerprint u64
//!   | convergence state | nblocks u64 | W blocks (rank order)
//!   | Hᵀ blocks (rank order) | checksum u64
//! ```
//!
//! Version 2 stores the factors as **per-rank blocks** in the exact
//! layout [`crate::session`]'s `factor_layouts` assigns (version 1
//! stored one assembled `W` and one `Hᵀ`). The decoded [`Checkpoint`]
//! still presents assembled factors — reading a v2 file reassembles the
//! blocks through the [`crate::regrid`] globalizer, the same path that
//! lets a checkpoint taken on one grid resume on another (see
//! `docs/elasticity.md`).
//!
//! Two integrity fields guard two failure classes:
//!
//! * the trailing **checksum** (FNV-1a over every preceding byte)
//!   detects corruption and truncation of the file as a whole;
//! * the **config fingerprint** (FNV-1a over the serialized meta block)
//!   is also exposed via [`CheckpointMeta::fingerprint`] so callers can
//!   cheaply compare a checkpoint's configuration against a fresh one
//!   (e.g. `nmf_cli --resume` rejecting contradictory flags).
//!
//! Writes go through a sibling temp file + rename, so a crash mid-write
//! leaves the previous checkpoint intact rather than a torn file.

use crate::config::{ConvergencePolicy, NmfConfig};
use crate::engine::ConvergenceState;
use crate::error::NmfError;
use crate::grid::Grid;
use crate::harness::Algo;
use crate::regrid::GlobalFactors;
use crate::session::factor_layouts;
use nmf_matrix::Mat;
use nmf_nls::SolverKind;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// File magic: identifies the format before any parsing.
const MAGIC: &[u8; 8] = b"NMFCKPT\0";
/// The format version this build writes. Readers accept every version
/// from 1 up to this.
pub const FORMAT_VERSION: u32 = 2;

/// Everything about the run a checkpoint captures besides the factors
/// and convergence state: the problem shape and the full configuration
/// needed to rebuild an identical session.
#[derive(Clone, Debug)]
pub struct CheckpointMeta {
    /// Global input shape the factors belong to.
    pub m: usize,
    pub n: usize,
    /// Virtual ranks of the run.
    pub ranks: usize,
    /// The algorithm as requested (grid captured separately).
    pub algo: Algo,
    /// The processor grid actually used.
    pub grid: Grid,
    /// The full run configuration (k, solver, seed, policy, ...).
    pub config: NmfConfig,
}

impl CheckpointMeta {
    /// FNV-1a fingerprint of the serialized configuration — equal iff
    /// two checkpoints describe the same problem and run configuration.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = Vec::with_capacity(128);
        self.encode(&mut buf);
        fnv1a(&buf)
    }

    /// The **relaxed** compatibility check of the regrid/elasticity
    /// contract (`docs/elasticity.md`): a checkpoint's factors can seed
    /// a session on *any* grid, scheme, or rank count, but only against
    /// the same data matrix — so only the input shape is pinned here.
    /// (`k` is carried in the checkpoint's own config and is immutable
    /// across a resume; the strict whole-config check remains
    /// [`fingerprint`](Self::fingerprint) equality.)
    pub fn check_compatible(&self, m: usize, n: usize) -> Result<(), NmfError> {
        if self.m != m {
            return Err(NmfError::CheckpointMismatch {
                field: "m (input rows)",
                expected: m,
                found: self.m,
            });
        }
        if self.n != n {
            return Err(NmfError::CheckpointMismatch {
                field: "n (input columns)",
                expected: n,
                found: self.n,
            });
        }
        Ok(())
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.m as u64);
        put_u64(out, self.n as u64);
        put_u64(out, self.ranks as u64);
        let (algo_tag, grid) = match self.algo {
            Algo::Sequential => (0u32, self.grid),
            Algo::Naive => (1, self.grid),
            Algo::Hpc1D => (2, self.grid),
            Algo::Hpc2D => (3, self.grid),
            Algo::HpcGrid(g) => (4, g),
        };
        put_u32(out, algo_tag);
        put_u64(out, grid.pr as u64);
        put_u64(out, grid.pc as u64);
        let c = &self.config;
        put_u64(out, c.k as u64);
        put_u64(out, c.max_iters as u64);
        put_u32(
            out,
            match c.solver {
                SolverKind::Bpp => 0,
                SolverKind::Mu => 1,
                SolverKind::Hals => 2,
                SolverKind::ActiveSet => 3,
            },
        );
        put_u64(out, c.seed);
        put_f64(out, c.l2_w);
        put_f64(out, c.l2_h);
        put_opt_f64(out, c.tol);
        match c.convergence {
            None => out.push(0),
            Some(ConvergencePolicy::MaxIters) => out.push(1),
            Some(ConvergencePolicy::RelTol { tol }) => {
                out.push(2);
                put_f64(out, tol);
            }
            Some(ConvergencePolicy::WindowedBudget {
                window,
                tol,
                budget,
            }) => {
                out.push(3);
                put_u64(out, window as u64);
                put_f64(out, tol);
                match budget {
                    None => out.push(0),
                    Some(b) => {
                        out.push(1);
                        put_u64(out, b.as_nanos().min(u128::from(u64::MAX)) as u64);
                    }
                }
            }
        }
    }

    fn decode(r: &mut Cursor<'_>) -> Result<CheckpointMeta, String> {
        let m = r.u64()? as usize;
        let n = r.u64()? as usize;
        let ranks = r.u64()? as usize;
        let algo_tag = r.u32()?;
        let pr = r.u64()? as usize;
        let pc = r.u64()? as usize;
        if pr == 0 || pc == 0 {
            return Err(format!("invalid grid {pr}x{pc}"));
        }
        let grid = Grid::new(pr, pc);
        let algo = match algo_tag {
            0 => Algo::Sequential,
            1 => Algo::Naive,
            2 => Algo::Hpc1D,
            3 => Algo::Hpc2D,
            4 => Algo::HpcGrid(grid),
            t => return Err(format!("unknown algorithm tag {t}")),
        };
        let k = r.u64()? as usize;
        let max_iters = r.u64()? as usize;
        let solver = match r.u32()? {
            0 => SolverKind::Bpp,
            1 => SolverKind::Mu,
            2 => SolverKind::Hals,
            3 => SolverKind::ActiveSet,
            t => return Err(format!("unknown solver tag {t}")),
        };
        let seed = r.u64()?;
        let l2_w = r.f64()?;
        let l2_h = r.f64()?;
        let tol = r.opt_f64()?;
        let convergence = match r.u8()? {
            0 => None,
            1 => Some(ConvergencePolicy::MaxIters),
            2 => Some(ConvergencePolicy::RelTol { tol: r.f64()? }),
            3 => {
                let window = r.u64()? as usize;
                let wtol = r.f64()?;
                let budget = match r.u8()? {
                    0 => None,
                    1 => Some(Duration::from_nanos(r.u64()?)),
                    t => return Err(format!("unknown budget flag {t}")),
                };
                Some(ConvergencePolicy::WindowedBudget {
                    window,
                    tol: wtol,
                    budget,
                })
            }
            t => return Err(format!("unknown policy tag {t}")),
        };
        let mut config = NmfConfig::new(k);
        config.max_iters = max_iters;
        config.solver = solver;
        config.seed = seed;
        config.l2_w = l2_w;
        config.l2_h = l2_h;
        config.tol = tol;
        config.convergence = convergence;
        Ok(CheckpointMeta {
            m,
            n,
            ranks,
            algo,
            grid,
            config,
        })
    }
}

/// A parsed checkpoint: metadata, convergence state, and the assembled
/// global factors (`w` is `m×k`; `ht` is `n×k`, `H` transposed).
#[derive(Clone, Debug)]
pub struct Checkpoint {
    pub meta: CheckpointMeta,
    pub state: ConvergenceState,
    pub w: Mat,
    pub ht: Mat,
}

/// Serializes and writes a checkpoint to `path`, atomically (temp file +
/// rename in the destination directory).
pub fn write_checkpoint(path: &Path, ck: &Checkpoint) -> Result<(), NmfError> {
    let io = |source| NmfError::Io {
        path: path.to_path_buf(),
        source,
    };
    let bytes = encode(ck);
    let tmp = tmp_sibling(path);
    let mut f = std::fs::File::create(&tmp).map_err(io)?;
    f.write_all(&bytes).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(io)
}

/// [`write_checkpoint`] with rotation: before the new file lands at
/// `path`, existing generations shift one slot down the chain
/// `path → path.1 → path.2 → … → path.keep` (the oldest falls off), so
/// the last `keep` superseded checkpoints stay recoverable — insurance
/// against a run that goes numerically bad *between* checkpoints, where
/// overwrite-in-place would have destroyed the only good state.
///
/// Every shift is a same-directory rename and the final write is the
/// usual temp-file + rename, so each generation is atomically either its
/// old content or its new one; `keep == 0` is plain [`write_checkpoint`].
pub fn write_checkpoint_rotated(path: &Path, ck: &Checkpoint, keep: usize) -> Result<(), NmfError> {
    let io = |p: &Path| {
        let p = p.to_path_buf();
        move |source| NmfError::Io { path: p, source }
    };
    if keep > 0 && path.exists() {
        for i in (1..=keep).rev() {
            let from = if i == 1 {
                path.to_path_buf()
            } else {
                rotated_name(path, i - 1)
            };
            if from.exists() {
                let to = rotated_name(path, i);
                std::fs::rename(&from, &to).map_err(io(&from))?;
            }
        }
    }
    write_checkpoint(path, ck)
}

/// `path` with a rotation generation suffix: `run.ckpt` → `run.ckpt.3`.
fn rotated_name(path: &Path, generation: usize) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{generation}"));
    path.with_file_name(name)
}

/// Everything `inspect_checkpoint` learns from a checkpoint's header and
/// trailer without materializing the factor matrices.
#[derive(Clone, Debug)]
pub struct CheckpointSummary {
    /// Format version of the file.
    pub version: u32,
    /// The full recorded metadata (shape, grid, algorithm, config).
    pub meta: CheckpointMeta,
    /// The config fingerprint stored in the file (verified against the
    /// meta block it covers).
    pub fingerprint: u64,
    /// Iterations completed when the checkpoint was taken.
    pub iterations_done: usize,
    /// Objective at the checkpoint.
    pub objective: f64,
    /// Wall-clock time recorded by the run so far.
    pub elapsed: Duration,
    /// Assembled shapes of the stored factors (`W`, then `Hᵀ`), from
    /// the block headers only — the payloads are skipped, not decoded.
    /// (A v2 file stores per-rank blocks; these are their totals.)
    pub w_shape: (usize, usize),
    pub ht_shape: (usize, usize),
    /// Per-rank factor blocks in the file (1 for a v1 file's single
    /// assembled pair; the rank count for v2).
    pub factor_blocks: usize,
    /// Whether the whole-file checksum verified. `false` means the
    /// payload is damaged even though the header still parsed; a full
    /// [`read_checkpoint`] of this file would fail.
    pub checksum_ok: bool,
    /// Total file size in bytes.
    pub file_bytes: usize,
}

/// Reads a checkpoint's versioned header — shape, rank `k`, algorithm,
/// grid, fingerprint, iteration count, checksum status — **without
/// loading the factors** (their payload bytes are skipped, never parsed
/// into matrices). This is the cheap pre-flight for tooling: a corrupted
/// *payload* is reported as `checksum_ok: false` in the summary rather
/// than an error, so an operator can still see what the damaged file
/// claimed to be; a header that itself fails to parse is an error.
pub fn inspect_checkpoint(path: &Path) -> Result<CheckpointSummary, NmfError> {
    let io = |source| NmfError::Io {
        path: path.to_path_buf(),
        source,
    };
    let corrupt = |reason: String| NmfError::Corrupt {
        path: path.to_path_buf(),
        reason,
    };
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .map_err(io)?
        .read_to_end(&mut bytes)
        .map_err(io)?;
    summarize(&bytes).map_err(|e| match e {
        DecodeError::Corrupt(reason) => corrupt(reason),
        DecodeError::Version(found) => NmfError::UnsupportedVersion {
            path: path.to_path_buf(),
            found,
            supported: FORMAT_VERSION,
        },
        DecodeError::Fingerprint { expected, found } => {
            NmfError::FingerprintMismatch { expected, found }
        }
        DecodeError::Shape {
            field,
            expected,
            found,
        } => NmfError::CheckpointMismatch {
            field,
            expected,
            found,
        },
    })
}

fn summarize(bytes: &[u8]) -> Result<CheckpointSummary, DecodeError> {
    let corrupt = |s: &str| DecodeError::Corrupt(s.to_string());
    if bytes.len() < MAGIC.len() + 4 {
        return Err(corrupt("file shorter than the header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic (not an NMF checkpoint)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if !(1..=FORMAT_VERSION).contains(&version) {
        return Err(DecodeError::Version(version));
    }
    if bytes.len() < 8 + 4 + 8 + 8 {
        return Err(corrupt("truncated before the meta block"));
    }
    let body_len = bytes.len() - 8;
    let stored_sum = u64::from_le_bytes(bytes[body_len..].try_into().expect("8 bytes"));
    let checksum_ok = fnv1a(&bytes[..body_len]) == stored_sum;

    let mut r = Cursor {
        bytes: &bytes[..body_len],
        pos: 12,
    };
    let meta_len = r.u64().map_err(DecodeError::Corrupt)? as usize;
    let meta_bytes = r.take(meta_len).map_err(DecodeError::Corrupt)?.to_vec();
    let mut mr = Cursor {
        bytes: &meta_bytes,
        pos: 0,
    };
    let meta = CheckpointMeta::decode(&mut mr).map_err(DecodeError::Corrupt)?;
    let stored_fp = r.u64().map_err(DecodeError::Corrupt)?;
    let actual_fp = fnv1a(&meta_bytes);
    if stored_fp != actual_fp {
        return Err(DecodeError::Fingerprint {
            expected: actual_fp,
            found: stored_fp,
        });
    }

    let objective = r.f64().map_err(DecodeError::Corrupt)?;
    let _first = r.opt_f64().map_err(DecodeError::Corrupt)?;
    let iterations_done = r.u64().map_err(DecodeError::Corrupt)? as usize;
    let hist_len = r.u64().map_err(DecodeError::Corrupt)? as usize;
    if hist_len > body_len {
        return Err(corrupt("objective history longer than the file"));
    }
    r.take(8 * hist_len).map_err(DecodeError::Corrupt)?;
    let elapsed = Duration::from_nanos(r.u64().map_err(DecodeError::Corrupt)?);

    let (w_shape, ht_shape, factor_blocks) = if version == 1 {
        let w = r.skip_mat().map_err(DecodeError::Corrupt)?;
        let ht = r.skip_mat().map_err(DecodeError::Corrupt)?;
        (w, ht, 1)
    } else {
        let nblocks = r.u64().map_err(DecodeError::Corrupt)? as usize;
        if nblocks == 0 || nblocks > r.remaining() / 16 {
            return Err(corrupt("factor section claims more blocks than fit"));
        }
        // Accumulate the assembled totals from the block headers alone:
        // the W parts (then the Hᵀ parts) tile their global matrix, so
        // the row counts sum to m (then n).
        let mut totals = [(0usize, 0usize); 2];
        for t in &mut totals {
            for _ in 0..nblocks {
                let (nr, nc) = r.skip_mat().map_err(DecodeError::Corrupt)?;
                t.0 += nr;
                t.1 = t.1.max(nc);
            }
        }
        (totals[0], totals[1], nblocks)
    };

    Ok(CheckpointSummary {
        version,
        meta,
        fingerprint: stored_fp,
        iterations_done,
        objective,
        elapsed,
        w_shape,
        ht_shape,
        factor_blocks,
        checksum_ok,
        file_bytes: bytes.len(),
    })
}

/// Reads and validates a checkpoint from `path`: magic, version, config
/// fingerprint, internal shape consistency, and whole-file checksum.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, NmfError> {
    let io = |source| NmfError::Io {
        path: path.to_path_buf(),
        source,
    };
    let corrupt = |reason: String| NmfError::Corrupt {
        path: path.to_path_buf(),
        reason,
    };
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .map_err(io)?
        .read_to_end(&mut bytes)
        .map_err(io)?;
    decode(&bytes, path).map_err(|e| match e {
        DecodeError::Corrupt(reason) => corrupt(reason),
        DecodeError::Version(found) => NmfError::UnsupportedVersion {
            path: path.to_path_buf(),
            found,
            supported: FORMAT_VERSION,
        },
        DecodeError::Fingerprint { expected, found } => {
            NmfError::FingerprintMismatch { expected, found }
        }
        DecodeError::Shape {
            field,
            expected,
            found,
        } => NmfError::CheckpointMismatch {
            field,
            expected,
            found,
        },
    })
}

fn encode(ck: &Checkpoint) -> Vec<u8> {
    let (m, n, k) = (ck.meta.m, ck.meta.n, ck.meta.config.k);
    debug_assert_eq!(ck.w.shape(), (m, k), "checkpoint W must be assembled m x k");
    debug_assert_eq!(
        ck.ht.shape(),
        (n, k),
        "checkpoint Ht must be assembled n x k"
    );
    let mut out = Vec::with_capacity(256 + 8 * (ck.w.len() + ck.ht.len()));
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, FORMAT_VERSION);

    let mut meta = Vec::with_capacity(128);
    ck.meta.encode(&mut meta);
    put_u64(&mut out, meta.len() as u64);
    out.extend_from_slice(&meta);
    put_u64(&mut out, fnv1a(&meta));

    let st = &ck.state;
    put_f64(&mut out, st.prev_objective);
    put_opt_f64(&mut out, st.first_objective);
    put_u64(&mut out, st.iterations_done as u64);
    put_u64(&mut out, st.objective_history.len() as u64);
    for &x in &st.objective_history {
        put_f64(&mut out, x);
    }
    put_u64(
        &mut out,
        st.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
    );

    // Factor section (v2): the assembled factors sliced into the exact
    // per-rank blocks the run distributes — W blocks in rank order,
    // then Hᵀ blocks. Slicing here and reassembling on read are both
    // plain row copies at `factor_layouts` offsets, so the round trip
    // is bit-exact.
    let layouts = factor_layouts(ck.meta.algo, ck.meta.grid, ck.meta.ranks, m, n);
    put_u64(&mut out, layouts.len() as u64);
    for lay in &layouts {
        put_mat(&mut out, &ck.w.rows_block(lay.w.offset, lay.w.len));
    }
    for lay in &layouts {
        put_mat(&mut out, &ck.ht.rows_block(lay.ht.offset, lay.ht.len));
    }

    let sum = fnv1a(&out);
    put_u64(&mut out, sum);
    out
}

enum DecodeError {
    Corrupt(String),
    Version(u32),
    Fingerprint {
        expected: u64,
        found: u64,
    },
    Shape {
        field: &'static str,
        expected: usize,
        found: usize,
    },
}

fn decode(bytes: &[u8], _path: &Path) -> Result<Checkpoint, DecodeError> {
    let corrupt = |s: &str| DecodeError::Corrupt(s.to_string());
    if bytes.len() < MAGIC.len() + 4 {
        return Err(corrupt("file shorter than the header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic (not an NMF checkpoint)"));
    }
    // Version is checked before the checksum so a reader can say
    // "written by a newer format" instead of "corrupt".
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if !(1..=FORMAT_VERSION).contains(&version) {
        return Err(DecodeError::Version(version));
    }
    if bytes.len() < 8 + 4 + 8 {
        return Err(corrupt("truncated before the meta block"));
    }
    let body_len = bytes.len() - 8;
    let stored_sum = u64::from_le_bytes(bytes[body_len..].try_into().expect("8 bytes"));
    if fnv1a(&bytes[..body_len]) != stored_sum {
        return Err(corrupt(
            "checksum mismatch (the file was truncated or altered)",
        ));
    }

    let mut r = Cursor {
        bytes: &bytes[..body_len],
        pos: 12,
    };
    let meta_len = r.u64().map_err(DecodeError::Corrupt)? as usize;
    let meta_start = r.pos;
    let meta_bytes = r.take(meta_len).map_err(DecodeError::Corrupt)?.to_vec();
    let mut mr = Cursor {
        bytes: &meta_bytes,
        pos: 0,
    };
    let meta = CheckpointMeta::decode(&mut mr).map_err(DecodeError::Corrupt)?;
    debug_assert_eq!(meta_start + meta_len, r.pos);
    let stored_fp = r.u64().map_err(DecodeError::Corrupt)?;
    let actual_fp = fnv1a(&meta_bytes);
    if stored_fp != actual_fp {
        return Err(DecodeError::Fingerprint {
            expected: actual_fp,
            found: stored_fp,
        });
    }

    let prev_objective = r.f64().map_err(DecodeError::Corrupt)?;
    let first_objective = r.opt_f64().map_err(DecodeError::Corrupt)?;
    let iterations_done = r.u64().map_err(DecodeError::Corrupt)? as usize;
    let hist_len = r.u64().map_err(DecodeError::Corrupt)? as usize;
    if hist_len > body_len {
        return Err(corrupt("objective history longer than the file"));
    }
    let mut objective_history = Vec::with_capacity(hist_len);
    for _ in 0..hist_len {
        objective_history.push(r.f64().map_err(DecodeError::Corrupt)?);
    }
    let elapsed = Duration::from_nanos(r.u64().map_err(DecodeError::Corrupt)?);

    let (m, n, k) = (meta.m, meta.n, meta.config.k);
    let (w, ht) =
        if version == 1 {
            // v1: one assembled W, one assembled Hᵀ.
            let w = r.mat().map_err(DecodeError::Corrupt)?;
            let ht = r.mat().map_err(DecodeError::Corrupt)?;
            for (field, expected, found) in [
                ("W rows", m, w.nrows()),
                ("W cols", k, w.ncols()),
                ("H^T rows", n, ht.nrows()),
                ("H^T cols", k, ht.ncols()),
            ] {
                if expected != found {
                    return Err(DecodeError::Shape {
                        field,
                        expected,
                        found,
                    });
                }
            }
            (w, ht)
        } else {
            // v2: per-rank blocks, reassembled through the regrid
            // globalizer. The block count is bounded by the bytes actually
            // present *before* the layout vector is sized, so a crafted
            // header cannot force a giant allocation.
            let nblocks = r.u64().map_err(DecodeError::Corrupt)? as usize;
            if nblocks == 0 || nblocks > r.remaining() / 16 {
                return Err(corrupt("factor section claims more blocks than fit"));
            }
            if nblocks != meta.ranks {
                return Err(DecodeError::Shape {
                    field: "factor blocks",
                    expected: meta.ranks,
                    found: nblocks,
                });
            }
            let layouts = factor_layouts(meta.algo, meta.grid, meta.ranks, m, n);
            if layouts.len() != nblocks {
                return Err(DecodeError::Shape {
                    field: "factor blocks",
                    expected: layouts.len(),
                    found: nblocks,
                });
            }
            let mut w_blocks = Vec::with_capacity(nblocks);
            for _ in 0..nblocks {
                w_blocks.push(r.mat().map_err(DecodeError::Corrupt)?);
            }
            let mut ht_blocks = Vec::with_capacity(nblocks);
            for _ in 0..nblocks {
                ht_blocks.push(r.mat().map_err(DecodeError::Corrupt)?);
            }
            let global = GlobalFactors::assemble(m, n, k, &layouts, &w_blocks, &ht_blocks)
                .map_err(|e| DecodeError::Shape {
                    field: e.field,
                    expected: e.expected,
                    found: e.found,
                })?;
            (global.w, global.ht)
        };
    if r.pos != body_len {
        return Err(corrupt("trailing bytes after the factor blocks"));
    }

    Ok(Checkpoint {
        meta,
        state: ConvergenceState {
            prev_objective,
            first_objective,
            iterations_done,
            objective_history,
            elapsed,
        },
        w,
        ht,
    })
}

/* ---- byte-level helpers ---- */

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, x: Option<f64>) {
    match x {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
    }
}

fn put_mat(out: &mut Vec<u8>, m: &Mat) {
    put_u64(out, m.nrows() as u64);
    put_u64(out, m.ncols() as u64);
    for &x in m.as_slice() {
        put_f64(out, x);
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Bytes not yet consumed.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        // Compare against `remaining` (never `pos + n`, which a crafted
        // length field could overflow).
        if n > self.remaining() {
            return Err(format!(
                "truncated: needed {n} bytes at offset {}, file body has {}",
                self.pos,
                self.bytes.len()
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            t => Err(format!("unknown option flag {t}")),
        }
    }

    fn mat(&mut self) -> Result<Mat, String> {
        let nr = self.u64()? as usize;
        let nc = self.u64()? as usize;
        // Bound the claimed extent by the bytes actually present before
        // any multiplication or allocation, so a crafted header (with a
        // re-stamped checksum) is rejected as corrupt rather than
        // panicking on overflow or an absurd Vec reservation.
        let words = nr
            .checked_mul(nc)
            .filter(|&w| w <= self.remaining() / 8)
            .ok_or_else(|| {
                format!(
                    "factor block claims {nr}x{nc} values but only {} bytes remain",
                    self.remaining()
                )
            })?;
        let raw = self.take(8 * words)?;
        let mut data = Vec::with_capacity(words);
        for chunk in raw.chunks_exact(8) {
            data.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        Ok(Mat::from_vec(nr, nc, data))
    }

    /// Reads a factor block's header and skips its payload (same bounds
    /// checks as [`mat`](Self::mat), no allocation). Returns the shape.
    fn skip_mat(&mut self) -> Result<(usize, usize), String> {
        let nr = self.u64()? as usize;
        let nc = self.u64()? as usize;
        let words = nr
            .checked_mul(nc)
            .filter(|&w| w <= self.remaining() / 8)
            .ok_or_else(|| {
                format!(
                    "factor block claims {nr}x{nc} values but only {} bytes remain",
                    self.remaining()
                )
            })?;
        self.take(8 * words)?;
        Ok((nr, nc))
    }
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A unique temp-file path next to `path` (same filesystem, so the
/// rename is atomic).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::rng::Fill;

    fn sample() -> Checkpoint {
        Checkpoint {
            meta: CheckpointMeta {
                m: 12,
                n: 9,
                ranks: 4,
                algo: Algo::Hpc2D,
                grid: Grid::new(2, 2),
                config: NmfConfig::new(3).with_max_iters(7).with_seed(5),
            },
            state: ConvergenceState {
                prev_objective: 42.5,
                first_objective: Some(99.0),
                iterations_done: 3,
                objective_history: vec![99.0, 60.0, 42.5],
                elapsed: Duration::from_millis(1234),
            },
            w: Mat::uniform(12, 3, 1),
            ht: Mat::uniform(9, 3, 2),
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let ck = sample();
        let bytes = encode(&ck);
        let back = decode(&bytes, Path::new("mem")).ok().expect("decodes");
        assert_eq!(back.w, ck.w);
        assert_eq!(back.ht, ck.ht);
        assert_eq!(back.state, ck.state);
        assert_eq!(back.meta.m, ck.meta.m);
        assert_eq!(back.meta.config.k, ck.meta.config.k);
        assert_eq!(back.meta.fingerprint(), ck.meta.fingerprint());
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode(&sample());
        for cut in [5, 11, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode(&bytes[..cut], Path::new("mem")).is_err(),
                "truncation at {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode(&bytes, Path::new("mem")),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn absurd_factor_extent_is_corrupt_not_a_panic() {
        // Edit a factor block to claim 2^61 rows and re-stamp the
        // trailing checksum (FNV is not cryptographic; the format's
        // contract is a *decode error*, never a panic or giant
        // allocation). The last Hᵀ block of the sample (2×2 grid on
        // 12×9, k=3) is 2×3, so its header sits at a fixed offset from
        // the end: checksum (8) + payload (6 f64s) + header (16).
        let ck = sample();
        let mut bytes = encode(&ck);
        let pos = bytes.len() - 8 - 8 * 6 - 16;
        assert_eq!(bytes[pos..pos + 8], 2u64.to_le_bytes(), "Hᵀ block rows");
        assert_eq!(
            bytes[pos + 8..pos + 16],
            3u64.to_le_bytes(),
            "Hᵀ block cols"
        );
        bytes[pos..pos + 8].copy_from_slice(&(1u64 << 61).to_le_bytes());
        let body = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body]);
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&bytes, Path::new("mem")),
            Err(DecodeError::Corrupt(_))
        ));
    }

    /// The old single-assembled-pair encoding, kept verbatim so v1
    /// files written by earlier builds stay readable.
    fn encode_v1(ck: &Checkpoint) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, 1);
        let mut meta = Vec::with_capacity(128);
        ck.meta.encode(&mut meta);
        put_u64(&mut out, meta.len() as u64);
        out.extend_from_slice(&meta);
        put_u64(&mut out, fnv1a(&meta));
        let st = &ck.state;
        put_f64(&mut out, st.prev_objective);
        put_opt_f64(&mut out, st.first_objective);
        put_u64(&mut out, st.iterations_done as u64);
        put_u64(&mut out, st.objective_history.len() as u64);
        for &x in &st.objective_history {
            put_f64(&mut out, x);
        }
        put_u64(
            &mut out,
            st.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        put_mat(&mut out, &ck.w);
        put_mat(&mut out, &ck.ht);
        let sum = fnv1a(&out);
        put_u64(&mut out, sum);
        out
    }

    #[test]
    fn version_1_files_stay_readable() {
        let ck = sample();
        let bytes = encode_v1(&ck);
        let back = decode(&bytes, Path::new("mem")).ok().expect("v1 decodes");
        assert_eq!(back.w, ck.w);
        assert_eq!(back.ht, ck.ht);
        assert_eq!(back.state, ck.state);
        let s = summarize(&bytes).ok().expect("v1 summarizes");
        assert_eq!(s.version, 1);
        assert_eq!(s.factor_blocks, 1);
        assert_eq!(s.w_shape, (12, 3));
        assert_eq!(s.ht_shape, (9, 3));
        assert!(s.checksum_ok);
    }

    #[test]
    fn v2_stores_one_block_per_rank_and_reassembles_bit_exactly() {
        let ck = sample();
        let bytes = encode(&ck);
        let s = summarize(&bytes).ok().expect("summarizes");
        assert_eq!(s.version, FORMAT_VERSION);
        assert_eq!(s.factor_blocks, ck.meta.ranks);
        // Block totals reconstruct the assembled shapes...
        assert_eq!(s.w_shape, (12, 3));
        assert_eq!(s.ht_shape, (9, 3));
        // ...and the decode path reassembles through the globalizer to
        // the exact matrices that were sliced.
        let back = decode(&bytes, Path::new("mem")).ok().expect("decodes");
        assert_eq!(back.w, ck.w);
        assert_eq!(back.ht, ck.ht);
    }

    #[test]
    fn v2_block_count_must_match_the_recorded_ranks() {
        let ck = sample();
        let mut bytes = encode(&ck);
        // The nblocks field follows the state section; find it by value
        // scanning backwards from the first W block header (3×3 at a
        // known distance: 4 W blocks of 3×3 and 4 Hᵀ blocks totalling
        // 9×3 plus 8 headers of 16 bytes, then the checksum).
        let factor_payload = 8 * (12 * 3 + 9 * 3) + 16 * 8;
        let pos = bytes.len() - 8 - factor_payload - 8;
        assert_eq!(bytes[pos..pos + 8], 4u64.to_le_bytes(), "nblocks field");
        bytes[pos..pos + 8].copy_from_slice(&3u64.to_le_bytes());
        let body = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body]);
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&bytes, Path::new("mem")),
            Err(DecodeError::Shape { .. }) | Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn summary_reads_header_and_flags_payload_damage() {
        let ck = sample();
        let bytes = encode(&ck);
        let s = summarize(&bytes).ok().expect("summarizes");
        assert_eq!(s.version, FORMAT_VERSION);
        assert_eq!((s.meta.m, s.meta.n), (12, 9));
        assert_eq!(s.meta.config.k, 3);
        assert_eq!(s.iterations_done, 3);
        assert_eq!(s.w_shape, (12, 3));
        assert_eq!(s.ht_shape, (9, 3));
        assert_eq!(s.fingerprint, ck.meta.fingerprint());
        assert!(s.checksum_ok);

        // Flip a byte inside the W payload: the header still parses,
        // the summary reports the damage instead of erroring.
        let mut damaged = bytes.clone();
        let off = damaged.len() - 16; // inside Ht payload, before checksum
        damaged[off] ^= 0x01;
        let s = summarize(&damaged).ok().expect("header intact");
        assert!(!s.checksum_ok);

        // A damaged *header* (meta block) is an error, not a summary.
        let mut bad_meta = bytes.clone();
        bad_meta[20] ^= 0xff;
        assert!(summarize(&bad_meta).is_err());
    }

    #[test]
    fn rotation_keeps_a_bounded_history() {
        let dir = std::env::temp_dir().join(format!("nmf-rot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("run.ckpt");
        let mut ck = sample();
        for gen in 0..5 {
            ck.state.iterations_done = gen;
            write_checkpoint_rotated(&path, &ck, 2).expect("write");
        }
        // Newest at `path`, two generations behind it, nothing older.
        let newest = read_checkpoint(&path).expect("newest");
        assert_eq!(newest.state.iterations_done, 4);
        let g1 = read_checkpoint(&rotated_name(&path, 1)).expect("gen 1");
        assert_eq!(g1.state.iterations_done, 3);
        let g2 = read_checkpoint(&rotated_name(&path, 2)).expect("gen 2");
        assert_eq!(g2.state.iterations_done, 2);
        assert!(!rotated_name(&path, 3).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_depth_zero_is_plain_overwrite() {
        let dir = std::env::temp_dir().join(format!("nmf-rot0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("run.ckpt");
        let ck = sample();
        write_checkpoint_rotated(&path, &ck, 0).expect("write");
        write_checkpoint_rotated(&path, &ck, 0).expect("overwrite");
        assert!(!rotated_name(&path, 1).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn infinities_round_trip() {
        let mut ck = sample();
        ck.state.prev_objective = f64::INFINITY;
        ck.state.first_objective = None;
        let back = decode(&encode(&ck), Path::new("mem"))
            .ok()
            .expect("decodes");
        assert_eq!(back.state.prev_objective, f64::INFINITY);
        assert_eq!(back.state.first_objective, None);
    }
}
