//! The step-wise ANLS engine: one iteration loop behind all three drivers.
//!
//! The paper's central observation is that Sequential (Algorithm 1),
//! Naive-Parallel (Algorithm 2), and HPC-NMF (Algorithm 3) perform *the
//! same alternating-NLS computation* and differ only in how the Gram
//! matrices, assembled factor blocks, and normal-equation right-hand
//! sides move between processors. [`AnlsEngine`] encodes that directly:
//! the loop body — Gram → ridge → NLS solve, twice, then the
//! Gram-identity objective — exists exactly once ([`AnlsEngine::step`]),
//! and the three algorithms are three implementations of [`CommScheme`]:
//!
//! | Scheme | Paper | Communication |
//! |---|---|---|
//! | [`LocalScheme`] | Algorithm 1 | none |
//! | [`Replicated1D`] | Algorithm 2 | all-gather whole factors, redundant Grams |
//! | [`Grid2D`] | Algorithm 3 | Gram all-reduce + grid-dimension all-gather + reduce-scatter |
//!
//! Because the arithmetic is shared, the engine preserves the two
//! hard-won properties of the drivers it replaced: **bit-identical
//! iterate trajectories** across schemes and processor counts (the same
//! kernels run in the same order on the same operands), and the
//! **zero-allocation steady state** (every per-iteration matrix lives in
//! the [`IterWorkspace`], the collectives are the `_into` variants, and
//! the NLS solvers reuse their own scratch).
//!
//! ## Step-wise execution
//!
//! Unlike the seed's run-to-completion drivers, the engine is a
//! resumable iterator: [`step`](AnlsEngine::step) executes exactly one
//! outer iteration and returns its [`IterRecord`];
//! [`factors`](AnlsEngine::factors) exposes the current iterates
//! mid-run (for checkpointing, streaming consumers, or serving partially
//! converged factors); a fresh engine started from exported factors
//! continues the *bit-identical* trajectory (see
//! `tests/checkpoint_resume.rs`). [`run`](AnlsEngine::run) drives
//! `step` under the configured [`ConvergencePolicy`] and
//! [`run_observed`](AnlsEngine::run_observed) additionally invokes a
//! per-iteration observer — the hook for progress reporting, live
//! objective dashboards, or external early-stop controllers.
//!
//! ## Distributed stopping discipline
//!
//! Every stopping decision must be *collective*: if one rank leaves the
//! loop while another enters a collective, the job deadlocks. The engine
//! guarantees agreement by deciding only on collectively-known values:
//! the objective is all-reduced (every rank sees the same float), and
//! the wall-clock budget of [`ConvergencePolicy::WindowedBudget`] is
//! folded into the objective all-reduce as a flag summed across ranks,
//! so one slow rank stops everyone.

use crate::config::{
    apply_ridge, ConvergencePolicy, IterRecord, NmfConfig, NmfOutput, StopReason, TaskTimes,
};
use crate::dist::{Dist1D, Part};
use crate::grid::Grid;
use crate::input::{Input, LocalMat};
use crate::naive::RankNmfOutput;
use crate::workspace::{IterWorkspace, SessionPack};
use nmf_matrix::gram::gram_into;
use nmf_matrix::Mat;
use nmf_nls::NlsSolver;
use nmf_vmpi::{Comm, CommStats, PendingOp};
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// The data-matrix kernels an ANLS iteration needs. The data matrix
/// enters the algorithm only through these two products (plus its norm),
/// exactly as in the paper ("the data matrix itself is never
/// communicated"); implementations exist for the global [`Input`]
/// (sequential), a single distributed block [`LocalMat`] (HPC-NMF), and
/// the doubly-stored [`SplitBlocks`] of the naive algorithm.
pub trait AnlsData {
    /// Packs this rank's dense data into microkernel-ready panels
    /// ([`SessionPack`]) — called once at engine construction, so every
    /// iteration's `MM` products skip left-operand packing entirely.
    /// Sparse implementations clear the pack. Must also pre-size the
    /// pack's tile scratch for `·×k` right operands so steady-state
    /// iterations (including the first) allocate nothing.
    fn pack_session(&self, pack: &mut SessionPack, k: usize);
    /// Local `A·Hᵀ` with `Hᵀ` supplied row-major (`·×k`), into `out`,
    /// reading the session-packed panels when present.
    fn mm_a_ht_into(&self, pack: &mut SessionPack, ht: &Mat, out: &mut Mat);
    /// Local `Aᵀ·W`, into `out` (stored transposed, `·×k`), reading the
    /// session-packed transpose panels when present.
    fn mm_at_w_into(&self, pack: &mut SessionPack, w: &Mat, out: &mut Mat);
    /// This rank's contribution to `‖A‖²_F`, each entry counted exactly
    /// once across all ranks.
    fn norm_sq_contrib(&self) -> f64;
}

impl AnlsData for &Input {
    fn pack_session(&self, pack: &mut SessionPack, k: usize) {
        Input::pack_session(self, pack, k);
    }

    fn mm_a_ht_into(&self, pack: &mut SessionPack, ht: &Mat, out: &mut Mat) {
        Input::mm_a_ht_packed_into(self, pack, ht, out);
    }

    fn mm_at_w_into(&self, pack: &mut SessionPack, w: &Mat, out: &mut Mat) {
        Input::mm_at_w_packed_into(self, pack, w, out);
    }

    fn norm_sq_contrib(&self) -> f64 {
        self.fro_norm_sq()
    }
}

impl AnlsData for &LocalMat {
    fn pack_session(&self, pack: &mut SessionPack, k: usize) {
        self.pack_a_into(&mut pack.a);
        self.pack_at_into(&mut pack.at);
        pack.reserve_scratch(k);
    }

    fn mm_a_ht_into(&self, pack: &mut SessionPack, ht: &Mat, out: &mut Mat) {
        LocalMat::mm_a_ht_packed_into(self, &pack.a, ht, out, &mut pack.bpack);
    }

    fn mm_at_w_into(&self, pack: &mut SessionPack, w: &Mat, out: &mut Mat) {
        LocalMat::mm_at_w_packed_into(self, &pack.at, w, out, &mut pack.bpack);
    }

    fn norm_sq_contrib(&self) -> f64 {
        self.fro_norm_sq()
    }
}

/// Algorithm 2's doubled storage: the row block `Aᵢ` feeds `A·Hᵀ`, the
/// column block `Aʲ` feeds `Aᵀ·W`. The norm contribution comes from the
/// column blocks alone so each entry is counted once.
pub struct SplitBlocks<'a> {
    pub row_block: &'a LocalMat,
    pub col_block: &'a LocalMat,
}

impl AnlsData for SplitBlocks<'_> {
    fn pack_session(&self, pack: &mut SessionPack, k: usize) {
        self.row_block.pack_a_into(&mut pack.a);
        self.col_block.pack_at_into(&mut pack.at);
        pack.reserve_scratch(k);
    }

    fn mm_a_ht_into(&self, pack: &mut SessionPack, ht: &Mat, out: &mut Mat) {
        self.row_block
            .mm_a_ht_packed_into(&pack.a, ht, out, &mut pack.bpack);
    }

    fn mm_at_w_into(&self, pack: &mut SessionPack, w: &Mat, out: &mut Mat) {
        self.col_block
            .mm_at_w_packed_into(&pack.at, w, out, &mut pack.bpack);
    }

    fn norm_sq_contrib(&self) -> f64 {
        self.col_block.fro_norm_sq()
    }
}

/// Which buffer holds the factor block a matrix-multiply should read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FactorSource {
    /// The engine's own local factor slice (nothing was gathered).
    Local,
    /// The workspace gather buffer (`ht_gather` / `w_gather`).
    Gathered,
}

/// Which buffer holds the normal-equation right-hand side after the
/// post-MM reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RhsSource {
    /// The MM output itself (`mm_w` / `mm_h`); no reduction happened.
    Mm,
    /// The reduce-scatter output (`aht` / `wta`).
    Scattered,
}

/// A communication layout for the ANLS iteration: everything that
/// distinguishes Algorithms 1–3 from each other. Methods are invoked by
/// [`AnlsEngine::step`] in a fixed order — W-side Gram, W-side gather,
/// (engine MM), W-side scatter, (engine solve), then the H-side mirror,
/// then the objective reduction — and each implementation performs its
/// collectives inside the matching hook so the on-wire schedule is
/// exactly the paper's algorithm.
///
/// Compute performed inside a hook (the Gram products) is timed into the
/// caller's [`TaskTimes`]; communication is accounted separately by the
/// virtual MPI and surfaced through [`CommScheme::comm_stats`].
pub trait CommScheme {
    /// Sizes (or re-sizes) the workspace buffers this scheme touches; a
    /// no-op when already sized.
    fn size_workspace(&self, ws: &mut IterWorkspace, k: usize);

    /// One-time preparation before the first iteration (e.g. HPC-NMF
    /// primes the local `H` Gram that iteration 1's all-reduce consumes).
    fn prime(&self, ws: &mut IterWorkspace, ht_local: &Mat) {
        let _ = (ws, ht_local);
    }

    /// Sums a scalar across ranks (the `‖A‖²` setup reduction).
    fn reduce_scalar(&self, x: f64) -> f64;

    /// Leaves the *global* Gram `HHᵀ` in `ws.gram_solve`, un-ridged.
    fn reduce_gram_h(&self, ws: &mut IterWorkspace, ht_local: &Mat, tt: &mut TaskTimes);

    /// Assembles the `Hᵀ` block the local `A·Hᵀ` needs (into
    /// `ws.ht_gather`) and says where to read it.
    fn gather_h(&self, ws: &mut IterWorkspace, ht_local: &Mat) -> FactorSource;

    /// Reduces `ws.mm_w` to this rank's right-hand side for the `W`
    /// solve and says where it landed.
    fn reduce_scatter_w(&self, ws: &mut IterWorkspace) -> RhsSource;

    /// Leaves the *global* Gram `WᵀW` in `ws.gram_w`, un-ridged (it is
    /// also read by the objective).
    fn reduce_gram_w(&self, ws: &mut IterWorkspace, w_local: &Mat, tt: &mut TaskTimes);

    /// Assembles the `W` block the local `Aᵀ·W` needs (into
    /// `ws.w_gather`) and says where to read it.
    fn gather_w(&self, ws: &mut IterWorkspace, w_local: &Mat) -> FactorSource;

    /// Reduces `ws.mm_h` to this rank's right-hand side for the `H`
    /// solve and says where it landed.
    fn reduce_scatter_h(&self, ws: &mut IterWorkspace) -> RhsSource;

    /// Sums the objective terms (and, when present, the wall-clock
    /// budget flag) across ranks, in place.
    fn reduce_objective_terms(&self, terms: &mut [f64]);

    /// Snapshot of this rank's cumulative communication counters.
    fn comm_stats(&self) -> CommStats;

    // ------------------------------------------------------------------
    // Split-phase variants
    //
    // The engine drives the iteration through these post/wait pairs so an
    // overlapping scheme can put a collective in flight and run the next
    // local product before completing it. The defaults collapse to the
    // synchronous hooks — the Gram reduction runs whole at its post site,
    // gathers and scatters run whole at their wait site — so LocalScheme
    // and Replicated1D (and any scheme that doesn't override) execute the
    // exact schedule they always did.
    // ------------------------------------------------------------------

    /// Puts the H-assembly gather in flight (no-op for synchronous
    /// schemes; the work happens in [`wait_gather_h`](Self::wait_gather_h)).
    fn post_gather_h(&self, ws: &mut IterWorkspace, ht_local: &Mat) {
        let _ = (ws, ht_local);
    }

    /// Completes the H-assembly gather posted by `post_gather_h`.
    fn wait_gather_h(&self, ws: &mut IterWorkspace, ht_local: &Mat) -> FactorSource {
        self.gather_h(ws, ht_local)
    }

    /// Puts the `HHᵀ` reduction in flight (synchronous schemes do the
    /// whole reduction here).
    fn post_reduce_gram_h(&self, ws: &mut IterWorkspace, ht_local: &Mat, tt: &mut TaskTimes) {
        self.reduce_gram_h(ws, ht_local, tt);
    }

    /// Completes the `HHᵀ` reduction into `ws.gram_solve`.
    fn wait_reduce_gram_h(&self, ws: &mut IterWorkspace) {
        let _ = ws;
    }

    /// Puts the W-side reduce-scatter of `ws.mm_w` in flight.
    fn post_reduce_scatter_w(&self, ws: &mut IterWorkspace) {
        let _ = ws;
    }

    /// Completes the W-side reduce-scatter.
    fn wait_reduce_scatter_w(&self, ws: &mut IterWorkspace) -> RhsSource {
        self.reduce_scatter_w(ws)
    }

    /// Puts the W-assembly gather in flight.
    fn post_gather_w(&self, ws: &mut IterWorkspace, w_local: &Mat) {
        let _ = (ws, w_local);
    }

    /// Completes the W-assembly gather posted by `post_gather_w`.
    fn wait_gather_w(&self, ws: &mut IterWorkspace, w_local: &Mat) -> FactorSource {
        self.gather_w(ws, w_local)
    }

    /// Puts the `WᵀW` reduction in flight (computes the local Gram first).
    fn post_reduce_gram_w(&self, ws: &mut IterWorkspace, w_local: &Mat, tt: &mut TaskTimes) {
        self.reduce_gram_w(ws, w_local, tt);
    }

    /// Completes the `WᵀW` reduction into `ws.gram_w`.
    fn wait_reduce_gram_w(&self, ws: &mut IterWorkspace) {
        let _ = ws;
    }

    /// Puts the H-side reduce-scatter of `ws.mm_h` in flight.
    fn post_reduce_scatter_h(&self, ws: &mut IterWorkspace) {
        let _ = ws;
    }

    /// Completes the H-side reduce-scatter.
    fn wait_reduce_scatter_h(&self, ws: &mut IterWorkspace) -> RhsSource {
        self.reduce_scatter_h(ws)
    }

    /// Whether the engine may post the *next* iteration's H-side
    /// collectives (`post_gather_h` / `post_reduce_gram_h`) before this
    /// iteration's objective reduction, letting them ride its wake
    /// chain. Only meaningful for genuinely split-phase schemes — the
    /// defaults execute work at the post site, which must not move
    /// across the iteration boundary — so this defaults to `false`.
    fn prefetch_across_iterations(&self) -> bool {
        false
    }
}

/// Algorithm 1: single process, no communication. Every hook is the
/// identity or a plain local Gram.
#[derive(Clone, Copy, Debug)]
pub struct LocalScheme {
    m: usize,
    n: usize,
}

impl LocalScheme {
    /// Scheme for an `m×n` input on one process.
    pub fn new(m: usize, n: usize) -> Self {
        LocalScheme { m, n }
    }
}

impl CommScheme for LocalScheme {
    fn size_workspace(&self, ws: &mut IterWorkspace, k: usize) {
        ws.size_for_seq(self.m, self.n, k);
    }

    fn reduce_scalar(&self, x: f64) -> f64 {
        x
    }

    fn reduce_gram_h(&self, ws: &mut IterWorkspace, ht_local: &Mat, tt: &mut TaskTimes) {
        // HHᵀ goes straight into the solve buffer; nothing reads the
        // un-ridged Gram later.
        let t0 = Instant::now();
        gram_into(ht_local, &mut ws.gram_solve);
        tt.gram += t0.elapsed();
    }

    fn gather_h(&self, _ws: &mut IterWorkspace, _ht_local: &Mat) -> FactorSource {
        FactorSource::Local
    }

    fn reduce_scatter_w(&self, _ws: &mut IterWorkspace) -> RhsSource {
        RhsSource::Mm
    }

    fn reduce_gram_w(&self, ws: &mut IterWorkspace, w_local: &Mat, tt: &mut TaskTimes) {
        let t0 = Instant::now();
        gram_into(w_local, &mut ws.gram_w);
        tt.gram += t0.elapsed();
    }

    fn gather_w(&self, _ws: &mut IterWorkspace, _w_local: &Mat) -> FactorSource {
        FactorSource::Local
    }

    fn reduce_scatter_h(&self, _ws: &mut IterWorkspace) -> RhsSource {
        RhsSource::Mm
    }

    fn reduce_objective_terms(&self, _terms: &mut [f64]) {}

    fn comm_stats(&self) -> CommStats {
        CommStats::new()
    }
}

/// Algorithm 2 (Naive-Parallel): 1D distributions of both factors, an
/// all-gather of the *entire* other factor before each solve, and a
/// redundant Gram on every rank — the `O((m+n)k)`-word baseline the
/// paper improves on.
pub struct Replicated1D<'c> {
    comm: &'c Comm,
    /// Global factor-row distributions (`W` rows / `H` columns).
    dist_m: Dist1D,
    dist_n: Dist1D,
    /// All-gather counts (words) for the two factors.
    w_counts: Vec<usize>,
    h_counts: Vec<usize>,
    k: usize,
}

impl<'c> Replicated1D<'c> {
    /// Scheme for one rank of Algorithm 2 on an `m×n` input at rank `k`.
    pub fn new(comm: &'c Comm, dims: (usize, usize), k: usize) -> Self {
        let (m, n) = dims;
        let p = comm.size();
        let dist_m = Dist1D::new(m, p);
        let dist_n = Dist1D::new(n, p);
        let w_counts = dist_m.lens_scaled(k);
        let h_counts = dist_n.lens_scaled(k);
        Replicated1D {
            comm,
            dist_m,
            dist_n,
            w_counts,
            h_counts,
            k,
        }
    }

    /// This rank's slice of the global `W` rows.
    pub fn w_part(&self) -> Part {
        self.dist_m.part(self.comm.rank())
    }

    /// This rank's slice of the global `H` columns.
    pub fn ht_part(&self) -> Part {
        self.dist_n.part(self.comm.rank())
    }
}

impl CommScheme for Replicated1D<'_> {
    fn size_workspace(&self, ws: &mut IterWorkspace, k: usize) {
        debug_assert_eq!(k, self.k);
        ws.size_for_naive(
            self.dist_m.total(),
            self.dist_n.total(),
            self.w_part().len,
            self.ht_part().len,
            k,
        );
    }

    fn reduce_scalar(&self, x: f64) -> f64 {
        self.comm.all_reduce_scalar(x)
    }

    fn reduce_gram_h(&self, ws: &mut IterWorkspace, ht_local: &Mat, tt: &mut TaskTimes) {
        // Line 3: collect the whole of H on each processor, then the
        // redundant Gram — every rank computes HHᵀ itself, straight into
        // the solve buffer.
        self.comm.all_gatherv_into(
            ht_local.as_slice(),
            &self.h_counts,
            ws.ht_gather.as_mut_slice(),
        );
        let t0 = Instant::now();
        gram_into(&ws.ht_gather, &mut ws.gram_solve);
        tt.gram += t0.elapsed();
    }

    fn gather_h(&self, _ws: &mut IterWorkspace, _ht_local: &Mat) -> FactorSource {
        // Already assembled by `reduce_gram_h` (the gather feeds both the
        // Gram and the MM in Algorithm 2).
        FactorSource::Gathered
    }

    fn reduce_scatter_w(&self, _ws: &mut IterWorkspace) -> RhsSource {
        // Aᵢ is a full row block, so AᵢHᵀ already is this rank's
        // right-hand side.
        RhsSource::Mm
    }

    fn reduce_gram_w(&self, ws: &mut IterWorkspace, w_local: &Mat, tt: &mut TaskTimes) {
        // Line 5: collect the whole of W, then the redundant Gram.
        self.comm.all_gatherv_into(
            w_local.as_slice(),
            &self.w_counts,
            ws.w_gather.as_mut_slice(),
        );
        let t0 = Instant::now();
        gram_into(&ws.w_gather, &mut ws.gram_w);
        tt.gram += t0.elapsed();
    }

    fn gather_w(&self, _ws: &mut IterWorkspace, _w_local: &Mat) -> FactorSource {
        FactorSource::Gathered
    }

    fn reduce_scatter_h(&self, _ws: &mut IterWorkspace) -> RhsSource {
        RhsSource::Mm
    }

    fn reduce_objective_terms(&self, terms: &mut [f64]) {
        self.comm.all_reduce_into(terms);
    }

    fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }
}

/// Algorithm 3 (HPC-NMF): the data matrix lives once as `pr × pc`
/// blocks; per factor and per iteration the scheme performs exactly one
/// `k×k` Gram all-reduce, one all-gather along the grid dimension that
/// shares the factor block, and one reduce-scatter back to the 1D factor
/// distribution — the communication-optimal schedule of the paper's
/// Table 2. A `pr×1` grid degenerates to the 1D variant prescribed for
/// tall-and-skinny inputs.
pub struct Grid2D<'c> {
    world: &'c Comm,
    /// Spans this grid row (`pc` ranks, ordered by column index).
    row_comm: Comm,
    /// Spans this grid column (`pr` ranks, ordered by row index).
    col_comm: Comm,
    /// This rank's `Aᵢⱼ` block extent.
    rows: Part,
    cols: Part,
    /// This rank's 1D factor slices *within* its block.
    w_sub: Part,
    ht_sub: Part,
    /// Reduce-scatter / all-gather counts along the grid row / column.
    w_counts: Vec<usize>,
    h_counts: Vec<usize>,
    k: usize,
    /// Whether to run the split-phase (post/wait) schedule. When false,
    /// every hook falls back to its synchronous sibling — same words,
    /// same tags, no overlap.
    overlap: bool,
    /// The collectives currently in flight. Interior mutability because
    /// the `CommScheme` hooks take `&self`; at most one op per slot is
    /// pending at any point of the fixed step schedule.
    pending: RefCell<PendingGrid>,
}

/// In-flight split-phase collectives of one [`Grid2D`] step. Slot names
/// follow the hook that posts into them; `wait_*` drains the slot (or
/// falls back to the synchronous path when the slot is empty, i.e.
/// overlap is disabled).
#[derive(Default)]
struct PendingGrid {
    gram_h: Option<PendingOp>,
    gather_h: Option<PendingOp>,
    rs_w: Option<PendingOp>,
    gram_w: Option<PendingOp>,
    gather_w: Option<PendingOp>,
    rs_h: Option<PendingOp>,
}

impl<'c> Grid2D<'c> {
    /// Scheme for one rank of Algorithm 3 on a `grid.pr × grid.pc`
    /// processor grid over an `m×n` input at rank `k`.
    ///
    /// Collective over `comm` (it splits the grid row and column
    /// sub-communicators), so every rank must construct its scheme.
    pub fn new(comm: &'c Comm, grid: Grid, dims: (usize, usize), k: usize) -> Self {
        let (m, n) = dims;
        assert_eq!(
            comm.size(),
            grid.size(),
            "communicator size must match grid"
        );
        let (gi, gj) = grid.coords(comm.rank());

        let row_comm = comm.split(gi, gj);
        let col_comm = comm.split(grid.pr + gj, gi);
        debug_assert_eq!(row_comm.size(), grid.pc);
        debug_assert_eq!(col_comm.size(), grid.pr);

        // Distributions: A's rows over grid rows, A's columns over grid
        // columns; within a block, W's rows over the grid row's members
        // and H's columns over the grid column's members.
        let dist_m = Dist1D::new(m, grid.pr);
        let dist_n = Dist1D::new(n, grid.pc);
        let rows = dist_m.part(gi);
        let cols = dist_n.part(gj);
        let sub_rows = Dist1D::new(rows.len, grid.pc);
        let sub_cols = Dist1D::new(cols.len, grid.pr);

        Grid2D {
            world: comm,
            row_comm,
            col_comm,
            rows,
            cols,
            w_sub: sub_rows.part(gj),
            ht_sub: sub_cols.part(gi),
            w_counts: sub_rows.lens_scaled(k),
            h_counts: sub_cols.lens_scaled(k),
            k,
            overlap: true,
            pending: RefCell::new(PendingGrid::default()),
        }
    }

    /// Enables or disables the split-phase overlapped schedule
    /// (default: enabled). Must agree across ranks — the schedule is
    /// part of the collective call sequence.
    #[must_use]
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Whether this scheme runs the overlapped schedule.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// Completes `op` into `out`, opportunistically advancing the
    /// in-flight op in the `sibling` slot whenever this wait would park.
    /// When ranks are oversubscribed onto few cores this batches all
    /// arrived rounds of both collectives into one thread activation
    /// instead of waking once per round of one op.
    fn wait_driving(
        &self,
        op: PendingOp,
        out: &mut [f64],
        sibling: fn(&mut PendingGrid) -> &mut Option<PendingOp>,
    ) {
        op.wait_with(out, || {
            if let Some(other) = sibling(&mut self.pending.borrow_mut()).as_mut() {
                other.try_progress();
            }
        });
    }

    /// Expected shape of this rank's `Aᵢⱼ` block.
    pub fn block_shape(&self) -> (usize, usize) {
        (self.rows.len, self.cols.len)
    }

    /// Expected shape of this rank's `(Wᵢ)ⱼ` slice.
    pub fn w_shape(&self) -> (usize, usize) {
        (self.w_sub.len, self.k)
    }

    /// Expected shape of this rank's `(Hⱼ)ᵢ` slice (stored transposed).
    pub fn ht_shape(&self) -> (usize, usize) {
        (self.ht_sub.len, self.k)
    }
}

impl CommScheme for Grid2D<'_> {
    fn size_workspace(&self, ws: &mut IterWorkspace, k: usize) {
        debug_assert_eq!(k, self.k);
        ws.size_for_hpc(
            self.rows.len,
            self.cols.len,
            self.w_sub.len,
            self.ht_sub.len,
            k,
        );
    }

    fn prime(&self, ws: &mut IterWorkspace, ht_local: &Mat) {
        // Line 3 for the first iteration: Uᵢⱼ = (Hⱼ)ᵢ(Hⱼ)ᵢᵀ. Later
        // iterations reuse the Gram computed for the objective.
        gram_into(ht_local, &mut ws.gram_local);
    }

    fn reduce_scalar(&self, x: f64) -> f64 {
        self.world.all_reduce_scalar(x)
    }

    fn reduce_gram_h(&self, ws: &mut IterWorkspace, _ht_local: &Mat, _tt: &mut TaskTimes) {
        // Line 4: HHᵀ = Σᵢⱼ Uᵢⱼ, all-reduce across all ranks — straight
        // into the solve buffer. The local Gram was computed by `prime`
        // (first iteration) or by the previous objective evaluation.
        ws.gram_solve.copy_from(&ws.gram_local);
        self.world.all_reduce_into(ws.gram_solve.as_mut_slice());
    }

    fn gather_h(&self, ws: &mut IterWorkspace, ht_local: &Mat) -> FactorSource {
        // Line 5: assemble Hⱼ (as Hⱼᵀ, n/pc × k) via all-gather across
        // the processor column.
        self.col_comm.all_gatherv_into(
            ht_local.as_slice(),
            &self.h_counts,
            ws.ht_gather.as_mut_slice(),
        );
        FactorSource::Gathered
    }

    fn reduce_scatter_w(&self, ws: &mut IterWorkspace) -> RhsSource {
        // Line 7: (AHᵀ)ᵢ via reduce-scatter across the processor row;
        // this rank keeps ((AHᵀ)ᵢ)ⱼ (m/p × k).
        self.row_comm.reduce_scatter_into(
            ws.mm_w.as_slice(),
            &self.w_counts,
            ws.aht.as_mut_slice(),
        );
        RhsSource::Scattered
    }

    fn reduce_gram_w(&self, ws: &mut IterWorkspace, w_local: &Mat, tt: &mut TaskTimes) {
        // Line 9: Xᵢⱼ = (Wᵢ)ⱼᵀ(Wᵢ)ⱼ; line 10: WᵀW all-reduce.
        let t0 = Instant::now();
        gram_into(w_local, &mut ws.gram_local);
        tt.gram += t0.elapsed();
        ws.gram_w.copy_from(&ws.gram_local);
        self.world.all_reduce_into(ws.gram_w.as_mut_slice());
    }

    fn gather_w(&self, ws: &mut IterWorkspace, w_local: &Mat) -> FactorSource {
        // Line 11: assemble Wᵢ (m/pr × k) via all-gather across the
        // processor row.
        self.row_comm.all_gatherv_into(
            w_local.as_slice(),
            &self.w_counts,
            ws.w_gather.as_mut_slice(),
        );
        FactorSource::Gathered
    }

    fn reduce_scatter_h(&self, ws: &mut IterWorkspace) -> RhsSource {
        // Line 13: (WᵀA)ⱼ via reduce-scatter across the processor
        // column; this rank keeps ((WᵀA)ⱼ)ᵢ (n/p × k, transposed).
        self.col_comm.reduce_scatter_into(
            ws.mm_h.as_slice(),
            &self.h_counts,
            ws.wta.as_mut_slice(),
        );
        RhsSource::Scattered
    }

    fn reduce_objective_terms(&self, terms: &mut [f64]) {
        if self.overlap {
            // Same algorithm, words, and tags as the synchronous
            // all-reduce, but driven through the split-phase machinery so
            // every park of this latency-bound reduction also advances
            // the prefetched next-iteration collectives (see the engine's
            // cross-iteration prefetch).
            let op = self.world.post_all_reduce(terms);
            op.wait_with(terms, || {
                let mut p = self.pending.borrow_mut();
                if let Some(other) = p.gather_h.as_mut() {
                    other.try_progress();
                }
                if let Some(other) = p.gram_h.as_mut() {
                    other.try_progress();
                }
            });
        } else {
            self.world.all_reduce_into(terms);
        }
    }

    fn comm_stats(&self) -> CommStats {
        self.world.stats()
    }

    fn prefetch_across_iterations(&self) -> bool {
        self.overlap
    }

    // --- Split-phase overrides: the overlapped Algorithm 3 schedule ---
    //
    // Per-communicator collective order is identical to the synchronous
    // path (world: Gram-H, Gram-W, objective; column: gather-H,
    // scatter-H; row: scatter-W, gather-W), so tags, words, and messages
    // on the wire are exactly the same — only the *schedule* changes:
    // each collective is posted as soon as its operand exists and waited
    // only when its result is consumed, letting the local MM products run
    // inside the communication windows.

    fn post_gather_h(&self, _ws: &mut IterWorkspace, ht_local: &Mat) {
        if self.overlap {
            self.pending.borrow_mut().gather_h = Some(
                self.col_comm
                    .post_all_gatherv(ht_local.as_slice(), &self.h_counts),
            );
        }
    }

    fn wait_gather_h(&self, ws: &mut IterWorkspace, ht_local: &Mat) -> FactorSource {
        let taken = self.pending.borrow_mut().gather_h.take();
        match taken {
            Some(op) => {
                self.wait_driving(op, ws.ht_gather.as_mut_slice(), |p| &mut p.gram_h);
                FactorSource::Gathered
            }
            None => self.gather_h(ws, ht_local),
        }
    }

    fn post_reduce_gram_h(&self, ws: &mut IterWorkspace, ht_local: &Mat, tt: &mut TaskTimes) {
        if self.overlap {
            // The local Gram is already in `gram_local` (prime / previous
            // objective); the all-reduce completes into `gram_solve` at
            // wait time, matching the synchronous copy-then-reduce.
            self.pending.borrow_mut().gram_h =
                Some(self.world.post_all_reduce(ws.gram_local.as_slice()));
        } else {
            self.reduce_gram_h(ws, ht_local, tt);
        }
    }

    fn wait_reduce_gram_h(&self, ws: &mut IterWorkspace) {
        let taken = self.pending.borrow_mut().gram_h.take();
        if let Some(op) = taken {
            self.wait_driving(op, ws.gram_solve.as_mut_slice(), |p| &mut p.rs_w);
        }
    }

    fn post_reduce_scatter_w(&self, ws: &mut IterWorkspace) {
        if self.overlap {
            self.pending.borrow_mut().rs_w = Some(
                self.row_comm
                    .post_reduce_scatter(ws.mm_w.as_slice(), &self.w_counts),
            );
        }
    }

    fn wait_reduce_scatter_w(&self, ws: &mut IterWorkspace) -> RhsSource {
        match self.pending.borrow_mut().rs_w.take() {
            Some(op) => {
                op.wait(ws.aht.as_mut_slice());
                RhsSource::Scattered
            }
            None => self.reduce_scatter_w(ws),
        }
    }

    fn post_gather_w(&self, _ws: &mut IterWorkspace, w_local: &Mat) {
        if self.overlap {
            self.pending.borrow_mut().gather_w = Some(
                self.row_comm
                    .post_all_gatherv(w_local.as_slice(), &self.w_counts),
            );
        }
    }

    fn wait_gather_w(&self, ws: &mut IterWorkspace, w_local: &Mat) -> FactorSource {
        let taken = self.pending.borrow_mut().gather_w.take();
        match taken {
            Some(op) => {
                self.wait_driving(op, ws.w_gather.as_mut_slice(), |p| &mut p.gram_w);
                FactorSource::Gathered
            }
            None => self.gather_w(ws, w_local),
        }
    }

    fn post_reduce_gram_w(&self, ws: &mut IterWorkspace, w_local: &Mat, tt: &mut TaskTimes) {
        if self.overlap {
            let t0 = Instant::now();
            gram_into(w_local, &mut ws.gram_local);
            tt.gram += t0.elapsed();
            self.pending.borrow_mut().gram_w =
                Some(self.world.post_all_reduce(ws.gram_local.as_slice()));
        } else {
            self.reduce_gram_w(ws, w_local, tt);
        }
    }

    fn wait_reduce_gram_w(&self, ws: &mut IterWorkspace) {
        let taken = self.pending.borrow_mut().gram_w.take();
        if let Some(op) = taken {
            self.wait_driving(op, ws.gram_w.as_mut_slice(), |p| &mut p.rs_h);
        }
    }

    fn post_reduce_scatter_h(&self, ws: &mut IterWorkspace) {
        if self.overlap {
            self.pending.borrow_mut().rs_h = Some(
                self.col_comm
                    .post_reduce_scatter(ws.mm_h.as_slice(), &self.h_counts),
            );
        }
    }

    fn wait_reduce_scatter_h(&self, ws: &mut IterWorkspace) -> RhsSource {
        match self.pending.borrow_mut().rs_h.take() {
            Some(op) => {
                op.wait(ws.wta.as_mut_slice());
                RhsSource::Scattered
            }
            None => self.reduce_scatter_h(ws),
        }
    }
}

impl Drop for Grid2D<'_> {
    fn drop(&mut self) {
        // A prefetched collective can still be in flight when an engine
        // is dropped mid-run. Peers' rounds depend on this rank's sends,
        // so each op is driven to completion and its result discarded —
        // leaking it would deadlock the universe silently.
        if std::thread::panicking() {
            // Peers may be gone; PendingOp's own Drop copes with this.
            return;
        }
        let mut p = self.pending.borrow_mut();
        for op in [
            p.gram_h.take(),
            p.gather_h.take(),
            p.rs_w.take(),
            p.gram_w.take(),
            p.gather_w.take(),
            p.rs_h.take(),
        ]
        .into_iter()
        .flatten()
        {
            op.discard();
        }
    }
}

/// Exportable convergence bookkeeping, for resuming a run in a fresh
/// engine without perturbing the stopping decisions (the factor
/// *trajectory* never depends on this state — only on the factors
/// themselves — so resume is bit-deterministic even without it).
#[derive(Clone, Debug, PartialEq)]
pub struct ConvergenceState {
    /// Objective after the most recent iteration (`+∞` before the first).
    pub prev_objective: f64,
    /// First iteration's objective (`f₀`, the normalizer of relative
    /// improvements), if any iteration ran.
    pub first_objective: Option<f64>,
    /// Iterations executed so far (counted against `max_iters`).
    pub iterations_done: usize,
    /// Every objective so far, oldest first — what
    /// [`ConvergencePolicy::WindowedBudget`]'s look-back window reads,
    /// so a resumed run sees across the checkpoint boundary.
    pub objective_history: Vec<f64>,
    /// Wall-clock time consumed so far, accumulated across resumes
    /// (counted against the policy's budget).
    pub elapsed: Duration,
}

/// The step-wise ANLS iteration core shared by all three algorithms.
///
/// Owns the factor iterates, the [`IterWorkspace`], the NLS solver and
/// its scratch, and the convergence bookkeeping; is generic over the
/// communication layout ([`CommScheme`]) and the data kernels
/// ([`AnlsData`]). See the [module docs](crate::engine) for the design
/// and the step-wise API.
pub struct AnlsEngine<S: CommScheme, D: AnlsData> {
    scheme: S,
    data: D,
    config: NmfConfig,
    policy: ConvergencePolicy,
    solver: Box<dyn NlsSolver + Send>,
    ws: IterWorkspace,
    /// This rank's slice of `W` (all of `W` under [`LocalScheme`]).
    w_local: Mat,
    /// This rank's slice of `H`, stored transposed.
    ht_local: Mat,
    norm_a_sq: f64,
    iters: Vec<IterRecord>,
    /// Every objective this run has produced, including (after a
    /// [`restore_convergence_state`](Self::restore_convergence_state))
    /// those of the run being resumed — the windowed policy's look-back.
    obj_history: Vec<f64>,
    prev_obj: f64,
    first_obj: Option<f64>,
    iterations_done: usize,
    comm_base: CommStats,
    started: Instant,
    /// Wall-clock consumed before this engine started (from a restored
    /// checkpoint); added to `started.elapsed()` for budget decisions.
    prior_elapsed: Duration,
    stop: Option<StopReason>,
    /// Whether the previous `step` already posted this iteration's
    /// H-side collectives (the cross-iteration prefetch — see `step`).
    prefetched: bool,
}

impl<S: CommScheme, D: AnlsData> AnlsEngine<S, D> {
    /// Builds an engine from initial factors: `w0` is this rank's `W`
    /// slice, `ht0` its (transposed) `H` slice. Collective over the
    /// scheme's communicator (it all-reduces `‖A‖²`).
    pub fn new(scheme: S, data: D, config: &NmfConfig, w0: Mat, ht0: Mat) -> Self {
        Self::with_workspace(scheme, data, config, w0, ht0, IterWorkspace::default())
    }

    /// [`AnlsEngine::new`] with a caller-provided workspace (resized to
    /// fit if its shapes differ) — the warm-restart path that skips even
    /// the setup allocations. Reclaim it afterwards with
    /// [`into_rank_output_and_workspace`](Self::into_rank_output_and_workspace).
    pub fn with_workspace(
        scheme: S,
        data: D,
        config: &NmfConfig,
        w0: Mat,
        ht0: Mat,
        mut ws: IterWorkspace,
    ) -> Self {
        scheme.size_workspace(&mut ws, config.k);
        // Once-per-session operand packing: dense data is laid into
        // microkernel panels here, and every iteration's MM below reads
        // only packed storage (the ANLS win — A never changes).
        data.pack_session(&mut ws.pack, config.k);
        let solver = config.solver.build();
        let norm_a_sq = scheme.reduce_scalar(data.norm_sq_contrib());
        scheme.prime(&mut ws, &ht0);
        let comm_base = scheme.comm_stats();
        AnlsEngine {
            policy: config.policy(),
            scheme,
            data,
            config: *config,
            solver,
            ws,
            w_local: w0,
            ht_local: ht0,
            norm_a_sq,
            iters: Vec::with_capacity(config.max_iters),
            obj_history: Vec::with_capacity(config.max_iters),
            prev_obj: f64::INFINITY,
            first_obj: None,
            iterations_done: 0,
            comm_base,
            started: Instant::now(),
            prior_elapsed: Duration::ZERO,
            stop: None,
            prefetched: false,
        }
    }

    /// Executes exactly one ANLS outer iteration — the single copy of
    /// the loop body all three algorithms share — and returns its
    /// record. Collective: every rank of the scheme's communicator must
    /// call `step` the same number of times.
    ///
    /// `step` ignores `max_iters` and any previously reached stop
    /// condition; that is [`run`](Self::run)'s job. Stepping past a stop
    /// condition is legitimate (e.g. a serving loop that refines factors
    /// whenever it has spare capacity).
    pub fn step(&mut self) -> &IterRecord {
        let mut tt = TaskTimes::default();
        let ws = &mut self.ws;

        /* ---- Compute W given H ----
         * Split-phase schedule: the H gather and the HHᵀ reduction go in
         * flight first, then the local A·Hᵀ product runs while the Gram
         * all-reduce is still on the wire; the W reduce-scatter is posted
         * the moment its operand exists. Synchronous schemes fall through
         * the default hooks and execute the classic ordered schedule. */
        if self.prefetched {
            // The previous step already put this iteration's H gather
            // and Gram reduction on the wire (see the prefetch below).
            self.prefetched = false;
        } else {
            self.scheme.post_gather_h(ws, &self.ht_local);
            self.scheme.post_reduce_gram_h(ws, &self.ht_local, &mut tt);
        }
        let h_src = self.scheme.wait_gather_h(ws, &self.ht_local);
        let t0 = Instant::now();
        {
            let hmat = match h_src {
                FactorSource::Local => &self.ht_local,
                FactorSource::Gathered => &ws.ht_gather,
            };
            self.data.mm_a_ht_into(&mut ws.pack, hmat, &mut ws.mm_w);
        }
        tt.mm += t0.elapsed();
        self.scheme.post_reduce_scatter_w(ws);
        self.scheme.wait_reduce_gram_h(ws);
        let w_rhs = self.scheme.wait_reduce_scatter_w(ws);
        let t0 = Instant::now();
        apply_ridge(&mut ws.gram_solve, self.config.l2_w);
        {
            let rhs = match w_rhs {
                RhsSource::Mm => &ws.mm_w,
                RhsSource::Scattered => &ws.aht,
            };
            self.solver.update(&ws.gram_solve, rhs, &mut self.w_local);
        }
        tt.nls += t0.elapsed();

        /* ---- Compute H given W ---- (mirror of the W side) */
        self.scheme.post_gather_w(ws, &self.w_local);
        self.scheme.post_reduce_gram_w(ws, &self.w_local, &mut tt);
        let w_src = self.scheme.wait_gather_w(ws, &self.w_local);
        let t0 = Instant::now();
        {
            let wmat = match w_src {
                FactorSource::Local => &self.w_local,
                FactorSource::Gathered => &ws.w_gather,
            };
            self.data.mm_at_w_into(&mut ws.pack, wmat, &mut ws.mm_h);
        }
        tt.mm += t0.elapsed();
        self.scheme.post_reduce_scatter_h(ws);
        self.scheme.wait_reduce_gram_w(ws);
        let h_rhs = self.scheme.wait_reduce_scatter_h(ws);
        let t0 = Instant::now();
        ws.gram_solve.copy_from(&ws.gram_w);
        apply_ridge(&mut ws.gram_solve, self.config.l2_h);
        {
            let rhs = match h_rhs {
                RhsSource::Mm => &ws.mm_h,
                RhsSource::Scattered => &ws.wta,
            };
            self.solver.update(&ws.gram_solve, rhs, &mut self.ht_local);
        }
        tt.nls += t0.elapsed();

        /* ---- Objective via the Gram identity ----
         * ‖A−WH‖² = ‖A‖² − 2·⟨WᵀA, H⟩ + ⟨WᵀW, HHᵀ⟩, with both inner
         * products decomposing over the distribution of H. Under Grid2D
         * the local H Gram doubles as next iteration's Uᵢⱼ, so Gram is
         * still computed once per factor per iteration. */
        let t0 = Instant::now();
        gram_into(&self.ht_local, &mut ws.gram_local);
        tt.gram += t0.elapsed();
        let rhs_h = match h_rhs {
            RhsSource::Mm => &ws.mm_h,
            RhsSource::Scattered => &ws.wta,
        };
        let mut terms = [
            rhs_h.fro_dot(&self.ht_local),
            ws.gram_w.fro_dot(&ws.gram_local),
            0.0,
        ];
        // The wall-clock budget flag rides the objective all-reduce (sum
        // across ranks: any rank over budget stops everyone). Only
        // appended when the policy has a budget, so budget-free runs keep
        // the exact 2-word reduction the communication tests pin down.
        let nterms = if self.policy.has_budget() {
            let elapsed = self.prior_elapsed + self.started.elapsed();
            terms[2] = f64::from(self.policy.budget_exceeded(elapsed));
            3
        } else {
            2
        };
        /* ---- Cross-iteration prefetch ----
         * Under a fixed-iteration policy the next step is certain to
         * run, so its H gather and HHᵀ reduction (whose operands —
         * `ht_local` and the objective's `gram_local` — are final) go on
         * the wire now and ride the objective reduction's wake chain:
         * every rank the all-reduce wakes also drains the prefetched
         * rounds, instead of starting them cold next step. Gated to
         * split-phase schemes (`prefetch_across_iterations`) because the
         * default hooks execute work at the post site, and to iterations
         * that are certain to happen so the total op count — which the
         * exact communication-cost accounting pins — is unchanged. */
        if self.scheme.prefetch_across_iterations()
            && self.policy == ConvergencePolicy::MaxIters
            && self.iterations_done + 1 < self.config.max_iters
        {
            self.scheme.post_gather_h(ws, &self.ht_local);
            self.scheme.post_reduce_gram_h(ws, &self.ht_local, &mut tt);
            self.prefetched = true;
        }
        self.scheme.reduce_objective_terms(&mut terms[..nterms]);
        let objective = self.norm_a_sq - 2.0 * terms[0] + terms[1];

        let now = self.scheme.comm_stats();
        self.iters.push(IterRecord {
            objective,
            compute: tt,
            comm: now.delta_since(&self.comm_base),
        });
        self.comm_base = now;
        self.iterations_done += 1;
        self.obj_history.push(objective);

        let f0 = *self
            .first_obj
            .get_or_insert(objective.max(f64::MIN_POSITIVE));
        self.stop = self.policy.decide(
            self.prev_obj,
            objective,
            f0,
            &self.obj_history,
            nterms == 3 && terms[2] > 0.0,
        );
        self.prev_obj = objective;
        self.iters.last().expect("step just pushed a record")
    }

    /// Drives [`step`](Self::step) until the convergence policy stops or
    /// `max_iters` iterations have run, and reports why it stopped.
    pub fn run(&mut self) -> StopReason {
        self.run_observed(|_, _| {})
    }

    /// [`run`](Self::run), invoking `observer` with `(iteration_index,
    /// record)` after every iteration — the hook for progress bars,
    /// live dashboards, or checkpoint triggers.
    pub fn run_observed(&mut self, mut observer: impl FnMut(usize, &IterRecord)) -> StopReason {
        while self.iterations_done < self.config.max_iters {
            self.step();
            observer(
                self.iterations_done - 1,
                self.iters.last().expect("step pushed a record"),
            );
            if let Some(reason) = self.stop {
                return reason;
            }
        }
        self.stop = Some(StopReason::MaxIters);
        StopReason::MaxIters
    }

    /// The current iterates: this rank's `W` slice and (transposed) `H`
    /// slice. Valid mid-run — this is the checkpoint/streaming export.
    pub fn factors(&self) -> (&Mat, &Mat) {
        (&self.w_local, &self.ht_local)
    }

    /// Per-iteration records so far.
    pub fn records(&self) -> &[IterRecord] {
        &self.iters
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iterations_done
    }

    /// Objective after the latest iteration (`‖A‖²` before the first —
    /// the objective of the all-zero factorization).
    pub fn objective(&self) -> f64 {
        self.iters.last().map_or(self.norm_a_sq, |r| r.objective)
    }

    /// Why the engine last decided to stop, if it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// Exports the convergence bookkeeping for a later
    /// [`restore_convergence_state`](Self::restore_convergence_state) in
    /// a resumed engine.
    pub fn convergence_state(&self) -> ConvergenceState {
        ConvergenceState {
            prev_objective: self.prev_obj,
            first_objective: self.first_obj,
            iterations_done: self.iterations_done,
            objective_history: self.obj_history.clone(),
            elapsed: self.prior_elapsed + self.started.elapsed(),
        }
    }

    /// Replaces the convergence policy for subsequent iterations.
    ///
    /// Collective discipline: every rank of a distributed run must set
    /// the same policy at the same iteration boundary (a policy with a
    /// wall-clock budget adds a word to the objective all-reduce, so a
    /// divergent change desynchronizes the collective schedule).
    pub fn set_policy(&mut self, policy: ConvergencePolicy) {
        self.policy = policy;
    }

    /// Snapshot of this rank's cumulative communication counters (all
    /// collectives since the communicator was created, including setup).
    pub fn comm_stats(&self) -> CommStats {
        self.scheme.comm_stats()
    }

    /// Restores exported convergence bookkeeping so a resumed run makes
    /// the same stopping decisions as an uninterrupted one — including
    /// the windowed policy's look-back across the checkpoint boundary
    /// and the wall-clock budget already consumed.
    pub fn restore_convergence_state(&mut self, state: ConvergenceState) {
        self.prev_obj = state.prev_objective;
        self.first_obj = state.first_objective;
        self.iterations_done = state.iterations_done;
        self.obj_history = state.objective_history;
        self.prior_elapsed = state.elapsed;
        self.started = Instant::now();
    }

    /// Finishes a per-rank run: the rank output plus the workspace, for
    /// callers that reuse the workspace across factorizations.
    pub fn into_rank_output_and_workspace(mut self) -> (RankNmfOutput, IterWorkspace) {
        let objective = self.objective();
        let out = RankNmfOutput {
            w_local: self.w_local,
            ht_local: self.ht_local,
            objective,
            stop: self.stop.unwrap_or(StopReason::MaxIters),
            iters: self.iters,
        };
        (out, std::mem::take(&mut self.ws))
    }

    /// Finishes a per-rank run.
    pub fn into_rank_output(self) -> RankNmfOutput {
        self.into_rank_output_and_workspace().0
    }

    /// Finishes a run whose factors are global (i.e. [`LocalScheme`]):
    /// assembles the full [`NmfOutput`].
    pub fn into_output(self) -> NmfOutput {
        let objective = self.objective();
        let norm_a_sq = self.norm_a_sq;
        NmfOutput {
            w: self.w_local,
            h: self.ht_local.transpose(),
            objective,
            rel_error: objective.max(0.0).sqrt() / norm_a_sq.sqrt().max(f64::MIN_POSITIVE),
            iterations: self.iters.len(),
            stop: self.stop.unwrap_or(StopReason::MaxIters),
            iters: self.iters,
            rank_comm: Vec::new(),
        }
    }
}

/// The object-safe face of [`AnlsEngine`]: everything the session layer
/// needs from an engine, with the `CommScheme`/`AnlsData` generics
/// erased behind a `Box<dyn EngineDyn>`.
///
/// The generic engine is the right tool *inside* one rank's stack frame,
/// where the scheme can borrow the communicator and the data blocks. A
/// long-lived handle cannot name those lifetimes — so each session
/// worker builds its concrete `AnlsEngine<S, D>` in its own frame and
/// serves it through this trait, and the controller never learns which
/// of the three schemes is running. Every method forwards to the
/// inherent `AnlsEngine` method of the same name ([`step_dyn`] clones
/// the record instead of borrowing it, the one signature change object
/// safety forces).
///
/// [`step_dyn`]: EngineDyn::step_dyn
pub trait EngineDyn {
    /// One ANLS outer iteration; returns an owned copy of its record.
    fn step_dyn(&mut self) -> IterRecord;
    /// The current iterates: this rank's `W` slice and transposed `H`
    /// slice.
    fn factors(&self) -> (&Mat, &Mat);
    /// Per-iteration records so far.
    fn records(&self) -> &[IterRecord];
    /// Iterations executed so far (including restored ones).
    fn iterations(&self) -> usize;
    /// Objective after the latest iteration (`‖A‖²` before the first).
    fn objective(&self) -> f64;
    /// Why the engine last decided to stop, if it has.
    fn stop_reason(&self) -> Option<StopReason>;
    /// Exports the convergence bookkeeping (for checkpointing).
    fn convergence_state(&self) -> ConvergenceState;
    /// Restores exported convergence bookkeeping (after a resume).
    fn restore_convergence_state(&mut self, state: ConvergenceState);
    /// Replaces the convergence policy for subsequent iterations.
    fn set_policy(&mut self, policy: ConvergencePolicy);
    /// Cumulative communication counters of this rank.
    fn comm_stats(&self) -> CommStats;
    /// Steals the workspace for reuse in a successor engine (e.g. a
    /// rank-sweep refit); the engine must not be stepped afterwards.
    fn take_workspace(&mut self) -> IterWorkspace;
}

impl<S: CommScheme, D: AnlsData> EngineDyn for AnlsEngine<S, D> {
    fn step_dyn(&mut self) -> IterRecord {
        AnlsEngine::step(self).clone()
    }

    fn factors(&self) -> (&Mat, &Mat) {
        AnlsEngine::factors(self)
    }

    fn records(&self) -> &[IterRecord] {
        AnlsEngine::records(self)
    }

    fn iterations(&self) -> usize {
        AnlsEngine::iterations(self)
    }

    fn objective(&self) -> f64 {
        AnlsEngine::objective(self)
    }

    fn stop_reason(&self) -> Option<StopReason> {
        AnlsEngine::stop_reason(self)
    }

    fn convergence_state(&self) -> ConvergenceState {
        AnlsEngine::convergence_state(self)
    }

    fn restore_convergence_state(&mut self, state: ConvergenceState) {
        AnlsEngine::restore_convergence_state(self, state);
    }

    fn set_policy(&mut self, policy: ConvergencePolicy) {
        AnlsEngine::set_policy(self, policy);
    }

    fn comm_stats(&self) -> CommStats {
        AnlsEngine::comm_stats(self)
    }

    fn take_workspace(&mut self) -> IterWorkspace {
        std::mem::take(&mut self.ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::rng::Fill;

    #[test]
    fn engine_dyn_erases_the_scheme() {
        let input = Input::Dense(Mat::uniform(18, 12, 3));
        let config = NmfConfig::new(2).with_max_iters(3).with_seed(8);
        let w0 = crate::config::init_w(18, 2, config.seed);
        let ht0 = crate::config::init_ht(12, 2, config.seed);
        let mut boxed: Box<dyn EngineDyn + '_> = Box::new(AnlsEngine::new(
            LocalScheme::new(18, 12),
            &input,
            &config,
            w0,
            ht0,
        ));
        let rec = boxed.step_dyn();
        assert!(rec.objective.is_finite());
        assert_eq!(boxed.iterations(), 1);
        assert_eq!(boxed.records().len(), 1);
        let (w, ht) = boxed.factors();
        assert_eq!(w.shape(), (18, 2));
        assert_eq!(ht.shape(), (12, 2));
        let st = boxed.convergence_state();
        assert_eq!(st.iterations_done, 1);
    }

    #[test]
    fn local_scheme_runs_and_reports() {
        let input = Input::Dense(Mat::uniform(20, 14, 5));
        let config = NmfConfig::new(3).with_max_iters(4).with_seed(2);
        let w0 = crate::config::init_w(20, 3, config.seed);
        let ht0 = crate::config::init_ht(14, 3, config.seed);
        let mut e = AnlsEngine::new(LocalScheme::new(20, 14), &input, &config, w0, ht0);
        assert_eq!(e.iterations(), 0);
        let first = e.step().objective;
        assert_eq!(e.iterations(), 1);
        assert!(first.is_finite());
        let reason = e.run();
        assert_eq!(reason, StopReason::MaxIters);
        assert_eq!(e.iterations(), 4);
        let (w, ht) = e.factors();
        assert!(w.all_nonnegative() && ht.all_nonnegative());
        let out = e.into_output();
        assert_eq!(out.iterations, 4);
        assert_eq!(out.stop, StopReason::MaxIters);
    }

    #[test]
    fn observer_sees_every_iteration() {
        let input = Input::Dense(Mat::uniform(16, 12, 9));
        let config = NmfConfig::new(2).with_max_iters(5).with_seed(3);
        let w0 = crate::config::init_w(16, 2, config.seed);
        let ht0 = crate::config::init_ht(12, 2, config.seed);
        let mut e = AnlsEngine::new(LocalScheme::new(16, 12), &input, &config, w0, ht0);
        let mut seen = Vec::new();
        e.run_observed(|it, rec| seen.push((it, rec.objective)));
        assert_eq!(seen.len(), 5);
        assert_eq!(seen.first().map(|s| s.0), Some(0));
        assert_eq!(seen.last().map(|s| s.0), Some(4));
        for w in seen.windows(2) {
            assert!(w[1].1 <= w[0].1 * (1.0 + 1e-9) + 1e-9, "objective rose");
        }
    }

    #[test]
    fn budget_zero_stops_after_one_iteration() {
        let input = Input::Dense(Mat::uniform(18, 12, 4));
        let config = NmfConfig::new(2).with_max_iters(50).with_convergence(
            ConvergencePolicy::WindowedBudget {
                window: 5,
                tol: 0.0,
                budget: Some(std::time::Duration::ZERO),
            },
        );
        let w0 = crate::config::init_w(18, 2, config.seed);
        let ht0 = crate::config::init_ht(12, 2, config.seed);
        let mut e = AnlsEngine::new(LocalScheme::new(18, 12), &input, &config, w0, ht0);
        let reason = e.run();
        assert_eq!(reason, StopReason::BudgetExhausted);
        assert_eq!(
            e.iterations(),
            1,
            "zero budget still completes the iteration in flight"
        );
    }

    #[test]
    fn infinite_window_tolerance_stops_at_window_plus_one() {
        let input = Input::Dense(Mat::uniform(18, 12, 4));
        let config = NmfConfig::new(2).with_max_iters(50).with_convergence(
            ConvergencePolicy::WindowedBudget {
                window: 3,
                tol: f64::INFINITY,
                budget: None,
            },
        );
        let w0 = crate::config::init_w(18, 2, config.seed);
        let ht0 = crate::config::init_ht(12, 2, config.seed);
        let mut e = AnlsEngine::new(LocalScheme::new(18, 12), &input, &config, w0, ht0);
        let reason = e.run();
        assert_eq!(reason, StopReason::Converged);
        assert_eq!(
            e.iterations(),
            4,
            "windowed check needs window+1 objectives"
        );
    }

    #[test]
    fn convergence_state_round_trips() {
        let input = Input::Dense(Mat::uniform(16, 10, 6));
        let config = NmfConfig::new(2).with_max_iters(6).with_seed(4);
        let w0 = crate::config::init_w(16, 2, config.seed);
        let ht0 = crate::config::init_ht(10, 2, config.seed);
        let mut e = AnlsEngine::new(LocalScheme::new(16, 10), &input, &config, w0, ht0);
        e.step();
        e.step();
        let st = e.convergence_state();
        assert_eq!(st.iterations_done, 2);
        assert_eq!(st.objective_history.len(), 2);
        assert!(st.first_objective.is_some());
        let (w, ht) = e.factors();
        let (w, ht) = (w.clone(), ht.clone());
        let mut resumed = AnlsEngine::new(LocalScheme::new(16, 10), &input, &config, w, ht);
        resumed.restore_convergence_state(st.clone());
        let round_trip = resumed.convergence_state();
        assert_eq!(round_trip.prev_objective, st.prev_objective);
        assert_eq!(round_trip.first_objective, st.first_objective);
        assert_eq!(round_trip.iterations_done, st.iterations_done);
        assert_eq!(round_trip.objective_history, st.objective_history);
        // The budget clock keeps accumulating from the restored value.
        assert!(round_trip.elapsed >= st.elapsed);
        let reason = resumed.run();
        assert_eq!(reason, StopReason::MaxIters);
        let done = resumed.convergence_state();
        assert_eq!(done.iterations_done, 6);
        assert_eq!(done.objective_history.len(), 6, "history spans the resume");
    }
}
