//! # hpc-nmf — high-performance parallel nonnegative matrix factorization
//!
//! A from-scratch Rust reproduction of
//! *"A High-Performance Parallel Algorithm for Nonnegative Matrix
//! Factorization"* (Kannan, Ballard, Park — PPoPP 2016,
//! arXiv:1509.09313): distributed-memory ANLS-based NMF `A ≈ W·H` with
//! communication-optimal 2D-grid parallelism, running on a thread-backed
//! virtual MPI ([`nmf_vmpi`]) with exact communication accounting.
//!
//! ## The three drivers
//!
//! | Driver | Paper | Communication per iteration |
//! |---|---|---|
//! | [`seq::nmf_seq`] | Algorithm 1 | — (single process) |
//! | [`naive::naive_nmf_rank`] | Algorithm 2 | `O((m+n)k)` words |
//! | [`hpc::hpc_nmf_rank`] | Algorithm 3 | `O(min{√(mnk²/p), nk})` words |
//!
//! All three support dense and sparse inputs ([`input::Input`]) and any
//! of the three local NLS solvers (BPP, MU, HALS — [`nmf_nls`]), and all
//! start from the same seeded initialization so they perform the same
//! computations, the paper's §6.1.3 protocol.
//!
//! The three drivers are thin constructors over one step-wise iteration
//! core, [`engine::AnlsEngine`]: the ANLS loop body exists once, and the
//! algorithms differ only in their [`engine::CommScheme`] implementation
//! ([`engine::LocalScheme`] / [`engine::Replicated1D`] /
//! [`engine::Grid2D`]). Drive the engine directly for step-at-a-time
//! execution: checkpoint/resume, per-iteration observers, and serving
//! partially converged factors.
//!
//! ## Quickstart
//!
//! ```
//! use hpc_nmf::prelude::*;
//! use nmf_matrix::rng::Fill;
//! use nmf_matrix::Mat;
//!
//! // A small random nonnegative matrix.
//! let a = Input::Dense(Mat::uniform(60, 40, 7));
//! // Factorize with rank 5 on 4 virtual ranks, 2D grid, BPP solver.
//! let out = factorize(&a, 4, Algo::Hpc2D, &NmfConfig::new(5).with_max_iters(10));
//! assert_eq!(out.w.shape(), (60, 5));
//! assert_eq!(out.h.shape(), (5, 40));
//! assert!(out.rel_error < 1.0);
//! ```

pub mod config;
pub mod dist;
pub mod engine;
pub mod grid;
pub mod harness;
pub mod hpc;
pub mod input;
pub mod naive;
pub mod seq;
pub mod workspace;

pub use config::{
    init_ht, init_w, ConvergencePolicy, IterRecord, NmfConfig, NmfOutput, StopReason, TaskTimes,
};
pub use engine::{AnlsEngine, CommScheme, Grid2D, LocalScheme, Replicated1D};
pub use grid::Grid;
pub use harness::{factorize, factorize_from, total_comm, Algo};
pub use input::{Input, LocalMat};
pub use workspace::IterWorkspace;

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::config::{ConvergencePolicy, NmfConfig, NmfOutput, StopReason};
    pub use crate::grid::Grid;
    pub use crate::harness::{factorize, Algo};
    pub use crate::input::Input;
    pub use nmf_nls::SolverKind;
}
