//! # hpc-nmf — high-performance parallel nonnegative matrix factorization
//!
//! A from-scratch Rust reproduction of
//! *"A High-Performance Parallel Algorithm for Nonnegative Matrix
//! Factorization"* (Kannan, Ballard, Park — PPoPP 2016,
//! arXiv:1509.09313): distributed-memory ANLS-based NMF `A ≈ W·H` with
//! communication-optimal 2D-grid parallelism, running on a thread-backed
//! virtual MPI ([`nmf_vmpi`]) with exact communication accounting.
//!
//! ## Quickstart: the session API
//!
//! [`Nmf::on`] opens a fallible builder; [`NmfBuilder::build`] validates
//! the request up front and returns a [`Model`] — a long-lived handle
//! that can step, run, pause, persist, and resume a factorization:
//!
//! ```
//! use hpc_nmf::prelude::*;
//! use nmf_matrix::rng::Fill;
//! use nmf_matrix::Mat;
//!
//! // A small random nonnegative matrix.
//! let a = Input::Dense(Mat::uniform(60, 40, 7));
//!
//! // Rank-5 factorization on 4 virtual ranks, 2D grid, BPP solver.
//! let mut model = Nmf::on(&a)
//!     .rank(5)
//!     .ranks(4)
//!     .algo(Algo::Hpc2D)
//!     .solver(SolverKind::Bpp)
//!     .max_iters(10)
//!     .build()
//!     .expect("a valid request — errors are NmfError values, not panics");
//!
//! // Step-at-a-time: inspect live factors mid-run...
//! model.step();
//! let (w, h) = model.factors();
//! assert_eq!((w.shape(), h.shape()), ((60, 5), (5, 40)));
//!
//! // ...then drive to the stopping condition.
//! let reason = model.run();
//! assert_eq!(reason, StopReason::MaxIters);
//! assert!(model.objective().is_finite());
//! ```
//!
//! ### Checkpoint / resume
//!
//! [`Model::save`] writes a durable, versioned checkpoint (factors +
//! convergence state + config fingerprint; see `docs/checkpoint-format.md`)
//! and [`Model::load`] reconstructs the session — the resumed trajectory
//! is **bit-identical** to the uninterrupted run:
//!
//! ```no_run
//! # use hpc_nmf::prelude::*;
//! # use nmf_matrix::rng::Fill;
//! # let a = Input::Dense(nmf_matrix::Mat::uniform(60, 40, 7));
//! # let mut model = Nmf::on(&a).rank(5).build().unwrap();
//! model.step();
//! model.save("run.ckpt")?;                    // survive a restart...
//! let mut resumed = Model::load("run.ckpt", &a)?;  // ...in a new process
//! resumed.run();
//! # Ok::<(), hpc_nmf::NmfError>(())
//! ```
//!
//! ## The three algorithms
//!
//! | [`Algo`] | Paper | Communication per iteration |
//! |---|---|---|
//! | [`Algo::Sequential`] | Algorithm 1 | — (single process) |
//! | [`Algo::Naive`] | Algorithm 2 | `O((m+n)k)` words |
//! | [`Algo::Hpc2D`] | Algorithm 3 | `O(min{√(mnk²/p), nk})` words |
//!
//! All three support dense and sparse inputs ([`input::Input`]) and any
//! of the local NLS solvers (BPP, MU, HALS — [`nmf_nls`]), and all start
//! from the same seeded initialization so they perform the same
//! computations — the paper's §6.1.3 protocol.
//!
//! Under the session they share one step-wise iteration core,
//! [`engine::AnlsEngine`]: the ANLS loop body exists once, and the
//! algorithms differ only in their [`engine::CommScheme`] implementation
//! ([`engine::LocalScheme`] / [`engine::Replicated1D`] /
//! [`engine::Grid2D`]). The [`Model`] erases those generics behind the
//! object-safe [`engine::EngineDyn`] and owns the virtual-MPI universe
//! (one thread per rank), so a handle outlives any borrow of the
//! communicators.
//!
//! The classic batch entry point [`harness::factorize`] remains as a
//! compatibility wrapper over the session (it panics on invalid input
//! where the builder returns [`NmfError`]).

pub mod checkpoint;
pub mod config;
pub mod dist;
pub mod engine;
pub mod error;
pub mod grid;
pub mod harness;
pub mod hpc;
pub mod input;
pub mod naive;
pub mod regrid;
pub mod seq;
pub mod session;
pub mod shared;
pub mod workspace;

pub use checkpoint::{
    inspect_checkpoint, write_checkpoint_rotated, Checkpoint, CheckpointMeta, CheckpointSummary,
};
pub use config::{
    init_ht, init_w, ConvergencePolicy, IterRecord, NmfConfig, NmfOutput, StopReason, TaskTimes,
};
pub use engine::{
    AnlsEngine, CommScheme, ConvergenceState, EngineDyn, Grid2D, LocalScheme, Replicated1D,
};
pub use error::NmfError;
pub use grid::Grid;
pub use harness::{factorize, factorize_from, total_comm, Algo};
pub use input::{Input, LocalMat};
pub use regrid::{fitting_grids, GlobalFactors, RegridTarget};
pub use session::{Model, Nmf, NmfBuilder, ResumeBuilder, StepProgress};
pub use shared::{ShardKey, SharedInput};
pub use workspace::IterWorkspace;

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::config::{ConvergencePolicy, NmfConfig, NmfOutput, StopReason};
    pub use crate::error::NmfError;
    pub use crate::grid::Grid;
    pub use crate::harness::{factorize, Algo};
    pub use crate::input::Input;
    pub use crate::regrid::{fitting_grids, RegridTarget};
    pub use crate::session::{Model, Nmf, NmfBuilder, ResumeBuilder, StepProgress};
    pub use crate::shared::SharedInput;
    pub use nmf_nls::SolverKind;
}
