//! Naive-Parallel-NMF (Algorithm 2): the Fairbanks et al. baseline.
//!
//! The data matrix is stored **twice** — once in row blocks `Aᵢ`
//! (`m/p × n`) and once in column blocks `Aʲ` (`m × n/p`) — and each
//! alternating solve is preceded by an all-gather of the *entire* other
//! factor matrix. Each rank then computes the `k×k` Gram matrix
//! redundantly. Per iteration this costs `O((m+n)k)` communicated words
//! (versus HPC-NMF's `O(√(mnk²/p))`) and `(m+n)k²` redundant Gram flops —
//! the three drawbacks the paper lists at the end of §4.3.

use crate::config::{IterRecord, NmfConfig, StopReason};
use crate::engine::{AnlsEngine, Replicated1D, SplitBlocks};
use crate::input::LocalMat;
use nmf_matrix::Mat;
use nmf_vmpi::Comm;

/// Per-rank output of a parallel NMF driver.
#[derive(Debug)]
pub struct RankNmfOutput {
    /// This rank's rows of `W` (`m/p × k` for Naive).
    pub w_local: Mat,
    /// This rank's columns of `H`, stored transposed (`n/p × k`).
    pub ht_local: Mat,
    /// Final objective `‖A − WH‖²_F` (identical on every rank).
    pub objective: f64,
    /// Why the run stopped (identical on every rank).
    pub stop: StopReason,
    /// Per-iteration records for this rank.
    pub iters: Vec<IterRecord>,
}

/// Runs Algorithm 2 on one rank.
///
/// * `row_block` — this rank's `Aᵢ` (`m/p × n`);
/// * `col_block` — this rank's `Aʲ` (`m × n/p`);
/// * `w0 / ht0`  — this rank's slices of the deterministic global
///   initialization ([`crate::config::init_w`] / [`init_ht`]);
///
/// A thin constructor over [`AnlsEngine`] with the [`Replicated1D`]
/// scheme, which performs the algorithm's whole-factor all-gathers and
/// redundant Grams.
///
/// [`init_ht`]: crate::config::init_ht
pub fn naive_nmf_rank(
    comm: &Comm,
    dims: (usize, usize),
    row_block: &LocalMat,
    col_block: &LocalMat,
    w0: Mat,
    ht0: Mat,
    config: &NmfConfig,
) -> RankNmfOutput {
    let (m, n) = dims;
    let k = config.k;
    let scheme = Replicated1D::new(comm, dims, k);
    let (rows, cols) = (scheme.w_part(), scheme.ht_part());
    assert_eq!(row_block.nrows(), rows.len, "row block height mismatch");
    assert_eq!(row_block.ncols(), n);
    assert_eq!(col_block.nrows(), m);
    assert_eq!(col_block.ncols(), cols.len, "column block width mismatch");
    assert_eq!(w0.shape(), (rows.len, k));
    assert_eq!(ht0.shape(), (cols.len, k));

    let data = SplitBlocks {
        row_block,
        col_block,
    };
    let mut engine = AnlsEngine::new(scheme, data, config, w0, ht0);
    engine.run();
    engine.into_rank_output()
}
