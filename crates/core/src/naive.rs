//! Naive-Parallel-NMF (Algorithm 2): the Fairbanks et al. baseline.
//!
//! The data matrix is stored **twice** — once in row blocks `Aᵢ`
//! (`m/p × n`) and once in column blocks `Aʲ` (`m × n/p`) — and each
//! alternating solve is preceded by an all-gather of the *entire* other
//! factor matrix. Each rank then computes the `k×k` Gram matrix
//! redundantly. Per iteration this costs `O((m+n)k)` communicated words
//! (versus HPC-NMF's `O(√(mnk²/p))`) and `(m+n)k²` redundant Gram flops —
//! the three drawbacks the paper lists at the end of §4.3.

use crate::config::{apply_ridge, IterRecord, NmfConfig, TaskTimes};
use crate::dist::Dist1D;
use crate::input::LocalMat;
use crate::workspace::IterWorkspace;
use nmf_matrix::gram::gram_into;
use nmf_matrix::Mat;
use nmf_vmpi::Comm;
use std::time::Instant;

/// Per-rank output of a parallel NMF driver.
#[derive(Debug)]
pub struct RankNmfOutput {
    /// This rank's rows of `W` (`m/p × k` for Naive).
    pub w_local: Mat,
    /// This rank's columns of `H`, stored transposed (`n/p × k`).
    pub ht_local: Mat,
    /// Final objective `‖A − WH‖²_F` (identical on every rank).
    pub objective: f64,
    /// Per-iteration records for this rank.
    pub iters: Vec<IterRecord>,
}

/// Runs Algorithm 2 on one rank.
///
/// * `row_block` — this rank's `Aᵢ` (`m/p × n`);
/// * `col_block` — this rank's `Aʲ` (`m × n/p`);
/// * `w0 / ht0`  — this rank's slices of the deterministic global
///   initialization ([`crate::config::init_w`] / [`init_ht`]);
///
/// [`init_ht`]: crate::config::init_ht
pub fn naive_nmf_rank(
    comm: &Comm,
    dims: (usize, usize),
    row_block: &LocalMat,
    col_block: &LocalMat,
    w0: Mat,
    ht0: Mat,
    config: &NmfConfig,
) -> RankNmfOutput {
    let (m, n) = dims;
    let p = comm.size();
    let k = config.k;
    let dist_m = Dist1D::new(m, p);
    let dist_n = Dist1D::new(n, p);
    let me = comm.rank();
    assert_eq!(
        row_block.nrows(),
        dist_m.part(me).len,
        "row block height mismatch"
    );
    assert_eq!(row_block.ncols(), n);
    assert_eq!(col_block.nrows(), m);
    assert_eq!(
        col_block.ncols(),
        dist_n.part(me).len,
        "column block width mismatch"
    );
    assert_eq!(w0.shape(), (dist_m.part(me).len, k));
    assert_eq!(ht0.shape(), (dist_n.part(me).len, k));

    let mut solver = config.solver.build();
    let mut w_local = w0;
    let mut ht_local = ht0;
    // ‖A‖² from the column blocks (each entry counted exactly once).
    let norm_a_sq = comm.all_reduce_scalar(col_block.fro_norm_sq());

    let w_counts = dist_m.lens_scaled(k);
    let h_counts = dist_n.lens_scaled(k);

    // All per-iteration matrices live here; the loop below performs no
    // heap allocations in the compute path (see crate::workspace).
    let mut ws = IterWorkspace::for_naive(m, n, dist_m.part(me).len, dist_n.part(me).len, k);

    let mut iters = Vec::with_capacity(config.max_iters);
    let mut prev_obj = f64::INFINITY;
    let mut first_obj = None;
    let mut objective = norm_a_sq;
    let mut comm_base = comm.stats();

    for _it in 0..config.max_iters {
        let mut tt = TaskTimes::default();

        /* --- Compute W given H (lines 3–4) --- */
        // Line 3: collect the whole of H on each processor.
        comm.all_gatherv_into(ht_local.as_slice(), &h_counts, ws.ht_gather.as_mut_slice());

        // Redundant Gram: every rank computes HHᵀ itself — straight into
        // the solve buffer; nothing reads the un-ridged Gram later.
        let t0 = Instant::now();
        gram_into(&ws.ht_gather, &mut ws.gram_solve);
        tt.gram += t0.elapsed();

        // Line 4: Wᵢ ← argmin ‖Aᵢ − W̃H‖ via the normal equations.
        let t0 = Instant::now();
        row_block.mm_a_ht_into(&ws.ht_gather, &mut ws.mm_w); // (m/p)×k
        tt.mm += t0.elapsed();
        let t0 = Instant::now();
        apply_ridge(&mut ws.gram_solve, config.l2_w);
        solver.update(&ws.gram_solve, &ws.mm_w, &mut w_local);
        tt.nls += t0.elapsed();

        /* --- Compute H given W (lines 5–6) --- */
        // Line 5: collect the whole of W on each processor.
        comm.all_gatherv_into(w_local.as_slice(), &w_counts, ws.w_gather.as_mut_slice());

        let t0 = Instant::now();
        gram_into(&ws.w_gather, &mut ws.gram_w);
        tt.gram += t0.elapsed();

        // Line 6: Hⁱ ← argmin ‖Aⁱ − WH̃‖.
        let t0 = Instant::now();
        col_block.mm_at_w_into(&ws.w_gather, &mut ws.mm_h); // (n/p)×k
        tt.mm += t0.elapsed();
        let t0 = Instant::now();
        ws.gram_solve.copy_from(&ws.gram_w);
        apply_ridge(&mut ws.gram_solve, config.l2_h);
        solver.update(&ws.gram_solve, &ws.mm_h, &mut ht_local);
        tt.nls += t0.elapsed();

        /* --- Objective via the Gram identity --- */
        let t0 = Instant::now();
        gram_into(&ht_local, &mut ws.gram_local);
        tt.gram += t0.elapsed();
        let mut s = [
            ws.mm_h.fro_dot(&ht_local),
            ws.gram_w.fro_dot(&ws.gram_local),
        ];
        comm.all_reduce_into(&mut s);
        objective = norm_a_sq - 2.0 * s[0] + s[1];

        let now = comm.stats();
        iters.push(IterRecord {
            objective,
            compute: tt,
            comm: now.delta_since(&comm_base),
        });
        comm_base = now;

        let f0 = *first_obj.get_or_insert(objective.max(f64::MIN_POSITIVE));
        if let Some(tol) = config.tol {
            if prev_obj.is_finite() && (prev_obj - objective) / f0 < tol {
                break;
            }
        }
        prev_obj = objective;
    }

    RankNmfOutput {
        w_local,
        ht_local,
        objective,
        iters,
    }
}
