//! Elastic resume: moving a checkpoint between grids and schemes.
//!
//! The paper treats the processor grid as a *tunable* resource — the 2D
//! `p_r×p_c` layout is chosen to minimize communication for a given
//! allocation — but allocations change between runs. This module turns
//! the checkpoint format from a crash-recovery artifact into an
//! elasticity substrate: a checkpoint taken on any scheme can seed a
//! session on any other, because its factors are *globalized* on read
//! and re-sliced along the target layout on build.
//!
//! The flow has two halves, both exact row copies:
//!
//! 1. **Globalize** — a v2 checkpoint stores one factor block per rank
//!    in `factor_layouts` order; `GlobalFactors::assemble` places each
//!    block at its global row offset, reconstructing the assembled
//!    `W` (`m×k`) and `Hᵀ` (`n×k`) bit-for-bit (the blocks were sliced
//!    from those exact matrices).
//! 2. **Reshard** — the session builder's warm start scatters the
//!    assembled factors along the *target* `(algo, grid, ranks)` layout,
//!    and the input blocks come from the ordinary [`crate::shared`]
//!    extraction (cache-served under a [`crate::shared::SharedInput`]).
//!
//! Because both halves copy values without arithmetic, a pure resume
//! (same grid) continues the bit-identical trajectory, and a regridded
//! resume continues from *numerically identical factors* — only the
//! reduction orders of the new scheme differ. Compatibility is
//! correspondingly relaxed: only the input shape must match
//! ([`crate::checkpoint::CheckpointMeta::check_compatible`]); grid,
//! scheme, and rank count are free. `k`, the solver, and the seed ride
//! in the checkpoint's config and stay fixed — they define the
//! trajectory being continued. See `docs/elasticity.md`.
//!
//! Entry points: [`crate::Nmf::resume_from`] (builder-style),
//! [`crate::Model::load_regrid`] / `load_regrid_shared` (one-shot from
//! a path), and [`fitting_grids`] (which targets fit a shape — the
//! `nmf_cli checkpoints inspect` report).

use crate::checkpoint::CheckpointMeta;
use crate::error::grid_fits;
use crate::grid::Grid;
use crate::harness::Algo;
use crate::session::RankLayout;
use nmf_matrix::Mat;

/// Assembled global factors: `w` is `m×k`, `ht` is `n×k` (`H`
/// transposed) — the globalizer's output and the warm start of any
/// resumed session.
#[derive(Clone, Debug)]
pub struct GlobalFactors {
    pub w: Mat,
    pub ht: Mat,
}

/// A factor block whose shape disagrees with the layout it claims to
/// occupy (surfaced as a checkpoint shape error by the decoder).
#[derive(Clone, Copy, Debug)]
pub(crate) struct BlockShapeMismatch {
    pub field: &'static str,
    pub expected: usize,
    pub found: usize,
}

impl GlobalFactors {
    /// Reassembles the global factors from per-rank blocks laid out by
    /// `layouts` (one entry per block, `factor_layouts` order). Each
    /// block's shape is verified against its layout slice before any
    /// copy; the slices of a layout tile the global matrices exactly,
    /// so assembly is a permutation of rows — bit-exact.
    pub(crate) fn assemble(
        m: usize,
        n: usize,
        k: usize,
        layouts: &[RankLayout],
        w_blocks: &[Mat],
        ht_blocks: &[Mat],
    ) -> Result<GlobalFactors, BlockShapeMismatch> {
        debug_assert_eq!(layouts.len(), w_blocks.len());
        debug_assert_eq!(layouts.len(), ht_blocks.len());
        let mut w = Mat::zeros(m, k);
        let mut ht = Mat::zeros(n, k);
        for (lay, (wb, hb)) in layouts.iter().zip(w_blocks.iter().zip(ht_blocks)) {
            for (field, expected, found) in [
                ("W block rows", lay.w.len, wb.nrows()),
                ("W block cols", k, wb.ncols()),
                ("H^T block rows", lay.ht.len, hb.nrows()),
                ("H^T block cols", k, hb.ncols()),
            ] {
                if expected != found {
                    return Err(BlockShapeMismatch {
                        field,
                        expected,
                        found,
                    });
                }
            }
            w.set_block(lay.w.offset, 0, wb);
            ht.set_block(lay.ht.offset, 0, hb);
        }
        Ok(GlobalFactors { w, ht })
    }
}

/// Where a checkpoint should resume: any subset of algorithm, rank
/// count, and explicit grid may be overridden; whatever is left `None`
/// is inherited from the checkpoint. An empty target is a *pure* resume
/// — it replays the recorded grid exactly (bit-identical trajectory).
#[derive(Clone, Copy, Debug, Default)]
pub struct RegridTarget {
    pub algo: Option<Algo>,
    pub ranks: Option<usize>,
    pub grid: Option<Grid>,
}

impl RegridTarget {
    pub fn new() -> RegridTarget {
        RegridTarget::default()
    }

    /// Resume under a different algorithm / communication scheme.
    pub fn algo(mut self, algo: Algo) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Resume on a different number of virtual ranks.
    pub fn ranks(mut self, p: usize) -> Self {
        self.ranks = Some(p);
        self
    }

    /// Resume on an explicit `p_r×p_c` processor grid (implies the HPC
    /// scheme unless [`algo`](Self::algo) says otherwise).
    pub fn grid(mut self, grid: Grid) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Whether this target overrides nothing (a pure resume).
    pub fn is_pure_resume(&self) -> bool {
        self.algo.is_none() && self.ranks.is_none() && self.grid.is_none()
    }

    /// Resolves the target against a checkpoint's metadata into the
    /// `(algo, ranks, grid_override)` triple the session builder needs.
    ///
    /// Rules, in order:
    /// * nothing overridden → replay the recorded algo/ranks and pin the
    ///   recorded grid (so the trajectory is bit-identical even if
    ///   [`Grid::optimal`]'s tie-breaking ever changes);
    /// * an explicit grid with no algo → [`Algo::HpcGrid`] on it;
    /// * no explicit algo but a changed rank count on a recorded
    ///   [`Algo::HpcGrid`] → degrade to [`Algo::Hpc2D`] so the stale
    ///   pinned grid doesn't contradict the new rank count;
    /// * ranks default to the grid's size, then — except for
    ///   [`Algo::Sequential`], which is always 1 — the recorded count.
    pub(crate) fn resolve(&self, meta: &CheckpointMeta) -> (Algo, usize, Option<Grid>) {
        if self.is_pure_resume() {
            return (meta.algo, meta.ranks, Some(meta.grid));
        }
        let ranks_req = self.ranks.or_else(|| self.grid.map(|g| g.size()));
        let algo = match (self.algo, self.grid) {
            (Some(a), _) => a,
            (None, Some(g)) => Algo::HpcGrid(g),
            (None, None) => match meta.algo {
                Algo::HpcGrid(g) if ranks_req.is_some_and(|r| r != g.size()) => Algo::Hpc2D,
                a => a,
            },
        };
        let ranks = ranks_req.unwrap_or(match algo {
            Algo::Sequential => 1,
            _ => meta.ranks,
        });
        (algo, ranks, self.grid)
    }
}

/// Every `p_r×p_c` factorization of `ranks` whose grid fits an `m×n`
/// input (the builder's divisibility constraint: each rank must own at
/// least one row and one column of its factor slices). Ascending in
/// `p_r` — the same order the builder's `GridTooLarge` suggestion
/// lists. Empty when no grid of that size fits.
pub fn fitting_grids(m: usize, n: usize, ranks: usize) -> Vec<Grid> {
    (1..=ranks)
        .filter(|pr| ranks.is_multiple_of(*pr))
        .map(|pr| Grid::new(pr, ranks / pr))
        .filter(|&g| grid_fits(g, m, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NmfConfig;
    use crate::session::factor_layouts;
    use nmf_matrix::rng::Fill;

    fn meta(algo: Algo, grid: Grid, ranks: usize) -> CheckpointMeta {
        CheckpointMeta {
            m: 24,
            n: 18,
            ranks,
            algo,
            grid,
            config: NmfConfig::new(4),
        }
    }

    #[test]
    fn assemble_inverts_slicing_for_every_scheme() {
        let (m, n, k) = (13, 9, 3);
        let w = Mat::uniform(m, k, 5);
        let ht = Mat::uniform(n, k, 6);
        for (algo, grid, ranks) in [
            (Algo::Sequential, Grid::new(1, 1), 1),
            (Algo::Naive, Grid::one_dimensional(4), 4),
            (Algo::Hpc2D, Grid::new(2, 2), 4),
            (Algo::HpcGrid(Grid::new(1, 4)), Grid::new(1, 4), 4),
        ] {
            let layouts = factor_layouts(algo, grid, ranks, m, n);
            let w_blocks: Vec<Mat> = layouts
                .iter()
                .map(|l| w.rows_block(l.w.offset, l.w.len))
                .collect();
            let ht_blocks: Vec<Mat> = layouts
                .iter()
                .map(|l| ht.rows_block(l.ht.offset, l.ht.len))
                .collect();
            let g = GlobalFactors::assemble(m, n, k, &layouts, &w_blocks, &ht_blocks)
                .expect("blocks match their layouts");
            assert_eq!(g.w, w, "{algo:?} W round trip");
            assert_eq!(g.ht, ht, "{algo:?} Ht round trip");
        }
    }

    #[test]
    fn assemble_rejects_a_block_of_the_wrong_shape() {
        let (m, n, k) = (8, 6, 2);
        let layouts = factor_layouts(Algo::Naive, Grid::one_dimensional(2), 2, m, n);
        let w_blocks = vec![Mat::zeros(4, k), Mat::zeros(3, k)]; // second too short
        let ht_blocks = vec![Mat::zeros(3, k), Mat::zeros(3, k)];
        let err = GlobalFactors::assemble(m, n, k, &layouts, &w_blocks, &ht_blocks)
            .expect_err("shape mismatch");
        assert_eq!(err.field, "W block rows");
    }

    #[test]
    fn pure_resume_replays_the_recorded_grid() {
        let m = meta(Algo::Hpc2D, Grid::new(4, 2), 8);
        let (algo, ranks, pin) = RegridTarget::new().resolve(&m);
        assert_eq!(algo, Algo::Hpc2D);
        assert_eq!(ranks, 8);
        assert_eq!(pin, Some(Grid::new(4, 2)));
    }

    #[test]
    fn explicit_grid_implies_the_hpc_scheme() {
        let m = meta(Algo::Hpc2D, Grid::new(4, 2), 8);
        let (algo, ranks, pin) = RegridTarget::new().grid(Grid::new(2, 2)).resolve(&m);
        assert_eq!(algo, Algo::HpcGrid(Grid::new(2, 2)));
        assert_eq!(ranks, 4);
        assert_eq!(pin, Some(Grid::new(2, 2)));
    }

    #[test]
    fn rank_change_degrades_a_pinned_grid_to_optimal_2d() {
        let m = meta(Algo::HpcGrid(Grid::new(4, 2)), Grid::new(4, 2), 8);
        let (algo, ranks, pin) = RegridTarget::new().ranks(4).resolve(&m);
        assert_eq!(algo, Algo::Hpc2D);
        assert_eq!(ranks, 4);
        assert_eq!(pin, None);
    }

    #[test]
    fn sequential_target_defaults_to_one_rank() {
        let m = meta(Algo::Hpc2D, Grid::new(4, 2), 8);
        let (algo, ranks, _) = RegridTarget::new().algo(Algo::Sequential).resolve(&m);
        assert_eq!(algo, Algo::Sequential);
        assert_eq!(ranks, 1);
    }

    #[test]
    fn fitting_grids_respects_the_divisibility_constraint() {
        // 28×20: 1×8 needs m/1 >= 8 and n/8 >= 1 — fits; 8×1 needs
        // m/8 >= 1 and n/1 >= 8 — fits too.
        let grids = fitting_grids(28, 20, 8);
        assert!(grids.contains(&Grid::new(1, 8)));
        assert!(grids.contains(&Grid::new(2, 4)));
        assert!(grids.contains(&Grid::new(4, 2)));
        assert!(grids.contains(&Grid::new(8, 1)));
        // A shape too small for any 64-rank grid reports none.
        assert!(fitting_grids(4, 4, 64).is_empty());
    }
}
