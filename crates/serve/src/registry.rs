//! Tenant sessions and admission control.
//!
//! The registry owns every tenant's jobs — each a [`Model`] session (or
//! a deferred spec waiting for a concurrency slot) — and enforces the
//! quota model at two points:
//!
//! * **submit** (admission): a job is *rejected* with a typed error when
//!   the tenant is at both its concurrent-job and queue-depth limits
//!   ([`ServeError::QuotaJobs`]) or when its projected factor residency
//!   would breach the byte quota ([`ServeError::QuotaBytes`]); otherwise
//!   it is admitted — *queued* if all concurrency slots are busy.
//!   Queued jobs reserve their projected bytes immediately, so a flood
//!   of cheap submits cannot front-run the byte quota.
//! * **promotion** (build): the scheduler promotes queued jobs into
//!   running models as slots free up; a spec the session builder rejects
//!   becomes [`JobPhase::Failed`] with the builder's message — the
//!   submit path never blocks on dataset generation or thread spawns.
//!
//! Finished jobs keep their factors resident (they are what the tenant
//! came for) but release their concurrency slot; `cancel` both aborts
//! queued/running jobs and releases finished ones.

use crate::error::ServeError;
use crate::protocol::{JobPhase, JobSource, JobSpec, JobStatus, TenantReport};
use hpc_nmf::checkpoint::read_checkpoint;
use hpc_nmf::harness::Algo;
use hpc_nmf::input::Input;
use hpc_nmf::inspect_checkpoint;
use hpc_nmf::prelude::*;
use nmf_data::DatasetKind;
use nmf_matrix::Mat;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::Path;
use std::sync::Arc;

/// Identity of a cacheable dataset source: `(kind, scale, seed)`.
/// Dense inline sources are never cached — they are tenant-provided
/// payloads, not named datasets.
pub(crate) type DatasetKey = (String, usize, u64);

/// The server-wide shared-input cache: one [`SharedInput`] per distinct
/// dataset, handed to every job (from any tenant) that names it. The
/// `SharedInput` in turn caches its per-rank shardings, so ten tenants
/// factorizing one corpus share both the matrix and its blocks.
pub(crate) type DatasetCache = HashMap<DatasetKey, Arc<SharedInput>>;

/// Per-tenant admission limits.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuota {
    /// Jobs allowed to hold a running model at once.
    pub max_concurrent_jobs: usize,
    /// Jobs allowed to wait for a slot beyond that.
    pub max_queued_jobs: usize,
    /// Total factor bytes (running + finished + queued-reserved) the
    /// tenant may hold resident.
    pub max_resident_bytes: usize,
    /// Engine steps this tenant may complete per scheduling quantum —
    /// the rate limit that keeps one tenant from monopolizing the
    /// shared thread pool no matter how many jobs it has runnable.
    pub steps_per_quantum: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_concurrent_jobs: 4,
            max_queued_jobs: 16,
            max_resident_bytes: 256 << 20,
            steps_per_quantum: 16,
        }
    }
}

/// Everything a resume admission carries to its deferred build: the
/// server-side checkpoint, the data source to resume against, and the
/// (already policy-clamped) regrid overrides.
#[derive(Clone, Debug)]
pub struct ResumeSpec {
    /// Server-side checkpoint path (typically written by `Checkpoint`).
    pub ckpt: String,
    /// The data matrix to resume against.
    pub source: JobSource,
    /// Target rank count (`None` = recorded count). Clamped to the
    /// server's per-job rank cap at admission, not rejected — elastic
    /// resume exists precisely so a job can continue on a server with a
    /// different capacity than the one that wrote the checkpoint.
    pub ranks: Option<usize>,
    /// Target algorithm (`None` = recorded one, degraded to `Hpc2D` if
    /// the rank count changed under a pinned grid).
    pub algo: Option<Algo>,
    /// Fresh iteration budget (`None` = recorded cap).
    pub max_iters: Option<usize>,
}

/// One tenant job: a live model, or a spec waiting to become one.
pub(crate) struct Job {
    pub id: u64,
    pub phase: JobPhase,
    /// Present while queued; consumed at promotion.
    pub spec: Option<JobSpec>,
    /// Present while a *resume* job is queued; consumed at promotion
    /// (mutually exclusive with `spec`).
    pub resume: Option<ResumeSpec>,
    /// Present while running or finished.
    pub model: Option<Model>,
    /// Factor bytes charged against the tenant's quota (projected while
    /// queued, exact once built, zero once released).
    pub bytes: usize,
    /// Engine steps the scheduler has granted and completed.
    pub steps_done: u64,
    pub stop: Option<StopReason>,
    pub error: Option<String>,
    /// Iteration cap from the spec (kept for status after release).
    pub max_iters: u64,
}

impl Job {
    fn status(&self) -> JobStatus {
        let (iterations, objective, rel_error) = match &self.model {
            Some(m) => (m.iterations() as u64, m.objective(), m.rel_error()),
            None => (self.steps_done, f64::NAN, f64::NAN),
        };
        JobStatus {
            job: self.id,
            phase: self.phase,
            iterations,
            max_iters: self.max_iters,
            objective,
            rel_error,
            stop: self.stop.map(|s| s.as_str().to_string()),
            error: self.error.clone(),
            resident_bytes: self.bytes as u64,
        }
    }
}

/// One tenant: quota, jobs, the admission queue, and the scheduler's
/// per-tenant bookkeeping.
pub(crate) struct Tenant {
    pub quota: TenantQuota,
    pub jobs: BTreeMap<u64, Job>,
    /// Admitted jobs waiting for a concurrency slot, FIFO.
    pub queue: VecDeque<u64>,
    /// Round-robin rotation for this tenant's running jobs.
    pub rr_offset: usize,
    pub steps_completed: u64,
    pub jobs_submitted: u64,
    pub jobs_finished: u64,
}

impl Tenant {
    fn new(quota: TenantQuota) -> Tenant {
        Tenant {
            quota,
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            rr_offset: 0,
            steps_completed: 0,
            jobs_submitted: 0,
            jobs_finished: 0,
        }
    }

    pub fn active_jobs(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.phase == JobPhase::Running)
            .count()
    }

    pub fn resident_bytes(&self) -> usize {
        self.jobs.values().map(|j| j.bytes).sum()
    }
}

/// The serving state: every tenant, every job. Owned by the server's
/// scheduling thread; never shared.
pub struct Registry {
    pub(crate) tenants: BTreeMap<String, Tenant>,
    /// Shared inputs keyed by dataset identity — see [`DatasetCache`].
    pub(crate) datasets: DatasetCache,
    default_quota: TenantQuota,
    /// Server-wide cap on virtual ranks per job (each rank is an OS
    /// thread; an unchecked spec could ask for thousands).
    max_ranks_per_job: usize,
    next_job: u64,
}

impl Registry {
    pub fn new(default_quota: TenantQuota, max_ranks_per_job: usize) -> Registry {
        Registry {
            tenants: BTreeMap::new(),
            datasets: DatasetCache::new(),
            default_quota,
            max_ranks_per_job: max_ranks_per_job.max(1),
            next_job: 1,
        }
    }

    /// Pre-registers (or re-configures) a tenant with a specific quota;
    /// tenants submit under the default quota otherwise.
    pub fn set_quota(&mut self, tenant: &str, quota: TenantQuota) {
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant::new(quota))
            .quota = quota;
    }

    /// Admission control: returns `(job id, queued?)` or a typed
    /// rejection. Never builds the model — that happens at promotion,
    /// on scheduler time.
    pub fn submit(&mut self, tenant: &str, spec: JobSpec) -> Result<(u64, bool), ServeError> {
        if spec.ranks > self.max_ranks_per_job {
            return Err(ServeError::BuildFailed {
                job: 0,
                reason: format!(
                    "spec requests {} ranks; this server caps jobs at {}",
                    spec.ranks, self.max_ranks_per_job
                ),
            });
        }
        let projected = match spec.projected_factor_bytes() {
            Some(p) => p,
            // File sources carry their shape in the NMFS header, not on
            // the wire: peek it by opening (and caching) the mmap —
            // cheap, no data pages are touched.
            None if matches!(spec.source, JobSource::File { .. }) => {
                let JobSource::File { path } = &spec.source else {
                    unreachable!()
                };
                let shared = self.open_file_source(path)?;
                let (m, n) = shared.shape();
                8 * (m + n) * spec.k
            }
            None => {
                return Err(ServeError::BuildFailed {
                    job: 0,
                    reason: match &spec.source {
                        JobSource::Dataset { kind, .. } => format!(
                            "unknown dataset '{kind}' (expected dsyn | ssyn | video | webbase)"
                        ),
                        _ => "unresolvable job source".to_string(),
                    },
                })
            }
        };
        let max_iters = spec.max_iters as u64;
        self.admit(tenant, projected, Some(spec), None, max_iters)
    }

    /// Admission control for a resume: the checkpoint header supplies
    /// the problem shape and rank `k` (the admission currency), the
    /// overrides are clamped to server policy, and the deferred build
    /// regrids the stored factors onto the target at promotion.
    pub fn submit_resume(
        &mut self,
        tenant: &str,
        mut rs: ResumeSpec,
    ) -> Result<(u64, bool), ServeError> {
        let summary =
            inspect_checkpoint(Path::new(&rs.ckpt)).map_err(|e| ServeError::BuildFailed {
                job: 0,
                reason: format!("checkpoint {}: {e}", rs.ckpt),
            })?;
        if !summary.checksum_ok {
            return Err(ServeError::BuildFailed {
                job: 0,
                reason: format!("checkpoint {}: payload checksum mismatch", rs.ckpt),
            });
        }
        let (m, n, k) = (summary.meta.m, summary.meta.n, summary.meta.config.k);
        // When the source already knows its shape (inline dense, named
        // dataset, or a File we can header-peek), reject a mismatch at
        // admission instead of burning a promotion on it.
        let source_shape = match &rs.source {
            JobSource::File { path } => Some(self.open_file_source(path)?.shape()),
            other => other.shape(),
        };
        if let Some((sm, sn)) = source_shape {
            if (sm, sn) != (m, n) {
                return Err(ServeError::BuildFailed {
                    job: 0,
                    reason: format!(
                        "checkpoint {} records a {m}x{n} problem but the source is {sm}x{sn}",
                        rs.ckpt
                    ),
                });
            }
        }
        // Clamp, don't reject: the whole point of elastic resume is
        // continuing on a server with different capacity.
        let requested = rs.ranks.unwrap_or(summary.meta.ranks).max(1);
        rs.ranks = Some(requested.min(self.max_ranks_per_job));
        let projected = 8 * (m + n) * k;
        let max_iters = rs.max_iters.unwrap_or(summary.meta.config.max_iters) as u64;
        self.admit(tenant, projected, None, Some(rs), max_iters)
    }

    /// Opens (or fetches from the cache) an NMFS file source as a
    /// shared mmap-backed input, keyed `("file:<path>", 0, 0)` in the
    /// dataset cache.
    fn open_file_source(&mut self, path: &str) -> Result<Arc<SharedInput>, ServeError> {
        let key = (format!("file:{path}"), 0usize, 0u64);
        if let Some(s) = self.datasets.get(&key) {
            return Ok(Arc::clone(s));
        }
        let shared = SharedInput::open_mmap(path).map_err(|e| ServeError::BuildFailed {
            job: 0,
            reason: format!("cannot open {path}: {e}"),
        })?;
        let shared = Arc::new(shared);
        self.datasets.insert(key, Arc::clone(&shared));
        Ok(shared)
    }

    /// The shared tail of admission: quota checks, id allocation, job
    /// insertion, queueing. Exactly one of `spec` / `resume` is `Some`.
    fn admit(
        &mut self,
        tenant: &str,
        projected: usize,
        spec: Option<JobSpec>,
        resume: Option<ResumeSpec>,
        max_iters: u64,
    ) -> Result<(u64, bool), ServeError> {
        let default_quota = self.default_quota;
        let t = self
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Tenant::new(default_quota));

        let resident = t.resident_bytes();
        if resident + projected > t.quota.max_resident_bytes {
            return Err(ServeError::QuotaBytes {
                tenant: tenant.to_string(),
                resident,
                requested: projected,
                limit: t.quota.max_resident_bytes,
            });
        }
        // Jobs in the admission queue will occupy concurrency slots as
        // they free up, so the slot math counts both: a job must wait
        // iff everything ahead of it fills the slots, and the tenant is
        // *rejected* once the wait-list beyond the slots is itself full.
        let active = t.active_jobs();
        let slots_taken = active + t.queue.len();
        let must_queue = slots_taken >= t.quota.max_concurrent_jobs;
        let overflow = slots_taken.saturating_sub(t.quota.max_concurrent_jobs);
        if must_queue && overflow >= t.quota.max_queued_jobs {
            return Err(ServeError::QuotaJobs {
                tenant: tenant.to_string(),
                active: slots_taken - overflow,
                queued: overflow,
                max_concurrent: t.quota.max_concurrent_jobs,
                max_queued: t.quota.max_queued_jobs,
            });
        }

        let id = self.next_job;
        self.next_job += 1;
        t.jobs.insert(
            id,
            Job {
                id,
                phase: JobPhase::Queued,
                spec,
                resume,
                model: None,
                bytes: projected,
                steps_done: 0,
                stop: None,
                error: None,
                max_iters,
            },
        );
        t.queue.push_back(id);
        t.jobs_submitted += 1;
        Ok((id, must_queue))
    }

    fn tenant(&self, tenant: &str) -> Result<&Tenant, ServeError> {
        self.tenants
            .get(tenant)
            .ok_or_else(|| ServeError::UnknownTenant {
                tenant: tenant.to_string(),
            })
    }

    fn job_mut(&mut self, tenant: &str, job: u64) -> Result<&mut Job, ServeError> {
        let t = self
            .tenants
            .get_mut(tenant)
            .ok_or_else(|| ServeError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        t.jobs.get_mut(&job).ok_or_else(|| ServeError::UnknownJob {
            tenant: tenant.to_string(),
            job,
        })
    }

    pub fn status(&self, tenant: &str, job: u64) -> Result<JobStatus, ServeError> {
        let t = self.tenant(tenant)?;
        let j = t.jobs.get(&job).ok_or_else(|| ServeError::UnknownJob {
            tenant: tenant.to_string(),
            job,
        })?;
        Ok(j.status())
    }

    /// The job's current assembled factors `(W, H)` — valid mid-run.
    pub fn factors(&mut self, tenant: &str, job: u64) -> Result<(Mat, Mat), ServeError> {
        let j = self.job_mut(tenant, job)?;
        match &j.model {
            Some(m) => Ok(m.factors()),
            None => Err(ServeError::NotStarted { job }),
        }
    }

    /// Writes a durable checkpoint of the job to a server-side path.
    pub fn checkpoint(&mut self, tenant: &str, job: u64, path: &str) -> Result<(), ServeError> {
        let j = self.job_mut(tenant, job)?;
        match &j.model {
            Some(m) => m.save(path).map_err(|e| ServeError::Remote {
                code: crate::error::ErrorCode::Internal,
                message: e.to_string(),
            }),
            None => Err(ServeError::NotStarted { job }),
        }
    }

    /// Cancels a queued/running job or releases a finished one: the
    /// model (and its rank threads) is dropped and the tenant's byte
    /// quota credited. The job record remains for status queries.
    pub fn cancel(&mut self, tenant: &str, job: u64) -> Result<(), ServeError> {
        let t = self
            .tenants
            .get_mut(tenant)
            .ok_or_else(|| ServeError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        let j = t.jobs.get_mut(&job).ok_or_else(|| ServeError::UnknownJob {
            tenant: tenant.to_string(),
            job,
        })?;
        if matches!(j.phase, JobPhase::Queued | JobPhase::Running) {
            j.phase = JobPhase::Cancelled;
        }
        j.model = None;
        j.spec = None;
        j.resume = None;
        j.bytes = 0;
        t.queue.retain(|&q| q != job);
        Ok(())
    }

    pub fn tenant_report(&self, tenant: &str) -> Result<TenantReport, ServeError> {
        let t = self.tenant(tenant)?;
        Ok(TenantReport {
            tenant: tenant.to_string(),
            steps_completed: t.steps_completed,
            jobs_submitted: t.jobs_submitted,
            jobs_finished: t.jobs_finished,
            active_jobs: t.active_jobs() as u64,
            queued_jobs: t.queue.len() as u64,
            resident_bytes: t.resident_bytes() as u64,
            shared_input_bytes: self.shared_input_bytes() as u64,
        })
    }

    /// Resident bytes of the shared dataset cache, deduplicated by
    /// dataset identity: a dataset referenced by every tenant on the
    /// server is counted once.
    pub fn shared_input_bytes(&self) -> usize {
        self.datasets.values().map(|s| s.resident_bytes()).sum()
    }

    /// Distinct datasets currently cached.
    pub fn cached_datasets(&self) -> usize {
        self.datasets.len()
    }

    /// Split borrow for the scheduler's promotion phase: tenants to
    /// walk, dataset cache to resolve specs against.
    pub(crate) fn promotion_parts(&mut self) -> (&mut BTreeMap<String, Tenant>, &mut DatasetCache) {
        (&mut self.tenants, &mut self.datasets)
    }

    /// Total engine steps completed per tenant (for fairness checks and
    /// final reports).
    pub fn steps_by_tenant(&self) -> BTreeMap<String, u64> {
        self.tenants
            .iter()
            .map(|(name, t)| (name.clone(), t.steps_completed))
            .collect()
    }

    /// Whether any tenant has a queued or running (unfinished) job.
    pub fn has_runnable_work(&self) -> bool {
        self.tenants.values().any(|t| {
            !t.queue.is_empty()
                || t.jobs
                    .values()
                    .any(|j| j.phase == JobPhase::Running && !model_done(j))
        })
    }
}

/// Whether a running job's model has reached its end (stop condition or
/// iteration cap).
pub(crate) fn model_done(j: &Job) -> bool {
    j.model.as_ref().is_some_and(|m| m.is_finished())
}

/// Builds the input matrix a job source describes.
pub(crate) fn build_input(source: &JobSource) -> Result<Input, String> {
    match source {
        JobSource::Dense { m, n, data } => {
            if data.len() != m * n {
                return Err(format!(
                    "dense source claims {m}x{n} but carries {} values",
                    data.len()
                ));
            }
            Ok(Input::Dense(Mat::from_vec(*m, *n, data.clone())))
        }
        JobSource::Dataset { kind, scale, seed } => {
            let kind = match kind.as_str() {
                "dsyn" => DatasetKind::Dsyn,
                "ssyn" => DatasetKind::Ssyn,
                "video" => DatasetKind::Video,
                "webbase" => DatasetKind::Webbase,
                other => return Err(format!("unknown dataset '{other}'")),
            };
            Ok(kind.build((*scale).max(1), *seed).input)
        }
        JobSource::File { path } => Err(format!(
            "file source {path} resolves through the shared mmap cache, not an inline input"
        )),
    }
}

/// Resolves a job source to its shared-cache entry (`None` for inline
/// dense payloads, which stay per-job). Dataset sources build their
/// [`SharedInput`] on first use; file sources open the NMFS mmap.
fn shared_for_source(
    source: &JobSource,
    datasets: &mut DatasetCache,
) -> Result<Option<Arc<SharedInput>>, String> {
    use std::collections::hash_map::Entry;
    let key = match source {
        JobSource::Dataset { kind, scale, seed } => (kind.clone(), (*scale).max(1), *seed),
        JobSource::File { path } => (format!("file:{path}"), 0, 0),
        JobSource::Dense { .. } => return Ok(None),
    };
    match datasets.entry(key) {
        Entry::Occupied(e) => Ok(Some(Arc::clone(e.get()))),
        Entry::Vacant(e) => {
            let shared = match source {
                JobSource::File { path } => {
                    SharedInput::open_mmap(path).map_err(|err| err.to_string())?
                }
                _ => SharedInput::new(build_input(source)?),
            };
            Ok(Some(Arc::clone(e.insert(Arc::new(shared)))))
        }
    }
}

/// Builds the model a spec describes (the promotion step).
///
/// Dataset sources resolve through `datasets`, the server-wide
/// [`DatasetCache`]: the first job naming a dataset builds its
/// [`SharedInput`] (and, via the builder, its sharding); later jobs —
/// any tenant, any rank `k` — reuse the cached blocks through `Arc`
/// clones. Dense inline sources stay per-job: the input is dropped
/// after the build and the model owns copies of its per-rank blocks.
pub(crate) fn build_model(spec: &JobSpec, datasets: &mut DatasetCache) -> Result<Model, String> {
    let shared = shared_for_source(&spec.source, datasets)?;
    let resident;
    let mut b = match &shared {
        Some(s) => Nmf::on_shared(s),
        None => {
            resident = build_input(&spec.source)?;
            Nmf::on(&resident)
        }
    };
    b = b
        .rank(spec.k)
        .ranks(spec.ranks)
        .algo(spec.algo)
        .solver(spec.solver)
        .max_iters(spec.max_iters)
        .seed(spec.seed);
    if let Some(t) = spec.tol {
        b = b.tol(t);
    }
    b.build().map_err(|e| e.to_string())
}

/// Builds the model a resume plan describes (the promotion step for
/// resume jobs): read the checkpoint, globalize its factors, and
/// re-shard them onto whatever target the plan carries — the serve-side
/// twin of [`Model::load_regrid`].
pub(crate) fn build_resume_model(
    rs: &ResumeSpec,
    datasets: &mut DatasetCache,
) -> Result<Model, String> {
    let ck = read_checkpoint(Path::new(&rs.ckpt)).map_err(|e| e.to_string())?;
    let mut target = RegridTarget::new();
    if let Some(r) = rs.ranks {
        target = target.ranks(r);
    }
    if let Some(a) = rs.algo {
        target = target.algo(a);
    }
    let shared = shared_for_source(&rs.source, datasets)?;
    let resident;
    let mut b = match &shared {
        Some(s) => Nmf::resume_from(ck).on_shared(s).target(target),
        None => {
            resident = build_input(&rs.source)?;
            Nmf::resume_from(ck).on(&resident).target(target)
        }
    };
    if let Some(iters) = rs.max_iters {
        b = b.max_iters(iters);
    }
    b.build().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_nmf::harness::Algo;
    use nmf_nls::SolverKind;

    pub(crate) fn tiny_spec(m: usize, n: usize, k: usize, iters: usize) -> JobSpec {
        JobSpec {
            source: JobSource::Dense {
                m,
                n,
                data: (0..m * n).map(|i| (i % 7) as f64 + 0.5).collect(),
            },
            k,
            ranks: 1,
            algo: Algo::Sequential,
            solver: SolverKind::Bpp,
            max_iters: iters,
            seed: 3,
            tol: None,
        }
    }

    #[test]
    fn admission_queues_beyond_concurrency_and_rejects_beyond_queue() {
        let quota = TenantQuota {
            max_concurrent_jobs: 2,
            max_queued_jobs: 1,
            ..TenantQuota::default()
        };
        let mut reg = Registry::new(quota, 16);
        let (j1, q1) = reg.submit("acme", tiny_spec(12, 8, 2, 4)).expect("admit");
        let (_j2, q2) = reg.submit("acme", tiny_spec(12, 8, 2, 4)).expect("admit");
        let (_j3, q3) = reg.submit("acme", tiny_spec(12, 8, 2, 4)).expect("queue");
        assert!(!q1 && !q2, "first two start immediately");
        assert!(q3, "third queues");
        let err = reg
            .submit("acme", tiny_spec(12, 8, 2, 4))
            .expect_err("fourth rejected");
        assert!(matches!(err, ServeError::QuotaJobs { .. }), "{err}");
        // Another tenant is unaffected.
        reg.submit("zen", tiny_spec(12, 8, 2, 4)).expect("admit");
        // Cancelling a queued job frees the queue slot.
        reg.cancel("acme", j1).expect("cancel");
        reg.submit("acme", tiny_spec(12, 8, 2, 4))
            .expect("slot freed");
    }

    #[test]
    fn admission_rejects_over_byte_quota_with_projection() {
        let quota = TenantQuota {
            max_resident_bytes: 8 * (12 + 8) * 2 + 10, // one tiny job fits
            ..TenantQuota::default()
        };
        let mut reg = Registry::new(quota, 16);
        reg.submit("acme", tiny_spec(12, 8, 2, 4)).expect("fits");
        // Queued jobs reserve bytes: the second submit is over quota
        // even though the first has not built yet.
        let err = reg
            .submit("acme", tiny_spec(12, 8, 2, 4))
            .expect_err("over byte quota");
        match err {
            ServeError::QuotaBytes {
                resident, limit, ..
            } => {
                assert_eq!(resident, 8 * (12 + 8) * 2);
                assert_eq!(limit, 8 * (12 + 8) * 2 + 10);
            }
            other => panic!("expected QuotaBytes, got {other}"),
        }
    }

    #[test]
    fn rank_cap_and_unknown_dataset_are_typed_rejections() {
        let mut reg = Registry::new(TenantQuota::default(), 4);
        let mut spec = tiny_spec(12, 8, 2, 4);
        spec.ranks = 64;
        let err = reg.submit("acme", spec).expect_err("rank cap");
        assert!(matches!(err, ServeError::BuildFailed { .. }), "{err}");
        let err = reg
            .submit(
                "acme",
                JobSpec {
                    source: JobSource::Dataset {
                        kind: "nope".into(),
                        scale: 100,
                        seed: 1,
                    },
                    ..tiny_spec(12, 8, 2, 4)
                },
            )
            .expect_err("unknown dataset");
        assert!(err.to_string().contains("unknown dataset"), "{err}");
    }

    #[test]
    fn unknown_names_are_typed() {
        let mut reg = Registry::new(TenantQuota::default(), 16);
        assert!(matches!(
            reg.status("ghost", 1),
            Err(ServeError::UnknownTenant { .. })
        ));
        reg.submit("acme", tiny_spec(12, 8, 2, 4)).expect("admit");
        assert!(matches!(
            reg.status("acme", 99),
            Err(ServeError::UnknownJob { .. })
        ));
        assert!(matches!(
            reg.factors("acme", 1),
            Err(ServeError::NotStarted { .. })
        ));
    }
}
