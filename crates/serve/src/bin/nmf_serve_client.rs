//! Command-line client for a running `nmf_serve` daemon.
//!
//! ```sh
//! nmf_serve_client --socket /tmp/nmf.sock submit --tenant acme \
//!     --dataset ssyn --scale 2000 --k 8 --iters 10
//! nmf_serve_client --socket /tmp/nmf.sock status --tenant acme --job 1
//! nmf_serve_client --socket /tmp/nmf.sock wait   --tenant acme --job 1
//! nmf_serve_client --socket /tmp/nmf.sock stats  --tenant acme
//! nmf_serve_client --socket /tmp/nmf.sock cancel --tenant acme --job 1
//! nmf_serve_client --tcp 127.0.0.1:7410 status --tenant acme --job 1
//! nmf_serve_client --socket /tmp/nmf.sock shutdown
//!
//! # Continue a checkpointed job on whatever grid this server allows:
//! nmf_serve_client --socket /tmp/nmf.sock resume --tenant acme \
//!     --ckpt /tmp/j1.ckpt --dataset ssyn --scale 2000 --ranks 2
//!
//! # CI smoke: three tenants submit, wait, verify factors, shut down
//! nmf_serve_client --socket /tmp/nmf.sock smoke
//! ```

use nmf_serve::prelude::*;
use nmf_serve::protocol::JobStatus;
use std::process::exit;

/// Where the daemon is listening — a Unix socket path or a TCP address.
#[derive(Clone)]
enum Endpoint {
    Unix(String),
    Tcp(String),
}

impl Endpoint {
    fn connect(&self) -> Result<Box<dyn Transport>, ServeError> {
        Ok(match self {
            Endpoint::Unix(path) => Box::new(UnixTransport::connect(path)?),
            Endpoint::Tcp(addr) => Box::new(TcpTransport::connect(addr.as_str())?),
        })
    }
}

struct Args {
    endpoint: Endpoint,
    command: String,
    tenant: String,
    job: u64,
    path: Option<String>,
    ckpt: Option<String>,
    spec: JobSpec,
    /// Which regrid overrides the user actually passed (for `resume`,
    /// unset flags defer to the checkpoint / server policy).
    ranks_set: bool,
    algo_set: bool,
    iters_set: bool,
    timeout_ms: u64,
}

fn default_spec() -> JobSpec {
    JobSpec {
        source: JobSource::Dataset {
            kind: "ssyn".into(),
            scale: 2000,
            seed: 42,
        },
        k: 8,
        ranks: 2,
        algo: hpc_nmf::harness::Algo::Hpc2D,
        solver: nmf_nls::SolverKind::Bpp,
        max_iters: 10,
        seed: 42,
        tol: None,
    }
}

fn parse_args(argv: &[String]) -> Result<Args, Vec<String>> {
    let mut errors = Vec::new();
    let mut socket = None;
    let mut tcp = None;
    let mut command = None;
    let mut tenant = "default".to_string();
    let mut job = 0u64;
    let mut path = None;
    let mut ckpt = None;
    let mut spec = default_spec();
    let mut ranks_set = false;
    let mut algo_set = false;
    let mut iters_set = false;
    let mut timeout_ms = 120_000u64;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str, errors: &mut Vec<String>| -> Option<String> {
            match it.next() {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("missing value for {name}"));
                    None
                }
            }
        };
        match arg.as_str() {
            "--socket" => socket = val("--socket", &mut errors),
            "--tcp" => tcp = val("--tcp", &mut errors),
            "--ckpt" => ckpt = val("--ckpt", &mut errors),
            "--file" => {
                if let Some(p) = val("--file", &mut errors) {
                    spec.source = JobSource::File { path: p };
                }
            }
            "--tenant" => {
                if let Some(t) = val("--tenant", &mut errors) {
                    tenant = t;
                }
            }
            "--job" => {
                if let Some(v) = val("--job", &mut errors) {
                    match v.parse() {
                        Ok(j) => job = j,
                        Err(_) => errors.push(format!("--job expects an integer, got '{v}'")),
                    }
                }
            }
            "--path" => path = val("--path", &mut errors),
            "--dataset" => {
                if let Some(d) = val("--dataset", &mut errors) {
                    if let JobSource::Dataset { kind, .. } = &mut spec.source {
                        *kind = d;
                    }
                }
            }
            "--scale" => {
                if let Some(n) = num(val("--scale", &mut errors), arg, &mut errors) {
                    if let JobSource::Dataset { scale, .. } = &mut spec.source {
                        *scale = n;
                    }
                }
            }
            "--k" => {
                if let Some(n) = num(val("--k", &mut errors), arg, &mut errors) {
                    spec.k = n;
                }
            }
            "--ranks" => {
                if let Some(n) = num(val("--ranks", &mut errors), arg, &mut errors) {
                    spec.ranks = n;
                    ranks_set = true;
                }
            }
            "--iters" => {
                if let Some(n) = num(val("--iters", &mut errors), arg, &mut errors) {
                    spec.max_iters = n;
                    iters_set = true;
                }
            }
            "--seed" => {
                if let Some(n) = num(val("--seed", &mut errors), arg, &mut errors) {
                    spec.seed = n as u64;
                    if let JobSource::Dataset { seed, .. } = &mut spec.source {
                        *seed = n as u64;
                    }
                }
            }
            "--algo" => {
                if let Some(v) = val("--algo", &mut errors) {
                    match v.as_str() {
                        "seq" => spec.algo = hpc_nmf::harness::Algo::Sequential,
                        "naive" => spec.algo = hpc_nmf::harness::Algo::Naive,
                        "hpc1d" => spec.algo = hpc_nmf::harness::Algo::Hpc1D,
                        "hpc2d" => spec.algo = hpc_nmf::harness::Algo::Hpc2D,
                        other => errors.push(format!(
                            "unknown algorithm '{other}' (expected seq | naive | hpc1d | hpc2d)"
                        )),
                    }
                    algo_set = true;
                }
            }
            "--solver" => {
                if let Some(v) = val("--solver", &mut errors) {
                    match v.as_str() {
                        "bpp" => spec.solver = nmf_nls::SolverKind::Bpp,
                        "mu" => spec.solver = nmf_nls::SolverKind::Mu,
                        "hals" => spec.solver = nmf_nls::SolverKind::Hals,
                        "activeset" => spec.solver = nmf_nls::SolverKind::ActiveSet,
                        other => errors.push(format!(
                            "unknown solver '{other}' (expected bpp | mu | hals | activeset)"
                        )),
                    }
                }
            }
            "--timeout-ms" => {
                if let Some(n) = num(val("--timeout-ms", &mut errors), arg, &mut errors) {
                    timeout_ms = n as u64;
                }
            }
            "--help" | "-h" => {
                print_help();
                exit(0);
            }
            cmd if !cmd.starts_with('-') && command.is_none() => command = Some(cmd.to_string()),
            other => errors.push(format!("unknown flag {other}")),
        }
    }
    let command = match command {
        Some(c)
            if matches!(
                c.as_str(),
                "submit"
                    | "resume"
                    | "status"
                    | "wait"
                    | "factors"
                    | "cancel"
                    | "checkpoint"
                    | "stats"
                    | "shutdown"
                    | "smoke"
            ) =>
        {
            c
        }
        Some(c) => {
            errors.push(format!("unknown command '{c}'"));
            c
        }
        None => {
            errors.push(
                "expected a command: submit | resume | status | wait | factors | cancel \
                 | checkpoint | stats | shutdown | smoke"
                    .into(),
            );
            String::new()
        }
    };
    if command == "checkpoint" && path.is_none() {
        errors.push("checkpoint needs --path FILE (a server-side path)".into());
    }
    if command == "resume" && ckpt.is_none() {
        errors.push("resume needs --ckpt FILE (a server-side checkpoint path)".into());
    }
    let endpoint = match (socket, tcp) {
        (Some(path), None) => Endpoint::Unix(path),
        (None, Some(addr)) => Endpoint::Tcp(addr),
        (Some(_), Some(_)) => {
            errors.push("--socket and --tcp are mutually exclusive".into());
            return Err(errors);
        }
        (None, None) => {
            errors.push("--socket PATH or --tcp ADDR is required".into());
            return Err(errors);
        }
    };
    if errors.is_empty() {
        Ok(Args {
            endpoint,
            command,
            tenant,
            job,
            path,
            ckpt,
            spec,
            ranks_set,
            algo_set,
            iters_set,
            timeout_ms,
        })
    } else {
        Err(errors)
    }
}

fn num(v: Option<String>, name: &str, errors: &mut Vec<String>) -> Option<usize> {
    let v = v?;
    match v.parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => {
            errors.push(format!("{name} expects an integer, got '{v}'"));
            None
        }
    }
}

fn print_help() {
    println!(
        "nmf_serve_client — drive a running nmf_serve daemon\n\
         \n\
         usage: nmf_serve_client (--socket PATH | --tcp ADDR) COMMAND [options]\n\
         \n\
         commands:\n\
         \x20 submit      admit a job   (--tenant, --dataset, --scale, --file, --k,\n\
         \x20             --ranks, --algo, --solver, --iters, --seed)\n\
         \x20 resume      continue from a server-side checkpoint (--tenant, --ckpt,\n\
         \x20             plus the data source flags; --ranks/--algo/--iters become\n\
         \x20             regrid overrides, clamped to server policy)\n\
         \x20 status      one status line            (--tenant, --job)\n\
         \x20 wait        poll until the job settles (--tenant, --job, --timeout-ms)\n\
         \x20 factors     fetch W/H shapes + norms   (--tenant, --job)\n\
         \x20 cancel      cancel or release a job    (--tenant, --job)\n\
         \x20 checkpoint  durable server-side save   (--tenant, --job, --path)\n\
         \x20 stats       per-tenant counters        (--tenant)\n\
         \x20 shutdown    stop the server\n\
         \x20 smoke       3-tenant end-to-end check, then shutdown (for CI)"
    );
}

fn print_status(st: &JobStatus) {
    println!(
        "job {} [{}] iter {}/{} objective {:.6e} rel_error {:.6} resident {} B{}{}",
        st.job,
        st.phase.as_str(),
        st.iterations,
        st.max_iters,
        st.objective,
        st.rel_error,
        st.resident_bytes,
        st.stop
            .as_deref()
            .map(|s| format!(" stop={s}"))
            .unwrap_or_default(),
        st.error
            .as_deref()
            .map(|e| format!(" error: {e}"))
            .unwrap_or_default(),
    );
}

fn run(args: &Args) -> Result<(), ServeError> {
    if args.command == "smoke" {
        return smoke(&args.endpoint);
    }
    let mut client = Client::new(args.endpoint.connect()?);
    match args.command.as_str() {
        "submit" => {
            let (job, queued) = client.submit_tracked(&args.tenant, &args.spec)?;
            println!(
                "job {job} admitted{}",
                if queued { " (queued for a slot)" } else { "" }
            );
        }
        "resume" => {
            let ckpt = args.ckpt.as_deref().expect("validated");
            let (job, queued) = client.resume(
                &args.tenant,
                ckpt,
                &args.spec.source,
                args.ranks_set.then_some(args.spec.ranks),
                args.algo_set.then_some(args.spec.algo),
                args.iters_set.then_some(args.spec.max_iters),
            )?;
            println!(
                "job {job} resumed from {ckpt}{}",
                if queued { " (queued for a slot)" } else { "" }
            );
        }
        "status" => print_status(&client.status(&args.tenant, args.job)?),
        "wait" => {
            let st = client.wait_finished(&args.tenant, args.job, args.timeout_ms)?;
            print_status(&st);
            if matches!(st.phase, JobPhase::Queued | JobPhase::Running) {
                eprintln!("timed out after {} ms", args.timeout_ms);
                exit(3);
            }
        }
        "factors" => {
            let (w, h) = client.factors(&args.tenant, args.job)?;
            let norm = |m: &nmf_matrix::Mat| m.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
            println!(
                "W {}x{} (frobenius {:.6e}), H {}x{} (frobenius {:.6e})",
                w.nrows(),
                w.ncols(),
                norm(&w),
                h.nrows(),
                h.ncols(),
                norm(&h)
            );
        }
        "cancel" => {
            client.cancel(&args.tenant, args.job)?;
            println!("job {} cancelled", args.job);
        }
        "checkpoint" => {
            let path = args.path.as_deref().expect("validated");
            client.checkpoint(&args.tenant, args.job, path)?;
            println!("job {} checkpointed to {path}", args.job);
        }
        "stats" => {
            let t = client.tenant_stats(&args.tenant)?;
            println!(
                "tenant {}: {} steps, {}/{} jobs finished, {} active, {} queued, {} B resident",
                t.tenant,
                t.steps_completed,
                t.jobs_finished,
                t.jobs_submitted,
                t.active_jobs,
                t.queued_jobs,
                t.resident_bytes
            );
        }
        "shutdown" => {
            client.shutdown()?;
            println!("server shutting down");
        }
        _ => unreachable!("validated in parse_args"),
    }
    Ok(())
}

/// CI smoke: three tenants on three connections submit small jobs, all
/// finish, factors have the right shapes, the server shuts down cleanly.
fn smoke(endpoint: &Endpoint) -> Result<(), ServeError> {
    let tenants = ["alpha", "beta", "gamma"];
    let handles: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let endpoint = endpoint.clone();
            let tenant = tenant.to_string();
            std::thread::spawn(move || -> Result<(), ServeError> {
                let mut spec = default_spec();
                spec.source = JobSource::Dataset {
                    kind: "ssyn".into(),
                    scale: 4000,
                    seed: i as u64 + 1,
                };
                spec.k = 4;
                spec.ranks = 1;
                spec.algo = hpc_nmf::harness::Algo::Sequential;
                spec.max_iters = 4;
                let mut client = Client::new(endpoint.connect()?);
                let job = client.submit(&tenant, &spec)?;
                let st = client.wait_finished(&tenant, job, 60_000)?;
                if st.phase != JobPhase::Finished {
                    return Err(ServeError::BadFrame {
                        reason: format!("tenant {tenant} job did not finish: {st:?}"),
                    });
                }
                let (w, h) = client.factors(&tenant, job)?;
                let (m, n) = spec.source.shape().expect("known dataset");
                if w.shape() != (m, spec.k) || h.shape() != (spec.k, n) {
                    return Err(ServeError::BadFrame {
                        reason: format!(
                            "tenant {tenant} factor shapes wrong: W {:?}, H {:?}",
                            w.shape(),
                            h.shape()
                        ),
                    });
                }
                println!("tenant {tenant}: job {job} finished, factors verified");
                Ok(())
            })
        })
        .collect();
    let mut failed = false;
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                eprintln!("smoke failure: {e}");
                failed = true;
            }
            Err(_) => {
                eprintln!("smoke tenant thread panicked");
                failed = true;
            }
        }
    }
    let mut client = Client::new(endpoint.connect()?);
    client.shutdown()?;
    if failed {
        exit(1);
    }
    println!("smoke passed: 3 tenants served, server shut down");
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(errors) => {
            print_help();
            for e in &errors {
                eprintln!("error: {e}");
            }
            exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        exit(if e.is_quota() { 4 } else { 1 });
    }
}
