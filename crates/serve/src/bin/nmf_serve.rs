//! The serving daemon: binds a Unix socket (or a loopback TCP address)
//! and multiplexes every connected tenant's NMF jobs onto this process.
//!
//! ```sh
//! cargo run --release -p nmf_serve --bin nmf_serve -- --socket /tmp/nmf.sock
//! cargo run --release -p nmf_serve --bin nmf_serve -- --tcp 127.0.0.1:7410
//! cargo run --release -p nmf_serve --bin nmf_serve -- --socket /tmp/nmf.sock \
//!     --max-concurrent 2 --steps-per-quantum 8 --max-resident-mb 64
//! ```
//!
//! The process runs until a client sends `shutdown` (see
//! `nmf_serve_client`). Final run counters go to stdout.

use nmf_serve::prelude::*;
use std::process::exit;

#[derive(Debug, Default)]
struct Args {
    socket: Option<String>,
    tcp: Option<String>,
    max_concurrent: Option<usize>,
    max_queued: Option<usize>,
    max_resident_mb: Option<usize>,
    steps_per_quantum: Option<usize>,
    grant_steps: Option<usize>,
    max_ranks: Option<usize>,
}

fn parse_args(argv: &[String]) -> Result<Args, Vec<String>> {
    let mut args = Args::default();
    let mut errors = Vec::new();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str, errors: &mut Vec<String>| -> Option<String> {
            match it.next() {
                Some(v) => Some(v.clone()),
                None => {
                    errors.push(format!("missing value for {name}"));
                    None
                }
            }
        };
        match flag.as_str() {
            "--socket" => args.socket = val("--socket", &mut errors),
            "--tcp" => args.tcp = val("--tcp", &mut errors),
            "--max-concurrent" => {
                args.max_concurrent = num(val("--max-concurrent", &mut errors), flag, &mut errors)
            }
            "--max-queued" => {
                args.max_queued = num(val("--max-queued", &mut errors), flag, &mut errors)
            }
            "--max-resident-mb" => {
                args.max_resident_mb = num(val("--max-resident-mb", &mut errors), flag, &mut errors)
            }
            "--steps-per-quantum" => {
                args.steps_per_quantum =
                    num(val("--steps-per-quantum", &mut errors), flag, &mut errors)
            }
            "--grant-steps" => {
                args.grant_steps = num(val("--grant-steps", &mut errors), flag, &mut errors)
            }
            "--max-ranks" => {
                args.max_ranks = num(val("--max-ranks", &mut errors), flag, &mut errors)
            }
            "--help" | "-h" => {
                print_help();
                exit(0);
            }
            other => errors.push(format!("unknown flag {other}")),
        }
    }
    match (&args.socket, &args.tcp) {
        (None, None) => errors.push("--socket PATH or --tcp ADDR is required".into()),
        (Some(_), Some(_)) => errors
            .push("--socket and --tcp are mutually exclusive (one listener per server)".into()),
        _ => {}
    }
    for (name, v) in [
        ("--max-concurrent", args.max_concurrent),
        ("--steps-per-quantum", args.steps_per_quantum),
        ("--grant-steps", args.grant_steps),
        ("--max-ranks", args.max_ranks),
    ] {
        if v == Some(0) {
            errors.push(format!("{name} must be >= 1"));
        }
    }
    if errors.is_empty() {
        Ok(args)
    } else {
        Err(errors)
    }
}

fn num(v: Option<String>, name: &str, errors: &mut Vec<String>) -> Option<usize> {
    let v = v?;
    match v.parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => {
            errors.push(format!("{name} expects an integer, got '{v}'"));
            None
        }
    }
}

fn print_help() {
    println!(
        "nmf_serve — multi-tenant NMF model serving over a Unix socket or loopback TCP\n\
         \n\
         \x20 --socket PATH           Unix socket to listen on\n\
         \x20 --tcp ADDR              TCP address to listen on (loopback only; port 0 = OS pick)\n\
         \x20                         exactly one of --socket / --tcp is required\n\
         \n\
         default tenant quota:\n\
         \x20 --max-concurrent N      running jobs per tenant (default 4)\n\
         \x20 --max-queued N          waiting jobs beyond that (default 16)\n\
         \x20 --max-resident-mb N     resident factor MiB per tenant (default 256)\n\
         \x20 --steps-per-quantum N   engine steps per tenant per quantum (default 16)\n\
         \n\
         server policy:\n\
         \x20 --grant-steps N         steps per scheduler grant (default 4)\n\
         \x20 --max-ranks N           virtual-rank cap per job (default 8)"
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(errors) => {
            print_help();
            for e in &errors {
                eprintln!("error: {e}");
            }
            exit(2);
        }
    };

    let defaults = TenantQuota::default();
    let config = ServerConfig {
        default_quota: TenantQuota {
            max_concurrent_jobs: args.max_concurrent.unwrap_or(defaults.max_concurrent_jobs),
            max_queued_jobs: args.max_queued.unwrap_or(defaults.max_queued_jobs),
            max_resident_bytes: args
                .max_resident_mb
                .map(|mb| mb << 20)
                .unwrap_or(defaults.max_resident_bytes),
            steps_per_quantum: args.steps_per_quantum.unwrap_or(defaults.steps_per_quantum),
        },
        max_ranks_per_job: args.max_ranks.unwrap_or(8),
        scheduler: SchedulerConfig {
            grant_steps: args.grant_steps.unwrap_or(4),
        },
        ..ServerConfig::default()
    };

    let listener: Box<dyn Listener> = if let Some(addr) = &args.tcp {
        match TcpSocketListener::bind(addr) {
            Ok(l) => {
                // Report the resolved address so a :0 bind's OS-chosen
                // port is visible to whoever launched us.
                println!("nmf_serve listening on tcp://{}", l.local_addr());
                Box::new(l)
            }
            Err(e) => {
                eprintln!("error: cannot bind {addr}: {e}");
                exit(2);
            }
        }
    } else {
        let socket = args.socket.expect("validated");
        match UnixSocketListener::bind(&socket) {
            Ok(l) => {
                println!("nmf_serve listening on {socket}");
                Box::new(l)
            }
            Err(e) => {
                eprintln!("error: cannot bind {socket}: {e}");
                exit(2);
            }
        }
    };

    match Server::new(config).run(listener) {
        Ok(stats) => {
            println!(
                "served {} requests on {} connections: {} quanta, {} steps, \
                 {} jobs finished ({} failed)",
                stats.requests,
                stats.connections,
                stats.quanta,
                stats.steps,
                stats.jobs_finished,
                stats.jobs_failed
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}
