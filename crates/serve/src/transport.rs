//! Frame transports: how request/response frames move between a client
//! and the server.
//!
//! [`Transport`] is object-safe and deliberately tiny — one duplex pipe
//! of whole frames — so the server core never knows whether a tenant is
//! in-process or on the other end of a Unix socket. Two impls:
//!
//! * [`channel_pair`] — an in-process transport over crossed `mpsc`
//!   channels (frames are `Vec<u8>` messages; no framing bytes needed on
//!   the wire, but the same encode/decode path runs, so the in-process
//!   transport exercises the full protocol). The cheap default for
//!   embedding the server in a test or a load generator.
//! * [`UnixTransport`] — length-prefixed frames over a
//!   `std::os::unix::net::UnixStream`, for a separate client process.
//! * [`TcpTransport`] — the same framed protocol over a
//!   `std::net::TcpStream`, for clients on other machines. The listener
//!   refuses non-loopback bind addresses unless explicitly allowed
//!   ([`TcpSocketListener::bind_any`]) — the protocol carries no
//!   authentication, so exposure beyond the host is an opt-in.
//!
//! [`Listener`] is the accept side: it polls so the server's accept
//! thread can observe a shutdown flag instead of blocking forever.

use crate::error::ServeError;
use crate::protocol::MAX_FRAME_BYTES;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// A duplex pipe of protocol frames. `send_frame` delivers one whole
/// frame; `recv_frame` blocks for the next one and returns
/// [`ServeError::Closed`] once the peer is gone.
pub trait Transport: Send {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ServeError>;
    fn recv_frame(&mut self) -> Result<Vec<u8>, ServeError>;
}

/// The accept side of a transport: yields new connections, `None` on a
/// poll tick with nothing pending (so callers can check a stop flag).
pub trait Listener: Send {
    fn accept(&mut self, poll: Duration) -> Result<Option<Box<dyn Transport>>, ServeError>;
}

/* ---- in-process channel transport ---- */

/// One end of an in-process frame pipe.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// A connected pair of in-process transports (client end, server end).
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (a_tx, a_rx) = channel();
    let (b_tx, b_rx) = channel();
    (
        ChannelTransport { tx: a_tx, rx: b_rx },
        ChannelTransport { tx: b_tx, rx: a_rx },
    )
}

impl Transport for ChannelTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ServeError> {
        self.tx.send(frame.to_vec()).map_err(|_| ServeError::Closed)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }
}

/// The dial side of an in-process listener: hand one to each client
/// thread; every [`connect`](Self::connect) delivers a fresh transport
/// to the server's accept loop.
#[derive(Clone)]
pub struct ChannelConnector {
    tx: Sender<ChannelTransport>,
}

impl ChannelConnector {
    pub fn connect(&self) -> Result<ChannelTransport, ServeError> {
        let (client_end, server_end) = channel_pair();
        self.tx.send(server_end).map_err(|_| ServeError::Closed)?;
        Ok(client_end)
    }
}

/// An in-process listener plus its connector.
pub struct ChannelListener {
    rx: Receiver<ChannelTransport>,
}

/// Creates an in-process listener and the connector clients dial it
/// with.
pub fn channel_listener() -> (ChannelListener, ChannelConnector) {
    let (tx, rx) = channel();
    (ChannelListener { rx }, ChannelConnector { tx })
}

impl Listener for ChannelListener {
    fn accept(&mut self, poll: Duration) -> Result<Option<Box<dyn Transport>>, ServeError> {
        match self.rx.recv_timeout(poll) {
            Ok(t) => Ok(Some(Box::new(t))),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            // Every connector dropped: no new connections can ever
            // arrive, but existing ones stay live — treat like an idle
            // tick and let the server decide when to stop.
            Err(RecvTimeoutError::Disconnected) => {
                std::thread::sleep(poll);
                Ok(None)
            }
        }
    }
}

/* ---- stream framing (shared by unix + tcp) ---- */

/// Writes one length-prefixed frame to any byte stream.
fn write_frame(stream: &mut impl Write, frame: &[u8]) -> Result<(), ServeError> {
    debug_assert!(frame.len() <= MAX_FRAME_BYTES);
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)?;
    stream.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame from any byte stream, mapping a
/// clean EOF to [`ServeError::Closed`] and rejecting oversized length
/// prefixes before allocation.
fn read_frame(stream: &mut impl Read) -> Result<Vec<u8>, ServeError> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Err(ServeError::Closed),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ServeError::BadFrame {
            reason: format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"),
        });
    }
    let mut frame = vec![0u8; len];
    match stream.read_exact(&mut frame) {
        Ok(()) => Ok(frame),
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => Err(ServeError::Closed),
        Err(e) => Err(e.into()),
    }
}

/* ---- unix socket transport ---- */

/// Length-prefixed frames over a Unix stream socket.
pub struct UnixTransport {
    stream: UnixStream,
}

impl UnixTransport {
    /// Connects to a serving socket at `path`.
    pub fn connect(path: impl AsRef<Path>) -> Result<UnixTransport, ServeError> {
        Ok(UnixTransport {
            stream: UnixStream::connect(path)?,
        })
    }
}

impl Transport for UnixTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ServeError> {
        write_frame(&mut self.stream, frame)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ServeError> {
        read_frame(&mut self.stream)
    }
}

/// Accepts Unix-socket connections; the socket file is unlinked on drop.
pub struct UnixSocketListener {
    listener: UnixListener,
    path: PathBuf,
}

impl UnixSocketListener {
    /// Binds `path`, replacing a stale socket file from a dead server if
    /// one is in the way.
    pub fn bind(path: impl AsRef<Path>) -> Result<UnixSocketListener, ServeError> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        // Nonblocking so `accept` can poll and observe shutdown.
        listener.set_nonblocking(true)?;
        Ok(UnixSocketListener { listener, path })
    }

    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Listener for UnixSocketListener {
    fn accept(&mut self, poll: Duration) -> Result<Option<Box<dyn Transport>>, ServeError> {
        match self.listener.accept() {
            Ok((stream, _addr)) => {
                // Connections run blocking I/O on their own threads.
                stream.set_nonblocking(false)?;
                Ok(Some(Box::new(UnixTransport { stream })))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }
}

impl Drop for UnixSocketListener {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/* ---- tcp transport ---- */

/// Length-prefixed frames over a TCP stream — the identical wire format
/// to [`UnixTransport`], so a server behind either listener speaks to
/// either client.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects to a serving TCP address (e.g. `127.0.0.1:7410`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpTransport, ServeError> {
        let stream = TcpStream::connect(addr)?;
        // Frames are small and strictly request/response; don't let
        // Nagle add a round trip of latency to every call.
        stream.set_nodelay(true).ok();
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ServeError> {
        write_frame(&mut self.stream, frame)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ServeError> {
        read_frame(&mut self.stream)
    }
}

/// Accepts TCP connections. Loopback-only by default: the protocol has
/// no authentication, so binding a routable interface requires the
/// explicit [`bind_any`](Self::bind_any) opt-in.
#[derive(Debug)]
pub struct TcpSocketListener {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpSocketListener {
    /// Binds `addr`, refusing non-loopback addresses. Use port 0 to let
    /// the OS pick ([`local_addr`](Self::local_addr) reports the
    /// choice).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<TcpSocketListener, ServeError> {
        let addr = resolve(addr)?;
        if !is_loopback(addr.ip()) {
            return Err(ServeError::BadFrame {
                reason: format!(
                    "refusing to bind non-loopback address {addr}; the protocol is \
                     unauthenticated — use bind_any to expose it deliberately"
                ),
            });
        }
        Self::bind_resolved(addr)
    }

    /// Binds `addr` without the loopback restriction, for deployments
    /// that bring their own network isolation.
    pub fn bind_any(addr: impl ToSocketAddrs) -> Result<TcpSocketListener, ServeError> {
        Self::bind_resolved(resolve(addr)?)
    }

    fn bind_resolved(addr: SocketAddr) -> Result<TcpSocketListener, ServeError> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking so `accept` can poll and observe shutdown.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(TcpSocketListener { listener, addr })
    }

    /// The bound address (with the OS-assigned port when bound to :0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

fn resolve(addr: impl ToSocketAddrs) -> Result<SocketAddr, ServeError> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| ServeError::BadFrame {
            reason: "address resolved to nothing".to_string(),
        })
}

fn is_loopback(ip: IpAddr) -> bool {
    match ip {
        IpAddr::V4(v4) => v4.is_loopback(),
        IpAddr::V6(v6) => v6.is_loopback(),
    }
}

impl Listener for TcpSocketListener {
    fn accept(&mut self, poll: Duration) -> Result<Option<Box<dyn Transport>>, ServeError> {
        match self.listener.accept() {
            Ok((stream, _addr)) => {
                // Connections run blocking I/O on their own threads.
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true).ok();
                Ok(Some(Box::new(TcpTransport { stream })))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_moves_frames_both_ways() {
        let (mut a, mut b) = channel_pair();
        a.send_frame(b"ping").expect("send");
        assert_eq!(b.recv_frame().expect("recv"), b"ping");
        b.send_frame(b"pong").expect("send");
        assert_eq!(a.recv_frame().expect("recv"), b"pong");
        drop(b);
        assert!(matches!(a.recv_frame(), Err(ServeError::Closed)));
    }

    #[test]
    fn unix_transport_round_trips_frames() {
        let path = std::env::temp_dir().join(format!("nmf-t-{}.sock", std::process::id()));
        let mut listener = UnixSocketListener::bind(&path).expect("bind");
        let client = std::thread::spawn({
            let path = path.clone();
            move || {
                let mut t = UnixTransport::connect(&path).expect("connect");
                t.send_frame(&[7; 70_000]).expect("send big frame");
                let back = t.recv_frame().expect("reply");
                assert_eq!(back, vec![1, 2, 3]);
            }
        });
        let mut conn = loop {
            if let Some(c) = listener.accept(Duration::from_millis(5)).expect("accept") {
                break c;
            }
        };
        assert_eq!(conn.recv_frame().expect("frame"), vec![7; 70_000]);
        conn.send_frame(&[1, 2, 3]).expect("reply");
        client.join().expect("client thread");
        drop(listener);
        assert!(!path.exists(), "socket file unlinked on drop");
    }

    #[test]
    fn tcp_transport_round_trips_frames() {
        let mut listener = TcpSocketListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr();
        let client = std::thread::spawn(move || {
            let mut t = TcpTransport::connect(addr).expect("connect");
            t.send_frame(&[9; 70_000]).expect("send big frame");
            let back = t.recv_frame().expect("reply");
            assert_eq!(back, vec![4, 5, 6]);
        });
        let mut conn = loop {
            if let Some(c) = listener.accept(Duration::from_millis(5)).expect("accept") {
                break c;
            }
        };
        assert_eq!(conn.recv_frame().expect("frame"), vec![9; 70_000]);
        conn.send_frame(&[4, 5, 6]).expect("reply");
        client.join().expect("client thread");
    }

    #[test]
    fn tcp_bind_refuses_non_loopback_by_default() {
        let err = TcpSocketListener::bind("0.0.0.0:0").expect_err("refused");
        assert!(err.to_string().contains("loopback"), "{err}");
    }
}
