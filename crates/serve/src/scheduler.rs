//! Fair batched stepping: the policy that shares one machine's compute
//! among every tenant's runnable jobs.
//!
//! Time is divided into **quanta**. One call to
//! [`Scheduler::run_quantum`] performs one quantum:
//!
//! 1. **Promotion** — queued jobs are built into live models while their
//!    tenant has free concurrency slots (build failures become
//!    [`JobPhase::Failed`] without consuming a slot).
//! 2. **Stepping** — tenants are visited round-robin (the starting
//!    tenant rotates every quantum so no name-ordering bias
//!    accumulates). Each tenant gets a step budget of
//!    `quota.steps_per_quantum`; the budget is spent over the tenant's
//!    runnable jobs in round-robin grants of at most
//!    [`SchedulerConfig::grant_steps`] engine iterations via
//!    `Model::step_up_to`, the bounded stepping primitive.
//!
//! Fairness falls out of the budget: a tenant saturating the server
//! with many long jobs completes at most `steps_per_quantum` iterations
//! per quantum — the same as a tenant with a single job — so every
//! tenant's completed-steps share stays within a constant factor of
//! fair share while it has runnable work (asserted by
//! `tests/fairness.rs`). Models are stepped one at a time, so each
//! engine iteration gets the whole rayon-style thread pool instead of
//! fighting every other tenant for cores mid-GEMM.

use crate::protocol::JobPhase;
use crate::registry::{build_model, build_resume_model, model_done, Registry};

/// Scheduler tuning.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Max engine iterations granted to one job before the scheduler
    /// moves on to the next runnable job (the batch size of batched
    /// stepping). Larger grants amortize scheduling overhead; smaller
    /// grants tighten latency for everyone else.
    pub grant_steps: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { grant_steps: 4 }
    }
}

/// What one quantum accomplished (all counters are this-quantum only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuantumReport {
    /// Engine iterations executed across all tenants.
    pub steps: usize,
    /// Jobs that received at least one step.
    pub jobs_stepped: usize,
    /// Queued jobs promoted to running models.
    pub jobs_promoted: usize,
    /// Jobs that reached their stop condition.
    pub jobs_finished: usize,
    /// Promotions whose model build failed.
    pub jobs_failed: usize,
}

impl QuantumReport {
    /// Whether the quantum did anything at all — `false` means the
    /// server can sleep until the next request.
    pub fn did_work(&self) -> bool {
        self.steps > 0 || self.jobs_promoted > 0 || self.jobs_failed > 0
    }
}

/// The round-robin scheduler. Holds only rotation state; all job state
/// lives in the [`Registry`].
#[derive(Default)]
pub struct Scheduler {
    config: SchedulerConfig,
    /// Rotates the tenant visiting order across quanta.
    rotation: usize,
}

impl Scheduler {
    pub fn new(config: SchedulerConfig) -> Scheduler {
        Scheduler {
            config,
            rotation: 0,
        }
    }

    /// Runs one scheduling quantum over the registry. See the [module
    /// docs](self) for the two phases.
    pub fn run_quantum(&mut self, reg: &mut Registry) -> QuantumReport {
        let mut report = QuantumReport::default();
        self.promote(reg, &mut report);
        self.step_tenants(reg, &mut report);
        self.rotation = self.rotation.wrapping_add(1);
        report
    }

    /// Builds queued jobs into running models while slots are free.
    fn promote(&mut self, reg: &mut Registry, report: &mut QuantumReport) {
        let (tenants, datasets) = reg.promotion_parts();
        for tenant in tenants.values_mut() {
            while tenant.active_jobs() < tenant.quota.max_concurrent_jobs {
                let Some(&job_id) = tenant.queue.front() else {
                    break;
                };
                tenant.queue.pop_front();
                let job = tenant.jobs.get_mut(&job_id).expect("queued job exists");
                let built = if let Some(spec) = job.spec.take() {
                    build_model(&spec, datasets)
                } else if let Some(rs) = job.resume.take() {
                    build_resume_model(&rs, datasets)
                } else {
                    Err("queued job has neither a spec nor a resume plan".to_string())
                };
                match built {
                    Ok(model) => {
                        job.bytes = model.factor_bytes();
                        job.model = Some(model);
                        job.phase = JobPhase::Running;
                        report.jobs_promoted += 1;
                    }
                    Err(reason) => {
                        job.phase = JobPhase::Failed;
                        job.error = Some(reason);
                        job.bytes = 0;
                        report.jobs_failed += 1;
                    }
                }
            }
        }
    }

    /// Spends each tenant's step budget over its runnable jobs.
    fn step_tenants(&mut self, reg: &mut Registry, report: &mut QuantumReport) {
        let names: Vec<String> = reg.tenants.keys().cloned().collect();
        if names.is_empty() {
            return;
        }
        let start = self.rotation % names.len();
        for i in 0..names.len() {
            let tenant = reg
                .tenants
                .get_mut(&names[(start + i) % names.len()])
                .expect("tenant listed");
            let mut budget = tenant.quota.steps_per_quantum;
            let runnable: Vec<u64> = tenant
                .jobs
                .values()
                .filter(|j| j.phase == JobPhase::Running && !model_done(j))
                .map(|j| j.id)
                .collect();
            if runnable.is_empty() {
                continue;
            }
            // Rotate which of the tenant's jobs drinks first, then hand
            // out bounded grants until the budget (or the work) runs dry.
            let offset = tenant.rr_offset % runnable.len();
            tenant.rr_offset = tenant.rr_offset.wrapping_add(1);
            let mut idx = 0;
            let mut dry = 0;
            while budget > 0 && dry < runnable.len() {
                let job_id = runnable[(offset + idx) % runnable.len()];
                idx += 1;
                let job = tenant.jobs.get_mut(&job_id).expect("runnable job exists");
                if model_done(job) {
                    dry += 1;
                    continue;
                }
                let grant = self.config.grant_steps.min(budget);
                let model = job.model.as_mut().expect("running job has a model");
                let progress = model.step_up_to(grant);
                budget -= progress.steps_run;
                job.steps_done += progress.steps_run as u64;
                tenant.steps_completed += progress.steps_run as u64;
                report.steps += progress.steps_run;
                if progress.steps_run > 0 {
                    report.jobs_stepped += 1;
                    dry = 0;
                } else {
                    dry += 1;
                }
                if model.is_finished() {
                    job.phase = JobPhase::Finished;
                    job.stop = progress.stop;
                    tenant.jobs_finished += 1;
                    report.jobs_finished += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{JobSource, JobSpec};
    use crate::registry::TenantQuota;
    use hpc_nmf::harness::Algo;
    use nmf_nls::SolverKind;

    fn spec(iters: usize) -> JobSpec {
        JobSpec {
            source: JobSource::Dense {
                m: 16,
                n: 12,
                data: (0..16 * 12).map(|i| (i % 5) as f64 + 0.25).collect(),
            },
            k: 3,
            ranks: 1,
            algo: Algo::Sequential,
            solver: SolverKind::Bpp,
            max_iters: iters,
            seed: 11,
            tol: None,
        }
    }

    #[test]
    fn quantum_promotes_steps_and_finishes() {
        let quota = TenantQuota {
            steps_per_quantum: 4,
            ..TenantQuota::default()
        };
        let mut reg = Registry::new(quota, 4);
        let (job, queued) = reg.submit("acme", spec(6)).expect("admit");
        assert!(!queued);
        let mut sched = Scheduler::new(SchedulerConfig { grant_steps: 4 });
        let r1 = sched.run_quantum(&mut reg);
        assert_eq!(r1.jobs_promoted, 1);
        assert_eq!(r1.steps, 4, "budget caps the first quantum: {r1:?}");
        let r2 = sched.run_quantum(&mut reg);
        assert_eq!(r2.jobs_finished, 1, "{r2:?}");
        let st = reg.status("acme", job).expect("status");
        assert_eq!(st.phase, JobPhase::Finished);
        assert_eq!(st.iterations, 6);
        assert_eq!(st.stop.as_deref(), Some("max_iters"));
        // Idle now.
        assert!(!sched.run_quantum(&mut reg).did_work());
        assert!(!reg.has_runnable_work());
    }

    #[test]
    fn build_failure_becomes_failed_phase_not_a_crash() {
        let mut reg = Registry::new(TenantQuota::default(), 4);
        let mut bad = spec(4);
        bad.k = 999; // > min(m, n): the session builder rejects this
        let (job, _) = reg.submit("acme", bad).expect("admission is shape-blind");
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let r = sched.run_quantum(&mut reg);
        assert_eq!(r.jobs_failed, 1);
        let st = reg.status("acme", job).expect("status");
        assert_eq!(st.phase, JobPhase::Failed);
        assert!(
            st.error.as_deref().is_some_and(|e| e.contains("rank")),
            "{st:?}"
        );
        assert_eq!(st.resident_bytes, 0, "failed jobs hold no quota");
    }

    #[test]
    fn per_tenant_budget_caps_a_many_job_tenant() {
        let quota = TenantQuota {
            max_concurrent_jobs: 8,
            steps_per_quantum: 6,
            ..TenantQuota::default()
        };
        let mut reg = Registry::new(quota, 4);
        for _ in 0..6 {
            reg.submit("hog", spec(50)).expect("admit");
        }
        reg.submit("mouse", spec(50)).expect("admit");
        let mut sched = Scheduler::new(SchedulerConfig { grant_steps: 2 });
        for _ in 0..5 {
            sched.run_quantum(&mut reg);
        }
        let steps = reg.steps_by_tenant();
        assert_eq!(
            steps["hog"], steps["mouse"],
            "equal budgets → equal completed steps while both saturate: {steps:?}"
        );
    }
}
