//! A typed client over any [`Transport`].
//!
//! One method per protocol verb; each sends one request frame, reads one
//! response frame, and converts `Response::Error` back into the typed
//! [`ServeError`] (branch on [`ServeError::code`]). The client is
//! synchronous and owns its transport — run one per thread for
//! concurrent tenants, as the load generator does.

use crate::error::ServeError;
use crate::protocol::{JobSource, JobSpec, JobStatus, Request, Response, TenantReport};
use crate::transport::Transport;
use hpc_nmf::harness::Algo;
use nmf_matrix::Mat;
use std::time::{Duration, Instant};

/// A synchronous protocol client.
pub struct Client {
    transport: Box<dyn Transport>,
}

impl Client {
    pub fn new(transport: Box<dyn Transport>) -> Client {
        Client { transport }
    }

    /// One request/response round trip.
    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        self.transport.send_frame(&request.encode())?;
        let frame = self.transport.recv_frame()?;
        match Response::decode(&frame)? {
            Response::Error { code, message } => Err(ServeError::from_wire(code, message)),
            resp => Ok(resp),
        }
    }

    /// Submits a job; returns its id (query [`status`](Self::status) to
    /// watch it progress from queued to running).
    pub fn submit(&mut self, tenant: &str, spec: &JobSpec) -> Result<u64, ServeError> {
        match self.call(&Request::Submit {
            tenant: tenant.to_string(),
            spec: spec.clone(),
        })? {
            Response::Submitted { job, .. } => Ok(job),
            resp => Err(unexpected(resp)),
        }
    }

    /// Like [`submit`](Self::submit) but also reports whether the job
    /// had to queue for a concurrency slot.
    pub fn submit_tracked(
        &mut self,
        tenant: &str,
        spec: &JobSpec,
    ) -> Result<(u64, bool), ServeError> {
        match self.call(&Request::Submit {
            tenant: tenant.to_string(),
            spec: spec.clone(),
        })? {
            Response::Submitted { job, queued } => Ok((job, queued)),
            resp => Err(unexpected(resp)),
        }
    }

    /// Asks the server to admit a job that continues from a server-side
    /// checkpoint. `ranks`/`algo` are regrid requests (the server clamps
    /// them to its policy); `max_iters` replaces the recorded iteration
    /// cap. Returns `(job id, queued?)`.
    pub fn resume(
        &mut self,
        tenant: &str,
        ckpt: &str,
        source: &JobSource,
        ranks: Option<usize>,
        algo: Option<Algo>,
        max_iters: Option<usize>,
    ) -> Result<(u64, bool), ServeError> {
        match self.call(&Request::Resume {
            tenant: tenant.to_string(),
            ckpt: ckpt.to_string(),
            source: source.clone(),
            ranks,
            algo,
            max_iters,
        })? {
            Response::Submitted { job, queued } => Ok((job, queued)),
            resp => Err(unexpected(resp)),
        }
    }

    pub fn status(&mut self, tenant: &str, job: u64) -> Result<JobStatus, ServeError> {
        match self.call(&Request::Status {
            tenant: tenant.to_string(),
            job,
        })? {
            Response::Status(st) => Ok(st),
            resp => Err(unexpected(resp)),
        }
    }

    /// Polls `status` until the job leaves the queued/running phases or
    /// `timeout_ms` elapses (then returns the last status seen).
    pub fn wait_finished(
        &mut self,
        tenant: &str,
        job: u64,
        timeout_ms: u64,
    ) -> Result<JobStatus, ServeError> {
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        loop {
            let st = self.status(tenant, job)?;
            let live = matches!(
                st.phase,
                crate::protocol::JobPhase::Queued | crate::protocol::JobPhase::Running
            );
            if !live || Instant::now() >= deadline {
                return Ok(st);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Fetches the job's current factors as matrices (`W` is `m×k`, `H`
    /// is `k×n`).
    pub fn factors(&mut self, tenant: &str, job: u64) -> Result<(Mat, Mat), ServeError> {
        match self.call(&Request::Factors {
            tenant: tenant.to_string(),
            job,
        })? {
            Response::Factors {
                wm,
                wk,
                w,
                hk,
                hn,
                h,
            } => {
                let (wm, wk, hk, hn) = (wm as usize, wk as usize, hk as usize, hn as usize);
                if w.len() != wm * wk || h.len() != hk * hn {
                    return Err(ServeError::BadFrame {
                        reason: format!(
                            "factor payload sizes do not match shapes: W {wm}x{wk} with {} \
                             values, H {hk}x{hn} with {}",
                            w.len(),
                            h.len()
                        ),
                    });
                }
                Ok((Mat::from_vec(wm, wk, w), Mat::from_vec(hk, hn, h)))
            }
            resp => Err(unexpected(resp)),
        }
    }

    /// Cancels a queued/running job or releases a finished one.
    pub fn cancel(&mut self, tenant: &str, job: u64) -> Result<(), ServeError> {
        match self.call(&Request::Cancel {
            tenant: tenant.to_string(),
            job,
        })? {
            Response::Cancelled { .. } => Ok(()),
            resp => Err(unexpected(resp)),
        }
    }

    /// Asks the server to write a durable checkpoint of the job to a
    /// server-side path.
    pub fn checkpoint(&mut self, tenant: &str, job: u64, path: &str) -> Result<(), ServeError> {
        match self.call(&Request::Checkpoint {
            tenant: tenant.to_string(),
            job,
            path: path.to_string(),
        })? {
            Response::Checkpointed { .. } => Ok(()),
            resp => Err(unexpected(resp)),
        }
    }

    pub fn tenant_stats(&mut self, tenant: &str) -> Result<TenantReport, ServeError> {
        match self.call(&Request::TenantStats {
            tenant: tenant.to_string(),
        })? {
            Response::TenantStats(report) => Ok(report),
            resp => Err(unexpected(resp)),
        }
    }

    /// Stops the server (in-flight jobs are dropped; durable state lives
    /// in checkpoints). The connection closes after the acknowledgement.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            resp => Err(unexpected(resp)),
        }
    }
}

fn unexpected(resp: Response) -> ServeError {
    ServeError::BadFrame {
        reason: format!("response does not answer the request: {resp:?}"),
    }
}
