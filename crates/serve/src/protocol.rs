//! The client↔server wire protocol: length-prefixed frames around a
//! hand-rolled binary encoding (the container pulls no serde, and the
//! checkpoint format already set the house style: little-endian scalars,
//! IEEE-754 `f64` bit patterns, tag bytes for enums).
//!
//! ## Framing
//!
//! ```text
//! u32 payload_len | payload
//! ```
//!
//! One frame carries exactly one [`Request`] or one [`Response`];
//! payloads start with a `u8` message tag. Frames above
//! [`MAX_FRAME_BYTES`] are rejected before allocation on both sides, so
//! a corrupt or hostile length prefix cannot OOM either end.
//!
//! ## Conversation
//!
//! The protocol is strict request/response: a client sends one request
//! frame and reads exactly one response frame before sending the next.
//! Every request names the tenant it acts for — the transport carries no
//! ambient identity — and job ids are scoped per tenant. `Shutdown` is
//! answered with `ShuttingDown` and then the server stops accepting
//! work; in-flight jobs are dropped (serving state is reconstructible:
//! durable state lives in checkpoints, not the server process).

use crate::error::{ErrorCode, ServeError};
use hpc_nmf::harness::Algo;
use hpc_nmf::Grid;
use nmf_nls::SolverKind;

/// Protocol version, checked implicitly by frame shape (bump on any
/// incompatible change and gate in [`Request::decode`]).
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload (64 MiB): comfortably above any
/// factor-matrix response this repo serves, far below an allocation that
/// could hurt the process.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Where a submitted job's input matrix comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSource {
    /// A generated dataset by name (`dsyn | ssyn | video | webbase`),
    /// with the paper dimensions divided by `scale`.
    Dataset {
        kind: String,
        scale: usize,
        seed: u64,
    },
    /// An inline dense matrix, row-major.
    Dense { m: usize, n: usize, data: Vec<f64> },
    /// A server-side NMFS sparse matrix file, memory-mapped at build
    /// time (see `nmf_sparse::io`). The path is interpreted on the
    /// server's filesystem.
    File { path: String },
}

impl JobSource {
    /// The input shape this source will produce (mirrors
    /// `DatasetKind::build`'s scaling, floor 8). `None` when the shape
    /// is only known server-side (`File` sources carry it in the NMFS
    /// header, read at admission).
    pub fn shape(&self) -> Option<(usize, usize)> {
        match self {
            JobSource::Dense { m, n, .. } => Some((*m, *n)),
            JobSource::File { .. } => None,
            JobSource::Dataset { kind, scale, .. } => {
                let (pm, pn) = match kind.as_str() {
                    "dsyn" | "ssyn" => (172_800, 115_200),
                    "video" => (1_013_400, 2_400),
                    "webbase" => (1_000_005, 1_000_005),
                    _ => return None,
                };
                let s = (*scale).max(1);
                Some(((pm / s).max(8), (pn / s).max(8)))
            }
        }
    }
}

/// Everything the server needs to build one tenant job's [`Model`]
/// (validation happens server-side at build time, through the session
/// builder).
///
/// [`Model`]: hpc_nmf::Model
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    pub source: JobSource,
    pub k: usize,
    pub ranks: usize,
    pub algo: Algo,
    pub solver: SolverKind,
    pub max_iters: usize,
    pub seed: u64,
    pub tol: Option<f64>,
}

impl JobSpec {
    /// The resident-factor-byte footprint this job will hold once built:
    /// `8·(m+n)·k` (the admission-control currency, matching
    /// `Model::factor_bytes`). `None` if the source names an unknown
    /// dataset — admission rejects those as a build failure later.
    pub fn projected_factor_bytes(&self) -> Option<usize> {
        let (m, n) = self.source.shape()?;
        Some(8 * (m + n) * self.k)
    }
}

/// The lifecycle phase of a job, as reported by `Status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted, waiting for a concurrency slot (no model yet).
    Queued,
    /// Built and eligible for scheduling quanta.
    Running,
    /// Ran to its stop condition; factors remain resident until the job
    /// is cancelled (released).
    Finished,
    /// Cancelled by the tenant; all state released.
    Cancelled,
    /// The deferred model build failed (see `error`).
    Failed,
}

impl JobPhase {
    pub fn as_str(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Finished => "finished",
            JobPhase::Cancelled => "cancelled",
            JobPhase::Failed => "failed",
        }
    }
}

/// A job's externally visible state.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    pub job: u64,
    pub phase: JobPhase,
    /// Engine iterations completed.
    pub iterations: u64,
    /// The iteration cap the job was submitted with.
    pub max_iters: u64,
    /// Objective after the latest iteration (`NaN` before the first).
    pub objective: f64,
    /// Relative error after the latest iteration (`NaN` before the first).
    pub rel_error: f64,
    /// Stop-reason token once finished (`max_iters`, `converged`, …).
    pub stop: Option<String>,
    /// Build-failure message for [`JobPhase::Failed`].
    pub error: Option<String>,
    /// Factor bytes this job holds resident.
    pub resident_bytes: u64,
}

/// Per-tenant accounting, for dashboards and fairness checks.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantReport {
    pub tenant: String,
    pub steps_completed: u64,
    pub jobs_submitted: u64,
    pub jobs_finished: u64,
    pub active_jobs: u64,
    pub queued_jobs: u64,
    pub resident_bytes: u64,
    /// Resident bytes of the server's shared dataset cache. Shared
    /// inputs are charged once per *dataset*, not once per tenant, so
    /// every tenant sees the same (deduplicated) figure — two tenants
    /// over one dataset do not double it.
    pub shared_input_bytes: u64,
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Admit a new job for `tenant` (auto-registering the tenant with
    /// the server's default quota on first contact).
    Submit { tenant: String, spec: JobSpec },
    /// Report a job's phase and progress.
    Status { tenant: String, job: u64 },
    /// Fetch the job's current factors `(W, H)` — valid mid-run.
    Factors { tenant: String, job: u64 },
    /// Cancel a queued/running job, or release a finished one (frees its
    /// quota bytes and concurrency slot).
    Cancel { tenant: String, job: u64 },
    /// Write a durable checkpoint of the job to a server-side path.
    Checkpoint {
        tenant: String,
        job: u64,
        path: String,
    },
    /// Per-tenant accounting counters.
    TenantStats { tenant: String },
    /// Stop the server loop after answering.
    Shutdown,
    /// Admit a job that continues from a server-side checkpoint file
    /// instead of a fresh random init. The server reads the checkpoint
    /// header for admission (shape, k) and regrids the stored factors
    /// onto whatever rank count / algorithm it assigns — the overrides
    /// below are requests, clamped to server policy, not demands.
    Resume {
        tenant: String,
        /// Server-side checkpoint path (written by `Checkpoint`).
        ckpt: String,
        /// The data matrix to resume against.
        source: JobSource,
        /// Target rank count; `None` lets the server pick (recorded
        /// count, clamped to its per-job rank cap).
        ranks: Option<usize>,
        /// Target algorithm; `None` replays the recorded one (degraded
        /// to `Hpc2D` if the rank count changed under a pinned grid).
        algo: Option<Algo>,
        /// Fresh iteration budget; `None` keeps the recorded cap.
        max_iters: Option<usize>,
    },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job was admitted. `queued` says whether it must wait for a
    /// concurrency slot before building.
    Submitted {
        job: u64,
        queued: bool,
    },
    Status(JobStatus),
    /// Row-major factors: `W` is `m×k`, `H` is `k×n`.
    Factors {
        wm: u64,
        wk: u64,
        w: Vec<f64>,
        hk: u64,
        hn: u64,
        h: Vec<f64>,
    },
    Cancelled {
        job: u64,
    },
    Checkpointed {
        job: u64,
        path: String,
    },
    TenantStats(TenantReport),
    ShuttingDown,
    /// Any failure, as a stable code plus rendered message.
    Error {
        code: ErrorCode,
        message: String,
    },
}

/* ---- message tags ---- */

const REQ_SUBMIT: u8 = 1;
const REQ_STATUS: u8 = 2;
const REQ_FACTORS: u8 = 3;
const REQ_CANCEL: u8 = 4;
const REQ_CHECKPOINT: u8 = 5;
const REQ_TENANT_STATS: u8 = 6;
const REQ_SHUTDOWN: u8 = 7;
const REQ_RESUME: u8 = 8;

const RESP_SUBMITTED: u8 = 1;
const RESP_STATUS: u8 = 2;
const RESP_FACTORS: u8 = 3;
const RESP_CANCELLED: u8 = 4;
const RESP_CHECKPOINTED: u8 = 5;
const RESP_TENANT_STATS: u8 = 6;
const RESP_SHUTTING_DOWN: u8 = 7;
const RESP_ERROR: u8 = 8;

/* ---- encoding ---- */

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_f64(out, x);
    }
}

fn put_algo(out: &mut Vec<u8>, algo: Algo) {
    match algo {
        Algo::Sequential => {
            out.push(0);
            put_u64(out, 0);
            put_u64(out, 0);
        }
        Algo::Naive => {
            out.push(1);
            put_u64(out, 0);
            put_u64(out, 0);
        }
        Algo::Hpc1D => {
            out.push(2);
            put_u64(out, 0);
            put_u64(out, 0);
        }
        Algo::Hpc2D => {
            out.push(3);
            put_u64(out, 0);
            put_u64(out, 0);
        }
        Algo::HpcGrid(g) => {
            out.push(4);
            put_u64(out, g.pr as u64);
            put_u64(out, g.pc as u64);
        }
    }
}

fn put_source(out: &mut Vec<u8>, source: &JobSource) {
    match source {
        JobSource::Dataset { kind, scale, seed } => {
            out.push(0);
            put_str(out, kind);
            put_u64(out, *scale as u64);
            put_u64(out, *seed);
        }
        JobSource::Dense { m, n, data } => {
            out.push(1);
            put_u64(out, *m as u64);
            put_u64(out, *n as u64);
            put_f64s(out, data);
        }
        JobSource::File { path } => {
            out.push(2);
            put_str(out, path);
        }
    }
}

fn put_opt_u64(out: &mut Vec<u8>, x: Option<u64>) {
    match x {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
    }
}

fn put_spec(out: &mut Vec<u8>, spec: &JobSpec) {
    put_source(out, &spec.source);
    put_u64(out, spec.k as u64);
    put_u64(out, spec.ranks as u64);
    put_algo(out, spec.algo);
    out.push(match spec.solver {
        SolverKind::Bpp => 0,
        SolverKind::Mu => 1,
        SolverKind::Hals => 2,
        SolverKind::ActiveSet => 3,
    });
    put_u64(out, spec.max_iters as u64);
    put_u64(out, spec.seed);
    match spec.tol {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_f64(out, t);
        }
    }
}

/* ---- decoding ---- */

struct Wire<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Wire<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if n > self.remaining() {
            return Err(ServeError::BadFrame {
                reason: format!(
                    "truncated: needed {n} bytes at offset {}, frame has {}",
                    self.pos,
                    self.bytes.len()
                ),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, ServeError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ServeError::BadFrame {
            reason: "string field is not UTF-8".into(),
        })
    }

    fn opt_string(&mut self) -> Result<Option<String>, ServeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.string()?)),
            t => Err(ServeError::BadFrame {
                reason: format!("unknown option flag {t}"),
            }),
        }
    }

    fn f64s(&mut self) -> Result<Vec<f64>, ServeError> {
        let len = self.u64()? as usize;
        if len > self.remaining() / 8 {
            return Err(ServeError::BadFrame {
                reason: format!(
                    "float array claims {len} values but only {} bytes remain",
                    self.remaining()
                ),
            });
        }
        let raw = self.take(8 * len)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8")))
            .collect())
    }

    fn algo(&mut self) -> Result<Algo, ServeError> {
        let tag = self.u8()?;
        let pr = self.u64()? as usize;
        let pc = self.u64()? as usize;
        Ok(match tag {
            0 => Algo::Sequential,
            1 => Algo::Naive,
            2 => Algo::Hpc1D,
            3 => Algo::Hpc2D,
            4 => {
                if pr == 0 || pc == 0 {
                    return Err(ServeError::BadFrame {
                        reason: format!("invalid grid {pr}x{pc}"),
                    });
                }
                Algo::HpcGrid(Grid::new(pr, pc))
            }
            t => {
                return Err(ServeError::BadFrame {
                    reason: format!("unknown algo tag {t}"),
                })
            }
        })
    }

    fn source(&mut self) -> Result<JobSource, ServeError> {
        Ok(match self.u8()? {
            0 => JobSource::Dataset {
                kind: self.string()?,
                scale: self.u64()? as usize,
                seed: self.u64()?,
            },
            1 => {
                let m = self.u64()? as usize;
                let n = self.u64()? as usize;
                let data = self.f64s()?;
                if data.len() != m * n {
                    return Err(ServeError::BadFrame {
                        reason: format!(
                            "dense source claims {m}x{n} but carries {} values",
                            data.len()
                        ),
                    });
                }
                JobSource::Dense { m, n, data }
            }
            2 => JobSource::File {
                path: self.string()?,
            },
            t => {
                return Err(ServeError::BadFrame {
                    reason: format!("unknown job-source tag {t}"),
                })
            }
        })
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, ServeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(ServeError::BadFrame {
                reason: format!("unknown option flag {t}"),
            }),
        }
    }

    fn opt_algo(&mut self) -> Result<Option<Algo>, ServeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.algo()?)),
            t => Err(ServeError::BadFrame {
                reason: format!("unknown option flag {t}"),
            }),
        }
    }

    fn spec(&mut self) -> Result<JobSpec, ServeError> {
        let source = self.source()?;
        let k = self.u64()? as usize;
        let ranks = self.u64()? as usize;
        let algo = self.algo()?;
        let solver = match self.u8()? {
            0 => SolverKind::Bpp,
            1 => SolverKind::Mu,
            2 => SolverKind::Hals,
            3 => SolverKind::ActiveSet,
            t => {
                return Err(ServeError::BadFrame {
                    reason: format!("unknown solver tag {t}"),
                })
            }
        };
        let max_iters = self.u64()? as usize;
        let seed = self.u64()?;
        let tol = match self.u8()? {
            0 => None,
            1 => Some(self.f64()?),
            t => {
                return Err(ServeError::BadFrame {
                    reason: format!("unknown tol flag {t}"),
                })
            }
        };
        Ok(JobSpec {
            source,
            k,
            ranks,
            algo,
            solver,
            max_iters,
            seed,
            tol,
        })
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.pos != self.bytes.len() {
            return Err(ServeError::BadFrame {
                reason: format!(
                    "{} trailing bytes after the message",
                    self.bytes.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Request::Submit { tenant, spec } => {
                out.push(REQ_SUBMIT);
                put_str(&mut out, tenant);
                put_spec(&mut out, spec);
            }
            Request::Status { tenant, job } => {
                out.push(REQ_STATUS);
                put_str(&mut out, tenant);
                put_u64(&mut out, *job);
            }
            Request::Factors { tenant, job } => {
                out.push(REQ_FACTORS);
                put_str(&mut out, tenant);
                put_u64(&mut out, *job);
            }
            Request::Cancel { tenant, job } => {
                out.push(REQ_CANCEL);
                put_str(&mut out, tenant);
                put_u64(&mut out, *job);
            }
            Request::Checkpoint { tenant, job, path } => {
                out.push(REQ_CHECKPOINT);
                put_str(&mut out, tenant);
                put_u64(&mut out, *job);
                put_str(&mut out, path);
            }
            Request::TenantStats { tenant } => {
                out.push(REQ_TENANT_STATS);
                put_str(&mut out, tenant);
            }
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::Resume {
                tenant,
                ckpt,
                source,
                ranks,
                algo,
                max_iters,
            } => {
                out.push(REQ_RESUME);
                put_str(&mut out, tenant);
                put_str(&mut out, ckpt);
                put_source(&mut out, source);
                put_opt_u64(&mut out, ranks.map(|r| r as u64));
                match algo {
                    None => out.push(0),
                    Some(a) => {
                        out.push(1);
                        put_algo(&mut out, *a);
                    }
                }
                put_opt_u64(&mut out, max_iters.map(|r| r as u64));
            }
        }
        out
    }

    pub fn decode(frame: &[u8]) -> Result<Request, ServeError> {
        let mut w = Wire {
            bytes: frame,
            pos: 0,
        };
        let req = match w.u8()? {
            REQ_SUBMIT => Request::Submit {
                tenant: w.string()?,
                spec: w.spec()?,
            },
            REQ_STATUS => Request::Status {
                tenant: w.string()?,
                job: w.u64()?,
            },
            REQ_FACTORS => Request::Factors {
                tenant: w.string()?,
                job: w.u64()?,
            },
            REQ_CANCEL => Request::Cancel {
                tenant: w.string()?,
                job: w.u64()?,
            },
            REQ_CHECKPOINT => Request::Checkpoint {
                tenant: w.string()?,
                job: w.u64()?,
                path: w.string()?,
            },
            REQ_TENANT_STATS => Request::TenantStats {
                tenant: w.string()?,
            },
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_RESUME => Request::Resume {
                tenant: w.string()?,
                ckpt: w.string()?,
                source: w.source()?,
                ranks: w.opt_u64()?.map(|r| r as usize),
                algo: w.opt_algo()?,
                max_iters: w.opt_u64()?.map(|r| r as usize),
            },
            t => {
                return Err(ServeError::BadFrame {
                    reason: format!("unknown request tag {t}"),
                })
            }
        };
        w.done()?;
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            Response::Submitted { job, queued } => {
                out.push(RESP_SUBMITTED);
                put_u64(&mut out, *job);
                out.push(u8::from(*queued));
            }
            Response::Status(st) => {
                out.push(RESP_STATUS);
                put_u64(&mut out, st.job);
                out.push(match st.phase {
                    JobPhase::Queued => 0,
                    JobPhase::Running => 1,
                    JobPhase::Finished => 2,
                    JobPhase::Cancelled => 3,
                    JobPhase::Failed => 4,
                });
                put_u64(&mut out, st.iterations);
                put_u64(&mut out, st.max_iters);
                put_f64(&mut out, st.objective);
                put_f64(&mut out, st.rel_error);
                put_opt_str(&mut out, &st.stop);
                put_opt_str(&mut out, &st.error);
                put_u64(&mut out, st.resident_bytes);
            }
            Response::Factors {
                wm,
                wk,
                w,
                hk,
                hn,
                h,
            } => {
                out.push(RESP_FACTORS);
                put_u64(&mut out, *wm);
                put_u64(&mut out, *wk);
                put_f64s(&mut out, w);
                put_u64(&mut out, *hk);
                put_u64(&mut out, *hn);
                put_f64s(&mut out, h);
            }
            Response::Cancelled { job } => {
                out.push(RESP_CANCELLED);
                put_u64(&mut out, *job);
            }
            Response::Checkpointed { job, path } => {
                out.push(RESP_CHECKPOINTED);
                put_u64(&mut out, *job);
                put_str(&mut out, path);
            }
            Response::TenantStats(t) => {
                out.push(RESP_TENANT_STATS);
                put_str(&mut out, &t.tenant);
                put_u64(&mut out, t.steps_completed);
                put_u64(&mut out, t.jobs_submitted);
                put_u64(&mut out, t.jobs_finished);
                put_u64(&mut out, t.active_jobs);
                put_u64(&mut out, t.queued_jobs);
                put_u64(&mut out, t.resident_bytes);
                put_u64(&mut out, t.shared_input_bytes);
            }
            Response::ShuttingDown => out.push(RESP_SHUTTING_DOWN),
            Response::Error { code, message } => {
                out.push(RESP_ERROR);
                put_u32(&mut out, *code as u32);
                put_str(&mut out, message);
            }
        }
        out
    }

    pub fn decode(frame: &[u8]) -> Result<Response, ServeError> {
        let mut w = Wire {
            bytes: frame,
            pos: 0,
        };
        let resp = match w.u8()? {
            RESP_SUBMITTED => Response::Submitted {
                job: w.u64()?,
                queued: w.u8()? != 0,
            },
            RESP_STATUS => Response::Status(JobStatus {
                job: w.u64()?,
                phase: match w.u8()? {
                    0 => JobPhase::Queued,
                    1 => JobPhase::Running,
                    2 => JobPhase::Finished,
                    3 => JobPhase::Cancelled,
                    4 => JobPhase::Failed,
                    t => {
                        return Err(ServeError::BadFrame {
                            reason: format!("unknown phase tag {t}"),
                        })
                    }
                },
                iterations: w.u64()?,
                max_iters: w.u64()?,
                objective: w.f64()?,
                rel_error: w.f64()?,
                stop: w.opt_string()?,
                error: w.opt_string()?,
                resident_bytes: w.u64()?,
            }),
            RESP_FACTORS => Response::Factors {
                wm: w.u64()?,
                wk: w.u64()?,
                w: w.f64s()?,
                hk: w.u64()?,
                hn: w.u64()?,
                h: w.f64s()?,
            },
            RESP_CANCELLED => Response::Cancelled { job: w.u64()? },
            RESP_CHECKPOINTED => Response::Checkpointed {
                job: w.u64()?,
                path: w.string()?,
            },
            RESP_TENANT_STATS => Response::TenantStats(TenantReport {
                tenant: w.string()?,
                steps_completed: w.u64()?,
                jobs_submitted: w.u64()?,
                jobs_finished: w.u64()?,
                active_jobs: w.u64()?,
                queued_jobs: w.u64()?,
                resident_bytes: w.u64()?,
                shared_input_bytes: w.u64()?,
            }),
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_ERROR => {
                let code = w.u32()?;
                let message = w.string()?;
                Response::Error {
                    code: ErrorCode::from_u32(code).ok_or_else(|| ServeError::BadFrame {
                        reason: format!("unknown error code {code}"),
                    })?,
                    message,
                }
            }
            t => {
                return Err(ServeError::BadFrame {
                    reason: format!("unknown response tag {t}"),
                })
            }
        };
        w.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                source: JobSource::Dataset {
                    kind: "ssyn".into(),
                    scale: 400,
                    seed: 7,
                },
                k: 8,
                ranks: 4,
                algo: Algo::Hpc2D,
                solver: SolverKind::Bpp,
                max_iters: 20,
                seed: 42,
                tol: Some(1e-4),
            },
            JobSpec {
                source: JobSource::Dense {
                    m: 2,
                    n: 3,
                    data: vec![1.0, 0.0, 2.5, 3.0, 4.0, 5.0],
                },
                k: 2,
                ranks: 1,
                algo: Algo::Sequential,
                solver: SolverKind::Hals,
                max_iters: 5,
                seed: 1,
                tol: None,
            },
            JobSpec {
                source: JobSource::Dense {
                    m: 1,
                    n: 1,
                    data: vec![9.0],
                },
                k: 1,
                ranks: 6,
                algo: Algo::HpcGrid(Grid::new(2, 3)),
                solver: SolverKind::Mu,
                max_iters: 1,
                seed: 0,
                tol: None,
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        let mut reqs = vec![
            Request::Status {
                tenant: "acme".into(),
                job: 3,
            },
            Request::Factors {
                tenant: "acme".into(),
                job: 9,
            },
            Request::Cancel {
                tenant: "β-tenant".into(),
                job: u64::MAX,
            },
            Request::Checkpoint {
                tenant: "t".into(),
                job: 0,
                path: "/tmp/x.ckpt".into(),
            },
            Request::TenantStats { tenant: "".into() },
            Request::Shutdown,
        ];
        for spec in specs() {
            reqs.push(Request::Submit {
                tenant: "acme".into(),
                spec,
            });
        }
        reqs.push(Request::Submit {
            tenant: "acme".into(),
            spec: JobSpec {
                source: JobSource::File {
                    path: "/data/webbase.nmfs".into(),
                },
                k: 4,
                ranks: 8,
                algo: Algo::Hpc2D,
                solver: SolverKind::Bpp,
                max_iters: 50,
                seed: 3,
                tol: None,
            },
        });
        reqs.push(Request::Resume {
            tenant: "acme".into(),
            ckpt: "/tmp/j1.ckpt".into(),
            source: JobSource::File {
                path: "/data/a.nmfs".into(),
            },
            ranks: Some(2),
            algo: Some(Algo::HpcGrid(Grid::new(2, 1))),
            max_iters: Some(40),
        });
        reqs.push(Request::Resume {
            tenant: "acme".into(),
            ckpt: "ckpt/only.ckpt".into(),
            source: JobSource::Dataset {
                kind: "ssyn".into(),
                scale: 400,
                seed: 7,
            },
            ranks: None,
            algo: None,
            max_iters: None,
        });
        for req in reqs {
            let bytes = req.encode();
            let back = Request::decode(&bytes).expect("decodes");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Submitted {
                job: 5,
                queued: true,
            },
            Response::Status(JobStatus {
                job: 5,
                phase: JobPhase::Running,
                iterations: 7,
                max_iters: 20,
                objective: 123.5,
                rel_error: 0.25,
                stop: None,
                error: None,
                resident_bytes: 4096,
            }),
            Response::Status(JobStatus {
                job: 6,
                phase: JobPhase::Failed,
                iterations: 0,
                max_iters: 20,
                objective: f64::NAN,
                rel_error: f64::NAN,
                stop: None,
                error: Some("rank k=99 is outside the valid range".into()),
                resident_bytes: 0,
            }),
            Response::Factors {
                wm: 2,
                wk: 2,
                w: vec![1.0, 2.0, 3.0, 4.0],
                hk: 2,
                hn: 1,
                h: vec![5.0, 6.0],
            },
            Response::Cancelled { job: 1 },
            Response::Checkpointed {
                job: 2,
                path: "/tmp/j2.ckpt".into(),
            },
            Response::TenantStats(TenantReport {
                tenant: "acme".into(),
                steps_completed: 100,
                jobs_submitted: 4,
                jobs_finished: 2,
                active_jobs: 1,
                queued_jobs: 1,
                resident_bytes: 1 << 20,
                shared_input_bytes: 3 << 20,
            }),
            Response::ShuttingDown,
            Response::Error {
                code: ErrorCode::QuotaBytes,
                message: "over quota".into(),
            },
        ];
        for resp in resps {
            let bytes = resp.encode();
            let back = Response::decode(&bytes).expect("decodes");
            match (&back, &resp) {
                // NaN != NaN; compare Failed statuses structurally.
                (Response::Status(a), Response::Status(b)) if a.objective.is_nan() => {
                    assert!(b.objective.is_nan());
                    assert_eq!(a.phase, b.phase);
                    assert_eq!(a.error, b.error);
                }
                _ => assert_eq!(back, resp),
            }
        }
    }

    #[test]
    fn truncated_and_trailing_frames_are_rejected() {
        let bytes = Request::Status {
            tenant: "acme".into(),
            job: 3,
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(
                Request::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Request::decode(&extra).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn absurd_float_array_is_rejected_before_allocation() {
        // A dense submit whose array length field claims 2^60 values.
        let mut out = Vec::new();
        out.push(super::REQ_SUBMIT);
        put_str(&mut out, "t");
        out.push(1); // dense source
        put_u64(&mut out, 4);
        put_u64(&mut out, 4);
        put_u64(&mut out, 1 << 60); // array length
        let err = Request::decode(&out).expect_err("rejected");
        assert!(matches!(err, ServeError::BadFrame { .. }), "{err}");
    }

    #[test]
    fn projected_bytes_match_model_accounting() {
        let spec = &specs()[1]; // 2x3 dense, k=2
        assert_eq!(spec.projected_factor_bytes(), Some(8 * (2 + 3) * 2));
        let ds = &specs()[0]; // ssyn at scale 400: 432x288
        assert_eq!(
            ds.projected_factor_bytes(),
            Some(8 * (172_800 / 400 + 115_200 / 400) * 8)
        );
    }
}
