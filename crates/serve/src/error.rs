//! The failure taxonomy of the serving layer.
//!
//! Every way a request can fail — admission refused, an unknown
//! tenant/job named, a malformed or truncated frame, a dead transport —
//! is a variant of [`ServeError`], so clients branch on *what* went
//! wrong. Errors that cross the wire carry a stable numeric
//! [`ErrorCode`] plus the rendered message; the client re-materializes
//! the typed variant from the code (see `docs/serving.md` for the full
//! taxonomy table).

use std::fmt;

/// Stable numeric error codes carried in `Response::Error` frames.
/// Codes are part of the wire protocol: never reuse a retired value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum ErrorCode {
    /// The tenant is at its concurrent-job **and** queued-job limits.
    QuotaJobs = 1,
    /// Admitting the job would exceed the tenant's resident-factor-byte
    /// quota.
    QuotaBytes = 2,
    /// The named tenant has never submitted anything.
    UnknownTenant = 3,
    /// The named job does not exist (or was cancelled and released).
    UnknownJob = 4,
    /// The job is still queued: it has no model yet, so factors /
    /// checkpoints cannot be produced.
    NotStarted = 5,
    /// The job's model failed validation at build time (the embedded
    /// message is the underlying `NmfError`).
    BuildFailed = 6,
    /// The request frame did not decode.
    BadRequest = 7,
    /// Anything else that went wrong server-side.
    Internal = 8,
}

impl ErrorCode {
    pub fn from_u32(x: u32) -> Option<ErrorCode> {
        Some(match x {
            1 => ErrorCode::QuotaJobs,
            2 => ErrorCode::QuotaBytes,
            3 => ErrorCode::UnknownTenant,
            4 => ErrorCode::UnknownJob,
            5 => ErrorCode::NotStarted,
            6 => ErrorCode::BuildFailed,
            7 => ErrorCode::BadRequest,
            8 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Why a serving-layer operation failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission refused: the tenant is at both its concurrent-job limit
    /// and its queue-depth limit.
    QuotaJobs {
        tenant: String,
        active: usize,
        queued: usize,
        max_concurrent: usize,
        max_queued: usize,
    },
    /// Admission refused: the job's projected factor residency would
    /// push the tenant past its byte quota.
    QuotaBytes {
        tenant: String,
        resident: usize,
        requested: usize,
        limit: usize,
    },
    /// No such tenant.
    UnknownTenant { tenant: String },
    /// No such job for this tenant.
    UnknownJob { tenant: String, job: u64 },
    /// The job is queued and has no engine state yet.
    NotStarted { job: u64 },
    /// The job's deferred model build failed.
    BuildFailed { job: u64, reason: String },
    /// A frame that is not a valid protocol message (bad tag, short
    /// payload, an over-limit length prefix, …).
    BadFrame { reason: String },
    /// The peer closed the connection.
    Closed,
    /// Transport-level I/O failure.
    Io { source: std::io::Error },
    /// An error reported by the server that does not map onto a more
    /// specific variant.
    Remote { code: ErrorCode, message: String },
}

impl ServeError {
    /// The wire code this error travels under.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::QuotaJobs { .. } => ErrorCode::QuotaJobs,
            ServeError::QuotaBytes { .. } => ErrorCode::QuotaBytes,
            ServeError::UnknownTenant { .. } => ErrorCode::UnknownTenant,
            ServeError::UnknownJob { .. } => ErrorCode::UnknownJob,
            ServeError::NotStarted { .. } => ErrorCode::NotStarted,
            ServeError::BuildFailed { .. } => ErrorCode::BuildFailed,
            ServeError::BadFrame { .. } => ErrorCode::BadRequest,
            ServeError::Remote { code, .. } => *code,
            _ => ErrorCode::Internal,
        }
    }

    /// Rebuilds the client-side error for a `(code, message)` received
    /// over the wire. Structured fields are not re-parsed from the
    /// message — remote errors keep the rendered text and the code is
    /// what callers should branch on.
    pub fn from_wire(code: ErrorCode, message: String) -> ServeError {
        ServeError::Remote { code, message }
    }

    /// Whether this error is an admission-control refusal (the caller's
    /// work was *rejected by policy*, not lost to a fault).
    pub fn is_quota(&self) -> bool {
        matches!(self.code(), ErrorCode::QuotaJobs | ErrorCode::QuotaBytes)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QuotaJobs {
                tenant,
                active,
                queued,
                max_concurrent,
                max_queued,
            } => write!(
                f,
                "tenant '{tenant}' is at its job quota ({active} active of {max_concurrent}, \
                 {queued} queued of {max_queued}); finish or cancel a job first"
            ),
            ServeError::QuotaBytes {
                tenant,
                resident,
                requested,
                limit,
            } => write!(
                f,
                "tenant '{tenant}' would exceed its resident-factor quota: {resident} bytes \
                 held + {requested} requested > {limit} limit; release finished jobs or \
                 submit a smaller model"
            ),
            ServeError::UnknownTenant { tenant } => write!(f, "unknown tenant '{tenant}'"),
            ServeError::UnknownJob { tenant, job } => {
                write!(f, "tenant '{tenant}' has no job {job}")
            }
            ServeError::NotStarted { job } => write!(
                f,
                "job {job} has no live engine state (still queued, cancelled, or released); \
                 factors and checkpoints need a built model"
            ),
            ServeError::BuildFailed { job, reason } => {
                write!(f, "job {job} failed to build: {reason}")
            }
            ServeError::BadFrame { reason } => write!(f, "malformed protocol frame: {reason}"),
            ServeError::Closed => write!(f, "connection closed by peer"),
            ServeError::Io { source } => write!(f, "transport I/O error: {source}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(source: std::io::Error) -> Self {
        ServeError::Io { source }
    }
}
