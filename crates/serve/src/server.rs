//! The serving loop: one process multiplexing many tenants.
//!
//! Threading model:
//!
//! * an **accept thread** polls the [`Listener`] and spawns one
//!   **reader thread** per connection;
//! * each reader decodes request frames and forwards
//!   `(Request, reply sender)` pairs into a single queue;
//! * the **core loop** (the thread that called [`Server::run`]) owns the
//!   [`Registry`] and [`Scheduler`] outright — no locks — alternating
//!   between draining the request queue and running scheduling quanta.
//!
//! A request therefore waits at most one quantum before it is answered,
//! and every mutation of serving state happens on one thread, which is
//! what makes the fairness accounting exact. Reader threads write the
//! response frames back themselves, so a slow client blocks only its own
//! connection.

use crate::error::ServeError;
use crate::protocol::{Request, Response};
use crate::registry::{Registry, TenantQuota};
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::transport::{Listener, Transport};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning and policy.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Quota applied to tenants that were not pre-registered.
    pub default_quota: TenantQuota,
    /// Server-wide cap on virtual ranks per job.
    pub max_ranks_per_job: usize,
    /// Scheduler batch size (engine steps per grant).
    pub scheduler: SchedulerConfig,
    /// How long the core loop sleeps when there are no requests and no
    /// runnable jobs.
    pub idle_sleep: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            default_quota: TenantQuota::default(),
            max_ranks_per_job: 8,
            scheduler: SchedulerConfig::default(),
            idle_sleep: Duration::from_millis(2),
        }
    }
}

/// Counters for the whole serving run (returned by [`Server::run`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    pub requests: u64,
    pub quanta: u64,
    pub steps: u64,
    pub jobs_promoted: u64,
    pub jobs_finished: u64,
    pub jobs_failed: u64,
    pub connections: u64,
}

/// A handle for stopping a running server from outside (another thread
/// or a signal handler).
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Asks the server loop to stop after the current quantum.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// One request in flight from a reader thread to the core loop.
struct Inbound {
    request: Request,
    reply: Sender<Response>,
}

/// The multi-tenant serving core.
pub struct Server {
    config: ServerConfig,
    registry: Registry,
    scheduler: Scheduler,
    stop: Arc<AtomicBool>,
}

impl Server {
    pub fn new(config: ServerConfig) -> Server {
        let registry = Registry::new(config.default_quota, config.max_ranks_per_job);
        let scheduler = Scheduler::new(config.scheduler);
        Server {
            config,
            registry,
            scheduler,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Pre-registers a tenant with a non-default quota.
    pub fn set_quota(&mut self, tenant: &str, quota: TenantQuota) {
        self.registry.set_quota(tenant, quota);
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.stop),
        }
    }

    /// Runs the serving loop on the calling thread until a `Shutdown`
    /// request arrives or the [`ShutdownHandle`] fires. Returns run-wide
    /// counters.
    pub fn run(mut self, listener: Box<dyn Listener>) -> Result<ServeStats, ServeError> {
        let (inbound_tx, inbound_rx) = channel::<Inbound>();
        let connections = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let accept = spawn_accept_thread(
            listener,
            inbound_tx,
            Arc::clone(&self.stop),
            Arc::clone(&connections),
        );

        let mut stats = ServeStats::default();
        while !self.stop.load(Ordering::SeqCst) {
            // Drain every request that is already waiting, then decide
            // whether to step or sleep.
            let mut handled = 0;
            while let Ok(inbound) = inbound_rx.try_recv() {
                handled += 1;
                stats.requests += 1;
                let shutdown = matches!(inbound.request, Request::Shutdown);
                let response = self.handle(inbound.request);
                // A dead client is not a server error.
                inbound.reply.send(response).ok();
                if shutdown {
                    self.stop.store(true, Ordering::SeqCst);
                }
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            if self.registry.has_runnable_work() {
                let report = self.scheduler.run_quantum(&mut self.registry);
                stats.quanta += 1;
                stats.steps += report.steps as u64;
                stats.jobs_promoted += report.jobs_promoted as u64;
                stats.jobs_finished += report.jobs_finished as u64;
                stats.jobs_failed += report.jobs_failed as u64;
            } else if handled == 0 {
                // Idle: block briefly on the queue instead of spinning.
                match inbound_rx.recv_timeout(self.config.idle_sleep) {
                    Ok(inbound) => {
                        stats.requests += 1;
                        let shutdown = matches!(inbound.request, Request::Shutdown);
                        let response = self.handle(inbound.request);
                        inbound.reply.send(response).ok();
                        if shutdown {
                            self.stop.store(true, Ordering::SeqCst);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    // All reader threads and the accept thread are gone.
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        self.stop.store(true, Ordering::SeqCst);
        accept.join().ok();
        stats.connections = connections.load(Ordering::SeqCst);
        Ok(stats)
    }

    /// Executes one request against the registry.
    fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Submit { tenant, spec } => match self.registry.submit(&tenant, spec) {
                Ok((job, queued)) => Response::Submitted { job, queued },
                Err(e) => error_response(&e),
            },
            Request::Status { tenant, job } => match self.registry.status(&tenant, job) {
                Ok(st) => Response::Status(st),
                Err(e) => error_response(&e),
            },
            Request::Factors { tenant, job } => match self.registry.factors(&tenant, job) {
                Ok((w, h)) => Response::Factors {
                    wm: w.nrows() as u64,
                    wk: w.ncols() as u64,
                    w: w.as_slice().to_vec(),
                    hk: h.nrows() as u64,
                    hn: h.ncols() as u64,
                    h: h.as_slice().to_vec(),
                },
                Err(e) => error_response(&e),
            },
            Request::Cancel { tenant, job } => match self.registry.cancel(&tenant, job) {
                Ok(()) => Response::Cancelled { job },
                Err(e) => error_response(&e),
            },
            Request::Checkpoint { tenant, job, path } => {
                match self.registry.checkpoint(&tenant, job, &path) {
                    Ok(()) => Response::Checkpointed { job, path },
                    Err(e) => error_response(&e),
                }
            }
            Request::TenantStats { tenant } => match self.registry.tenant_report(&tenant) {
                Ok(report) => Response::TenantStats(report),
                Err(e) => error_response(&e),
            },
            Request::Shutdown => Response::ShuttingDown,
            Request::Resume {
                tenant,
                ckpt,
                source,
                ranks,
                algo,
                max_iters,
            } => {
                let rs = crate::registry::ResumeSpec {
                    ckpt,
                    source,
                    ranks,
                    algo,
                    max_iters,
                };
                match self.registry.submit_resume(&tenant, rs) {
                    Ok((job, queued)) => Response::Submitted { job, queued },
                    Err(e) => error_response(&e),
                }
            }
        }
    }
}

fn error_response(e: &ServeError) -> Response {
    Response::Error {
        code: e.code(),
        message: e.to_string(),
    }
}

/// Accept loop: polls the listener, spawns a reader thread per
/// connection, exits when the stop flag is raised.
fn spawn_accept_thread(
    mut listener: Box<dyn Listener>,
    inbound: Sender<Inbound>,
    stop: Arc<AtomicBool>,
    connections: Arc<std::sync::atomic::AtomicU64>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("nmf-serve-accept".into())
        .spawn(move || {
            let mut readers = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                match listener.accept(Duration::from_millis(10)) {
                    Ok(Some(conn)) => {
                        connections.fetch_add(1, Ordering::SeqCst);
                        let inbound = inbound.clone();
                        let stop = Arc::clone(&stop);
                        if let Ok(h) = std::thread::Builder::new()
                            .name("nmf-serve-conn".into())
                            .spawn(move || connection_loop(conn, inbound, stop))
                        {
                            readers.push(h);
                        }
                    }
                    Ok(None) => {}
                    Err(_) => break,
                }
            }
            // Reader threads exit on their own when clients hang up;
            // after shutdown the remaining ones see Closed or a dead
            // reply channel and return.
            for h in readers {
                h.join().ok();
            }
        })
        .expect("spawn accept thread")
}

/// Per-connection loop: frames in, responses out, strict alternation.
fn connection_loop(mut conn: Box<dyn Transport>, inbound: Sender<Inbound>, stop: Arc<AtomicBool>) {
    loop {
        let frame = match conn.recv_frame() {
            Ok(f) => f,
            // Peer hung up or the frame layer failed: either way this
            // connection is done.
            Err(_) => return,
        };
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                // Malformed frame: answer with the typed error and keep
                // the connection (framing is still intact — the bad
                // bytes were confined to one frame).
                let resp = error_response(&e);
                if conn.send_frame(&resp.encode()).is_err() {
                    return;
                }
                continue;
            }
        };
        let (reply_tx, reply_rx) = channel();
        if inbound
            .send(Inbound {
                request,
                reply: reply_tx,
            })
            .is_err()
        {
            // Core loop is gone: the server is shutting down.
            return;
        }
        let response = match reply_rx.recv() {
            Ok(r) => r,
            Err(_) => return,
        };
        let closing = matches!(response, Response::ShuttingDown);
        if conn.send_frame(&response.encode()).is_err() || closing || stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::{JobPhase, JobSource, JobSpec};
    use crate::transport::channel_listener;
    use hpc_nmf::harness::Algo;
    use nmf_nls::SolverKind;

    fn spec(iters: usize, seed: u64) -> JobSpec {
        JobSpec {
            source: JobSource::Dense {
                m: 14,
                n: 10,
                data: (0..14 * 10).map(|i| (i % 6) as f64 + 0.5).collect(),
            },
            k: 3,
            ranks: 1,
            algo: Algo::Sequential,
            solver: SolverKind::Bpp,
            max_iters: iters,
            seed,
            tol: None,
        }
    }

    #[test]
    fn serves_a_job_end_to_end_in_process() {
        let (listener, connector) = channel_listener();
        let server = Server::new(ServerConfig::default());
        let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));

        let mut client = Client::new(Box::new(connector.connect().expect("dial")));
        let job = client.submit("acme", &spec(5, 9)).expect("submit");
        let status = client.wait_finished("acme", job, 2000).expect("finishes");
        assert_eq!(status.phase, JobPhase::Finished);
        assert_eq!(status.iterations, 5);
        assert!(status.objective.is_finite() && status.objective >= 0.0);

        let (w, h) = client.factors("acme", job).expect("factors");
        assert_eq!(w.shape(), (14, 3));
        assert_eq!(h.shape(), (3, 10));
        assert!(w.as_slice().iter().all(|&x| x >= 0.0), "W nonnegative");

        let report = client.tenant_stats("acme").expect("stats");
        assert_eq!(report.jobs_finished, 1);
        assert_eq!(report.steps_completed, 5);

        client.shutdown().expect("shutdown");
        let stats = core.join().expect("core thread");
        assert!(stats.requests >= 4);
        assert_eq!(stats.jobs_finished, 1);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn factors_of_a_served_job_match_a_local_run_bitwise() {
        let (listener, connector) = channel_listener();
        let server = Server::new(ServerConfig::default());
        let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));

        let s = spec(4, 77);
        let mut client = Client::new(Box::new(connector.connect().expect("dial")));
        let job = client.submit("acme", &s).expect("submit");
        client.wait_finished("acme", job, 2000).expect("finishes");
        let (w_served, h_served) = client.factors("acme", job).expect("factors");
        client.shutdown().expect("shutdown");
        core.join().expect("core thread");

        let mut local =
            crate::registry::build_model(&s, &mut Default::default()).expect("local build");
        local.step_up_to(s.max_iters);
        let (w_local, h_local) = local.factors();
        assert_eq!(w_served.as_slice(), w_local.as_slice(), "W bit-identical");
        assert_eq!(h_served.as_slice(), h_local.as_slice(), "H bit-identical");
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_the_connection_survives() {
        let (listener, connector) = channel_listener();
        let server = Server::new(ServerConfig::default());
        let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));

        let mut raw = connector.connect().expect("dial");
        use crate::transport::Transport as _;
        raw.send_frame(&[0xFF, 1, 2, 3]).expect("send junk");
        let resp = Response::decode(&raw.recv_frame().expect("reply")).expect("decodes");
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: crate::error::ErrorCode::BadRequest,
                    ..
                }
            ),
            "{resp:?}"
        );
        // Same connection still works for a valid request afterwards.
        raw.send_frame(
            &Request::TenantStats {
                tenant: "nobody".into(),
            }
            .encode(),
        )
        .expect("send valid");
        let resp = Response::decode(&raw.recv_frame().expect("reply")).expect("decodes");
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: crate::error::ErrorCode::UnknownTenant,
                    ..
                }
            ),
            "{resp:?}"
        );
        raw.send_frame(&Request::Shutdown.encode()).expect("send");
        raw.recv_frame().expect("shutting down ack");
        core.join().expect("core thread");
    }

    #[test]
    fn shutdown_handle_stops_an_idle_server() {
        let (listener, _connector) = channel_listener();
        let server = Server::new(ServerConfig::default());
        let handle = server.shutdown_handle();
        let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));
        std::thread::sleep(Duration::from_millis(20));
        handle.shutdown();
        let stats = core.join().expect("core thread");
        assert_eq!(stats.requests, 0);
    }
}
