//! `nmf_serve` — a multi-tenant model-serving layer over the `hpc_nmf`
//! session API.
//!
//! One server process multiplexes many tenants' NMF jobs onto one
//! machine:
//!
//! * a [`Registry`] of tenant sessions, each job wrapping a
//!   [`Model`](hpc_nmf::Model) handle (or a spec deferred until a
//!   concurrency slot frees up);
//! * **admission control** with per-tenant [`TenantQuota`]s — concurrent
//!   jobs, queue depth, resident factor bytes, and a per-quantum step
//!   budget — rejecting or queueing with typed [`ServeError`]s;
//! * a **fair round-robin [`Scheduler`]** granting each runnable job
//!   batches of engine steps through `Model::step_up_to`, so no tenant
//!   monopolizes the process no matter how many jobs it submits;
//! * a length-prefixed **framed protocol**
//!   (submit / status / factors / cancel / checkpoint / stats /
//!   shutdown / resume) over an object-safe [`Transport`] — in-process
//!   channels for embedding, Unix sockets for a separate client
//!   process, TCP (loopback-only by default) for remote clients;
//! * **elastic resume**: `Request::Resume` admits a job that continues
//!   from a server-side checkpoint, regridding the stored factors onto
//!   whatever rank count / scheme this server's policy allows (see
//!   `docs/elasticity.md`).
//!
//! ```no_run
//! use nmf_serve::prelude::*;
//! # use hpc_nmf::harness::Algo;
//! # use nmf_nls::SolverKind;
//!
//! let (listener, connector) = channel_listener();
//! let server = Server::new(ServerConfig::default());
//! let core = std::thread::spawn(move || server.run(Box::new(listener)));
//!
//! let mut client = Client::new(Box::new(connector.connect()?));
//! let spec = JobSpec {
//!     source: JobSource::Dataset { kind: "dsyn".into(), scale: 1000, seed: 1 },
//!     k: 8, ranks: 2, algo: Algo::Hpc2D, solver: SolverKind::Bpp,
//!     max_iters: 10, seed: 42, tol: None,
//! };
//! let job = client.submit("acme", &spec)?;
//! let status = client.wait_finished("acme", job, 60_000)?;
//! let (w, h) = client.factors("acme", job)?;
//! client.shutdown()?;
//! # let _ = (status, w, h, core);
//! # Ok::<(), nmf_serve::ServeError>(())
//! ```
//!
//! `docs/serving.md` documents the wire format, the scheduler's quantum
//! semantics, the quota model, and the failure taxonomy.

pub mod client;
pub mod error;
pub mod protocol;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod transport;

pub use client::Client;
pub use error::{ErrorCode, ServeError};
pub use protocol::{
    JobPhase, JobSource, JobSpec, JobStatus, Request, Response, TenantReport, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use registry::{Registry, ResumeSpec, TenantQuota};
pub use scheduler::{QuantumReport, Scheduler, SchedulerConfig};
pub use server::{ServeStats, Server, ServerConfig, ShutdownHandle};
pub use transport::{
    channel_listener, channel_pair, ChannelConnector, ChannelListener, ChannelTransport, Listener,
    TcpSocketListener, TcpTransport, Transport, UnixSocketListener, UnixTransport,
};

/// Everything needed to embed or drive a server.
pub mod prelude {
    pub use crate::client::Client;
    pub use crate::error::{ErrorCode, ServeError};
    pub use crate::protocol::{JobPhase, JobSource, JobSpec, JobStatus, TenantReport};
    pub use crate::registry::TenantQuota;
    pub use crate::scheduler::SchedulerConfig;
    pub use crate::server::{ServeStats, Server, ServerConfig};
    pub use crate::transport::{
        channel_listener, ChannelConnector, Listener, TcpSocketListener, TcpTransport, Transport,
        UnixSocketListener, UnixTransport,
    };
}
