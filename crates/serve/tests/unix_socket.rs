//! The full stack over a real Unix socket: one server process-alike
//! (spawned on a thread), several tenants on their own connections,
//! typed quota errors across the wire, and a clean shutdown.

use nmf_serve::prelude::*;
use std::path::PathBuf;

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nmf-serve-{tag}-{}.sock", std::process::id()))
}

fn small_spec(seed: u64) -> JobSpec {
    JobSpec {
        source: JobSource::Dense {
            m: 16,
            n: 10,
            data: (0..16 * 10)
                .map(|i| ((i * 3 + 1) % 9) as f64 + 0.25)
                .collect(),
        },
        k: 3,
        ranks: 1,
        algo: hpc_nmf::harness::Algo::Sequential,
        solver: nmf_nls::SolverKind::Bpp,
        max_iters: 5,
        seed,
        tol: None,
    }
}

#[test]
fn three_tenants_over_a_unix_socket_with_clean_shutdown() {
    let path = sock_path("smoke");
    let listener = UnixSocketListener::bind(&path).expect("bind");
    let server = Server::new(ServerConfig::default());
    let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));

    let tenants = ["alpha", "beta", "gamma"];
    let handles: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let path = path.clone();
            let tenant = tenant.to_string();
            std::thread::spawn(move || {
                let mut client =
                    Client::new(Box::new(UnixTransport::connect(&path).expect("connect")));
                let spec = small_spec(i as u64 + 1);
                let job = client.submit(&tenant, &spec).expect("submit");
                let st = client.wait_finished(&tenant, job, 10_000).expect("wait");
                assert_eq!(st.phase, JobPhase::Finished, "{tenant}: {st:?}");
                assert_eq!(st.iterations, 5);
                let (w, h) = client.factors(&tenant, job).expect("factors");
                assert_eq!(w.shape(), (16, 3));
                assert_eq!(h.shape(), (3, 10));
                let report = client.tenant_stats(&tenant).expect("stats");
                assert_eq!(report.jobs_finished, 1);
                // Release and confirm the bytes come back.
                client.cancel(&tenant, job).expect("release");
                let report = client.tenant_stats(&tenant).expect("stats");
                assert_eq!(report.resident_bytes, 0);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("tenant thread");
    }

    let mut client = Client::new(Box::new(UnixTransport::connect(&path).expect("connect")));
    client.shutdown().expect("shutdown");
    let stats = core.join().expect("core thread");
    assert_eq!(stats.connections, 4, "3 tenants + the shutdown client");
    assert_eq!(stats.jobs_finished, 3);
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn quota_errors_cross_the_wire_typed() {
    let path = sock_path("quota");
    let listener = UnixSocketListener::bind(&path).expect("bind");
    let mut server = Server::new(ServerConfig {
        default_quota: TenantQuota {
            max_concurrent_jobs: 1,
            max_queued_jobs: 0,
            ..TenantQuota::default()
        },
        ..ServerConfig::default()
    });
    // One tenant gets a byte quota too small for any job.
    server.set_quota(
        "starved",
        TenantQuota {
            max_resident_bytes: 16,
            ..TenantQuota::default()
        },
    );
    let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));
    let mut client = Client::new(Box::new(UnixTransport::connect(&path).expect("connect")));

    // Job-count quota: second concurrent submit is refused, typed. The
    // first job must still be occupying its slot when the second submit
    // lands, so give it far more iterations than the gap allows.
    let mut long = small_spec(1);
    long.max_iters = 1_000_000;
    client.submit("acme", &long).expect("first fits");
    let err = client.submit("acme", &small_spec(2)).expect_err("quota");
    assert_eq!(err.code(), ErrorCode::QuotaJobs);
    assert!(err.is_quota());

    // Byte quota, different tenant, different code.
    let err = client.submit("starved", &small_spec(3)).expect_err("bytes");
    assert_eq!(err.code(), ErrorCode::QuotaBytes);

    // Unknown names are typed too.
    let err = client.status("ghost", 1).expect_err("unknown tenant");
    assert_eq!(err.code(), ErrorCode::UnknownTenant);
    let err = client.status("acme", 999).expect_err("unknown job");
    assert_eq!(err.code(), ErrorCode::UnknownJob);

    client.shutdown().expect("shutdown");
    core.join().expect("core thread");
}

#[test]
fn checkpoint_written_by_the_server_is_inspectable() {
    let path = sock_path("ckpt");
    let listener = UnixSocketListener::bind(&path).expect("bind");
    let server = Server::new(ServerConfig::default());
    let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));
    let mut client = Client::new(Box::new(UnixTransport::connect(&path).expect("connect")));

    let job = client.submit("acme", &small_spec(9)).expect("submit");
    client.wait_finished("acme", job, 10_000).expect("finishes");
    let ckpt = std::env::temp_dir().join(format!("nmf-serve-ckpt-{}.ckpt", std::process::id()));
    client
        .checkpoint("acme", job, ckpt.to_str().expect("utf-8 path"))
        .expect("server-side save");

    let summary = hpc_nmf::inspect_checkpoint(&ckpt).expect("inspectable");
    assert_eq!((summary.meta.m, summary.meta.n), (16, 10));
    assert_eq!(summary.meta.config.k, 3);
    assert_eq!(summary.iterations_done, 5);
    assert!(summary.checksum_ok);
    std::fs::remove_file(&ckpt).ok();

    client.shutdown().expect("shutdown");
    core.join().expect("core thread");
}
