//! Elastic resume through the serving stack: a job checkpointed by one
//! server continues under another — possibly with a different rank
//! policy, scheme, or transport — admitted under the tenant's quota
//! like any other submission (`docs/elasticity.md`).

use hpc_nmf::harness::Algo;
use nmf_serve::prelude::*;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nmf-serve-resume-{tag}-{}", std::process::id()))
}

fn dense_source() -> JobSource {
    JobSource::Dense {
        m: 16,
        n: 10,
        data: (0..16 * 10)
            .map(|i| ((i * 3 + 1) % 9) as f64 + 0.25)
            .collect(),
    }
}

fn small_spec(seed: u64, max_iters: usize) -> JobSpec {
    JobSpec {
        source: dense_source(),
        k: 3,
        ranks: 1,
        algo: Algo::Sequential,
        solver: nmf_nls::SolverKind::Bpp,
        max_iters,
        seed,
        tol: None,
    }
}

/// Runs `server` on a thread and hands the caller a connected client.
fn start(config: ServerConfig) -> (Client, std::thread::JoinHandle<ServeStats>) {
    let (listener, connector) = channel_listener();
    let server = Server::new(config);
    let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));
    let client = Client::new(Box::new(connector.connect().expect("connect")));
    (client, core)
}

#[test]
fn checkpointed_job_resumes_on_a_new_scheme_under_a_new_server() {
    let ckpt = tmp("regrid.ckpt");

    // First life: a sequential job runs to its 4-iteration budget and
    // is checkpointed server-side.
    let (mut client, core) = start(ServerConfig::default());
    let job = client.submit("acme", &small_spec(7, 4)).expect("submit");
    let st = client.wait_finished("acme", job, 10_000).expect("wait");
    assert_eq!(st.phase, JobPhase::Finished);
    assert_eq!(st.iterations, 4);
    client
        .checkpoint("acme", job, ckpt.to_str().expect("utf-8"))
        .expect("server-side save");
    client.shutdown().expect("shutdown");
    core.join().expect("core");

    // Second life: a different server admits the checkpoint as a fresh
    // job and continues it on a 2-rank 1D scheme with a raised budget.
    let (mut client, core) = start(ServerConfig::default());
    let (job, queued) = client
        .resume(
            "acme",
            ckpt.to_str().expect("utf-8"),
            &dense_source(),
            Some(2),
            Some(Algo::Hpc1D),
            Some(9),
        )
        .expect("resume admitted");
    assert!(!queued, "an idle server promotes immediately");
    let st = client.wait_finished("acme", job, 10_000).expect("wait");
    assert_eq!(st.phase, JobPhase::Finished, "{st:?}");
    assert_eq!(
        st.iterations, 9,
        "resume continues the iteration count, not restarts it"
    );
    assert_eq!(st.max_iters, 9);
    assert!(st.objective.is_finite());
    let (w, h) = client.factors("acme", job).expect("factors");
    assert_eq!(w.shape(), (16, 3));
    assert_eq!(h.shape(), (3, 10));

    client.shutdown().expect("shutdown");
    let stats = core.join().expect("core");
    assert_eq!(stats.jobs_finished, 1);
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn resume_rank_requests_are_clamped_to_server_policy() {
    let ckpt = tmp("clamp.ckpt");
    let (mut client, core) = start(ServerConfig::default());
    let job = client.submit("acme", &small_spec(5, 3)).expect("submit");
    client.wait_finished("acme", job, 10_000).expect("wait");
    client
        .checkpoint("acme", job, ckpt.to_str().expect("utf-8"))
        .expect("save");
    client.shutdown().expect("shutdown");
    core.join().expect("core");

    // 64 ranks cannot fit a 16x10 problem — if the request were taken
    // literally the build would fail. The server clamps to its own
    // max-ranks policy (2 here), so the job finishes.
    let (mut client, core) = start(ServerConfig {
        max_ranks_per_job: 2,
        ..ServerConfig::default()
    });
    let (job, _) = client
        .resume(
            "acme",
            ckpt.to_str().expect("utf-8"),
            &dense_source(),
            Some(64),
            Some(Algo::Hpc1D),
            Some(6),
        )
        .expect("clamped, not rejected");
    let st = client.wait_finished("acme", job, 10_000).expect("wait");
    assert_eq!(st.phase, JobPhase::Finished, "{st:?}");
    assert_eq!(st.iterations, 6);

    client.shutdown().expect("shutdown");
    core.join().expect("core");
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn resume_rejections_are_typed_at_admission() {
    let ckpt = tmp("reject.ckpt");
    let (mut client, core) = start(ServerConfig::default());
    let job = client.submit("acme", &small_spec(3, 3)).expect("submit");
    client.wait_finished("acme", job, 10_000).expect("wait");
    client
        .checkpoint("acme", job, ckpt.to_str().expect("utf-8"))
        .expect("save");

    // A source whose shape contradicts the checkpoint is refused at
    // admission — no queue slot or promotion is burned on it.
    let wrong = JobSource::Dense {
        m: 12,
        n: 10,
        data: vec![1.0; 120],
    };
    let err = client
        .resume(
            "acme",
            ckpt.to_str().expect("utf-8"),
            &wrong,
            None,
            None,
            None,
        )
        .expect_err("shape mismatch");
    assert_eq!(err.code(), ErrorCode::BuildFailed);

    // A checkpoint path that does not exist is a typed failure too.
    let err = client
        .resume(
            "acme",
            "/nonexistent/never.ckpt",
            &dense_source(),
            None,
            None,
            None,
        )
        .expect_err("missing file");
    assert_eq!(err.code(), ErrorCode::BuildFailed);

    client.shutdown().expect("shutdown");
    core.join().expect("core");
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn file_sourced_job_submits_and_resumes_from_nmfs() {
    // Materialize a sparse dataset as an NMFS file: the server opens it
    // mmap-backed at admission (shape peek) and shares it between the
    // original run and the resumed one via the dataset cache.
    let built = nmf_data::DatasetKind::Ssyn.build(2400, 11);
    let nmfs = tmp("input.nmfs");
    nmf_data::write_input_nmfs(&built.input, &nmfs).expect("nmfs writes");
    let (m, n) = built.input.shape();
    let ckpt = tmp("file.ckpt");

    let (mut client, core) = start(ServerConfig::default());
    let spec = JobSpec {
        source: JobSource::File {
            path: nmfs.to_str().expect("utf-8").to_string(),
        },
        k: 3,
        ranks: 2,
        algo: Algo::Hpc1D,
        solver: nmf_nls::SolverKind::Bpp,
        max_iters: 3,
        seed: 11,
        tol: None,
    };
    let job = client.submit("acme", &spec).expect("file submit");
    let st = client.wait_finished("acme", job, 10_000).expect("wait");
    assert_eq!(st.phase, JobPhase::Finished, "{st:?}");
    client
        .checkpoint("acme", job, ckpt.to_str().expect("utf-8"))
        .expect("save");

    // Resume from the same file on a different grid, same server.
    let (job2, _) = client
        .resume(
            "acme",
            ckpt.to_str().expect("utf-8"),
            &spec.source,
            Some(4),
            Some(Algo::Hpc2D),
            Some(5),
        )
        .expect("file resume");
    let st = client.wait_finished("acme", job2, 10_000).expect("wait");
    assert_eq!(st.phase, JobPhase::Finished, "{st:?}");
    assert_eq!(st.iterations, 5);
    let (w, h) = client.factors("acme", job2).expect("factors");
    assert_eq!(w.shape(), (m, 3));
    assert_eq!(h.shape(), (3, n));

    client.shutdown().expect("shutdown");
    core.join().expect("core");
    std::fs::remove_file(&nmfs).ok();
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn full_resume_cycle_over_tcp_loopback() {
    let ckpt = tmp("tcp.ckpt");

    // First server on an OS-assigned loopback port.
    let listener = TcpSocketListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr();
    let server = Server::new(ServerConfig::default());
    let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));
    let mut client = Client::new(Box::new(
        TcpTransport::connect(addr.to_string()).expect("connect"),
    ));
    let job = client.submit("acme", &small_spec(13, 4)).expect("submit");
    let st = client.wait_finished("acme", job, 10_000).expect("wait");
    assert_eq!(st.phase, JobPhase::Finished);
    client
        .checkpoint("acme", job, ckpt.to_str().expect("utf-8"))
        .expect("save");
    client.shutdown().expect("shutdown");
    core.join().expect("core");

    // Second server, new port, resumed over TCP.
    let listener = TcpSocketListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr();
    let server = Server::new(ServerConfig::default());
    let core = std::thread::spawn(move || server.run(Box::new(listener)).expect("serve"));
    let mut client = Client::new(Box::new(
        TcpTransport::connect(addr.to_string()).expect("connect"),
    ));
    let (job, _) = client
        .resume(
            "acme",
            ckpt.to_str().expect("utf-8"),
            &dense_source(),
            Some(2),
            Some(Algo::Hpc1D),
            Some(7),
        )
        .expect("resume over tcp");
    let st = client.wait_finished("acme", job, 10_000).expect("wait");
    assert_eq!(st.phase, JobPhase::Finished, "{st:?}");
    assert_eq!(st.iterations, 7);

    client.shutdown().expect("shutdown");
    core.join().expect("core");
    std::fs::remove_file(&ckpt).ok();
}
