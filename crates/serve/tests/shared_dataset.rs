//! Dataset sharing across tenants: two tenants factorizing one dataset
//! hold one `SharedInput` between them — the shared bytes are charged
//! once server-wide, never doubled per tenant — while the per-tenant
//! factor-byte quota keeps rejecting exactly as before.

use hpc_nmf::harness::Algo;
use nmf_nls::SolverKind;
use nmf_serve::{
    JobSource, JobSpec, Registry, Scheduler, SchedulerConfig, ServeError, TenantQuota,
};

/// An SSYN job small enough to step quickly (scale 2400 → 72×48).
fn dataset_spec(seed: u64, iters: usize) -> JobSpec {
    JobSpec {
        source: JobSource::Dataset {
            kind: "ssyn".into(),
            scale: 2400,
            seed,
        },
        k: 3,
        ranks: 1,
        algo: Algo::Sequential,
        solver: SolverKind::Bpp,
        max_iters: iters,
        seed,
        tol: None,
    }
}

#[test]
fn two_tenants_share_one_dataset_without_doubling_bytes() {
    let mut reg = Registry::new(TenantQuota::default(), 4);
    reg.submit("alice", dataset_spec(7, 50)).expect("admit");
    reg.submit("bob", dataset_spec(7, 50)).expect("admit");

    // Promotion (inside the quantum) builds both models; the second
    // build must hit the cache, not add a second copy.
    let mut sched = Scheduler::new(SchedulerConfig { grant_steps: 2 });
    sched.run_quantum(&mut reg);

    assert_eq!(reg.cached_datasets(), 1, "one dataset identity, one entry");
    let shared = reg.shared_input_bytes();
    assert!(shared > 0, "a cached sparse dataset holds resident bytes");

    let alice = reg.tenant_report("alice").expect("report");
    let bob = reg.tenant_report("bob").expect("report");
    assert_eq!(alice.shared_input_bytes, shared as u64);
    assert_eq!(
        alice.shared_input_bytes, bob.shared_input_bytes,
        "both tenants see the same deduplicated figure"
    );

    // A different seed is a different dataset identity: now (and only
    // now) the cache grows.
    reg.submit("carol", dataset_spec(8, 50)).expect("admit");
    sched.run_quantum(&mut reg);
    assert_eq!(reg.cached_datasets(), 2);
    assert!(reg.shared_input_bytes() > shared);
}

#[test]
fn factor_byte_quota_still_rejects_regardless_of_sharing() {
    // Quota sized for exactly one k=3 job over the 72×48 dataset:
    // factor bytes are 8·(m+n)·k per job; the shared input bytes are
    // charged server-wide and must NOT count against this budget.
    let one_job = 8 * (72 + 48) * 3;
    let quota = TenantQuota {
        max_resident_bytes: one_job + one_job / 2,
        ..TenantQuota::default()
    };
    let mut reg = Registry::new(quota, 4);
    reg.submit("dave", dataset_spec(7, 50)).expect("first fits");
    let err = reg
        .submit("dave", dataset_spec(7, 50))
        .expect_err("second job must breach the factor-byte quota");
    assert!(
        matches!(err, ServeError::QuotaBytes { .. }),
        "expected QuotaBytes, got {err:?}"
    );

    // The same second job is fine for another tenant: the quota is
    // per-tenant factor bytes, and the dataset they share is free.
    let mut sched = Scheduler::new(SchedulerConfig { grant_steps: 1 });
    sched.run_quantum(&mut reg);
    reg.submit("erin", dataset_spec(7, 50)).expect("admit");
    sched.run_quantum(&mut reg);
    assert_eq!(reg.cached_datasets(), 1);
}
