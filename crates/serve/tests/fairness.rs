//! Fairness and quota enforcement of the serving scheduler, measured at
//! the registry level where step accounting is exact and deterministic.

use hpc_nmf::harness::Algo;
use nmf_nls::SolverKind;
use nmf_serve::{
    JobPhase, JobSource, JobSpec, Registry, Scheduler, SchedulerConfig, ServeError, TenantQuota,
};

fn spec(iters: usize, seed: u64) -> JobSpec {
    JobSpec {
        source: JobSource::Dense {
            m: 18,
            n: 12,
            data: (0..18 * 12)
                .map(|i| ((i * 7 + 3) % 11) as f64 + 0.5)
                .collect(),
        },
        k: 3,
        ranks: 1,
        algo: Algo::Sequential,
        solver: SolverKind::Bpp,
        max_iters: iters,
        seed,
        tol: None,
    }
}

/// Eight tenants with wildly different offered load — one job each for
/// seven of them, eight jobs for the hog — all saturating. Under the
/// per-tenant step budget, every tenant's share of completed steps must
/// stay within 2× of fair share (1/8) for the whole window.
#[test]
fn saturated_tenants_get_within_2x_of_fair_share() {
    let quota = TenantQuota {
        max_concurrent_jobs: 8,
        max_queued_jobs: 16,
        steps_per_quantum: 6,
        ..TenantQuota::default()
    };
    let mut reg = Registry::new(quota, 4);
    let tenants: Vec<String> = (0..8).map(|i| format!("tenant-{i}")).collect();
    for (i, t) in tenants.iter().enumerate() {
        // Long enough that nobody drains their work during the window.
        let jobs = if i == 0 { 8 } else { 1 };
        for j in 0..jobs {
            reg.submit(t, spec(10_000, (i * 10 + j) as u64))
                .expect("admit");
        }
    }

    let mut sched = Scheduler::new(SchedulerConfig { grant_steps: 2 });
    let quanta = 12;
    for _ in 0..quanta {
        sched.run_quantum(&mut reg);
    }

    let steps = reg.steps_by_tenant();
    let total: u64 = steps.values().sum();
    assert!(total > 0);
    let fair = total as f64 / tenants.len() as f64;
    for (tenant, &s) in &steps {
        let share = s as f64;
        assert!(
            share >= fair / 2.0 && share <= fair * 2.0,
            "{tenant} got {share} steps; fair share is {fair} (all: {steps:?})"
        );
    }
    // With everyone saturated the budget makes it exactly equal, not
    // just within 2x: the hog's 8 jobs buy it nothing.
    let max = steps.values().max().copied().unwrap();
    let min = steps.values().min().copied().unwrap();
    assert_eq!(max, min, "equal budgets, equal steps: {steps:?}");
    assert_eq!(max, (quanta * quota.steps_per_quantum) as u64);
}

/// A tenant with a bigger configured budget gets proportionally more —
/// the quota is the policy knob, not job count.
#[test]
fn step_budget_is_the_knob_that_buys_throughput() {
    let mut reg = Registry::new(TenantQuota::default(), 4);
    reg.set_quota(
        "gold",
        TenantQuota {
            steps_per_quantum: 12,
            ..TenantQuota::default()
        },
    );
    reg.set_quota(
        "bronze",
        TenantQuota {
            steps_per_quantum: 3,
            ..TenantQuota::default()
        },
    );
    reg.submit("gold", spec(10_000, 1)).expect("admit");
    reg.submit("bronze", spec(10_000, 2)).expect("admit");
    let mut sched = Scheduler::new(SchedulerConfig { grant_steps: 4 });
    for _ in 0..6 {
        sched.run_quantum(&mut reg);
    }
    let steps = reg.steps_by_tenant();
    assert_eq!(steps["gold"], 4 * steps["bronze"], "{steps:?}");
}

/// Quota exhaustion end to end: concurrency, queue depth, and bytes all
/// reject with their own typed error, and capacity returns after cancel.
#[test]
fn quota_exhaustion_rejects_typed_and_recovers() {
    let tiny = spec(10_000, 5);
    let job_bytes = tiny.projected_factor_bytes().expect("dense");
    let quota = TenantQuota {
        max_concurrent_jobs: 1,
        max_queued_jobs: 1,
        max_resident_bytes: job_bytes * 2, // exactly two jobs' worth
        steps_per_quantum: 4,
    };
    let mut reg = Registry::new(quota, 4);
    let (first, q1) = reg.submit("acme", tiny.clone()).expect("slot");
    let (_second, q2) = reg.submit("acme", tiny.clone()).expect("queue");
    assert!(!q1 && q2);

    // Third submit: the job-count quota fires (bytes would also be over,
    // but admission checks bytes first — either way it must NOT enter).
    let err = reg.submit("acme", tiny.clone()).expect_err("rejected");
    assert!(
        matches!(
            err,
            ServeError::QuotaBytes { .. } | ServeError::QuotaJobs { .. }
        ),
        "{err}"
    );
    assert!(err.is_quota());

    // A second tenant is unaffected by the first one's exhaustion.
    reg.submit("zen", tiny.clone())
        .expect("other tenant admits");

    // Run a few quanta so the first job builds and holds real bytes.
    let mut sched = Scheduler::new(SchedulerConfig { grant_steps: 2 });
    sched.run_quantum(&mut reg);
    assert_eq!(
        reg.status("acme", first).expect("status").phase,
        JobPhase::Running
    );

    // Cancelling the running job frees both the slot and the bytes.
    reg.cancel("acme", first).expect("cancel");
    reg.submit("acme", tiny).expect("capacity recovered");
}

/// The byte quota alone rejects an oversized single job even when every
/// slot is free.
#[test]
fn byte_quota_rejects_an_oversized_job_outright() {
    let quota = TenantQuota {
        max_resident_bytes: 512, // below the 8*(18+12)*3 = 720 this job needs
        ..TenantQuota::default()
    };
    let mut reg = Registry::new(quota, 4);
    let err = reg.submit("acme", spec(100, 1)).expect_err("too big");
    match err {
        ServeError::QuotaBytes {
            requested, limit, ..
        } => {
            assert_eq!(requested, 8 * (18 + 12) * 3);
            assert_eq!(limit, 512);
        }
        other => panic!("expected QuotaBytes, got {other}"),
    }
}
