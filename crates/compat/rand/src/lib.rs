//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the small slice of the `rand 0.8` API it actually uses: an explicitly
//! seeded [`rngs::StdRng`], [`Rng::gen`] for `f64`/integers/`bool`, and
//! [`Rng::gen_range`] over half-open ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — high-quality, fast, and
//! deterministic across platforms, which is all the reproduction needs
//! (the paper's protocol only requires that every driver consumes the
//! *same* seeded stream, not any particular stream).
//!
//! Not a drop-in replacement for the real crate: distributions beyond
//! uniform, `thread_rng`, and the `SeedableRng::from_seed` byte-array
//! path are intentionally absent.

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait, mirroring the `rand::Rng` methods in
/// use: `gen`, `gen_range`, and `gen_bool`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A random value of type `T` (uniform over the type's standard
    /// domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform draw from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a standard uniform distribution (the subset of
/// `rand::distributions::Standard` in use).
pub trait Standard {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits into [0, 1), the standard double construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (the subset of
/// `rand::distributions::uniform::SampleRange` in use).
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = f64::from_rng(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span ≪ 2^64 in all
                // workspace uses, so a simple rejection loop terminates
                // almost immediately.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let r = rng.next_u64();
                    if r < zone {
                        return self.start + (r % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 — the
    /// stand-in for `rand::rngs::StdRng`. Deterministic for a given seed
    /// on every platform.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
        assert!(
            seen.iter().all(|&s| s),
            "all integers in range should appear"
        );
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} far from 0.5");
    }
}
