//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest 1.x surface this workspace's
//! property tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` inner attribute), range strategies over
//! integers and floats, [`collection::vec`] with fixed or ranged sizes,
//! and the `prop_assert!` / `prop_assert_eq!` assertions.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its case index and seed so
//!   it can be replayed, but is not minimized;
//! * **Deterministic generation** — cases are derived from a fixed seed
//!   (per test name and case index), so runs are reproducible without a
//!   persistence file. Set `PROPTEST_CASES` to override the case count
//!   globally.

pub use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Configuration for a `proptest!` block (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Case count, honoring the `PROPTEST_CASES` environment override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Deterministic per-(test, case) generator.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of random values (no shrinking).
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// `Just`-style constant strategy (occasionally handy in shims).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Acceptable size arguments for [`fn@vec`]: a fixed length or a range.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    /// Strategy for vectors of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property test; failure panics with the
/// formatted message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// The `proptest!` block macro: expands each contained
/// `#[test] fn name(arg in strategy, ...) { body }` into a plain `#[test]`
/// that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = $cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            for __case in 0..__cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )*
                let __run = || $body;
                if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (replay: deterministic by index)",
                        __case + 1, __cases, stringify!($name),
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -2.5f64..2.5, c in 0u32..7) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            prop_assert!(c < 7);
        }

        #[test]
        fn vec_sizes_respected(fixed in vec(0usize..5, 6), ranged in vec(0.0f64..1.0, 2..5)) {
            prop_assert_eq!(fixed.len(), 6);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 5);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let s = 0usize..1000;
        let a: Vec<usize> = (0..10)
            .map(|c| s.sample(&mut crate::test_rng("x", c)))
            .collect();
        let b: Vec<usize> = (0..10)
            .map(|c| s.sample(&mut crate::test_rng("x", c)))
            .collect();
        assert_eq!(a, b);
    }
}
