//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel::unbounded`] is used by this workspace (the virtual-MPI
//! transport mesh). Since Rust 1.67 `std::sync::mpsc` *is* the crossbeam
//! channel implementation upstreamed into the standard library, so
//! delegating to it preserves both semantics and performance; this module
//! merely restores crossbeam's type names and its `Sender: Sync` clone
//! semantics.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded FIFO channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded FIFO channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving half has disconnected.
    pub type SendError<T> = mpsc::SendError<T>;

    /// Error returned when the sending half has disconnected.
    pub type RecvError = mpsc::RecvError;

    /// Error returned by [`Receiver::try_recv`].
    pub type TryRecvError = mpsc::TryRecvError;

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; never blocks (the channel is unbounded).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking until one arrives or every
        /// sender has disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn cross_thread_send() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || tx.send(42u64).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn disconnect_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
