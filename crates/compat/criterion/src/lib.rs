//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness exposing the API surface the
//! workspace's benches use: `Criterion`, benchmark groups with
//! `sample_size` / `warm_up_time` / `measurement_time` / `throughput`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros (benches are built
//! with `harness = false`, exactly as with real criterion).
//!
//! Methodology: each benchmark is warmed up for the configured warm-up
//! time, then timed in batches until the measurement time elapses; the
//! reported statistic is the median of per-batch mean iteration times,
//! which is robust to scheduler noise. No plotting, no statistical
//! regression — numbers print to stdout as `group/id  <time>/iter`, and
//! when the `CRITERION_JSON` environment variable names a file, one JSON
//! line per benchmark (`{"group","id","ns_per_iter","iters","throughput"}`)
//! is appended so scripts can collect machine-readable baselines.

use std::fmt::Write as _;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Label for one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_id.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (recorded in the JSON line; not used to scale
/// the printed time).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        // Route through the group path so configuration and reporting
        // stay in one place; the group prefix is suppressed for bare
        // bench_function calls by using the id directly.
        g.name = String::new();
        g.run_one(id.to_string(), &mut f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run_one(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let full = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: self.sample_size,
            results: Vec::new(),
            total_iters: 0,
        };
        f(&mut b);
        let ns = b.median_ns();
        println!(
            "{full:<50} {:>14}/iter  ({} iters)",
            format_ns(ns),
            b.total_iters
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                let tp = match self.throughput {
                    Some(Throughput::Elements(e)) => format!(",\"elements\":{e}"),
                    Some(Throughput::Bytes(by)) => format!(",\"bytes\":{by}"),
                    None => String::new(),
                };
                let line = format!(
                    "{{\"benchmark\":\"{full}\",\"ns_per_iter\":{ns:.1},\"iters\":{}{tp}}}\n",
                    b.total_iters
                );
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = file.write_all(line.as_bytes());
                }
            }
        }
    }
}

/// Per-benchmark timing driver (`b.iter(...)`).
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    results: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly; the routine's return value is passed
    /// through [`black_box`] so its computation cannot be elided.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also calibrating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size batches so `samples` batches fill the measurement time.
        let per_batch = self.measurement.as_secs_f64() / self.samples as f64;
        let batch_iters = ((per_batch / per_iter.max(1e-12)) as u64).max(1);

        let start = Instant::now();
        while start.elapsed() < self.measurement {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.results.push(dt * 1e9 / batch_iters as f64);
            self.total_iters += batch_iters;
        }
    }

    fn median_ns(&self) -> f64 {
        if self.results.is_empty() {
            return f64::NAN;
        }
        let mut v = self.results.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares the benchmark entry list, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` and test-harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "512x512").to_string(), "f/512x512");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
