//! Offline stand-in for the `rayon` crate.
//!
//! Implements genuine data parallelism with `std::thread::scope` behind
//! the slice of rayon's API this workspace uses:
//!
//! * `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`
//! * `(0..n).into_par_iter().for_each(f)`
//! * `slice.par_chunks_mut(c).enumerate().for_each(f)`
//! * [`current_num_threads`]
//!
//! Instead of a work-stealing pool, each call splits its index range into
//! contiguous chunks, one per available core, and runs them on scoped
//! threads. For the regular, uniform-cost loops in this workspace
//! (row-parallel GEMM/SpMM) static chunking is within noise of work
//! stealing, and it keeps the stand-in dependency-free. Small inputs
//! (fewer items than threads) run inline to avoid spawn overhead.

use std::num::NonZeroUsize;

/// Number of worker threads parallel calls will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Items-per-thread threshold below which parallel calls run inline.
const MIN_ITEMS_PER_THREAD: usize = 1;

fn thread_count(items: usize) -> usize {
    current_num_threads()
        .min(items / MIN_ITEMS_PER_THREAD.max(1))
        .max(1)
}

/// Runs `f(start..end)` for a partition of `0..n` into `t` near-equal
/// contiguous chunks, one scoped thread per chunk.
fn parallel_ranges<F: Fn(usize, usize) + Sync>(n: usize, f: F) {
    let t = thread_count(n);
    if t <= 1 || n <= 1 {
        f(0, n);
        return;
    }
    let base = n / t;
    let rem = n % t;
    std::thread::scope(|scope| {
        let f = &f;
        let mut start = 0;
        for i in 0..t {
            let len = base + usize::from(i < rem);
            let end = start + len;
            scope.spawn(move || f(start, end));
            start = end;
        }
    });
}

pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Conversion into a parallel iterator (ranges of `usize` only).
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    start: usize,
    end: usize,
}

/// Operations shared by the parallel iterators here.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Applies `f` to every item in parallel.
    fn for_each<G: Fn(Self::Item) + Sync>(self, f: G);

    /// Lazily maps items through `f`.
    fn map<T: Send, G: Fn(Self::Item) -> T + Sync>(self, f: G) -> Mapped<Self, G> {
        Mapped { inner: self, f }
    }

    /// Collects into a container (only `Vec<Item>` is supported, in
    /// index order).
    fn collect<C: FromParallel<Self::Item>>(self) -> C
    where
        Self: IndexedCollect<Self::Item>,
    {
        C::from_indexed(self)
    }
}

/// Marker for iterators whose items can be collected positionally.
#[allow(clippy::len_without_is_empty)]
pub trait IndexedCollect<T: Send>: Sized {
    fn len(&self) -> usize;
    /// Writes item `i` through `out` for every `i` in parallel.
    fn fill(self, out: &mut [Option<T>]);
}

/// Containers collectible from an indexed parallel iterator.
pub trait FromParallel<T: Send> {
    fn from_indexed<I: IndexedCollect<T>>(iter: I) -> Self;
}

impl<T: Send> FromParallel<T> for Vec<T> {
    fn from_indexed<I: IndexedCollect<T>>(iter: I) -> Vec<T> {
        let n = iter.len();
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        iter.fill(&mut slots);
        slots
            .into_iter()
            .map(|s| s.expect("parallel collect slot unfilled"))
            .collect()
    }
}

impl ParallelIterator for ParRange {
    type Item = usize;
    fn for_each<G: Fn(usize) + Sync>(self, f: G) {
        let s = self.start;
        parallel_ranges(self.end - self.start, |lo, hi| {
            for i in lo..hi {
                f(s + i);
            }
        });
    }
}

impl IndexedCollect<usize> for ParRange {
    fn len(&self) -> usize {
        self.end - self.start
    }
    fn fill(self, out: &mut [Option<usize>]) {
        let s = self.start;
        let out_ptr = SendPtr(out.as_mut_ptr());
        parallel_ranges(self.end - self.start, |lo, hi| {
            for i in lo..hi {
                // Disjoint indices per chunk — no two threads touch the
                // same slot.
                unsafe { *out_ptr.at(i) = Some(s + i) };
            }
        });
    }
}

/// A mapped parallel iterator.
pub struct Mapped<I, G> {
    inner: I,
    f: G,
}

impl<I, G, T> ParallelIterator for Mapped<I, G>
where
    I: ParallelIterator,
    G: Fn(I::Item) -> T + Sync,
    T: Send,
{
    type Item = T;
    fn for_each<H: Fn(T) + Sync>(self, h: H) {
        let f = self.f;
        self.inner.for_each(move |x| h(f(x)));
    }
}

impl<I, G, T> IndexedCollect<T> for Mapped<I, G>
where
    I: IndexedCollect<I::Item> + ParallelIterator,
    G: Fn(I::Item) -> T + Sync,
    T: Send,
{
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn fill(self, out: &mut [Option<T>]) {
        // Fill the inner items, then map in parallel by index.
        let f = &self.f;
        let n = self.inner.len();
        let mut inner_slots: Vec<Option<I::Item>> = Vec::with_capacity(n);
        inner_slots.resize_with(n, || None);
        self.inner.fill(&mut inner_slots);
        let in_ptr = SendPtr(inner_slots.as_mut_ptr());
        let out_ptr = SendPtr(out.as_mut_ptr());
        parallel_ranges(n, |lo, hi| {
            for i in lo..hi {
                unsafe {
                    let item = (*in_ptr.at(i)).take().expect("inner slot unfilled");
                    *out_ptr.at(i) = Some(f(item));
                }
            }
        });
    }
}

/// Indexed variants (`enumerate`).
pub trait IndexedParallelIterator: ParallelIterator {
    fn enumerate(self) -> Enumerated<Self> {
        Enumerated { inner: self }
    }
}

/// An enumerated parallel iterator.
pub struct Enumerated<I> {
    inner: I,
}

/// Mutable parallel chunking of slices (`par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable, non-overlapping chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn for_each<G: Fn(&'a mut [T]) + Sync>(self, f: G) {
        let mut chunks: Vec<&'a mut [T]> = self.slice.chunks_mut(self.chunk_size).collect();
        let n = chunks.len();
        let ptr = SendPtr(chunks.as_mut_ptr());
        parallel_ranges(n, |lo, hi| {
            for i in lo..hi {
                let chunk = unsafe { std::ptr::read(ptr.at(i)) };
                f(chunk);
            }
        });
        // The chunk references were duplicated out by `ptr::read`, but
        // `&mut [T]` has no drop glue, so dropping the Vec normally is
        // sound and frees its buffer.
    }
}

impl<T: Send> IndexedParallelIterator for ParChunksMut<'_, T> {}
impl IndexedParallelIterator for ParRange {}

impl<'a, T: Send> ParallelIterator for Enumerated<ParChunksMut<'a, T>> {
    type Item = (usize, &'a mut [T]);
    fn for_each<G: Fn((usize, &'a mut [T])) + Sync>(self, f: G) {
        let inner = self.inner;
        let mut chunks: Vec<&'a mut [T]> = inner.slice.chunks_mut(inner.chunk_size).collect();
        let n = chunks.len();
        let ptr = SendPtr(chunks.as_mut_ptr());
        parallel_ranges(n, |lo, hi| {
            for i in lo..hi {
                let chunk = unsafe { std::ptr::read(ptr.at(i)) };
                f((i, chunk));
            }
        });
        // See ParallelIterator::for_each above: plain drop is sound.
    }
}

impl ParallelIterator for Enumerated<ParRange> {
    type Item = (usize, usize);
    fn for_each<G: Fn((usize, usize)) + Sync>(self, f: G) {
        let s = self.inner.start;
        parallel_ranges(self.inner.end - self.inner.start, |lo, hi| {
            for i in lo..hi {
                f((i, s + i));
            }
        });
    }
}

/// Raw pointer wrapper asserting cross-thread use is safe because every
/// thread touches a disjoint index set.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to element `i`. Accessed through a method (not the field)
    /// so closures capture the `Sync` wrapper, not the raw pointer.
    fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

/// Runs two closures, potentially in parallel, returning both results
/// (rayon's `join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_for_each_visits_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
            for x in chunk {
                *x = ci;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 10);
        }
    }

    #[test]
    fn empty_range_is_fine() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".len());
        assert_eq!((a, b), (2, 1));
    }
}
