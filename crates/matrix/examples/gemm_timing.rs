//! Quick wall-clock probe of the GEMM kernel paths (the Criterion suite
//! in `crates/bench` is the rigorous harness; this is a fast smoke
//! check: `cargo run --release -p nmf_matrix --example gemm_timing`).

use nmf_matrix::rng::Fill;
use nmf_matrix::{
    matmul_blocked_into, matmul_ikj_into, matmul_into, matmul_packed_into, matmul_ta_blocked_into,
    matmul_ta_into, Mat, PackedPanels,
};
use std::time::Instant;

fn time_ns(mut f: impl FnMut(), iters: u32) -> f64 {
    // One warmup round, then the median of five timed rounds.
    f();
    let mut rounds = Vec::new();
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        rounds.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    rounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rounds[2]
}

fn main() {
    println!("active kernel: {}", nmf_matrix::simd::active_name());
    for (m, kdim, n, iters) in [
        (512usize, 512usize, 32usize, 40u32),
        (512, 512, 64, 20),
        (2048, 64, 16, 40),
        (4096, 32, 96, 20),
    ] {
        let a = Mat::uniform(m, kdim, 1);
        let b = Mat::uniform(kdim, n, 2);
        let mut c = Mat::zeros(m, n);
        let flops = 2.0 * m as f64 * kdim as f64 * n as f64;

        let ikj = time_ns(|| matmul_ikj_into(&a, &b, &mut c), iters);
        let blocked = time_ns(|| matmul_blocked_into(&a, &b, &mut c), iters);
        let simd = time_ns(|| matmul_into(&a, &b, &mut c), iters);
        let p = PackedPanels::pack(&a);
        let packed = time_ns(|| matmul_packed_into(&p, &b, &mut c), iters);

        println!("\n{m}x{kdim} * {kdim}x{n}  ({:.1} Mflop)", flops / 1e6);
        for (name, ns) in [
            ("ikj (seed)", ikj),
            ("blocked (scalar)", blocked),
            ("simd (pack-per-call)", simd),
            ("simd (prepacked A)", packed),
        ] {
            println!(
                "  {name:22} {:>12.0} ns  {:>6.2} GFLOP/s  {:>5.2}x vs blocked",
                ns,
                flops / ns,
                blocked / ns
            );
        }

        // Transposed-left form at the same shape family: C = Aᵀ·B.
        let at = Mat::uniform(kdim, m, 3);
        let bt = Mat::uniform(kdim, n, 4);
        let mut ct = Mat::zeros(m, n);
        let ta_blocked = time_ns(|| matmul_ta_blocked_into(&at, &bt, &mut ct), iters);
        let ta_simd = time_ns(|| matmul_ta_into(&at, &bt, &mut ct), iters);
        let pt = PackedPanels::pack_transposed(&at);
        let ta_packed = time_ns(|| matmul_packed_into(&pt, &bt, &mut ct), iters);
        for (name, ns) in [
            ("ta blocked (scalar)", ta_blocked),
            ("ta simd (pack/call)", ta_simd),
            ("ta simd (prepacked)", ta_packed),
        ] {
            println!(
                "  {name:22} {:>12.0} ns  {:>6.2} GFLOP/s  {:>5.2}x vs ta-blocked",
                ns,
                flops / ns,
                ta_blocked / ns
            );
        }
    }
}
