//! Dense linear-algebra substrate for the HPC-NMF reproduction.
//!
//! The paper relies on vendor BLAS/LAPACK for its local computations
//! (GEMM, Gram matrices, and the small symmetric positive-definite solves
//! inside the NLS subproblems). This crate provides those routines in pure
//! Rust so the reproduction has no external native dependencies:
//!
//! * [`Mat`] — an owned, row-major, `f64` dense matrix with block extraction
//!   and in-place arithmetic;
//! * [`gemm`] — packed GotoBLAS-style matrix-multiply kernels in all
//!   transpose combinations used by the algorithms (`A·B`, `Aᵀ·B`,
//!   `A·Bᵀ`), with optional rayon parallelism for standalone
//!   (non-rank-parallel) use;
//! * [`simd`] — the runtime-dispatched `MR×NR` register microkernels
//!   (AVX2+FMA 6×8 with a portable scalar 4×8 fallback, chosen once per
//!   process; `NMF_FORCE_SCALAR=1` pins the fallback);
//! * [`pack`] — operand packing into microkernel-ready panels, including
//!   [`PackedPanels`] for left operands packed once and reused across a
//!   whole ANLS session;
//! * [`mod@gram`] — symmetric rank-k products `XᵀX` and `XXᵀ` exploiting
//!   symmetry;
//! * [`chol`] — Cholesky factorization and batched multi-right-hand-side
//!   solves for the `k×k` normal-equation systems;
//! * [`rng`] — deterministic fills (uniform, Gaussian via Box–Muller) so
//!   every experiment is reproducible from a seed.
//!
//! All kernels are written for the regime the paper targets: `k ≤ ~100`
//! while `m, n` are large, so matrices are tall-and-skinny or tiny-square.
//! See `docs/kernels.md` for the kernel-layer design (dispatch, packing
//! formats, and the once-per-session A-panel cache).

pub mod chol;
pub mod gemm;
pub mod gram;
pub mod mat;
pub mod ops;
pub mod pack;
pub mod rng;
pub mod simd;

pub use chol::{
    cholesky, cholesky_into, cholesky_solve, cholesky_solve_in_place,
    cholesky_solve_percol_in_place, solve_spd, CholError,
};
pub use gemm::{
    matmul, matmul_blocked_into, matmul_ikj, matmul_ikj_into, matmul_into, matmul_packed_into,
    matmul_packed_scratch_into, matmul_par, matmul_par_into, matmul_ta, matmul_ta_blocked_into,
    matmul_ta_into, matmul_tb, matmul_tb_into,
};
pub use gram::{gram, gram_into, outer_gram, outer_gram_into};
pub use mat::Mat;
pub use pack::PackedPanels;
