//! Cholesky factorization and SPD solves.
//!
//! The normal-equation systems inside every NLS solver are `k×k` symmetric
//! positive (semi-)definite with `k ≤ ~100`, so an unblocked Cholesky is
//! plenty. A small diagonal shift fallback handles the semidefinite edge
//! case that arises when a factor matrix temporarily loses column rank
//! (common in early NMF iterations).

use crate::mat::Mat;

/// Failure of a Cholesky factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholError {
    /// The matrix is not positive definite (a pivot was `<= 0` or NaN),
    /// reported with the offending pivot index.
    NotPositiveDefinite(usize),
    /// The input is not square.
    NotSquare,
}

impl std::fmt::Display for CholError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholError::NotPositiveDefinite(i) => {
                write!(f, "matrix is not positive definite (pivot {i})")
            }
            CholError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for CholError {}

/// Computes the lower-triangular `L` with `A = L·Lᵀ`.
///
/// Only the lower triangle of `A` is read.
pub fn cholesky(a: &Mat) -> Result<Mat, CholError> {
    let mut l = Mat::zeros(a.nrows(), a.nrows());
    cholesky_into(a, &mut l)?;
    Ok(l)
}

/// [`cholesky`] into caller-owned `l` (resized as needed) — the
/// workspace variant used by the NLS hot path.
///
/// Only the lower triangle and diagonal of `l` are written (and only
/// those are read by the solve routines); when `l` is a reused buffer of
/// matching shape its strict upper triangle keeps stale values.
// `!(d > 0.0)` is deliberate: it also catches NaN pivots.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn cholesky_into(a: &Mat, l: &mut Mat) -> Result<(), CholError> {
    if a.nrows() != a.ncols() {
        return Err(CholError::NotSquare);
    }
    let n = a.nrows();
    l.resize(n, n);
    for j in 0..n {
        // d = A[j,j] - sum_{k<j} L[j,k]^2
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if !(d > 0.0) {
            return Err(CholError::NotPositiveDefinite(j));
        }
        let djj = d.sqrt();
        l[(j, j)] = djj;
        for i in j + 1..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / djj;
        }
    }
    Ok(())
}

/// Solves `L·Lᵀ·X = B` for `X` given the Cholesky factor `L`. `B` is
/// `n×r` (multi-right-hand-side).
pub fn cholesky_solve(l: &Mat, b: &Mat) -> Mat {
    let mut x = b.clone();
    cholesky_solve_in_place(l, &mut x);
    x
}

/// Right-hand-side columns processed per batched substitution sweep:
/// an 8-wide accumulator block stays in registers across the whole
/// triangular sweep.
const NC: usize = 8;

/// Solves `L·Lᵀ·X = B` in place: `b` holds `B` on entry and `X` on exit.
/// The workspace variant — no allocation.
///
/// Batched over right-hand sides: the columns are processed in
/// `NC = 8`-wide blocks, each forward/backward sweep keeping its block of
/// partial solutions in a register accumulator — every `X` row is read
/// once and written once per sweep, instead of once per `(i, k)` pair
/// as in the column-at-a-time form (retained as
/// [`cholesky_solve_percol_in_place`], the benchmark baseline).
pub fn cholesky_solve_in_place(l: &Mat, b: &mut Mat) {
    assert_eq!(l.nrows(), l.ncols());
    assert_eq!(l.nrows(), b.nrows(), "rhs row count mismatch");
    let n = l.nrows();
    let r = b.ncols();
    if n == 0 || r == 0 {
        return;
    }
    let mut c0 = 0;
    while c0 < r {
        let nc = NC.min(r - c0);
        if nc == NC {
            solve_sweep_full(l, b, c0);
        } else {
            solve_sweep_edge(l, b, c0, nc);
        }
        c0 += NC;
    }
}

/// One full `NC`-column forward+backward sweep starting at column `c0`.
fn solve_sweep_full(l: &Mat, b: &mut Mat, c0: usize) {
    let n = l.nrows();
    let ldx = b.ncols();
    let x = b.as_mut_slice();
    // Forward substitution: L·Y = B.
    for i in 0..n {
        let li = l.row(i);
        let mut acc: [f64; NC] = x[i * ldx + c0..i * ldx + c0 + NC]
            .try_into()
            .expect("NC-wide block");
        for (k, &lik) in li[..i].iter().enumerate() {
            let xk = &x[k * ldx + c0..k * ldx + c0 + NC];
            for (a, &v) in acc.iter_mut().zip(xk) {
                *a -= lik * v;
            }
        }
        let d = li[i];
        for (dst, a) in x[i * ldx + c0..i * ldx + c0 + NC].iter_mut().zip(acc) {
            *dst = a / d;
        }
    }
    // Backward substitution: Lᵀ·X = Y.
    for i in (0..n).rev() {
        let mut acc: [f64; NC] = x[i * ldx + c0..i * ldx + c0 + NC]
            .try_into()
            .expect("NC-wide block");
        for k in i + 1..n {
            let lki = l.row(k)[i];
            let xk = &x[k * ldx + c0..k * ldx + c0 + NC];
            for (a, &v) in acc.iter_mut().zip(xk) {
                *a -= lki * v;
            }
        }
        let d = l.row(i)[i];
        for (dst, a) in x[i * ldx + c0..i * ldx + c0 + NC].iter_mut().zip(acc) {
            *dst = a / d;
        }
    }
}

/// Remainder sweep for the final `nc < NC` columns (same algorithm with
/// a runtime-width accumulator prefix).
fn solve_sweep_edge(l: &Mat, b: &mut Mat, c0: usize, nc: usize) {
    let n = l.nrows();
    let ldx = b.ncols();
    let x = b.as_mut_slice();
    let mut acc = [0.0f64; NC];
    for i in 0..n {
        let li = l.row(i);
        acc[..nc].copy_from_slice(&x[i * ldx + c0..i * ldx + c0 + nc]);
        for (k, &lik) in li[..i].iter().enumerate() {
            let xk = &x[k * ldx + c0..k * ldx + c0 + nc];
            for (a, &v) in acc[..nc].iter_mut().zip(xk) {
                *a -= lik * v;
            }
        }
        let d = li[i];
        for (dst, &a) in x[i * ldx + c0..i * ldx + c0 + nc].iter_mut().zip(&acc) {
            *dst = a / d;
        }
    }
    for i in (0..n).rev() {
        acc[..nc].copy_from_slice(&x[i * ldx + c0..i * ldx + c0 + nc]);
        for k in i + 1..n {
            let lki = l.row(k)[i];
            let xk = &x[k * ldx + c0..k * ldx + c0 + nc];
            for (a, &v) in acc[..nc].iter_mut().zip(xk) {
                *a -= lki * v;
            }
        }
        let d = l.row(i)[i];
        for (dst, &a) in x[i * ldx + c0..i * ldx + c0 + nc].iter_mut().zip(&acc) {
            *dst = a / d;
        }
    }
}

/// Column-at-a-time `L·Lᵀ·X = B` solve: the pre-batching implementation,
/// retained as the baseline the `chol_solve` Criterion group measures
/// [`cholesky_solve_in_place`] against. Produces bit-identical results
/// (the per-column reduction order is unchanged by the batching).
pub fn cholesky_solve_percol_in_place(l: &Mat, b: &mut Mat) {
    assert_eq!(l.nrows(), l.ncols());
    assert_eq!(l.nrows(), b.nrows(), "rhs row count mismatch");
    let n = l.nrows();
    let r = b.ncols();
    let x = b;
    for c in 0..r {
        for i in 0..n {
            let mut s = x[(i, c)];
            for k in 0..i {
                s -= l[(i, k)] * x[(k, c)];
            }
            x[(i, c)] = s / l[(i, i)];
        }
        for i in (0..n).rev() {
            let mut s = x[(i, c)];
            for k in i + 1..n {
                s -= l[(k, i)] * x[(k, c)];
            }
            x[(i, c)] = s / l[(i, i)];
        }
    }
}

/// Solves the SPD system `A·X = B`.
///
/// If `A` is only semidefinite (Cholesky breakdown), retries with
/// progressively larger Tikhonov shifts `A + eps·tr(A)/n·I`; this mirrors
/// the regularization LAPACK-based NMF codes apply when a factor loses
/// rank mid-iteration.
pub fn solve_spd(a: &Mat, b: &Mat) -> Result<Mat, CholError> {
    match cholesky(a) {
        Ok(l) => Ok(cholesky_solve(&l, b)),
        Err(CholError::NotSquare) => Err(CholError::NotSquare),
        Err(_) => {
            let n = a.nrows();
            let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
            let base = if trace > 0.0 { trace / n as f64 } else { 1.0 };
            let mut shift = base * 1e-12;
            for _ in 0..8 {
                let mut shifted = a.clone();
                for i in 0..n {
                    shifted[(i, i)] += shift;
                }
                if let Ok(l) = cholesky(&shifted) {
                    return Ok(cholesky_solve(&l, b));
                }
                shift *= 100.0;
            }
            Err(CholError::NotPositiveDefinite(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_tb};
    use crate::gram::gram;
    use crate::rng::Fill;

    fn spd(n: usize, seed: u64) -> Mat {
        // XᵀX + I is strictly positive definite.
        let x = Mat::gaussian(2 * n, n, seed);
        let mut g = gram(&x);
        for i in 0..n {
            g[(i, i)] += 1.0;
        }
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(8, 21);
        let l = cholesky(&a).unwrap();
        let llt = matmul_tb(&l, &l);
        assert!(llt.max_abs_diff(&a) < 1e-10);
        // L is lower triangular.
        for i in 0..8 {
            for j in i + 1..8 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd(10, 22);
        let x_true = Mat::gaussian(10, 4, 23);
        let b = matmul(&a, &x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = Mat::eye(3);
        a[(2, 2)] = -1.0;
        assert_eq!(cholesky(&a), Err(CholError::NotPositiveDefinite(2)));
    }

    #[test]
    fn rejects_non_square() {
        assert_eq!(cholesky(&Mat::zeros(2, 3)), Err(CholError::NotSquare));
    }

    #[test]
    fn semidefinite_falls_back_to_shift() {
        // Rank-1 Gram matrix: strictly semidefinite.
        let x = Mat::filled(5, 3, 1.0);
        let g = gram(&x);
        let b = Mat::filled(3, 2, 1.0);
        let sol = solve_spd(&g, &b).expect("shifted solve should succeed");
        assert!(sol.all_finite());
    }

    #[test]
    fn batched_solve_matches_per_column_baseline() {
        // Widths straddling the NC=8 sweep blocking, including edge
        // remainders; the batched sweeps reorder nothing per column, so
        // the results are bit-identical.
        let a = spd(12, 31);
        let l = cholesky(&a).unwrap();
        for r in [1usize, 3, 8, 9, 16, 21] {
            let b = Mat::gaussian(12, r, 40 + r as u64);
            let mut batched = b.clone();
            cholesky_solve_in_place(&l, &mut batched);
            let mut percol = b.clone();
            cholesky_solve_percol_in_place(&l, &mut percol);
            assert_eq!(
                batched.as_slice(),
                percol.as_slice(),
                "batched vs per-column diverge at r={r}"
            );
        }
    }

    #[test]
    fn one_by_one_system() {
        let a = Mat::from_rows(&[&[4.0]]);
        let b = Mat::from_rows(&[&[8.0, 2.0]]);
        let x = solve_spd(&a, &b).unwrap();
        assert!((x[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((x[(0, 1)] - 0.5).abs() < 1e-14);
    }
}
