//! Dense matrix-multiply kernels: packed SIMD GEMM with runtime dispatch.
//!
//! Three transpose combinations cover everything the NMF algorithms need:
//!
//! * `C = A·B`   — reconstruction `W·H`, and `A·Hᵀ` (the left-factor
//!   update input, with `Hᵀ` stored row-major);
//! * `C = Aᵀ·B`  — `WᵀA` (the right-factor update input);
//! * `C = A·Bᵀ`  — dot-product form, used for `X·G` with symmetric `G`.
//!
//! # Performance notes
//!
//! The primary entry points ([`matmul_into`], [`matmul_ta_into`],
//! [`matmul_par_into`], [`matmul_packed_into`]) all run the full
//! GotoBLAS decomposition (Goto & van de Geijn, *Anatomy of
//! High-Performance Matrix Multiplication*):
//!
//! 1. **Packing** ([`pack`](crate::pack)): the left operand is packed
//!    into `MR×KC` depth-major panels, the right operand into `KC×NR`
//!    tiles, so the microkernel's inner step is two contiguous loads
//!    with zero-padded edges (no strides, no remainder branches).
//! 2. **Microkernel** ([`simd`]): an `MR×NR` register
//!    block of `C` accumulates across a whole `KC`-deep panel. On
//!    AVX2+FMA hosts this is a 6×8 intrinsics kernel (twelve `ymm`
//!    accumulators saturating both FMA ports); elsewhere a portable 4×8
//!    scalar kernel that LLVM autovectorizes. The choice is made once
//!    per process (`is_x86_feature_detected!`, cached in a `OnceLock`)
//!    and can be pinned to the fallback with `NMF_FORCE_SCALAR=1`.
//! 3. **Amortized packing**: `B` tiles are packed per call into
//!    thread-local scratch that grows once and is reused; the left
//!    operand can be packed **once per session** into a
//!    [`PackedPanels`] and passed to [`matmul_packed_into`] — the ANLS
//!    win from the paper: the data matrix never changes across
//!    iterations, so `crates/core` packs it (and its transpose) at
//!    engine construction and every iteration reads only packed panels.
//!
//! `C = Aᵀ·B` needs no transpose materialization:
//! [`PackedPanels::pack_transposed`] emits the same panel format while
//! reading `A` row-by-row in `MR`-wide contiguous chunks.
//!
//! Two scalar baselines are retained for benchmarking and as reference
//! implementations: [`matmul_blocked_into`] (the pre-SIMD cache-blocked
//! 4×8 kernel — the comparison point for the `gemm_simd` Criterion
//! group) and the seed's plain `ikj` loop ([`matmul_ikj_into`], which
//! keeps its skip of explicit zeros — it doubles as the sparse-aware
//! baseline).
//!
//! `*_into` variants write into caller-owned storage so per-iteration
//! workspaces can be reused; the allocating wrappers exist for
//! convenience at call sites that are not on a hot path.
//!
//! [`matmul_par`] provides a rayon row-parallel GEMM for *standalone*
//! (sequential-baseline) use: each worker packs and multiplies its own
//! contiguous stripe of `C`. The distributed ranks deliberately use the
//! serial kernels: each virtual-MPI rank is already an OS thread, and
//! nesting rayon inside them would oversubscribe the machine.

use crate::mat::Mat;
use crate::pack::{pack_b_block, PackedPanels, KC, NR};
use crate::simd;
use rayon::prelude::*;
use std::cell::RefCell;

/// Rows of `C` accumulated in registers by the retained scalar-blocked
/// baseline kernel ([`matmul_blocked_into`]).
const MR_BLOCKED: usize = 4;

thread_local! {
    /// Per-thread packing scratch: grows to the largest operands seen,
    /// then every subsequent GEMM on this thread packs into the same
    /// storage — steady-state iterations allocate nothing.
    static SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::default());
}

#[derive(Default)]
struct GemmScratch {
    apack: PackedPanels,
    bpack: Vec<f64>,
}

/// `C = A·B`, allocating the output.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.nrows(), b.ncols());
    matmul_into(a, b, &mut c);
    c
}

/// `C = A·B` into caller-owned `c` (overwritten). Packs both operands
/// and runs the dispatched SIMD microkernel; see the module docs.
pub fn matmul_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.ncols(), b.nrows(), "matmul inner dimension mismatch");
    assert_eq!(
        c.shape(),
        (a.nrows(), b.ncols()),
        "matmul output shape mismatch"
    );
    c.as_mut_slice().fill(0.0);
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        scratch.apack.pack_into(a);
        gemm_packed(
            &scratch.apack,
            b.as_slice(),
            b.ncols(),
            c.as_mut_slice(),
            &mut scratch.bpack,
        );
    });
}

/// `C = P·B` where `P` is a pre-packed left operand (see
/// [`PackedPanels`]): the steady-state entry point — no repacking of
/// `P`, only the (cheap, `kdim×n`) `B` tiles are packed per call.
///
/// # Panics
/// Panics on shape mismatch, or if `p` was packed under a different
/// kernel dispatch than the currently active one (impossible within one
/// process — dispatch is cached — but guarded for clarity).
pub fn matmul_packed_into(p: &PackedPanels, b: &Mat, c: &mut Mat) {
    SCRATCH.with(|s| {
        matmul_packed_scratch_into(p, b, c, &mut s.borrow_mut().bpack);
    });
}

/// [`matmul_packed_into`] with caller-owned `B`-tile scratch instead of
/// the thread-local buffer. Hot-loop callers that must not touch any
/// hidden allocation (the engine's counting-allocator invariant) hold
/// the scratch in their workspace, pre-sized via
/// [`PackedPanels::b_scratch_len`], so steady-state calls allocate
/// nothing — including on the very first iteration.
///
/// # Panics
/// Same contract as [`matmul_packed_into`].
pub fn matmul_packed_scratch_into(p: &PackedPanels, b: &Mat, c: &mut Mat, bpack: &mut Vec<f64>) {
    let (m, kdim) = p.shape();
    assert_eq!(kdim, b.nrows(), "matmul_packed inner dimension mismatch");
    assert_eq!(
        c.shape(),
        (m, b.ncols()),
        "matmul_packed output shape mismatch"
    );
    assert_eq!(
        p.mr(),
        simd::active().mr,
        "packed panels built for a different microkernel geometry"
    );
    c.as_mut_slice().fill(0.0);
    gemm_packed(p, b.as_slice(), b.ncols(), c.as_mut_slice(), bpack);
}

/// The packed GEMM driver: `c += P·b` where `P` is the packed `m×kdim`
/// left operand, `b` is `kdim×n` row-major, `c` is `m×n` (leading
/// dimension `n`, pre-initialized). For each `KC`-deep block, packs the
/// corresponding `B` rows into `KC×NR` tiles in `bpack`, then sweeps
/// `MR`-row panels × `NR`-column tiles through the dispatched
/// microkernel. Accumulators live in registers for the whole block;
/// edge tiles are handled by the kernels' clipped store phase (the
/// packed zero-padding makes the extra multiply-adds exact `+0.0`s).
fn gemm_packed(p: &PackedPanels, b: &[f64], n: usize, c: &mut [f64], bpack: &mut Vec<f64>) {
    let (m, kdim) = p.shape();
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || kdim == 0 {
        return;
    }
    let cfg = simd::active();
    let mr = p.mr();
    debug_assert_eq!(mr, cfg.mr);
    let ntiles = n.div_ceil(NR);
    let mut k0 = 0;
    while k0 < kdim {
        let kc = KC.min(kdim - k0);
        pack_b_block(b, n, k0, kc, bpack);
        let mut i0 = 0;
        while i0 < m {
            let mr_eff = mr.min(m - i0);
            let pa = p.panel(k0, kc, i0);
            for jt in 0..ntiles {
                let j0 = jt * NR;
                let nr_eff = NR.min(n - j0);
                let pbt = &bpack[jt * NR * kc..(jt + 1) * NR * kc];
                match cfg.path {
                    #[cfg(target_arch = "x86_64")]
                    simd::KernelPath::Avx2Fma => {
                        // SAFETY: the Avx2Fma path is only selected after
                        // `is_x86_feature_detected!("avx2")`/`("fma")`
                        // succeed; `pa` is a full `mr*kc` panel, `pbt` a
                        // full `NR*kc` tile, and the `c` tile starting at
                        // `i0*n + j0` is valid for `mr_eff` rows of
                        // `nr_eff` elements at row stride `n`.
                        unsafe {
                            simd::kernel_6x8_avx2(
                                pa.as_ptr(),
                                pbt.as_ptr(),
                                kc,
                                c.as_mut_ptr().add(i0 * n + j0),
                                n,
                                mr_eff,
                                nr_eff,
                            );
                        }
                    }
                    _ => simd::kernel_4x8_scalar(
                        pa,
                        pbt,
                        kc,
                        &mut c[i0 * n + j0..],
                        n,
                        mr_eff,
                        nr_eff,
                    ),
                }
            }
            i0 += mr;
        }
        k0 += kc;
    }
}

/// `C = A·B` with the retained pre-SIMD cache-blocked kernel (`4×8`
/// register microkernel over unpacked row-major operands). This is the
/// baseline the `gemm_simd` Criterion group measures the packed SIMD
/// path against; production call sites use [`matmul_into`].
pub fn matmul_blocked_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.ncols(), b.nrows(), "matmul inner dimension mismatch");
    assert_eq!(
        c.shape(),
        (a.nrows(), b.ncols()),
        "matmul output shape mismatch"
    );
    c.as_mut_slice().fill(0.0);
    gemm_slices(
        a.as_slice(),
        b.as_slice(),
        c.as_mut_slice(),
        a.nrows(),
        a.ncols(),
        b.ncols(),
    );
}

/// The scalar blocked kernel on raw row-major slices: `c += a·b` where
/// `a` is `m×kdim`, `b` is `kdim×n`, `c` is `m×n` (all dense, leading
/// dimension equal to the column count). `c` must be pre-initialized.
fn gemm_slices(a: &[f64], b: &[f64], c: &mut [f64], m: usize, kdim: usize, n: usize) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(c.len(), m * n);
    let mut k0 = 0;
    while k0 < kdim {
        let kend = (k0 + KC).min(kdim);
        let mut i0 = 0;
        while i0 < m {
            let mr = MR_BLOCKED.min(m - i0);
            let mut j0 = 0;
            while j0 < n {
                let nr = NR.min(n - j0);
                if mr == MR_BLOCKED && nr == NR {
                    kernel_4x8(a, b, c, kdim, n, i0, j0, k0, kend);
                } else {
                    kernel_edge(a, b, c, kdim, n, i0, j0, k0, kend, mr, nr);
                }
                j0 += NR;
            }
            i0 += MR_BLOCKED;
        }
        k0 = kend;
    }
}

/// The scalar `4×8` register microkernel over unpacked operands:
/// `C[i0..i0+4, j0..j0+8] += A[i0..i0+4, k0..kend] · B[k0..kend, j0..j0+8]`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn kernel_4x8(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    lda: usize,
    ldb: usize,
    i0: usize,
    j0: usize,
    k0: usize,
    kend: usize,
) {
    let mut acc = [[0.0f64; NR]; MR_BLOCKED];
    let a0 = &a[i0 * lda + k0..i0 * lda + kend];
    let a1 = &a[(i0 + 1) * lda + k0..(i0 + 1) * lda + kend];
    let a2 = &a[(i0 + 2) * lda + k0..(i0 + 2) * lda + kend];
    let a3 = &a[(i0 + 3) * lda + k0..(i0 + 3) * lda + kend];
    // Zipped exact-length iterators: the compiler drops all bounds checks
    // from the A reads; only the B panel row needs one slice per step.
    for (d, ((&x0, &x1), (&x2, &x3))) in a0.iter().zip(a1).zip(a2.iter().zip(a3)).enumerate() {
        let kk = k0 + d;
        let bk: &[f64; NR] = b[kk * ldb + j0..kk * ldb + j0 + NR]
            .try_into()
            .expect("NR-wide panel row");
        for t in 0..NR {
            let bv = bk[t];
            acc[0][t] += x0 * bv;
            acc[1][t] += x1 * bv;
            acc[2][t] += x2 * bv;
            acc[3][t] += x3 * bv;
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        let crow = &mut c[(i0 + r) * ldb + j0..(i0 + r) * ldb + j0 + NR];
        for t in 0..NR {
            crow[t] += acc_r[t];
        }
    }
}

/// Remainder tiles (fewer than `MR` rows or `NR` columns): a plain `ikj`
/// loop over the tile, which the compiler still vectorizes along `j`.
/// Unconditional accumulation — no skip of explicit zeros: the branch
/// would defeat vectorization of the `j` loop and silently drop
/// `-0.0`/NaN propagation (the sparse-aware skip lives only in the
/// [`matmul_ikj_into`] baseline, where it is the point).
#[allow(clippy::too_many_arguments)]
fn kernel_edge(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    lda: usize,
    ldb: usize,
    i0: usize,
    j0: usize,
    k0: usize,
    kend: usize,
    mr: usize,
    nr: usize,
) {
    for i in i0..i0 + mr {
        let arow = &a[i * lda..(i + 1) * lda];
        let crow = &mut c[i * ldb + j0..i * ldb + j0 + nr];
        for kk in k0..kend {
            let aik = arow[kk];
            let brow = &b[kk * ldb + j0..kk * ldb + j0 + nr];
            for t in 0..nr {
                crow[t] += aik * brow[t];
            }
        }
    }
}

/// The seed's unblocked `ikj` GEMM, kept as the benchmark baseline the
/// blocked kernel is measured against (`benches/kernels.rs`).
pub fn matmul_ikj(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.nrows(), b.ncols());
    matmul_ikj_into(a, b, &mut c);
    c
}

/// `C = A·B` with the unblocked `ikj` loop (baseline; see [`matmul_ikj`]).
/// Skips explicit zeros in `A` — this baseline doubles as the
/// sparse-aware reference, where the skip is the optimization.
pub fn matmul_ikj_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.ncols(), b.nrows(), "matmul inner dimension mismatch");
    assert_eq!(
        c.shape(),
        (a.nrows(), b.ncols()),
        "matmul output shape mismatch"
    );
    c.as_mut_slice().fill(0.0);
    let n = b.ncols();
    for i in 0..a.nrows() {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b.as_slice()[kk * n..(kk + 1) * n];
            axpy(aik, brow, crow);
        }
    }
}

/// `C = Aᵀ·B`, allocating the output. `A` is `m×k`, `B` is `m×n`, `C` is `k×n`.
pub fn matmul_ta(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.ncols(), b.ncols());
    matmul_ta_into(a, b, &mut c);
    c
}

/// `C = Aᵀ·B` into caller-owned `c` (overwritten). Packs `Aᵀ` directly
/// from `A`'s rows (no transpose materialization) and runs the same
/// dispatched packed kernel as [`matmul_into`].
pub fn matmul_ta_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.nrows(), b.nrows(), "matmul_ta inner dimension mismatch");
    assert_eq!(
        c.shape(),
        (a.ncols(), b.ncols()),
        "matmul_ta output shape mismatch"
    );
    c.as_mut_slice().fill(0.0);
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        scratch.apack.pack_transposed_into(a);
        gemm_packed(
            &scratch.apack,
            b.as_slice(),
            b.ncols(),
            c.as_mut_slice(),
            &mut scratch.bpack,
        );
    });
}

/// `C = Aᵀ·B` with the retained scalar rank-1 sweep (four sample rows
/// per pass). Benchmark baseline for the packed transposed path; see
/// [`matmul_ta_into`] for the production kernel.
pub fn matmul_ta_blocked_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.nrows(), b.nrows(), "matmul_ta inner dimension mismatch");
    assert_eq!(
        c.shape(),
        (a.ncols(), b.ncols()),
        "matmul_ta output shape mismatch"
    );
    c.as_mut_slice().fill(0.0);
    let m = a.nrows();
    let k = a.ncols();
    let n = b.ncols();
    let cm = c.as_mut_slice();
    let m4 = m - m % 4;
    let mut r = 0;
    while r < m4 {
        let a0 = a.row(r);
        let a1 = a.row(r + 1);
        let a2 = a.row(r + 2);
        let a3 = a.row(r + 3);
        let b0 = b.row(r);
        let b1 = b.row(r + 1);
        let b2 = b.row(r + 2);
        let b3 = b.row(r + 3);
        for j in 0..k {
            let (x0, x1, x2, x3) = (a0[j], a1[j], a2[j], a3[j]);
            if x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0 {
                continue;
            }
            let crow = &mut cm[j * n..(j + 1) * n];
            for t in 0..n {
                crow[t] += x0 * b0[t] + x1 * b1[t] + x2 * b2[t] + x3 * b3[t];
            }
        }
        r += 4;
    }
    // Remainder samples: plain rank-1 accumulation.
    for rr in m4..m {
        let arow = a.row(rr);
        let brow = b.row(rr);
        for j in 0..k {
            let ajr = arow[j];
            if ajr == 0.0 {
                continue;
            }
            let crow = &mut cm[j * n..(j + 1) * n];
            axpy(ajr, brow, crow);
        }
    }
}

/// `C = A·Bᵀ`, allocating the output. `A` is `m×n`, `B` is `k×n`, `C` is `m×k`.
pub fn matmul_tb(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.nrows(), b.nrows());
    matmul_tb_into(a, b, &mut c);
    c
}

/// `C = A·Bᵀ` into caller-owned `c` (overwritten).
///
/// Each output entry is a dot product of two contiguous rows; four
/// output columns are computed per pass (via the dispatched [`dot4`])
/// so the `A` row streams once per four rows of `B`.
pub fn matmul_tb_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.ncols(), b.ncols(), "matmul_tb inner dimension mismatch");
    assert_eq!(
        c.shape(),
        (a.nrows(), b.nrows()),
        "matmul_tb output shape mismatch"
    );
    let k = b.nrows();
    let k4 = k - k % 4;
    for i in 0..a.nrows() {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        let mut j = 0;
        while j < k4 {
            let (s0, s1, s2, s3) = dot4(arow, b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            crow[j] = s0;
            crow[j + 1] = s1;
            crow[j + 2] = s2;
            crow[j + 3] = s3;
            j += 4;
        }
        for (jj, cv) in crow.iter_mut().enumerate().skip(k4) {
            *cv = dot(arow, b.row(jj));
        }
    }
}

/// Rayon row-parallel `C = A·B` for standalone use (see module docs).
/// Same packed dispatched kernel as [`matmul_into`], with the rows of
/// `C` split into one contiguous stripe per worker thread (each worker
/// packs its own operand stripe into its thread-local scratch).
pub fn matmul_par(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.nrows(), b.ncols());
    matmul_par_into(a, b, &mut c);
    c
}

/// Row-parallel `C = A·B` into caller-owned `c` (overwritten).
pub fn matmul_par_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.ncols(), b.nrows(), "matmul inner dimension mismatch");
    assert_eq!(
        c.shape(),
        (a.nrows(), b.ncols()),
        "matmul output shape mismatch"
    );
    let m = a.nrows();
    let kdim = a.ncols();
    let n = b.ncols();
    c.as_mut_slice().fill(0.0);
    if m == 0 || n == 0 {
        return; // empty output; chunking by stripe * n would be ill-formed
    }
    let stripe = m.div_ceil(rayon::current_num_threads()).max(MR_BLOCKED);
    let aslice = a.as_slice();
    let bslice = b.as_slice();
    c.as_mut_slice()
        .par_chunks_mut(stripe * n)
        .enumerate()
        .for_each(|(ci, cchunk)| {
            let r0 = ci * stripe;
            let rows = cchunk.len() / n;
            SCRATCH.with(|s| {
                let scratch = &mut *s.borrow_mut();
                scratch
                    .apack
                    .pack_slice_into(&aslice[r0 * kdim..(r0 + rows) * kdim], rows, kdim);
                gemm_packed(&scratch.apack, bslice, n, cchunk, &mut scratch.bpack);
            });
        });
}

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Minimum slice length before the dispatched dot products reach for
/// the AVX2 path; below this the call overhead dominates.
const DOT_SIMD_MIN: usize = 32;

/// Dot product of two equal-length slices. Dispatches to the AVX2+FMA
/// reduction for long slices; otherwise 4-way unrolled scalar.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if x.len() >= DOT_SIMD_MIN && simd::active().path == simd::KernelPath::Avx2Fma {
        // SAFETY: the Avx2Fma path implies the detector observed AVX2
        // and FMA support on this CPU.
        return unsafe { simd::dot_avx2(x, y) };
    }
    let chunks = x.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = c * 4;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// Four simultaneous dot products sharing the left operand: returns
/// `(x·y0, x·y1, x·y2, x·y3)`. `x` streams through cache once; long
/// slices dispatch to the AVX2+FMA quad reduction.
#[inline]
pub fn dot4(x: &[f64], y0: &[f64], y1: &[f64], y2: &[f64], y3: &[f64]) -> (f64, f64, f64, f64) {
    debug_assert!(
        x.len() == y0.len() && x.len() == y1.len() && x.len() == y2.len() && x.len() == y3.len()
    );
    #[cfg(target_arch = "x86_64")]
    if x.len() >= DOT_SIMD_MIN && simd::active().path == simd::KernelPath::Avx2Fma {
        // SAFETY: the Avx2Fma path implies the detector observed AVX2
        // and FMA support on this CPU.
        return unsafe { simd::dot4_avx2(x, y0, y1, y2, y3) };
    }
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..x.len() {
        let xv = x[i];
        s0 += xv * y0[i];
        s1 += xv * y1[i];
        s2 += xv * y2[i];
        s3 += xv * y3[i];
    }
    (s0, s1, s2, s3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Fill;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut s = 0.0;
                for kk in 0..a.ncols() {
                    s += a[(i, kk)] * b[(kk, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Mat::uniform(17, 9, 42);
        let b = Mat::uniform(9, 13, 43);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-12);
    }

    #[test]
    fn dispatched_matches_naive_across_edge_shapes() {
        // Shapes chosen to exercise every remainder path of both MR
        // geometries (4 and 6) and the NR/KC boundaries.
        for &(m, kk, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 3, 9),
            (6, 12, 16),
            (7, 300, 17),
            (8, 256, 8),
            (9, 257, 31),
            (12, 511, 33),
            (13, 40, 7),
            (64, 513, 40),
        ] {
            let a = Mat::uniform(m, kk, (m * 1000 + n) as u64);
            let b = Mat::uniform(kk, n, (n * 1000 + kk) as u64);
            let expect = naive_matmul(&a, &b);
            let c = matmul(&a, &b);
            assert!(
                c.max_abs_diff(&expect) < 1e-10,
                "dispatched GEMM wrong at {m}x{kk}x{n}"
            );
            let mut cb = Mat::zeros(m, n);
            matmul_blocked_into(&a, &b, &mut cb);
            assert!(
                cb.max_abs_diff(&expect) < 1e-10,
                "blocked GEMM wrong at {m}x{kk}x{n}"
            );
        }
    }

    #[test]
    fn prepacked_matches_dispatched() {
        for &(m, kk, n) in &[(5usize, 3usize, 9usize), (48, 300, 17), (64, 257, 40)] {
            let a = Mat::uniform(m, kk, 77);
            let b = Mat::uniform(kk, n, 78);
            let p = PackedPanels::pack(&a);
            let mut c = Mat::zeros(m, n);
            matmul_packed_into(&p, &b, &mut c);
            assert!(
                c.max_abs_diff(&matmul(&a, &b)) < 1e-12,
                "prepacked GEMM wrong at {m}x{kk}x{n}"
            );
        }
    }

    #[test]
    fn blocked_matches_ikj_baseline() {
        let a = Mat::uniform(50, 70, 1);
        let b = Mat::uniform(70, 23, 2);
        assert!(matmul(&a, &b).max_abs_diff(&matmul_ikj(&a, &b)) < 1e-12);
    }

    #[test]
    fn matmul_ta_matches_explicit_transpose() {
        for &(m, k, n) in &[
            (23usize, 7usize, 11usize),
            (24, 8, 8),
            (25, 9, 13),
            (300, 6, 10),
            (3, 2, 2),
        ] {
            let a = Mat::uniform(m, k, 1);
            let b = Mat::uniform(m, n, 2);
            let c = matmul_ta(&a, &b);
            let expect = naive_matmul(&a.transpose(), &b);
            assert!(
                c.max_abs_diff(&expect) < 1e-12,
                "matmul_ta wrong at {m}x{k}x{n}"
            );
            let mut cb = Mat::zeros(k, n);
            matmul_ta_blocked_into(&a, &b, &mut cb);
            assert!(
                cb.max_abs_diff(&expect) < 1e-12,
                "matmul_ta baseline wrong at {m}x{k}x{n}"
            );
            let p = PackedPanels::pack_transposed(&a);
            let mut cp = Mat::zeros(k, n);
            matmul_packed_into(&p, &b, &mut cp);
            assert!(
                cp.max_abs_diff(&expect) < 1e-12,
                "prepacked matmul_ta wrong at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_tb_matches_explicit_transpose() {
        for &(m, k, n) in &[(19usize, 5usize, 8usize), (19, 8, 8), (6, 9, 4), (2, 1, 3)] {
            let a = Mat::uniform(m, n, 3);
            let b = Mat::uniform(k, n, 4);
            let c = matmul_tb(&a, &b);
            let expect = naive_matmul(&a, &b.transpose());
            assert!(
                c.max_abs_diff(&expect) < 1e-12,
                "matmul_tb wrong at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_par_handles_empty_output() {
        let a = Mat::uniform(5, 4, 50);
        let b = Mat::zeros(4, 0);
        assert_eq!(matmul_par(&a, &b).shape(), (5, 0));
        let a0 = Mat::zeros(0, 4);
        let b2 = Mat::uniform(4, 3, 51);
        assert_eq!(matmul_par(&a0, &b2).shape(), (0, 3));
    }

    #[test]
    fn matmul_par_matches_serial() {
        for &(m, kk, n) in &[(31usize, 15usize, 9usize), (128, 64, 32), (3, 5, 2)] {
            let a = Mat::uniform(m, kk, 5);
            let b = Mat::uniform(kk, n, 6);
            assert!(matmul_par(&a, &b).max_abs_diff(&matmul(&a, &b)) < 1e-12);
        }
    }

    #[test]
    fn into_variants_reuse_storage() {
        let a = Mat::uniform(6, 4, 7);
        let b = Mat::uniform(4, 5, 8);
        let mut c = Mat::filled(6, 5, f64::NAN);
        matmul_into(&a, &b, &mut c);
        assert!(c.all_finite());
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-12);
        // Reuse the same buffer for a second product.
        matmul_ikj_into(&a, &b, &mut c);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-12);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::uniform(9, 9, 10);
        assert!(matmul(&a, &Mat::eye(9)).max_abs_diff(&a) < 1e-15);
        assert!(matmul(&Mat::eye(9), &a).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn mismatched_dims_panic() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        matmul(&a, &b);
    }

    #[test]
    fn dot_handles_remainders() {
        for n in 0..10 {
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let y: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
            let expect: f64 = (0..n).map(|i| (i * i * 2) as f64).sum();
            assert_eq!(dot(&x, &y), expect);
        }
    }

    #[test]
    fn dot4_matches_four_dots() {
        for len in [5usize, 37, 64, 130] {
            let x = Mat::uniform(1, len, 11);
            let ys = Mat::uniform(4, len, 12);
            let (s0, s1, s2, s3) = dot4(x.row(0), ys.row(0), ys.row(1), ys.row(2), ys.row(3));
            for (got, j) in [(s0, 0), (s1, 1), (s2, 2), (s3, 3)] {
                assert!((got - dot(x.row(0), ys.row(j))).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn negative_zero_and_nan_propagate_through_edge_tiles() {
        // The edge kernel must not skip explicit zeros: a NaN in B must
        // poison the product even when the matching A entry is 0.0.
        let mut a = Mat::zeros(3, 2); // 3 rows → edge tile under both MRs
        a[(0, 0)] = 0.0;
        a[(0, 1)] = 1.0;
        let mut b = Mat::zeros(2, 3); // 3 cols → NR edge tile
        b[(0, 0)] = f64::NAN;
        b[(1, 1)] = 2.0;
        let mut c = Mat::zeros(3, 3);
        matmul_blocked_into(&a, &b, &mut c);
        assert!(c[(0, 0)].is_nan(), "0.0·NaN must propagate, not be skipped");
        assert_eq!(c[(0, 1)], 2.0);
        let c2 = matmul(&a, &b);
        assert!(c2[(0, 0)].is_nan());
    }
}
