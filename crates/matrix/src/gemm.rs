//! Blocked matrix-multiply kernels.
//!
//! Three transpose combinations cover everything the NMF algorithms need:
//!
//! * `C = A·B`   — reconstruction `W·H`, and `W·(HHᵀ)` inside MU;
//! * `C = Aᵀ·B`  — `WᵀA` (the right-factor update input);
//! * `C = A·Bᵀ`  — `AHᵀ` (the left-factor update input).
//!
//! All kernels are written as `ikj` loops over the row-major layout so the
//! innermost loop streams contiguous memory from both `B` (or `Bᵀ`'s
//! logical rows) and `C`; this auto-vectorizes well. `*_into` variants
//! write into caller-owned storage so per-iteration workspaces can be
//! reused, as the performance guide recommends.
//!
//! [`matmul_par`] provides a rayon row-parallel GEMM for *standalone*
//! (sequential-baseline) use. The distributed ranks deliberately use the
//! serial kernels: each virtual-MPI rank is already an OS thread, and
//! nesting rayon inside them would oversubscribe the machine.

use crate::mat::Mat;
use rayon::prelude::*;

/// `C = A·B`, allocating the output.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.nrows(), b.ncols());
    matmul_into(a, b, &mut c);
    c
}

/// `C = A·B` into caller-owned `c` (overwritten).
pub fn matmul_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.ncols(), b.nrows(), "matmul inner dimension mismatch");
    assert_eq!(c.shape(), (a.nrows(), b.ncols()), "matmul output shape mismatch");
    c.as_mut_slice().fill(0.0);
    let n = b.ncols();
    for i in 0..a.nrows() {
        let arow = a.row(i);
        // Safe split: take the i-th output row once per i.
        let crow = c.row_mut(i);
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &b.as_slice()[kk * n..(kk + 1) * n];
            axpy(aik, brow, crow);
        }
    }
}

/// `C = Aᵀ·B`, allocating the output. `A` is `m×k`, `B` is `m×n`, `C` is `k×n`.
pub fn matmul_ta(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.ncols(), b.ncols());
    matmul_ta_into(a, b, &mut c);
    c
}

/// `C = Aᵀ·B` into caller-owned `c` (overwritten).
pub fn matmul_ta_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.nrows(), b.nrows(), "matmul_ta inner dimension mismatch");
    assert_eq!(c.shape(), (a.ncols(), b.ncols()), "matmul_ta output shape mismatch");
    c.as_mut_slice().fill(0.0);
    let k = a.ncols();
    let n = b.ncols();
    // Accumulate rank-1 contributions row-of-A by row-of-B: for each sample
    // row r, C[j, :] += A[r, j] * B[r, :]. Both inner accesses stream.
    for r in 0..a.nrows() {
        let arow = a.row(r);
        let brow = b.row(r);
        for j in 0..k {
            let ajr = arow[j];
            if ajr == 0.0 {
                continue;
            }
            let crow = &mut c.as_mut_slice()[j * n..(j + 1) * n];
            axpy(ajr, brow, crow);
        }
    }
}

/// `C = A·Bᵀ`, allocating the output. `A` is `m×n`, `B` is `k×n`, `C` is `m×k`.
pub fn matmul_tb(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.nrows(), b.nrows());
    matmul_tb_into(a, b, &mut c);
    c
}

/// `C = A·Bᵀ` into caller-owned `c` (overwritten).
///
/// Each output entry is a dot product of two contiguous rows, which is the
/// natural kernel for row-major storage.
pub fn matmul_tb_into(a: &Mat, b: &Mat, c: &mut Mat) {
    assert_eq!(a.ncols(), b.ncols(), "matmul_tb inner dimension mismatch");
    assert_eq!(c.shape(), (a.nrows(), b.nrows()), "matmul_tb output shape mismatch");
    for i in 0..a.nrows() {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cij) in crow.iter_mut().enumerate() {
            *cij = dot(arow, b.row(j));
        }
    }
}

/// Rayon row-parallel `C = A·B` for standalone use (see module docs).
pub fn matmul_par(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.ncols(), b.nrows(), "matmul inner dimension mismatch");
    let n = b.ncols();
    let rows: Vec<Vec<f64>> = (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let mut crow = vec![0.0; n];
            for (kk, &aik) in a.row(i).iter().enumerate() {
                if aik != 0.0 {
                    axpy(aik, &b.as_slice()[kk * n..(kk + 1) * n], &mut crow);
                }
            }
            crow
        })
        .collect();
    let mut data = Vec::with_capacity(a.nrows() * n);
    for r in rows {
        data.extend_from_slice(&r);
    }
    Mat::from_vec(a.nrows(), n, data)
}

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product of two equal-length slices, with 4-way unrolling to expose
/// independent FMA chains.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let chunks = x.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = c * 4;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..x.len() {
        s += x[i] * y[i];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Fill;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut s = 0.0;
                for kk in 0..a.ncols() {
                    s += a[(i, kk)] * b[(kk, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Mat::uniform(17, 9, 42);
        let b = Mat::uniform(9, 13, 43);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-12);
    }

    #[test]
    fn matmul_ta_matches_explicit_transpose() {
        let a = Mat::uniform(23, 7, 1);
        let b = Mat::uniform(23, 11, 2);
        let c = matmul_ta(&a, &b);
        let expect = naive_matmul(&a.transpose(), &b);
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn matmul_tb_matches_explicit_transpose() {
        let a = Mat::uniform(19, 8, 3);
        let b = Mat::uniform(5, 8, 4);
        let c = matmul_tb(&a, &b);
        let expect = naive_matmul(&a, &b.transpose());
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn matmul_par_matches_serial() {
        let a = Mat::uniform(31, 15, 5);
        let b = Mat::uniform(15, 9, 6);
        assert!(matmul_par(&a, &b).max_abs_diff(&matmul(&a, &b)) < 1e-12);
    }

    #[test]
    fn into_variants_reuse_storage() {
        let a = Mat::uniform(6, 4, 7);
        let b = Mat::uniform(4, 5, 8);
        let mut c = Mat::filled(6, 5, f64::NAN);
        matmul_into(&a, &b, &mut c);
        assert!(c.all_finite());
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)) < 1e-12);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Mat::uniform(9, 9, 10);
        assert!(matmul(&a, &Mat::eye(9)).max_abs_diff(&a) < 1e-15);
        assert!(matmul(&Mat::eye(9), &a).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn mismatched_dims_panic() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        matmul(&a, &b);
    }

    #[test]
    fn dot_handles_remainders() {
        for n in 0..10 {
            let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let y: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
            let expect: f64 = (0..n).map(|i| (i * i * 2) as f64).sum();
            assert_eq!(dot(&x, &y), expect);
        }
    }
}
