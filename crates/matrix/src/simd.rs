//! Runtime-dispatched SIMD microkernels (`std::arch`, AVX2 + FMA).
//!
//! The packed GEMM driver in [`gemm`](crate::gemm) is written against an
//! abstract `MR×NR` register microkernel that consumes *packed* operand
//! panels (see [`pack`](crate::pack)). This module provides the two
//! implementations and the once-per-process choice between them:
//!
//! * [`kernel_6x8_avx2`] — a 6×8 `f64` microkernel using 256-bit
//!   AVX2 + FMA intrinsics: twelve `ymm` accumulators (6 rows × 2
//!   vectors of 4 lanes), two packed-`B` loads and six `A` broadcasts
//!   per inner-product step. Twelve independent FMA chains keep both
//!   FMA ports busy past the 4-5-cycle FMA latency.
//! * [`kernel_4x8_scalar`] — the portable fallback: a plain-Rust 4×8
//!   register microkernel over the same packed panel format, which LLVM
//!   autovectorizes to whatever the target baseline offers (SSE2 on
//!   x86-64).
//!
//! ## Dispatch
//!
//! [`active`] detects AVX2 + FMA once (`is_x86_feature_detected!`),
//! caches the decision in a `OnceLock`, and every GEMM call reads the
//! cached [`KernelCfg`]. Setting `NMF_FORCE_SCALAR=1` in the environment
//! before the first kernel call forces the scalar path — the hook the
//! forced-scalar CI job and the `forced_scalar` integration test use to
//! exercise the fallback on AVX2 hosts. Because the decision is cached,
//! the microkernel (and therefore the packed-panel geometry, which
//! depends on `MR`) never changes mid-process: packed operands built by
//! one call are always consumed by the same kernel family.
//!
//! The module also provides dispatched long-vector reductions
//! ([`dot`](crate::gemm::dot) / [`dot4`](crate::gemm::dot4) call into
//! [`dot_avx2`] / [`dot4_avx2`] above a length threshold).

use std::sync::OnceLock;

/// Columns of `C` produced per microkernel call (shared by both paths;
/// packed `B` tiles are `KC×NR`).
pub const NR: usize = 8;
/// Inner-dimension panel depth shared by packing and the drivers: a
/// `KC×NR` tile of `B` (16 KiB) sits comfortably in L1 while an `MR×KC`
/// panel of `A` streams beside it.
pub const KC: usize = 256;
/// `MR` of the AVX2 microkernel.
pub const MR_AVX2: usize = 6;
/// `MR` of the scalar fallback microkernel.
pub const MR_SCALAR: usize = 4;

/// Which microkernel family the process dispatched to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// 256-bit AVX2 + FMA 6×8 microkernel.
    Avx2Fma,
    /// Portable scalar 4×8 microkernel (autovectorized by LLVM).
    Scalar,
}

/// The cached dispatch decision: kernel path plus the register-block
/// geometry the packing layer must match.
#[derive(Clone, Copy, Debug)]
pub struct KernelCfg {
    pub path: KernelPath,
    /// Rows of `C` per microkernel call; packed `A` panels are `MR×KC`.
    pub mr: usize,
}

static ACTIVE: OnceLock<KernelCfg> = OnceLock::new();

fn detect() -> KernelCfg {
    let forced_scalar = std::env::var("NMF_FORCE_SCALAR")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    #[cfg(target_arch = "x86_64")]
    {
        if !forced_scalar && is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return KernelCfg {
                path: KernelPath::Avx2Fma,
                mr: MR_AVX2,
            };
        }
    }
    let _ = forced_scalar;
    KernelCfg {
        path: KernelPath::Scalar,
        mr: MR_SCALAR,
    }
}

/// The process-wide kernel configuration (detected once, then cached).
#[inline]
pub fn active() -> KernelCfg {
    *ACTIVE.get_or_init(detect)
}

/// Human-readable name of the active microkernel, for benchmark
/// methodology records and the forced-scalar test.
pub fn active_name() -> &'static str {
    match active().path {
        KernelPath::Avx2Fma => "avx2+fma-6x8",
        KernelPath::Scalar => "scalar-4x8",
    }
}

/// `C[0..mr_eff, 0..nr_eff] += PA · PB` for one packed panel pair:
/// `pa` is an `MR_AVX2×kc` packed `A` panel (`pa[d*MR + r]`), `pb` a
/// `kc×NR` packed `B` tile (`pb[d*NR + t]`), `c` the top-left element of
/// the output tile with row stride `ldc`. Rows ≥ `mr_eff` / columns ≥
/// `nr_eff` of the register tile are computed (they multiply the packing
/// zero-padding) but not stored.
///
/// # Safety
///
/// * The caller must have verified AVX2 and FMA support (this function
///   is `#[target_feature]`-compiled); call only when
///   [`active`]`().path == KernelPath::Avx2Fma`.
/// * `pa` must hold at least `MR_AVX2*kc` elements, `pb` at least
///   `NR*kc`.
/// * `c` must be valid for reads and writes at `r*ldc + t` for all
///   `r < mr_eff`, `t < nr_eff`, with `mr_eff ≤ MR_AVX2`, `nr_eff ≤ NR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn kernel_6x8_avx2(
    pa: *const f64,
    pb: *const f64,
    kc: usize,
    c: *mut f64,
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    use std::arch::x86_64::*;
    let mut acc: [[__m256d; 2]; MR_AVX2] = [[_mm256_setzero_pd(); 2]; MR_AVX2];
    let mut pa = pa;
    let mut pb = pb;
    // Two inner-product steps per trip: halves the loop overhead and
    // gives the prefetcher a longer window on the streamed panels. The
    // row loops are fully unrolled by LLVM (constant trip count): six
    // broadcasts feeding twelve independent FMA chains per step.
    let paired = kc / 2;
    for _ in 0..paired {
        _mm_prefetch(pb.cast::<i8>().add(16 * NR), _MM_HINT_T0);
        let b0 = _mm256_loadu_pd(pb);
        let b1 = _mm256_loadu_pd(pb.add(4));
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let ar = _mm256_set1_pd(*pa.add(r));
            acc_r[0] = _mm256_fmadd_pd(ar, b0, acc_r[0]);
            acc_r[1] = _mm256_fmadd_pd(ar, b1, acc_r[1]);
        }
        let c0 = _mm256_loadu_pd(pb.add(NR));
        let c1 = _mm256_loadu_pd(pb.add(NR + 4));
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let ar = _mm256_set1_pd(*pa.add(MR_AVX2 + r));
            acc_r[0] = _mm256_fmadd_pd(ar, c0, acc_r[0]);
            acc_r[1] = _mm256_fmadd_pd(ar, c1, acc_r[1]);
        }
        pa = pa.add(2 * MR_AVX2);
        pb = pb.add(2 * NR);
    }
    if kc % 2 == 1 {
        let b0 = _mm256_loadu_pd(pb);
        let b1 = _mm256_loadu_pd(pb.add(4));
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let ar = _mm256_set1_pd(*pa.add(r));
            acc_r[0] = _mm256_fmadd_pd(ar, b0, acc_r[0]);
            acc_r[1] = _mm256_fmadd_pd(ar, b1, acc_r[1]);
        }
    }
    if mr_eff == MR_AVX2 && nr_eff == NR {
        for (r, acc_r) in acc.iter().enumerate() {
            let cp = c.add(r * ldc);
            _mm256_storeu_pd(cp, _mm256_add_pd(_mm256_loadu_pd(cp), acc_r[0]));
            let cp4 = cp.add(4);
            _mm256_storeu_pd(cp4, _mm256_add_pd(_mm256_loadu_pd(cp4), acc_r[1]));
        }
    } else {
        // Edge tile: spill the register block and add the valid region.
        let mut tmp = [0.0f64; MR_AVX2 * NR];
        for (r, acc_r) in acc.iter().enumerate() {
            _mm256_storeu_pd(tmp.as_mut_ptr().add(r * NR), acc_r[0]);
            _mm256_storeu_pd(tmp.as_mut_ptr().add(r * NR + 4), acc_r[1]);
        }
        for r in 0..mr_eff {
            for t in 0..nr_eff {
                *c.add(r * ldc + t) += tmp[r * NR + t];
            }
        }
    }
}

/// Portable counterpart of [`kernel_6x8_avx2`] over `MR_SCALAR×kc`
/// packed panels: a 4×8 register block (32 accumulators — within what
/// LLVM keeps in the 16 SSE2 registers of baseline x86-64).
#[inline]
pub fn kernel_4x8_scalar(
    pa: &[f64],
    pb: &[f64],
    kc: usize,
    c: &mut [f64],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    debug_assert!(pa.len() >= MR_SCALAR * kc && pb.len() >= NR * kc);
    let mut acc = [[0.0f64; NR]; MR_SCALAR];
    for d in 0..kc {
        let ad: &[f64; MR_SCALAR] = pa[d * MR_SCALAR..d * MR_SCALAR + MR_SCALAR]
            .try_into()
            .expect("MR-wide packed A step");
        let bd: &[f64; NR] = pb[d * NR..d * NR + NR]
            .try_into()
            .expect("NR-wide packed B step");
        for (acc_r, &ar) in acc.iter_mut().zip(ad) {
            for (av, &bv) in acc_r.iter_mut().zip(bd) {
                *av += ar * bv;
            }
        }
    }
    if mr_eff == MR_SCALAR && nr_eff == NR {
        for (r, acc_r) in acc.iter().enumerate() {
            let crow = &mut c[r * ldc..r * ldc + NR];
            for (cv, &av) in crow.iter_mut().zip(acc_r) {
                *cv += av;
            }
        }
    } else {
        for (r, acc_r) in acc.iter().enumerate().take(mr_eff) {
            let crow = &mut c[r * ldc..r * ldc + nr_eff];
            for (cv, &av) in crow.iter_mut().zip(acc_r) {
                *cv += av;
            }
        }
    }
}

/// AVX2 + FMA dot product: four vector accumulators (16 lanes in
/// flight), horizontally reduced once at the end.
///
/// # Safety
///
/// The caller must have verified AVX2 and FMA support (dispatch through
/// [`active`]). `x` and `y` must have equal lengths.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot_avx2(x: &[f64], y: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let xp = x.as_ptr();
    let yp = y.as_ptr();
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    let mut a2 = _mm256_setzero_pd();
    let mut a3 = _mm256_setzero_pd();
    let chunks = n / 16;
    for cidx in 0..chunks {
        let i = cidx * 16;
        a0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), a0);
        a1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(xp.add(i + 4)),
            _mm256_loadu_pd(yp.add(i + 4)),
            a1,
        );
        a2 = _mm256_fmadd_pd(
            _mm256_loadu_pd(xp.add(i + 8)),
            _mm256_loadu_pd(yp.add(i + 8)),
            a2,
        );
        a3 = _mm256_fmadd_pd(
            _mm256_loadu_pd(xp.add(i + 12)),
            _mm256_loadu_pd(yp.add(i + 12)),
            a3,
        );
    }
    let mut i = chunks * 16;
    while i + 4 <= n {
        a0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), a0);
        i += 4;
    }
    let v = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
    let hi = _mm256_extractf128_pd(v, 1);
    let lo = _mm256_castpd256_pd128(v);
    let s2 = _mm_add_pd(lo, hi);
    let s1 = _mm_add_sd(s2, _mm_unpackhi_pd(s2, s2));
    let mut s = _mm_cvtsd_f64(s1);
    for j in i..n {
        s += *xp.add(j) * *yp.add(j);
    }
    s
}

/// AVX2 + FMA quad dot product sharing the left operand: `x` streams
/// once against four right operands (one accumulator vector each).
///
/// # Safety
///
/// The caller must have verified AVX2 and FMA support (dispatch through
/// [`active`]). All five slices must have equal lengths.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot4_avx2(
    x: &[f64],
    y0: &[f64],
    y1: &[f64],
    y2: &[f64],
    y3: &[f64],
) -> (f64, f64, f64, f64) {
    use std::arch::x86_64::*;
    debug_assert!(
        x.len() == y0.len() && x.len() == y1.len() && x.len() == y2.len() && x.len() == y3.len()
    );
    let n = x.len();
    let xp = x.as_ptr();
    let mut a0 = _mm256_setzero_pd();
    let mut a1 = _mm256_setzero_pd();
    let mut a2 = _mm256_setzero_pd();
    let mut a3 = _mm256_setzero_pd();
    let chunks = n / 4;
    for cidx in 0..chunks {
        let i = cidx * 4;
        let xv = _mm256_loadu_pd(xp.add(i));
        a0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y0.as_ptr().add(i)), a0);
        a1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y1.as_ptr().add(i)), a1);
        a2 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y2.as_ptr().add(i)), a2);
        a3 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y3.as_ptr().add(i)), a3);
    }
    #[inline]
    unsafe fn hsum(v: std::arch::x86_64::__m256d) -> f64 {
        let hi = _mm256_extractf128_pd(v, 1);
        let lo = _mm256_castpd256_pd128(v);
        let s2 = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s2, _mm_unpackhi_pd(s2, s2)))
    }
    let (mut s0, mut s1, mut s2, mut s3) = (hsum(a0), hsum(a1), hsum(a2), hsum(a3));
    for i in chunks * 4..n {
        let xv = *xp.add(i);
        s0 += xv * y0[i];
        s1 += xv * y1[i];
        s2 += xv * y2[i];
        s3 += xv * y3[i];
    }
    (s0, s1, s2, s3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_cached_and_consistent() {
        let first = active();
        let second = active();
        assert_eq!(first.path, second.path);
        assert_eq!(first.mr, second.mr);
        match first.path {
            KernelPath::Avx2Fma => assert_eq!(first.mr, MR_AVX2),
            KernelPath::Scalar => assert_eq!(first.mr, MR_SCALAR),
        }
    }

    #[test]
    fn scalar_kernel_matches_reference_on_packed_panels() {
        // 4×8 panel over kc=5: pa[d*4+r] = A[r][d], pb[d*8+t] = B[d][t].
        let kc = 5;
        let pa: Vec<f64> = (0..MR_SCALAR * kc).map(|i| (i % 7) as f64 - 3.0).collect();
        let pb: Vec<f64> = (0..NR * kc).map(|i| (i % 5) as f64 * 0.5).collect();
        let mut c = vec![1.0f64; MR_SCALAR * NR];
        kernel_4x8_scalar(&pa, &pb, kc, &mut c, NR, MR_SCALAR, NR);
        for r in 0..MR_SCALAR {
            for t in 0..NR {
                let mut expect = 1.0;
                for d in 0..kc {
                    expect += pa[d * MR_SCALAR + r] * pb[d * NR + t];
                }
                assert!((c[r * NR + t] - expect).abs() < 1e-12);
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_matches_scalar_reference() {
        if !(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")) {
            return; // nothing to test on this host
        }
        let kc = 19;
        let pa: Vec<f64> = (0..MR_AVX2 * kc).map(|i| (i % 11) as f64 - 5.0).collect();
        let pb: Vec<f64> = (0..NR * kc).map(|i| (i % 9) as f64 * 0.25).collect();
        for (mr_eff, nr_eff) in [(MR_AVX2, NR), (3, NR), (MR_AVX2, 5), (2, 3)] {
            let mut c = vec![0.5f64; MR_AVX2 * NR];
            unsafe {
                kernel_6x8_avx2(
                    pa.as_ptr(),
                    pb.as_ptr(),
                    kc,
                    c.as_mut_ptr(),
                    NR,
                    mr_eff,
                    nr_eff,
                );
            }
            for r in 0..MR_AVX2 {
                for t in 0..NR {
                    let mut expect = 0.5;
                    if r < mr_eff && t < nr_eff {
                        for d in 0..kc {
                            expect += pa[d * MR_AVX2 + r] * pb[d * NR + t];
                        }
                    }
                    assert!(
                        (c[r * NR + t] - expect).abs() < 1e-12,
                        "mismatch at ({r},{t}) for clip {mr_eff}x{nr_eff}"
                    );
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_dots_match_scalar() {
        if !(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")) {
            return;
        }
        for n in [0usize, 3, 16, 37, 64, 127] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let ys: Vec<Vec<f64>> = (0..4)
                .map(|s| (0..n).map(|i| ((i + s) as f64).cos()).collect())
                .collect();
            let reference: Vec<f64> = ys
                .iter()
                .map(|y| x.iter().zip(y).map(|(a, b)| a * b).sum())
                .collect();
            let d = unsafe { dot_avx2(&x, &ys[0]) };
            assert!((d - reference[0]).abs() < 1e-10 * (n.max(1) as f64));
            let (s0, s1, s2, s3) = unsafe { dot4_avx2(&x, &ys[0], &ys[1], &ys[2], &ys[3]) };
            for (got, want) in [s0, s1, s2, s3].iter().zip(&reference) {
                assert!((got - want).abs() < 1e-10 * (n.max(1) as f64));
            }
        }
    }
}
