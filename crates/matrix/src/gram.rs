//! Symmetric rank-k products (`Gram` in the paper's time breakdown).
//!
//! Both alternating updates begin with a local Gram computation:
//! `HHᵀ` from the local columns of `H` (line 3 of Algorithm 3) and `WᵀW`
//! from the local rows of `W` (line 9). These are `k×k` symmetric products
//! of tall-skinny inputs; exploiting symmetry halves the flops relative to
//! a general GEMM.

use crate::gemm::{dot, dot4};
use crate::mat::Mat;

/// `G = XᵀX` for an `m×k` matrix `X`; `G` is `k×k` symmetric.
pub fn gram(x: &Mat) -> Mat {
    let mut g = Mat::zeros(x.ncols(), x.ncols());
    gram_into(x, &mut g);
    g
}

/// `G = XᵀX` into caller-owned `g` (overwritten).
///
/// Accumulates the upper triangle four sample rows at a time, so each
/// `G` row is loaded and stored once per four rank-1 updates — the same
/// register-blocking as `matmul_ta_into`, restricted to `j ≥ i`.
pub fn gram_into(x: &Mat, g: &mut Mat) {
    let k = x.ncols();
    assert_eq!(g.shape(), (k, k), "gram output shape mismatch");
    g.as_mut_slice().fill(0.0);
    let m = x.nrows();
    let m4 = m - m % 4;
    let gm = g.as_mut_slice();
    let mut r = 0;
    while r < m4 {
        let x0 = x.row(r);
        let x1 = x.row(r + 1);
        let x2 = x.row(r + 2);
        let x3 = x.row(r + 3);
        for i in 0..k {
            let (a0, a1, a2, a3) = (x0[i], x1[i], x2[i], x3[i]);
            if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            let gi = &mut gm[i * k..(i + 1) * k];
            for j in i..k {
                gi[j] += a0 * x0[j] + a1 * x1[j] + a2 * x2[j] + a3 * x3[j];
            }
        }
        r += 4;
    }
    // Remainder rows: plain rank-1 upper-triangle accumulation.
    for rr in m4..m {
        let xr = x.row(rr);
        for i in 0..k {
            let xri = xr[i];
            if xri == 0.0 {
                continue;
            }
            let gi = &mut gm[i * k..(i + 1) * k];
            for j in i..k {
                gi[j] += xri * xr[j];
            }
        }
    }
    mirror_upper_to_lower(g);
}

/// `G = X·Xᵀ` for a `k×n` matrix `X`; `G` is `k×k` symmetric.
///
/// This is the kernel for `HHᵀ` where `H` is stored as `k×n`.
pub fn outer_gram(x: &Mat) -> Mat {
    let mut g = Mat::zeros(x.nrows(), x.nrows());
    outer_gram_into(x, &mut g);
    g
}

/// `G = X·Xᵀ` into caller-owned `g` (overwritten).
///
/// Upper triangle only (then mirrored), four columns per pass: row `i`
/// streams through cache once per *four* rows `j ≥ i` via the
/// dispatched [`dot4`] instead of once per entry — the fix for the wide
/// (`n ≫ k`) case where per-entry [`dot`] made `XXᵀ` ~1.9× slower than
/// the equivalent `XᵀX`.
pub fn outer_gram_into(x: &Mat, g: &mut Mat) {
    let k = x.nrows();
    assert_eq!(g.shape(), (k, k), "outer_gram output shape mismatch");
    for i in 0..k {
        let xi = x.row(i);
        let mut j = i;
        while j + 4 <= k {
            let (s0, s1, s2, s3) = dot4(xi, x.row(j), x.row(j + 1), x.row(j + 2), x.row(j + 3));
            g[(i, j)] = s0;
            g[(i, j + 1)] = s1;
            g[(i, j + 2)] = s2;
            g[(i, j + 3)] = s3;
            j += 4;
        }
        for jj in j..k {
            g[(i, jj)] = dot(xi, x.row(jj));
        }
    }
    mirror_upper_to_lower(g);
}

fn mirror_upper_to_lower(g: &mut Mat) {
    let k = g.nrows();
    for i in 0..k {
        for j in 0..i {
            g[(i, j)] = g[(j, i)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul_ta, matmul_tb};
    use crate::rng::Fill;

    #[test]
    fn gram_matches_gemm() {
        let x = Mat::uniform(29, 7, 11);
        let g = gram(&x);
        assert!(g.max_abs_diff(&matmul_ta(&x, &x)) < 1e-12);
    }

    #[test]
    fn outer_gram_matches_gemm() {
        // k values straddling the 4-wide dot4 blocking, including the
        // wide (n ≫ k) regime the dot4 restructuring targets.
        for (k, n) in [(6, 41), (4, 16), (9, 200), (1, 7), (3, 4096)] {
            let x = Mat::uniform(k, n, 12 + k as u64);
            let g = outer_gram(&x);
            assert!(
                g.max_abs_diff(&matmul_tb(&x, &x)) < 1e-9,
                "outer_gram wrong at {k}x{n}"
            );
        }
    }

    #[test]
    fn gram_is_symmetric_and_psd_diagonal() {
        let x = Mat::gaussian(50, 9, 13);
        let g = gram(&x);
        for i in 0..9 {
            assert!(g[(i, i)] >= 0.0, "diagonal of a Gram matrix is nonnegative");
            for j in 0..9 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn gram_of_empty_rows_is_zero() {
        let x = Mat::zeros(0, 5);
        assert_eq!(gram(&x), Mat::zeros(5, 5));
    }
}
