//! Element-wise operations, norms, and inner products on [`Mat`].
//!
//! These cover the arithmetic MU/HALS updates need (Hadamard product and
//! quotient, nonnegative projection) and the pieces of the efficient NMF
//! objective `‖A−WH‖² = ‖A‖² − 2⟨WᵀA, H⟩ + ⟨WᵀW, HHᵀ⟩`.

use crate::mat::Mat;

impl Mat {
    /// Squared Frobenius norm `‖M‖²_F`.
    pub fn fro_norm_sq(&self) -> f64 {
        self.as_slice().iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.fro_norm_sq().sqrt()
    }

    /// Frobenius inner product `⟨self, other⟩ = Σᵢⱼ selfᵢⱼ·otherᵢⱼ`.
    pub fn fro_dot(&self, other: &Mat) -> f64 {
        assert_eq!(self.shape(), other.shape(), "fro_dot shape mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
    }

    /// `self *= s` (scalar).
    pub fn scale(&mut self, s: f64) {
        for a in self.as_mut_slice() {
            *a *= s;
        }
    }

    /// Hadamard (element-wise) product in place: `self ∘= other`.
    pub fn hadamard_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a *= b;
        }
    }

    /// Element-wise quotient with an epsilon floor on the denominator:
    /// `selfᵢⱼ ∗= numᵢⱼ / max(denᵢⱼ, eps)`.
    ///
    /// This is the multiplicative-update step `W ∘ (AHᵀ) ⊘ (W HHᵀ)`; the
    /// floor is the standard guard against division by zero.
    pub fn mu_update(&mut self, num: &Mat, den: &Mat, eps: f64) {
        assert_eq!(self.shape(), num.shape());
        assert_eq!(self.shape(), den.shape());
        for ((a, n), d) in self
            .as_mut_slice()
            .iter_mut()
            .zip(num.as_slice())
            .zip(den.as_slice())
        {
            *a *= n / d.max(eps);
        }
    }

    /// Projects onto the nonnegative orthant: `selfᵢⱼ = max(selfᵢⱼ, 0)`.
    pub fn project_nonnegative(&mut self) {
        for a in self.as_mut_slice() {
            if *a < 0.0 {
                *a = 0.0;
            }
        }
    }

    /// Largest entry.
    pub fn max_entry(&self) -> f64 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest entry.
    pub fn min_entry(&self) -> f64 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.as_slice().iter().sum()
    }

    /// Count of nonzero entries (exact zero test; useful on projected
    /// factors where zeros are produced exactly).
    pub fn count_nonzero(&self) -> usize {
        self.as_slice().iter().filter(|&&x| x != 0.0).count()
    }
}

/// Relative objective `‖A−WH‖_F / ‖A‖_F` computed densely (test helper for
/// small problems; the library computes the same quantity without forming
/// `WH` via the Gram identity).
pub fn dense_relative_error(a: &Mat, w: &Mat, h: &Mat) -> f64 {
    let wh = crate::gemm::matmul(w, h);
    let mut diff = a.clone();
    diff.sub_assign(&wh);
    diff.fro_norm() / a.fro_norm().max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, matmul_ta};
    use crate::gram::{gram, outer_gram};
    use crate::rng::Fill;

    #[test]
    fn norms_and_dots() {
        let m = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.fro_norm_sq(), 25.0);
        assert_eq!(m.fro_norm(), 5.0);
        assert_eq!(m.fro_dot(&Mat::eye(2)), 7.0);
    }

    #[test]
    fn objective_identity_holds() {
        // ‖A−WH‖² = ‖A‖² − 2⟨WᵀA, H⟩ + ⟨WᵀW, HHᵀ⟩
        let a = Mat::uniform(12, 9, 31);
        let w = Mat::uniform(12, 4, 32);
        let h = Mat::uniform(4, 9, 33);
        let wh = matmul(&w, &h);
        let mut diff = a.clone();
        diff.sub_assign(&wh);
        let direct = diff.fro_norm_sq();
        let wta = matmul_ta(&w, &a);
        let indirect = a.fro_norm_sq() - 2.0 * wta.fro_dot(&h) + gram(&w).fro_dot(&outer_gram(&h));
        assert!((direct - indirect).abs() < 1e-9 * direct.max(1.0));
    }

    #[test]
    fn mu_update_applies_ratio() {
        let mut w = Mat::filled(2, 2, 2.0);
        let num = Mat::filled(2, 2, 6.0);
        let den = Mat::filled(2, 2, 3.0);
        w.mu_update(&num, &den, 1e-16);
        assert!(w.max_abs_diff(&Mat::filled(2, 2, 4.0)) < 1e-15);
    }

    #[test]
    fn mu_update_guards_zero_denominator() {
        let mut w = Mat::filled(1, 1, 1.0);
        let num = Mat::filled(1, 1, 1.0);
        let den = Mat::filled(1, 1, 0.0);
        w.mu_update(&num, &den, 1e-16);
        assert!(w.all_finite());
    }

    #[test]
    fn projection_clamps_negatives_only() {
        let mut m = Mat::from_rows(&[&[-1.0, 2.0], &[0.0, -0.5]]);
        m.project_nonnegative();
        assert_eq!(m, Mat::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    fn extremes_and_sum() {
        let m = Mat::from_rows(&[&[1.0, -2.0], &[5.0, 0.0]]);
        assert_eq!(m.max_entry(), 5.0);
        assert_eq!(m.min_entry(), -2.0);
        assert_eq!(m.sum(), 4.0);
        assert_eq!(m.count_nonzero(), 3);
    }

    #[test]
    fn dense_relative_error_zero_for_exact_factorization() {
        let w = Mat::uniform(8, 3, 40);
        let h = Mat::uniform(3, 6, 41);
        let a = matmul(&w, &h);
        assert!(dense_relative_error(&a, &w, &h) < 1e-14);
    }
}
