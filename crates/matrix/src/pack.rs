//! Operand packing for the GEMM microkernels (GotoBLAS-style).
//!
//! The microkernels in [`simd`] read both operands from
//! *packed* buffers so every inner-product step is a pair of contiguous
//! loads — no strides, no edge branches:
//!
//! * **`A` panels** (left operand): the `m×kdim` operand is cut into
//!   depth-`KC` column blocks, and each block into `MR`-row panels laid
//!   out depth-major — `panel[d*MR + r] = A[i0+r][k0+d]`. Rows past `m`
//!   are zero-padded so the microkernel never branches on `mr_eff`
//!   inside the k-loop (the padding contributes exact `+0.0` terms that
//!   are simply not stored).
//! * **`B` tiles** (right operand): each depth-`KC` row block is cut
//!   into `NR`-column tiles laid out depth-major —
//!   `tile[d*NR + t] = B[k0+d][j0+t]`, zero-padded past `n`.
//!
//! `B` tiles are packed per GEMM call into a thread-local scratch buffer
//! (they depend on the right operand, which changes every iteration).
//! The left operand can instead be packed **once per session** into a
//! [`PackedPanels`] and reused by every subsequent
//! [`matmul_packed_into`](crate::gemm::matmul_packed_into) call — the
//! ANLS structure exploited by `crates/core`: the data matrix `A` never
//! changes across iterations, so its panels (and its transpose's) are
//! built at engine construction and amortized over the whole run.
//!
//! The panel height `MR` is a property of the dispatched microkernel
//! (6 for AVX2+FMA, 4 for the scalar fallback), so [`PackedPanels`]
//! records the `mr` it was packed with; because dispatch is cached for
//! the process lifetime, packed operands are always consumed by the
//! kernel geometry that produced them.

use crate::mat::Mat;
use crate::simd;

pub use crate::simd::{KC, NR};

/// A left GEMM operand packed into microkernel-ready `MR×KC` panels.
///
/// Logically an `m×kdim` matrix; physically `ceil(m/MR)·MR · kdim`
/// floats in panel order (see the module docs for the layout). Built
/// with [`pack_into`](PackedPanels::pack_into) (packs the operand as-is)
/// or [`pack_transposed_into`](PackedPanels::pack_transposed_into)
/// (packs the operand's transpose, for `AᵀB` products without forming
/// `Aᵀ`). Storage is retained across re-packs, so refreshing the panels
/// for the same shape allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct PackedPanels {
    mr: usize,
    m: usize,
    kdim: usize,
    data: Vec<f64>,
}

impl PackedPanels {
    /// An empty set of panels (no packed operand).
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience constructor: pack `a` into fresh panels.
    pub fn pack(a: &Mat) -> Self {
        let mut p = Self::new();
        p.pack_into(a);
        p
    }

    /// Convenience constructor: pack `aᵀ` into fresh panels.
    pub fn pack_transposed(a: &Mat) -> Self {
        let mut p = Self::new();
        p.pack_transposed_into(a);
        p
    }

    /// Whether any operand is currently packed.
    pub fn is_empty(&self) -> bool {
        self.m == 0 || self.kdim == 0
    }

    /// Logical shape `(rows, inner)` of the packed operand.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.kdim)
    }

    /// The microkernel panel height these panels were packed for.
    pub fn mr(&self) -> usize {
        self.mr
    }

    /// Bytes of packed storage currently held.
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Length (in floats) of the `B`-tile scratch that
    /// [`matmul_packed_scratch_into`](crate::gemm::matmul_packed_scratch_into)
    /// needs for a right operand with `n` columns: one `KC`-deep block of
    /// `NR`-wide tiles. Pre-sizing a caller-owned scratch to this bound
    /// makes every subsequent packed GEMM allocation-free.
    pub fn b_scratch_len(&self, n: usize) -> usize {
        if self.is_empty() {
            return 0;
        }
        n.div_ceil(NR) * NR * KC.min(self.kdim)
    }

    /// Drop the packed operand (keeps the allocation for reuse).
    pub fn clear(&mut self) {
        self.m = 0;
        self.kdim = 0;
        self.data.clear();
    }

    fn reset(&mut self, m: usize, kdim: usize) -> usize {
        let mr = simd::active().mr;
        self.mr = mr;
        self.m = m;
        self.kdim = kdim;
        let rows_padded = m.div_ceil(mr) * mr;
        self.data.clear();
        self.data.resize(rows_padded * kdim, 0.0);
        rows_padded
    }

    /// Pack the `m×kdim` matrix `a` into panels (row `i` of the packed
    /// operand is row `i` of `a`).
    pub fn pack_into(&mut self, a: &Mat) {
        self.pack_slice_into(a.as_slice(), a.nrows(), a.ncols());
    }

    /// Slice form of [`pack_into`](PackedPanels::pack_into): `a` is an
    /// `m×kdim` row-major slice (row stride `kdim`). Used by the
    /// row-parallel GEMM to pack per-thread row stripes directly.
    pub fn pack_slice_into(&mut self, a: &[f64], m: usize, kdim: usize) {
        debug_assert_eq!(a.len(), m * kdim);
        let rows_padded = self.reset(m, kdim);
        if self.data.is_empty() {
            return;
        }
        let mr = self.mr;
        let mut k0 = 0;
        while k0 < kdim {
            let kc = KC.min(kdim - k0);
            let kblock_base = rows_padded * k0;
            let mut i0 = 0;
            while i0 < m {
                let panel = &mut self.data[kblock_base + i0 * kc..kblock_base + (i0 + mr) * kc];
                let mr_eff = mr.min(m - i0);
                for r in 0..mr_eff {
                    let src = &a[(i0 + r) * kdim + k0..(i0 + r) * kdim + k0 + kc];
                    for (d, &v) in src.iter().enumerate() {
                        panel[d * mr + r] = v;
                    }
                }
                i0 += mr;
            }
            k0 += kc;
        }
    }

    /// Pack the transpose of the `kdim×m` matrix `a` into panels (row
    /// `i` of the packed operand is **column** `i` of `a`), reading `a`
    /// row-by-row in `MR`-wide contiguous chunks.
    pub fn pack_transposed_into(&mut self, a: &Mat) {
        let (kdim, m) = a.shape();
        let rows_padded = self.reset(m, kdim);
        if self.data.is_empty() {
            return;
        }
        let mr = self.mr;
        let mut k0 = 0;
        while k0 < kdim {
            let kc = KC.min(kdim - k0);
            let kblock_base = rows_padded * k0;
            for d in 0..kc {
                let arow = a.row(k0 + d);
                let mut i0 = 0;
                while i0 < m {
                    let mr_eff = mr.min(m - i0);
                    let dst_at = kblock_base + i0 * kc + d * mr;
                    self.data[dst_at..dst_at + mr_eff].copy_from_slice(&arow[i0..i0 + mr_eff]);
                    i0 += mr;
                }
            }
            k0 += kc;
        }
    }

    /// The packed `MR×kc` panel for row block `i0` (a multiple of `mr`)
    /// within the depth block starting at `k0` (a multiple of `KC`).
    #[inline]
    pub(crate) fn panel(&self, k0: usize, kc: usize, i0: usize) -> &[f64] {
        debug_assert_eq!(k0 % KC, 0);
        debug_assert_eq!(i0 % self.mr, 0);
        let rows_padded = self.m.div_ceil(self.mr) * self.mr;
        let base = rows_padded * k0 + i0 * kc;
        &self.data[base..base + self.mr * kc]
    }
}

/// Pack the depth-`kc` row block of `b` (an `?×n` row-major slice with
/// row stride `n`) starting at row `k0` into `NR`-column tiles:
/// `out[jt*NR*kc + d*NR + t] = b[(k0+d)*n + jt*NR + t]`, zero-padded to
/// a whole tile past `n`. `out` is resized (capacity is retained across
/// calls, so steady-state repacking allocates nothing once warm).
pub(crate) fn pack_b_block(b: &[f64], n: usize, k0: usize, kc: usize, out: &mut Vec<f64>) {
    let ntiles = n.div_ceil(NR);
    let needed = ntiles * NR * kc;
    if out.len() < needed {
        out.resize(needed, 0.0);
    }
    // Every element of the needed range is written below (full tiles by
    // the NR-wide copy, the edge tile's pad lanes by the explicit fill),
    // so no bulk re-zeroing is needed — this keeps the per-call packing
    // cost at one streaming copy of the block.
    let full_tiles = n / NR;
    for d in 0..kc {
        let brow = &b[(k0 + d) * n..(k0 + d) * n + n];
        for jt in 0..full_tiles {
            let dst_at = jt * NR * kc + d * NR;
            out[dst_at..dst_at + NR].copy_from_slice(&brow[jt * NR..jt * NR + NR]);
        }
        if full_tiles < ntiles {
            let j0 = full_tiles * NR;
            let w = n - j0;
            let dst_at = full_tiles * NR * kc + d * NR;
            out[dst_at..dst_at + w].copy_from_slice(&brow[j0..]);
            out[dst_at + w..dst_at + NR].fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Fill;

    #[test]
    fn pack_roundtrips_every_element() {
        for (m, kdim) in [(1, 1), (5, 7), (6, 8), (13, 300), (4, 256), (11, 257)] {
            let a = Mat::uniform(m, kdim, 42);
            let p = PackedPanels::pack(&a);
            assert_eq!(p.shape(), (m, kdim));
            let mr = p.mr();
            let mut k0 = 0;
            while k0 < kdim {
                let kc = KC.min(kdim - k0);
                let mut i0 = 0;
                while i0 < m {
                    let panel = p.panel(k0, kc, i0);
                    for d in 0..kc {
                        for r in 0..mr {
                            let expect = if i0 + r < m { a[(i0 + r, k0 + d)] } else { 0.0 };
                            assert_eq!(panel[d * mr + r], expect, "({},{})", i0 + r, k0 + d);
                        }
                    }
                    i0 += mr;
                }
                k0 += kc;
            }
        }
    }

    #[test]
    fn pack_transposed_matches_packing_the_transpose() {
        for (rows, cols) in [(3, 9), (8, 5), (300, 13), (256, 6)] {
            let a = Mat::uniform(rows, cols, 7);
            let direct = PackedPanels::pack(&a.transpose());
            let fused = PackedPanels::pack_transposed(&a);
            assert_eq!(direct.shape(), fused.shape());
            assert_eq!(direct.data, fused.data);
        }
    }

    #[test]
    fn repack_same_shape_reuses_storage() {
        let a = Mat::uniform(37, 300, 3);
        let mut p = PackedPanels::pack(&a);
        let cap = p.data.capacity();
        let b = Mat::uniform(37, 300, 4);
        p.pack_into(&b);
        assert_eq!(p.data.capacity(), cap);
        p.pack_transposed_into(&Mat::uniform(300, 37, 5));
        assert_eq!(p.data.capacity(), cap);
    }

    #[test]
    fn b_block_packing_pads_edge_tiles() {
        let n = 11; // one full tile + a 3-wide edge tile
        let kdim = 5;
        let b = Mat::uniform(kdim, n, 9);
        let mut out = Vec::new();
        pack_b_block(b.as_slice(), n, 0, kdim, &mut out);
        assert_eq!(out.len(), 2 * NR * kdim);
        for d in 0..kdim {
            for jt in 0..2 {
                for t in 0..NR {
                    let j = jt * NR + t;
                    let expect = if j < n { b[(d, j)] } else { 0.0 };
                    assert_eq!(out[jt * NR * kdim + d * NR + t], expect);
                }
            }
        }
    }
}
