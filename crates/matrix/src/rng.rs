//! Deterministic random fills.
//!
//! The paper stresses that all algorithms are initialized "with the same
//! random seed ... so that all the algorithms perform the same
//! computations" (§6.1.3), and that each process generates its local part
//! of a synthetic matrix from "its own prime seed" (§6.1.1). Everything
//! here is therefore seeded explicitly — no global RNG state.

use crate::mat::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded constructors for [`Mat`].
pub trait Fill {
    /// Uniform entries on `[0, 1)`.
    fn uniform(nrows: usize, ncols: usize, seed: u64) -> Self;
    /// Standard normal entries (Box–Muller; avoids an extra distribution
    /// dependency).
    fn gaussian(nrows: usize, ncols: usize, seed: u64) -> Self;
}

impl Fill for Mat {
    fn uniform(nrows: usize, ncols: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..nrows * ncols).map(|_| rng.gen::<f64>()).collect();
        Mat::from_vec(nrows, ncols, data)
    }

    fn gaussian(nrows: usize, ncols: usize, seed: u64) -> Mat {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = nrows * ncols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let (z0, z1) = box_muller(&mut rng);
            data.push(z0);
            if data.len() < n {
                data.push(z1);
            }
        }
        Mat::from_vec(nrows, ncols, data)
    }
}

/// One Box–Muller draw: two independent standard normals from two uniforms.
pub fn box_muller(rng: &mut impl Rng) -> (f64, f64) {
    // Guard u1 away from zero so ln(u1) is finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Uniform nonnegative matrix scaled so that `W·H` has entries of order 1
/// when both factors are drawn this way with rank `k`.
pub fn random_factor(nrows: usize, ncols: usize, k: usize, seed: u64) -> Mat {
    let mut m = Mat::uniform(nrows, ncols, seed);
    // E[(WH)_ij] = k * E[w] * E[h]; dividing each factor by sqrt(k)/2... keep
    // it simple: scale by 1/sqrt(k) so products stay O(1).
    let s = 1.0 / (k.max(1) as f64).sqrt();
    m.scale(s);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = Mat::uniform(5, 5, 99);
        let b = Mat::uniform(5, 5, 99);
        let c = Mat::uniform(5, 5, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_entries_in_range() {
        let a = Mat::uniform(20, 20, 1);
        assert!(a.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let a = Mat::gaussian(200, 200, 7);
        let n = a.len() as f64;
        let mean = a.sum() / n;
        let var = a
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn gaussian_handles_odd_element_count() {
        let a = Mat::gaussian(3, 3, 8);
        assert_eq!(a.len(), 9);
        assert!(a.all_finite());
    }

    #[test]
    fn random_factor_is_nonnegative() {
        let f = random_factor(10, 4, 4, 3);
        assert!(f.all_nonnegative());
    }
}
