//! Owned, row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `f64` matrix stored in row-major order.
///
/// Row-major layout is chosen because every hot kernel in the NMF
/// algorithms walks rows of the tall factor matrices (`W`, `AHᵀ`) or rows
/// of the wide input blocks, and because it makes per-row slicing (used to
/// scatter/gather blocks between ranks) a contiguous-memory operation.
#[derive(Clone, PartialEq)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// An `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Mat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// An `nrows × ncols` matrix with every entry equal to `v`.
    pub fn filled(nrows: usize, ncols: usize, v: f64) -> Self {
        Mat {
            nrows,
            ncols,
            data: vec![v; nrows * ncols],
        }
    }

    /// The `n × n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "data length {} does not match {}x{}",
            data.len(),
            nrows,
            ncols
        );
        Mat { nrows, ncols, data }
    }

    /// Builds a matrix from a nested-slice literal, e.g.
    /// `Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])`.
    ///
    /// # Panics
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Mat {
            nrows: rows.len(),
            ncols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        Mat { nrows, ncols, data }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries (`nrows * ncols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The backing row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.nrows);
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.nrows);
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Two distinct rows borrowed mutably at once (for row-swap updates).
    ///
    /// # Panics
    /// Panics if `i == j`.
    pub fn two_rows_mut(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(i, j, "two_rows_mut requires distinct rows");
        let nc = self.ncols;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (a, b) = self.data.split_at_mut(hi * nc);
        let lo_row = &mut a[lo * nc..(lo + 1) * nc];
        let hi_row = &mut b[..nc];
        if i < j {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// Column `j` copied into a new vector (columns are strided in
    /// row-major layout, so this is a gather).
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.ncols);
        (0..self.nrows)
            .map(|i| self.data[i * self.ncols + j])
            .collect()
    }

    /// Overwrites column `j` with `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.ncols);
        assert_eq!(v.len(), self.nrows);
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.ncols + j] = x;
        }
    }

    /// A newly allocated copy of the sub-block with rows `r0..r0+nr` and
    /// columns `c0..c0+nc`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Mat {
        assert!(
            r0 + nr <= self.nrows && c0 + nc <= self.ncols,
            "block out of bounds"
        );
        let mut out = Mat::zeros(nr, nc);
        for i in 0..nr {
            let src = &self.data[(r0 + i) * self.ncols + c0..(r0 + i) * self.ncols + c0 + nc];
            out.row_mut(i).copy_from_slice(src);
        }
        out
    }

    /// Copies `src` into the sub-block whose top-left corner is `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Mat) {
        assert!(
            r0 + src.nrows <= self.nrows && c0 + src.ncols <= self.ncols,
            "set_block out of bounds"
        );
        for i in 0..src.nrows {
            let dst_start = (r0 + i) * self.ncols + c0;
            self.data[dst_start..dst_start + src.ncols].copy_from_slice(src.row(i));
        }
    }

    /// A copy of rows `r0..r0+nr` (contiguous in memory, so a single memcpy).
    pub fn rows_block(&self, r0: usize, nr: usize) -> Mat {
        assert!(r0 + nr <= self.nrows);
        Mat {
            nrows: nr,
            ncols: self.ncols,
            data: self.data[r0 * self.ncols..(r0 + nr) * self.ncols].to_vec(),
        }
    }

    /// A copy of columns `c0..c0+nc`.
    pub fn cols_block(&self, c0: usize, nc: usize) -> Mat {
        self.block(0, c0, self.nrows, nc)
    }

    /// Stacks `blocks` vertically. All blocks must share a column count.
    pub fn vstack(blocks: &[Mat]) -> Mat {
        assert!(!blocks.is_empty());
        let ncols = blocks[0].ncols;
        let nrows: usize = blocks.iter().map(|b| b.nrows).sum();
        let mut data = Vec::with_capacity(nrows * ncols);
        for b in blocks {
            assert_eq!(b.ncols, ncols, "vstack column mismatch");
            data.extend_from_slice(&b.data);
        }
        Mat { nrows, ncols, data }
    }

    /// Stacks `blocks` horizontally. All blocks must share a row count.
    pub fn hstack(blocks: &[Mat]) -> Mat {
        assert!(!blocks.is_empty());
        let nrows = blocks[0].nrows;
        let ncols: usize = blocks.iter().map(|b| b.ncols).sum();
        let mut out = Mat::zeros(nrows, ncols);
        let mut c0 = 0;
        for b in blocks {
            assert_eq!(b.nrows, nrows, "hstack row mismatch");
            out.set_block(0, c0, b);
            c0 += b.ncols;
        }
        out
    }

    /// Overwrites `self` with `src` (shapes must match). The workspace
    /// counterpart of `clone()`: no allocation.
    pub fn copy_from(&mut self, src: &Mat) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Reshapes this matrix to `nrows × ncols`, reusing the backing
    /// allocation when capacity suffices. For workspace buffers whose
    /// dimensions vary between calls (e.g. per-group NLS scratch).
    ///
    /// Contents contract: if the shape actually changes the entries are
    /// reset to zero; if the shape already matches, the call is a no-op
    /// and existing entries are **kept** — callers on hot paths fully
    /// overwrite the buffer after resizing, and skipping the redundant
    /// memset is the point of reusing a workspace.
    pub fn resize(&mut self, nrows: usize, ncols: usize) {
        if (self.nrows, self.ncols) == (nrows, ncols) {
            return;
        }
        self.nrows = nrows;
        self.ncols = ncols;
        self.data.clear();
        self.data.resize(nrows * ncols, 0.0);
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.ncols, self.nrows);
        // Blocked transpose keeps both source and destination accesses
        // within cache lines for large matrices.
        const B: usize = 32;
        for ib in (0..self.nrows).step_by(B) {
            for jb in (0..self.ncols).step_by(B) {
                for i in ib..(ib + B).min(self.nrows) {
                    for j in jb..(jb + B).min(self.ncols) {
                        out.data[j * self.nrows + i] = self.data[i * self.ncols + j];
                    }
                }
            }
        }
        out
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// True if every entry is `>= 0`.
    pub fn all_nonnegative(&self) -> bool {
        self.data.iter().all(|&x| x >= 0.0)
    }

    /// Maximum absolute entry-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// The empty `0×0` matrix — the natural initial state for workspace
/// buffers that are `resize`d before first use.
impl Default for Mat {
    fn default() -> Self {
        Mat::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.nrows, self.ncols)?;
        let show_rows = self.nrows.min(8);
        for i in 0..show_rows {
            let show_cols = self.ncols.min(8);
            let row: Vec<String> = self.row(i)[..show_cols]
                .iter()
                .map(|x| format!("{x:10.4}"))
                .collect();
            let ellipsis = if self.ncols > show_cols { " ..." } else { "" };
            writeln!(f, "  [{}{}]", row.join(", "), ellipsis)?;
        }
        if self.nrows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let m = Mat::eye(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn indexing_and_mutation() {
        let mut m = Mat::zeros(2, 2);
        m[(0, 1)] = 7.0;
        assert_eq!(m[(0, 1)], 7.0);
        m.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(m.col(1), vec![7.0, 2.0]);
    }

    #[test]
    fn block_and_set_block() {
        let m = Mat::from_fn(4, 5, |i, j| (i * 5 + j) as f64);
        let b = m.block(1, 2, 2, 3);
        assert_eq!(b.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(b.row(1), &[12.0, 13.0, 14.0]);
        let mut z = Mat::zeros(4, 5);
        z.set_block(1, 2, &b);
        assert_eq!(z[(2, 4)], 14.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn rows_block_is_contiguous_copy() {
        let m = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let b = m.rows_block(2, 2);
        assert_eq!(b.as_slice(), &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn stack_round_trips_block() {
        let m = Mat::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let top = m.rows_block(0, 2);
        let bot = m.rows_block(2, 2);
        assert_eq!(Mat::vstack(&[top, bot]), m);
        let left = m.cols_block(0, 2);
        let right = m.cols_block(2, 2);
        assert_eq!(Mat::hstack(&[left, right]), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(37, 53, |i, j| (i * 53 + j) as f64 * 0.5);
        let t = m.transpose();
        assert_eq!(t.shape(), (53, 37));
        assert_eq!(t[(10, 20)], m[(20, 10)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn two_rows_mut_orders_correctly() {
        let mut m = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        {
            let (r2, r0) = m.two_rows_mut(2, 0);
            assert_eq!(r2, &[4.0, 5.0]);
            assert_eq!(r0, &[0.0, 1.0]);
            r2[0] = -1.0;
        }
        assert_eq!(m[(2, 0)], -1.0);
    }

    #[test]
    fn set_col_gathers() {
        let mut m = Mat::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0; 3]);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Mat::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(1, 1)] = 1.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
