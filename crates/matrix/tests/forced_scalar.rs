//! The `NMF_FORCE_SCALAR` escape hatch: pins kernel dispatch to the
//! portable scalar microkernel regardless of host CPU features.
//!
//! Dispatch is decided once per process and cached, so this lives in its
//! own integration-test binary (its process sets the variable before the
//! first kernel call) and is a single test function (a sibling test
//! could otherwise race the dispatch cache).

use nmf_matrix::rng::Fill;
use nmf_matrix::{matmul, matmul_packed_into, matmul_ta, simd, Mat, PackedPanels};

#[test]
fn forced_scalar_dispatch_is_pinned_and_correct() {
    // Must precede any dispatch query in this process.
    std::env::set_var("NMF_FORCE_SCALAR", "1");

    assert_eq!(simd::active_name(), "scalar-4x8");
    assert_eq!(simd::active().mr, 4);

    // The scalar path must be fully correct, including packed panels
    // built under the forced 4-row geometry.
    let naive = |a: &Mat, b: &Mat| -> Mat {
        let mut c = Mat::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut s = 0.0;
                for kk in 0..a.ncols() {
                    s += a[(i, kk)] * b[(kk, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    };

    for &(m, kdim, n) in &[(7usize, 300usize, 9usize), (12, 257, 8), (4, 8, 8)] {
        let a = Mat::uniform(m, kdim, 21);
        let b = Mat::uniform(kdim, n, 22);
        let expect = naive(&a, &b);
        assert!(
            matmul(&a, &b).max_abs_diff(&expect) < 1e-10,
            "forced-scalar matmul wrong at {m}x{kdim}x{n}"
        );
        let p = PackedPanels::pack(&a);
        assert_eq!(p.mr(), 4, "panels must adopt the forced geometry");
        let mut c = Mat::zeros(m, n);
        matmul_packed_into(&p, &b, &mut c);
        assert!(
            c.max_abs_diff(&expect) < 1e-10,
            "forced-scalar prepacked matmul wrong at {m}x{kdim}x{n}"
        );
        let at = Mat::uniform(kdim, m, 23);
        let bt = Mat::uniform(kdim, n, 24);
        let expect_ta = naive(&at.transpose(), &bt);
        assert!(
            matmul_ta(&at, &bt).max_abs_diff(&expect_ta) < 1e-10,
            "forced-scalar matmul_ta wrong at {m}x{kdim}x{n}"
        );
    }
}
