//! Property-based equivalence of every GEMM path against a naive
//! triple loop, on randomized shapes chosen to straddle the microkernel
//! geometry boundaries: `MR` (4 scalar / 6 AVX2), `NR = 8`, and the
//! `KC = 256` depth blocking.
//!
//! All paths compute the same sums in different association orders, so
//! agreement is to a tolerance scaled well below the 1e-10 the kernel
//! contract promises on O(1) entries. Which SIMD path runs depends on
//! the host (and `NMF_FORCE_SCALAR`); the properties hold under either
//! dispatch — CI runs this suite both ways.

use nmf_matrix::rng::Fill;
use nmf_matrix::{
    matmul_blocked_into, matmul_ikj_into, matmul_into, matmul_packed_into,
    matmul_packed_scratch_into, matmul_par_into, matmul_ta_blocked_into, matmul_ta_into,
    matmul_tb_into, Mat, PackedPanels,
};
use proptest::prelude::*;

const TOL: f64 = 1e-10;

fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        for j in 0..b.ncols() {
            let mut s = 0.0;
            for kk in 0..a.ncols() {
                s += a[(i, kk)] * b[(kk, j)];
            }
            c[(i, j)] = s;
        }
    }
    c
}

/// Dimension straddling the register-block edges: values within ±2 of
/// each MR/NR multiple, plus tiny and awkward primes.
fn edge_dim(raw: usize) -> usize {
    const EDGES: [usize; 14] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 16, 17];
    EDGES[raw % EDGES.len()]
}

/// Inner dimension straddling the `KC = 256` depth blocking.
fn edge_kdim(raw: usize) -> usize {
    const EDGES: [usize; 10] = [1, 3, 8, 31, 64, 255, 256, 257, 300, 511];
    EDGES[raw % EDGES.len()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn all_gemm_paths_match_naive(
        mraw in 0usize..100,
        kraw in 0usize..100,
        nraw in 0usize..100,
        seed in 0u64..10_000,
    ) {
        let m = edge_dim(mraw);
        let kdim = edge_kdim(kraw);
        let n = edge_dim(nraw);
        let a = Mat::uniform(m, kdim, seed);
        let b = Mat::uniform(kdim, n, seed + 1);
        let expect = naive_matmul(&a, &b);
        // Tolerance scaled by the inner-dimension magnitude.
        let tol = TOL * (kdim as f64);

        let mut c = Mat::zeros(m, n);
        matmul_into(&a, &b, &mut c);
        prop_assert!(c.max_abs_diff(&expect) < tol, "dispatched {m}x{kdim}x{n}");

        matmul_blocked_into(&a, &b, &mut c);
        prop_assert!(c.max_abs_diff(&expect) < tol, "blocked {m}x{kdim}x{n}");

        matmul_ikj_into(&a, &b, &mut c);
        prop_assert!(c.max_abs_diff(&expect) < tol, "ikj {m}x{kdim}x{n}");

        matmul_par_into(&a, &b, &mut c);
        prop_assert!(c.max_abs_diff(&expect) < tol, "par {m}x{kdim}x{n}");

        let p = PackedPanels::pack(&a);
        matmul_packed_into(&p, &b, &mut c);
        prop_assert!(c.max_abs_diff(&expect) < tol, "prepacked {m}x{kdim}x{n}");

        // Caller-owned scratch (the engine's workspace path), entered
        // cold to prove the pre-size bound is merely an optimization.
        let mut scratch = Vec::new();
        matmul_packed_scratch_into(&p, &b, &mut c, &mut scratch);
        prop_assert!(c.max_abs_diff(&expect) < tol, "packed+scratch {m}x{kdim}x{n}");
    }

    #[test]
    fn transposed_paths_match_naive(
        mraw in 0usize..100,
        kraw in 0usize..100,
        nraw in 0usize..100,
        seed in 0u64..10_000,
    ) {
        // C = Aᵀ·B with A of shape inner×m (inner is the big dimension).
        let m = edge_dim(mraw);
        let inner = edge_kdim(kraw);
        let n = edge_dim(nraw);
        let a = Mat::uniform(inner, m, seed);
        let b = Mat::uniform(inner, n, seed + 1);
        let expect = naive_matmul(&a.transpose(), &b);
        let tol = TOL * (inner as f64);

        let mut c = Mat::zeros(m, n);
        matmul_ta_into(&a, &b, &mut c);
        prop_assert!(c.max_abs_diff(&expect) < tol, "ta dispatched {m}x{inner}x{n}");

        matmul_ta_blocked_into(&a, &b, &mut c);
        prop_assert!(c.max_abs_diff(&expect) < tol, "ta blocked {m}x{inner}x{n}");

        let p = PackedPanels::pack_transposed(&a);
        matmul_packed_into(&p, &b, &mut c);
        prop_assert!(c.max_abs_diff(&expect) < tol, "ta prepacked {m}x{inner}x{n}");
    }

    #[test]
    fn dot_form_matches_naive(
        mraw in 0usize..100,
        kraw in 0usize..100,
        nraw in 0usize..100,
        seed in 0u64..10_000,
    ) {
        // C = A·Bᵀ: every entry a row-row dot product (exercises the
        // dispatched dot/dot4 reductions across the SIMD length cutoff).
        let m = edge_dim(mraw);
        let k = edge_dim(nraw);
        let inner = edge_kdim(kraw);
        let a = Mat::uniform(m, inner, seed);
        let b = Mat::uniform(k, inner, seed + 1);
        let expect = naive_matmul(&a, &b.transpose());
        let tol = TOL * (inner as f64);

        let mut c = Mat::zeros(m, k);
        matmul_tb_into(&a, &b, &mut c);
        prop_assert!(c.max_abs_diff(&expect) < tol, "tb {m}x{inner}x{k}");
    }
}
