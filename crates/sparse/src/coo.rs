//! Coordinate-format sparse builder.

use crate::csr::Csr;

/// A mutable collection of `(row, col, value)` triplets.
///
/// Duplicate coordinates are summed on conversion to [`Csr`], matching the
/// convention of Matrix Market readers and making the builder safe to use
/// from generators that may emit the same edge twice.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// An empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(nrows <= u32::MAX as usize && ncols <= u32::MAX as usize);
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// With reserved capacity for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut c = Coo::new(nrows, ncols);
        c.entries.reserve(cap);
        c
    }

    /// Appends a triplet. Zero values are kept until conversion (they are
    /// dropped by `to_csr` after duplicate summing).
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(
            row < self.nrows && col < self.ncols,
            "coo entry out of bounds"
        );
        self.entries.push((row as u32, col as u32, value));
    }

    /// Number of triplets currently held (before dedup).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to CSR: sorts by `(row, col)`, sums duplicates, drops
    /// entries that cancel to exactly zero.
    pub fn to_csr(mut self) -> Csr {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; self.nrows + 1];
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        let mut it = self.entries.iter().peekable();
        while let Some(&(r, c, v)) = it.next() {
            let mut acc = v;
            while let Some(&&(r2, c2, v2)) = it.peek() {
                if r2 == r && c2 == c {
                    acc += v2;
                    it.next();
                } else {
                    break;
                }
            }
            if acc != 0.0 {
                indices.push(c as usize);
                values.push(acc);
                indptr[r as usize + 1] += 1;
            }
        }
        for i in 0..self.nrows {
            indptr[i + 1] += indptr[i];
        }
        Csr::from_parts(self.nrows, self.ncols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_sorts() {
        let mut c = Coo::new(3, 3);
        c.push(2, 1, 5.0);
        c.push(0, 0, 1.0);
        c.push(1, 2, 3.0);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(0, 1, 2.5);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut c = Coo::new(1, 2);
        c.push(0, 0, 1.0);
        c.push(0, 0, -1.0);
        c.push(0, 1, 2.0);
        let m = c.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn empty_builder_yields_empty_matrix() {
        let m = Coo::new(4, 5).to_csr();
        assert_eq!(m.shape(), (4, 5));
        assert_eq!(m.nnz(), 0);
    }
}
