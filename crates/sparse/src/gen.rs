//! Random sparse matrix generators.
//!
//! * [`erdos_renyi`] reproduces the paper's SSYN dataset: "a random sparse
//!   Erdős–Rényi matrix ... every entry is nonzero with probability
//!   `density`" (§6.1.1).
//! * [`chung_lu_power_law`] stands in for the webbase-2001 crawl graph: a
//!   directed graph whose in/out degree sequences follow a power law, the
//!   regime that makes per-row work highly imbalanced (the load-imbalance
//!   effect the paper's §7 discusses).
//! * [`banded`] is a deterministic structured generator used by tests.

use crate::coo::Coo;
use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi sparse matrix: each entry is present independently with
/// probability `density`; values are uniform on `[0, 1)`.
///
/// Sampling uses geometric skips between hits, so generation costs
/// `O(nnz)` rather than `O(m·n)` — necessary at the paper's scale
/// (172,800 × 115,200 at density 0.001 would otherwise visit 2·10¹⁰
/// cells).
pub fn erdos_renyi(nrows: usize, ncols: usize, density: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let expected = (nrows as f64 * ncols as f64 * density) as usize;
    let mut coo = Coo::with_capacity(nrows, ncols, expected + 16);
    if density == 0.0 || nrows == 0 || ncols == 0 {
        return coo.to_csr();
    }
    if density >= 1.0 {
        for i in 0..nrows {
            for j in 0..ncols {
                coo.push(i, j, rng.gen::<f64>());
            }
        }
        return coo.to_csr();
    }
    let total = nrows as u128 * ncols as u128;
    let log_q = (1.0 - density).ln();
    // Walk the flattened index space with geometric gaps.
    let mut pos: u128 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log_q).floor() as u128;
        pos += skip;
        if pos >= total {
            break;
        }
        let i = (pos / ncols as u128) as usize;
        let j = (pos % ncols as u128) as usize;
        coo.push(i, j, rng.gen::<f64>());
        pos += 1;
        if pos >= total {
            break;
        }
    }
    coo.to_csr()
}

/// Chung–Lu random digraph with power-law expected degrees.
///
/// Node `v`'s expected out-degree weight is `(v+1)^(-1/(gamma-1))`,
/// normalized so the expected edge count is `target_edges`. Edges are
/// sampled by drawing endpoints proportional to the weights, giving the
/// heavy-tailed degree distribution of a web crawl. Edge weights are 1.0
/// (adjacency), matching NMF-for-graph-clustering usage.
pub fn chung_lu_power_law(nodes: usize, target_edges: usize, gamma: f64, seed: u64) -> Csr {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let expo = -1.0 / (gamma - 1.0);
    // Cumulative weight table for inverse-CDF sampling of endpoints.
    let mut cum = Vec::with_capacity(nodes);
    let mut acc = 0.0;
    for v in 0..nodes {
        acc += ((v + 1) as f64).powf(expo);
        cum.push(acc);
    }
    let total_w = acc;
    let sample = |rng: &mut StdRng, cum: &[f64]| -> usize {
        let t: f64 = rng.gen_range(0.0..total_w);
        cum.partition_point(|&c| c <= t).min(nodes - 1)
    };
    let mut coo = Coo::with_capacity(nodes, nodes, target_edges);
    for _ in 0..target_edges {
        let src = sample(&mut rng, &cum);
        let dst = sample(&mut rng, &cum);
        coo.push(src, dst, 1.0);
    }
    coo.to_csr()
}

/// Deterministic banded matrix: entry `(i, j)` is `1 + |i−j|⁻¹`-ish inside
/// the band `|i−j| ≤ half_bandwidth`, zero outside.
pub fn banded(n: usize, half_bandwidth: usize) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        let lo = i.saturating_sub(half_bandwidth);
        let hi = (i + half_bandwidth + 1).min(n);
        for j in lo..hi {
            let d = i.abs_diff(j);
            coo.push(i, j, 1.0 / (1.0 + d as f64));
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_density_is_close() {
        let m = erdos_renyi(500, 400, 0.01, 77);
        let expected = 500.0 * 400.0 * 0.01;
        let got = m.nnz() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "nnz {got} too far from expected {expected}"
        );
        assert!(m.to_dense().all_nonnegative());
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        assert_eq!(erdos_renyi(50, 50, 0.1, 5), erdos_renyi(50, 50, 0.1, 5));
        assert_ne!(erdos_renyi(50, 50, 0.1, 5), erdos_renyi(50, 50, 0.1, 6));
    }

    #[test]
    fn erdos_renyi_extreme_densities() {
        assert_eq!(erdos_renyi(10, 10, 0.0, 1).nnz(), 0);
        assert_eq!(erdos_renyi(10, 10, 1.0, 1).nnz(), 100);
    }

    #[test]
    fn chung_lu_has_heavy_head() {
        let g = chung_lu_power_law(1000, 5000, 2.1, 9);
        assert!(
            g.nnz() > 0 && g.nnz() <= 5000,
            "duplicates may merge: {}",
            g.nnz()
        );
        let mut deg = g.row_degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        // Power-law: the top node should hold far more than the mean degree.
        let mean = g.nnz() as f64 / 1000.0;
        assert!(
            deg[0] as f64 > 5.0 * mean,
            "top degree {} not heavy-tailed vs mean {mean}",
            deg[0]
        );
    }

    #[test]
    fn banded_structure() {
        let b = banded(6, 1);
        assert_eq!(b.nnz(), 6 + 2 * 5); // diagonal + two off-diagonals
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(0, 2), 0.0);
        assert_eq!(b.get(3, 2), 0.5);
    }
}
