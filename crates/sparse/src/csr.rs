//! Compressed sparse row storage.

use crate::coo::Coo;
use nmf_matrix::Mat;

/// An immutable CSR matrix.
///
/// `indptr` has length `nrows + 1`; row `i`'s nonzeros live at
/// `indices[indptr[i]..indptr[i+1]]` / `values[...]`, with `indices`
/// sorted ascending within each row.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Assembles a CSR from raw parts, validating the invariants.
    ///
    /// # Panics
    /// Panics if `indptr` is malformed, indices are out of bounds, or rows
    /// are not sorted.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), nrows + 1, "indptr length must be nrows+1");
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(
            *indptr.last().unwrap(),
            indices.len(),
            "indptr must end at nnz"
        );
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        for i in 0..nrows {
            assert!(indptr[i] <= indptr[i + 1], "indptr must be nondecreasing");
            let row = &indices[indptr[i]..indptr[i + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row indices must be strictly increasing");
            }
            if let Some(&last) = row.last() {
                assert!(last < ncols, "column index out of bounds");
            }
        }
        Csr {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// An empty matrix with no nonzeros.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: vec![],
            values: vec![],
        }
    }

    /// Builds from a dense matrix, keeping entries with `|x| > 0`.
    pub fn from_dense(m: &Mat) -> Self {
        let mut coo = Coo::new(m.nrows(), m.ncols());
        for i in 0..m.nrows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    coo.push(i, j, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Densifies (test/debug helper; not used in the algorithms).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j)] = v;
            }
        }
        m
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fill fraction `nnz / (nrows·ncols)`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
        }
    }

    /// Row `i` as `(column indices, values)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// The row-pointer array (`nrows + 1` entries, ends at `nnz`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// All column indices in row-major nonzero order.
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// All stored values in row-major nonzero order — the canonical
    /// values ordering that [`crate::csc::CscView`] indexes into.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Entry `(i, j)` via binary search within the row (0 if absent).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(p) => vals[p],
            Err(_) => 0.0,
        }
    }

    /// Squared Frobenius norm.
    pub fn fro_norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// The transpose as a new CSR (counting sort over columns; O(nnz)).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let p = next[j];
                indices[p] = i;
                values[p] = v;
                next[j] += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            values,
        }
    }

    /// Extracts the sub-block with rows `r0..r0+nr` and columns
    /// `c0..c0+nc`, reindexed to local coordinates.
    ///
    /// This is how the input matrix is dealt onto the `pr × pc` processor
    /// grid: rank `(i, j)` owns `A.block(...)` of its row/column ranges.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Csr {
        assert!(
            r0 + nr <= self.nrows && c0 + nc <= self.ncols,
            "block out of bounds"
        );
        let mut indptr = Vec::with_capacity(nr + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let c1 = c0 + nc;
        for i in r0..r0 + nr {
            let (cols, vals) = self.row(i);
            // Columns are sorted: binary search the window [c0, c1).
            let lo = cols.partition_point(|&c| c < c0);
            let hi = cols.partition_point(|&c| c < c1);
            for p in lo..hi {
                indices.push(cols[p] - c0);
                values.push(vals[p]);
            }
            indptr.push(indices.len());
        }
        Csr {
            nrows: nr,
            ncols: nc,
            indptr,
            indices,
            values,
        }
    }

    /// Rows `r0..r0+nr` as a block (all columns).
    pub fn rows_block(&self, r0: usize, nr: usize) -> Csr {
        self.block(r0, 0, nr, self.ncols)
    }

    /// Columns `c0..c0+nc` as a block (all rows).
    pub fn cols_block(&self, c0: usize, nc: usize) -> Csr {
        self.block(0, c0, self.nrows, nc)
    }

    /// Stacks row-blocks vertically into one matrix. Every block must
    /// have the same column count; an empty slice is a `0 × 0` matrix.
    ///
    /// Rows keep their data verbatim, so for any row split
    /// `vstack(&[a.rows_block(0, r), a.rows_block(r, m - r)]) == a` —
    /// the identity the panel-streaming ingest leans on to rebuild
    /// column stripes without mapping the whole file.
    pub fn vstack(blocks: &[Csr]) -> Csr {
        let ncols = blocks.first().map_or(0, |b| b.ncols);
        let nrows: usize = blocks.iter().map(|b| b.nrows).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(nrows + 1);
        indptr.push(0);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for b in blocks {
            assert_eq!(b.ncols, ncols, "vstack blocks must agree on ncols");
            let base = indices.len();
            indptr.extend(b.indptr[1..].iter().map(|&p| base + p));
            indices.extend_from_slice(&b.indices);
            values.extend_from_slice(&b.values);
        }
        Csr {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Per-row nonzero counts (degree sequence when the matrix is an
    /// adjacency matrix).
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.nrows)
            .map(|i| self.indptr[i + 1] - self.indptr[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::rng::Fill;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(0, 2, 2.0);
        c.push(2, 0, 3.0);
        c.push(2, 1, 4.0);
        c.to_csr()
    }

    #[test]
    fn basic_accessors() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.row(2).0, &[0, 1]);
        assert_eq!(m.density(), 4.0 / 9.0);
        assert_eq!(m.row_degrees(), vec![2, 0, 2]);
    }

    #[test]
    fn dense_round_trip() {
        let d = Mat::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]]);
        let s = Csr::from_dense(&d);
        assert_eq!(s, sample());
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let d = Mat::uniform(13, 7, 5);
        let mut sparse_d = d.clone();
        // Zero roughly half the entries to make it properly sparse.
        for (idx, v) in sparse_d.as_mut_slice().iter_mut().enumerate() {
            if idx % 2 == 0 {
                *v = 0.0;
            }
        }
        let s = Csr::from_dense(&sparse_d);
        assert_eq!(s.transpose().to_dense(), sparse_d.transpose());
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn block_extraction_matches_dense() {
        let d = Mat::uniform(10, 8, 6);
        let mut sd = d.clone();
        for (idx, v) in sd.as_mut_slice().iter_mut().enumerate() {
            if idx % 3 != 0 {
                *v = 0.0;
            }
        }
        let s = Csr::from_dense(&sd);
        let b = s.block(2, 3, 5, 4);
        assert_eq!(b.to_dense(), sd.block(2, 3, 5, 4));
    }

    #[test]
    fn blocks_tile_the_matrix() {
        let s = sample();
        let nnz_sum: usize = (0..3).map(|i| s.rows_block(i, 1).nnz()).sum();
        assert_eq!(nnz_sum, s.nnz());
        let nnz_sum_c: usize = (0..3).map(|j| s.cols_block(j, 1).nnz()).sum();
        assert_eq!(nnz_sum_c, s.nnz());
    }

    #[test]
    fn vstack_inverts_row_splits() {
        let s = Csr::from_dense(&Mat::uniform(11, 6, 4));
        let parts = [s.rows_block(0, 4), s.rows_block(4, 5), s.rows_block(9, 2)];
        assert_eq!(Csr::vstack(&parts), s);
        assert_eq!(Csr::vstack(&[]).shape(), (0, 0));
    }

    #[test]
    fn fro_norm_matches_dense() {
        let m = sample();
        assert_eq!(m.fro_norm_sq(), m.to_dense().fro_norm_sq());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_validates_sorting() {
        Csr::from_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
    }
}
