//! Sparse × tall-dense multiply kernels (the `MM` task for sparse inputs).
//!
//! The two products the algorithms need are `A·Hᵀ` (for the `W` update)
//! and `WᵀA` (for the `H` update). Both are computed here with the dense
//! operand and output held in a "k-contiguous" layout — every logical
//! column of the k-dimensional factor is a contiguous row — so each
//! visited nonzero triggers one contiguous axpy of length `k`:
//!
//! * [`spmm_dense_t`]: `V = A·Bᵀ` with `B` given as `Bt` (`n×k`), output
//!   `m×k`. Used as `V = A·Hᵀ` with `Ht`.
//! * [`spmm_at_dense`]: `Y = Aᵀ·W` (`n×k`) for `W` of shape `m×k`. `WᵀA`
//!   is its transpose; the algorithms keep the `n×k` layout throughout and
//!   only reinterpret, never physically transpose.
//!
//! Each kernel performs `2·nnz(A)·k` flops, the count the paper uses for
//! sparse inputs.

use crate::csr::Csr;
use nmf_matrix::gemm::axpy;
use nmf_matrix::Mat;

/// `V = A·Bᵀ` where `A` is `m×n` sparse and `Bt` is `n×k` dense
/// (i.e. `B` is `k×n`). Output is `m×k`.
pub fn spmm_dense_t(a: &Csr, bt: &Mat) -> Mat {
    let mut v = Mat::zeros(a.nrows(), bt.ncols());
    spmm_dense_t_into(a, bt, &mut v);
    v
}

/// `V = A·Bᵀ` into caller-owned `v` (overwritten).
pub fn spmm_dense_t_into(a: &Csr, bt: &Mat, v: &mut Mat) {
    assert_eq!(a.ncols(), bt.nrows(), "spmm_dense_t inner dimension mismatch");
    assert_eq!(v.shape(), (a.nrows(), bt.ncols()), "spmm_dense_t output shape mismatch");
    v.as_mut_slice().fill(0.0);
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let vrow = v.row_mut(i);
        for (&j, &x) in cols.iter().zip(vals) {
            axpy(x, bt.row(j), vrow);
        }
    }
}

/// `Y = Aᵀ·W` where `A` is `m×n` sparse and `W` is `m×k` dense.
/// Output is `n×k` (the transpose of `WᵀA`).
pub fn spmm_at_dense(a: &Csr, w: &Mat) -> Mat {
    let mut y = Mat::zeros(a.ncols(), w.ncols());
    spmm_at_dense_into(a, w, &mut y);
    y
}

/// `Y = Aᵀ·W` into caller-owned `y` (overwritten).
pub fn spmm_at_dense_into(a: &Csr, w: &Mat, y: &mut Mat) {
    assert_eq!(a.nrows(), w.nrows(), "spmm_at_dense inner dimension mismatch");
    assert_eq!(y.shape(), (a.ncols(), w.ncols()), "spmm_at_dense output shape mismatch");
    y.as_mut_slice().fill(0.0);
    let k = w.ncols();
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let wrow = w.row(i);
        for (&j, &x) in cols.iter().zip(vals) {
            let yrow = &mut y.as_mut_slice()[j * k..(j + 1) * k];
            axpy(x, wrow, yrow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::gemm::{matmul_ta, matmul_tb};
    use nmf_matrix::rng::Fill;

    fn random_sparse(m: usize, n: usize, seed: u64) -> Csr {
        let mut d = Mat::uniform(m, n, seed);
        for (idx, v) in d.as_mut_slice().iter_mut().enumerate() {
            if idx % 4 != 0 {
                *v = 0.0;
            }
        }
        Csr::from_dense(&d)
    }

    #[test]
    fn a_ht_matches_dense() {
        let a = random_sparse(14, 9, 61);
        let ht = Mat::uniform(9, 5, 62); // Hᵀ, n×k
        let v = spmm_dense_t(&a, &ht);
        // Dense reference: A · (Htᵀ)ᵀ = A·Hᵀ with H = htᵀ.
        let expect = matmul_tb(&a.to_dense(), &ht.transpose());
        assert!(v.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn at_w_matches_dense() {
        let a = random_sparse(11, 13, 63);
        let w = Mat::uniform(11, 4, 64);
        let y = spmm_at_dense(&a, &w);
        let expect = matmul_ta(&a.to_dense(), &w);
        assert!(y.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn empty_matrix_yields_zero() {
        let a = Csr::empty(5, 7);
        let ht = Mat::uniform(7, 3, 65);
        assert_eq!(spmm_dense_t(&a, &ht), Mat::zeros(5, 3));
        let w = Mat::uniform(5, 3, 66);
        assert_eq!(spmm_at_dense(&a, &w), Mat::zeros(7, 3));
    }

    #[test]
    fn into_variants_overwrite() {
        let a = random_sparse(6, 6, 67);
        let ht = Mat::uniform(6, 2, 68);
        let mut v = Mat::filled(6, 2, f64::NAN);
        spmm_dense_t_into(&a, &ht, &mut v);
        assert!(v.all_finite());
    }
}
