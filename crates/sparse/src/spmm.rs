//! Sparse × tall-dense multiply kernels (the `MM` task for sparse inputs).
//!
//! The two products the algorithms need are `A·Hᵀ` (for the `W` update)
//! and `WᵀA` (for the `H` update). Both are computed here with the dense
//! operand and output held in a "k-contiguous" layout — every logical
//! column of the k-dimensional factor is a contiguous row — so each
//! visited nonzero triggers one contiguous axpy of length `k`:
//!
//! * [`spmm_dense_t`]: `V = A·Bᵀ` with `B` given as `Bt` (`n×k`), output
//!   `m×k`. Used as `V = A·Hᵀ` with `Ht`.
//! * [`spmm_at_dense`]: `Y = Aᵀ·W` (`n×k`) for `W` of shape `m×k`. `WᵀA`
//!   is its transpose; the algorithms keep the `n×k` layout throughout and
//!   only reinterpret, never physically transpose.
//!
//! Each kernel performs `2·nnz(A)·k` flops, the count the paper uses for
//! sparse inputs.

use crate::csc::CscView;
use crate::csr::Csr;
use nmf_matrix::gemm::axpy;
use nmf_matrix::Mat;
use rayon::prelude::*;

/// `V = A·Bᵀ` where `A` is `m×n` sparse and `Bt` is `n×k` dense
/// (i.e. `B` is `k×n`). Output is `m×k`.
pub fn spmm_dense_t(a: &Csr, bt: &Mat) -> Mat {
    let mut v = Mat::zeros(a.nrows(), bt.ncols());
    spmm_dense_t_into(a, bt, &mut v);
    v
}

/// `V = A·Bᵀ` into caller-owned `v` (overwritten).
pub fn spmm_dense_t_into(a: &Csr, bt: &Mat, v: &mut Mat) {
    assert_eq!(
        a.ncols(),
        bt.nrows(),
        "spmm_dense_t inner dimension mismatch"
    );
    assert_eq!(
        v.shape(),
        (a.nrows(), bt.ncols()),
        "spmm_dense_t output shape mismatch"
    );
    v.as_mut_slice().fill(0.0);
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let vrow = v.row_mut(i);
        for (&j, &x) in cols.iter().zip(vals) {
            axpy(x, bt.row(j), vrow);
        }
    }
}

/// `Y = Aᵀ·W` where `A` is `m×n` sparse and `W` is `m×k` dense.
/// Output is `n×k` (the transpose of `WᵀA`).
pub fn spmm_at_dense(a: &Csr, w: &Mat) -> Mat {
    let mut y = Mat::zeros(a.ncols(), w.ncols());
    spmm_at_dense_into(a, w, &mut y);
    y
}

/// `Y = Aᵀ·W` into caller-owned `y` (overwritten).
pub fn spmm_at_dense_into(a: &Csr, w: &Mat, y: &mut Mat) {
    assert_eq!(
        a.nrows(),
        w.nrows(),
        "spmm_at_dense inner dimension mismatch"
    );
    assert_eq!(
        y.shape(),
        (a.ncols(), w.ncols()),
        "spmm_at_dense output shape mismatch"
    );
    y.as_mut_slice().fill(0.0);
    let k = w.ncols();
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let wrow = w.row(i);
        for (&j, &x) in cols.iter().zip(vals) {
            let yrow = &mut y.as_mut_slice()[j * k..(j + 1) * k];
            axpy(x, wrow, yrow);
        }
    }
}

/// `Y = Aᵀ·W` via the column view: the forward-traversal kernel.
///
/// The CSR pass above scatters one axpy into a different output row per
/// visited nonzero; here each output row `y[j]` is accumulated start to
/// finish while column `j`'s nonzeros stream, so the output is written
/// with perfect locality and only the `W` reads hop (a gather that the
/// hardware prefetcher handles far better than scattered read-modify-
/// write). Values are read through the view's shared-ordering positions
/// — no second copy of the payload exists.
///
/// **Bit-for-bit identical** to [`spmm_at_dense_into`]: for a fixed
/// output row `j`, both kernels add the contributions of rows
/// `i₀ < i₁ < …` in the same ascending order ([`CscView::from_csr`]
/// preserves row order within each column), so every intermediate sum
/// is the same float — including `-0.0` and NaN propagation. The
/// property tests in `tests/csc_props.rs` assert this at the bit level.
pub fn spmm_at_dense_csc_into(a: &Csr, csc: &CscView, w: &Mat, y: &mut Mat) {
    assert_eq!(
        a.nrows(),
        w.nrows(),
        "spmm_at_dense_csc inner dimension mismatch"
    );
    assert_eq!(
        y.shape(),
        (a.ncols(), w.ncols()),
        "spmm_at_dense_csc output shape mismatch"
    );
    debug_assert!(csc.matches(a), "CSC view does not index this CSR");
    let vals = a.values();
    let (m, k) = w.shape();
    y.as_mut_slice().fill(0.0);
    if k == 0 {
        return;
    }
    // Row-panel blocking: restrict each sweep over the columns to the
    // rows of one panel, sized so the panel's slice of `W` (the
    // gathered operand) stays L2-resident. The value gathers then land
    // in one contiguous `nnz(panel)`-sized window of the CSR values
    // array, and each touched output row absorbs all of the panel's
    // contributions in a single visit instead of one scattered
    // read-modify-write per nonzero. Per-column cursors advance
    // monotonically, so every index element is streamed exactly once
    // across all panels (the cursor vector is the only scratch — one
    // `ncols`-word allocation per call, trivial next to the product).
    //
    // Bit-identity with the CSR transposed pass is preserved: panels
    // are visited in ascending row order and rows ascend within each
    // column of a panel, so output row `j` still accumulates rows
    // `i₀ < i₁ < …` in exactly the same order.
    let panel_rows = (csc_panel_bytes() / (8 * k)).max(1);
    let mut cur = vec![0usize; a.ncols()];
    let mut acc = [0.0f64; ACC_WIDTH];
    let mut r0 = 0;
    while r0 < m {
        let r1 = (r0 + panel_rows).min(m);
        for (j, t) in cur.iter_mut().enumerate() {
            let (rows, src) = csc.col(j);
            if *t == rows.len() || rows[*t] >= r1 {
                continue;
            }
            let yrow = y.row_mut(j);
            *t = if k <= ACC_WIDTH {
                // The output row is fixed for the whole segment, so
                // accumulate it in an L1-resident stack buffer and
                // store once — the per-nonzero read-modify-write of a
                // far-away `y` row is what the CSR pass cannot avoid.
                // Same `axpy` calls in the same order, so every
                // intermediate float is unchanged.
                let dst = &mut acc[..k];
                dst.copy_from_slice(yrow);
                let nt = accumulate_segment(rows, src, vals, w, dst, *t, r1);
                yrow.copy_from_slice(dst);
                nt
            } else {
                accumulate_segment(rows, src, vals, w, yrow, *t, r1)
            };
        }
        r0 = r1;
    }
}

/// One column's nonzeros within `[.., r1)` starting at cursor `t`,
/// accumulated into `dst`; returns the advanced cursor.
#[inline(always)]
fn accumulate_segment(
    rows: &[usize],
    src: &[usize],
    vals: &[f64],
    w: &Mat,
    dst: &mut [f64],
    mut t: usize,
    r1: usize,
) -> usize {
    while t < rows.len() && rows[t] < r1 {
        let (i, p) = (rows[t], src[t]);
        // Both gathered streams ascend sparsely — a stride the
        // hardware prefetcher does not track — so fetch a few
        // nonzeros ahead by hand.
        #[cfg(target_arch = "x86_64")]
        if let (Some(&ni), Some(&np)) = (rows.get(t + PREFETCH_DIST), src.get(t + PREFETCH_DIST)) {
            // SAFETY: prefetch has no memory effects; both
            // addresses lie inside live allocations.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch(vals.as_ptr().add(np) as *const i8, _MM_HINT_T0);
                _mm_prefetch(w.row(ni).as_ptr() as *const i8, _MM_HINT_T0);
            }
        }
        axpy(vals[p], w.row(i), dst);
        t += 1;
    }
    t
}

/// Target footprint of one row panel's `W` slice: half of the probed
/// L2 (leaving room for the output rows and index streams), or half of
/// a typical 2 MiB L2 when the probe is unavailable, or the
/// `NMF_CSC_PANEL_BYTES` environment override verbatim. Resolved once.
/// Panel height only regroups the accumulation — identical `axpy`s in
/// identical order — so this is a pure tuning knob; every float is
/// unchanged under any value (the bit-identity property tests run
/// regardless of what this returns).
fn csc_panel_bytes() -> usize {
    static TARGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *TARGET.get_or_init(|| {
        if let Some(v) = std::env::var("NMF_CSC_PANEL_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            return v;
        }
        cache_bytes("index2").map_or(1 << 20, |l2| (l2 / 2).max(4 << 10))
    })
}

/// How many nonzeros ahead the CSC kernel prefetches its two gathered
/// streams (the value and the `W` row). At ~10 cycles of axpy work per
/// nonzero this covers L2/L3 hit latency without thrashing L1.
const PREFETCH_DIST: usize = 8;

/// Widest factor rank the stack accumulator covers (512 bytes — eight
/// cache lines, comfortably L1). Wider ranks fall back to accumulating
/// in the output row directly.
const ACC_WIDTH: usize = 64;

/// Allocating wrapper over [`spmm_at_dense_csc_into`].
pub fn spmm_at_dense_csc(a: &Csr, csc: &CscView, w: &Mat) -> Mat {
    let mut y = Mat::zeros(a.ncols(), w.ncols());
    spmm_at_dense_csc_into(a, csc, w, &mut y);
    y
}

/// `Y = Aᵀ·W` choosing the traversal orientation by output size.
///
/// The two kernels are bit-identical, so the choice is purely a
/// performance call: the CSR transposed pass wins while its scatter
/// target (`Y`, `n×k`) stays cache-resident — every read-modify-write
/// is a cache hit and values stream sequentially — and the CSC forward
/// traversal wins once `Y` outgrows the last-level cache, because it
/// writes each output row with locality (panel-hoisted into an L1
/// accumulator) while its gathers stay panel-local. The crossover is
/// therefore the LLC size, probed from sysfs with an `NMF_CSC_MIN_OUT_BYTES`
/// override for machines where the probe is unavailable or wrong.
pub fn spmm_at_dense_auto_into(a: &Csr, csc: &CscView, w: &Mat, y: &mut Mat) {
    if csc_chosen(a.ncols(), w.ncols()) {
        spmm_at_dense_csc_into(a, csc, w, y);
    } else {
        spmm_at_dense_into(a, w, y);
    }
}

/// Allocating wrapper over [`spmm_at_dense_auto_into`].
pub fn spmm_at_dense_auto(a: &Csr, csc: &CscView, w: &Mat) -> Mat {
    let mut y = Mat::zeros(a.ncols(), w.ncols());
    spmm_at_dense_auto_into(a, csc, w, &mut y);
    y
}

/// Whether [`spmm_at_dense_auto_into`] routes an `n×k` output to the
/// CSC forward kernel. Exposed so benches can report the routing.
pub fn csc_chosen(n: usize, k: usize) -> bool {
    n.saturating_mul(k).saturating_mul(8) > csc_min_out_bytes()
}

/// Output size above which the forward kernel is preferred: the
/// last-level cache size (sysfs), or 32 MiB when unreadable, or the
/// `NMF_CSC_MIN_OUT_BYTES` environment override. Resolved once.
fn csc_min_out_bytes() -> usize {
    static THRESHOLD: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        if let Some(v) = std::env::var("NMF_CSC_MIN_OUT_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            return v;
        }
        llc_bytes().unwrap_or(32 << 20)
    })
}

/// Size of the largest cache level reported for cpu0, if readable.
fn llc_bytes() -> Option<usize> {
    cache_bytes("index3").or_else(|| cache_bytes("index2"))
}

/// Size of one cpu0 cache level from sysfs (`index2` is typically L2,
/// `index3` L3), if readable.
fn cache_bytes(index: &str) -> Option<usize> {
    let path = format!("/sys/devices/system/cpu/cpu0/cache/{index}/size");
    let text = std::fs::read_to_string(path).ok()?;
    let text = text.trim();
    let (digits, mult) = match text.as_bytes().last() {
        Some(b'K') => (&text[..text.len() - 1], 1usize << 10),
        Some(b'M') => (&text[..text.len() - 1], 1 << 20),
        _ => (text, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

/// Rayon row-parallel `V = A·Bᵀ` for the standalone (sequential-baseline)
/// path: output rows are independent, so `V` is split into one contiguous
/// row stripe per worker thread and each stripe runs the serial kernel.
/// The distributed ranks use the serial kernels — each virtual-MPI rank
/// is already an OS thread.
pub fn spmm_dense_t_par(a: &Csr, bt: &Mat) -> Mat {
    let mut v = Mat::zeros(a.nrows(), bt.ncols());
    spmm_dense_t_par_into(a, bt, &mut v);
    v
}

/// Row-parallel `V = A·Bᵀ` into caller-owned `v` (overwritten).
pub fn spmm_dense_t_par_into(a: &Csr, bt: &Mat, v: &mut Mat) {
    assert_eq!(
        a.ncols(),
        bt.nrows(),
        "spmm_dense_t inner dimension mismatch"
    );
    assert_eq!(
        v.shape(),
        (a.nrows(), bt.ncols()),
        "spmm_dense_t output shape mismatch"
    );
    let k = bt.ncols();
    if k == 0 {
        return;
    }
    let stripe = a.nrows().div_ceil(rayon::current_num_threads()).max(1);
    v.as_mut_slice()
        .par_chunks_mut(stripe * k)
        .enumerate()
        .for_each(|(ci, vchunk)| {
            vchunk.fill(0.0);
            let r0 = ci * stripe;
            let rows = vchunk.len() / k;
            for local in 0..rows {
                let (cols, vals) = a.row(r0 + local);
                let vrow = &mut vchunk[local * k..(local + 1) * k];
                for (&j, &x) in cols.iter().zip(vals) {
                    axpy(x, bt.row(j), vrow);
                }
            }
        });
}

/// Rayon-parallel `Y = Aᵀ·W` for the standalone path.
///
/// The transpose product scatters along columns, so rows of `Y` cannot be
/// partitioned directly from CSR. Each worker instead reduces a
/// contiguous stripe of `A`'s rows into a private `n×k` accumulator, and
/// the accumulators are summed (itself column-parallel) at the end —
/// the standard row-split + private-accumulator SpMMᵀ scheme. Worth it
/// only when `nnz·k` dominates `threads·n·k`; callers on a hot serial
/// path should prefer [`spmm_at_dense`].
pub fn spmm_at_dense_par(a: &Csr, w: &Mat) -> Mat {
    assert_eq!(
        a.nrows(),
        w.nrows(),
        "spmm_at_dense inner dimension mismatch"
    );
    let n = a.ncols();
    let k = w.ncols();
    let threads = rayon::current_num_threads();
    let stripe = a.nrows().div_ceil(threads).max(1);
    let nstripes = a.nrows().div_ceil(stripe).max(1);
    // Private accumulators, one per stripe, built in parallel.
    let partials: Vec<Mat> = (0..nstripes)
        .into_par_iter()
        .map(|si| {
            let mut y = Mat::zeros(n, k);
            let r0 = si * stripe;
            let r1 = ((si + 1) * stripe).min(a.nrows());
            let ym = y.as_mut_slice();
            for i in r0..r1 {
                let (cols, vals) = a.row(i);
                let wrow = w.row(i);
                for (&j, &x) in cols.iter().zip(vals) {
                    axpy(x, wrow, &mut ym[j * k..(j + 1) * k]);
                }
            }
            y
        })
        .collect();
    // Sum the partials, parallel over row stripes of Y.
    let mut y = Mat::zeros(n, k);
    if k > 0 && n > 0 {
        let ystripe = n.div_ceil(threads).max(1);
        y.as_mut_slice()
            .par_chunks_mut(ystripe * k)
            .enumerate()
            .for_each(|(ci, ychunk)| {
                let off = ci * ystripe * k;
                for p in &partials {
                    let src = &p.as_slice()[off..off + ychunk.len()];
                    for (yv, sv) in ychunk.iter_mut().zip(src) {
                        *yv += sv;
                    }
                }
            });
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::gemm::{matmul_ta, matmul_tb};
    use nmf_matrix::rng::Fill;

    fn random_sparse(m: usize, n: usize, seed: u64) -> Csr {
        let mut d = Mat::uniform(m, n, seed);
        for (idx, v) in d.as_mut_slice().iter_mut().enumerate() {
            if idx % 4 != 0 {
                *v = 0.0;
            }
        }
        Csr::from_dense(&d)
    }

    #[test]
    fn a_ht_matches_dense() {
        let a = random_sparse(14, 9, 61);
        let ht = Mat::uniform(9, 5, 62); // Hᵀ, n×k
        let v = spmm_dense_t(&a, &ht);
        // Dense reference: A · (Htᵀ)ᵀ = A·Hᵀ with H = htᵀ.
        let expect = matmul_tb(&a.to_dense(), &ht.transpose());
        assert!(v.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn at_w_matches_dense() {
        let a = random_sparse(11, 13, 63);
        let w = Mat::uniform(11, 4, 64);
        let y = spmm_at_dense(&a, &w);
        let expect = matmul_ta(&a.to_dense(), &w);
        assert!(y.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn csc_kernel_is_bit_identical_to_csr_pass() {
        for &(m, n, k) in &[(11usize, 13usize, 4usize), (40, 27, 7), (3, 50, 1)] {
            let a = random_sparse(m, n, (m * n) as u64);
            let csc = CscView::from_csr(&a);
            let w = Mat::uniform(m, k, 64);
            let y_csr = spmm_at_dense(&a, &w);
            let y_csc = spmm_at_dense_csc(&a, &csc, &w);
            let same = y_csr
                .as_slice()
                .iter()
                .zip(y_csc.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "CSC kernel diverged bitwise at {m}x{n}x{k}");
        }
    }

    #[test]
    fn empty_matrix_yields_zero() {
        let a = Csr::empty(5, 7);
        let ht = Mat::uniform(7, 3, 65);
        assert_eq!(spmm_dense_t(&a, &ht), Mat::zeros(5, 3));
        let w = Mat::uniform(5, 3, 66);
        assert_eq!(spmm_at_dense(&a, &w), Mat::zeros(7, 3));
    }

    #[test]
    fn into_variants_overwrite() {
        let a = random_sparse(6, 6, 67);
        let ht = Mat::uniform(6, 2, 68);
        let mut v = Mat::filled(6, 2, f64::NAN);
        spmm_dense_t_into(&a, &ht, &mut v);
        assert!(v.all_finite());
    }

    #[test]
    fn parallel_kernels_match_serial() {
        for &(m, n, k) in &[
            (53usize, 47usize, 5usize),
            (200, 160, 16),
            (3, 2, 1),
            (17, 300, 8),
        ] {
            let a = random_sparse(m, n, (m + n) as u64);
            let bt = Mat::uniform(n, k, 71);
            let serial = spmm_dense_t(&a, &bt);
            assert!(
                spmm_dense_t_par(&a, &bt).max_abs_diff(&serial) < 1e-12,
                "spmm_dense_t_par diverged at {m}x{n}x{k}"
            );
            let mut v = Mat::filled(m, k, f64::NAN);
            spmm_dense_t_par_into(&a, &bt, &mut v);
            assert!(v.max_abs_diff(&serial) < 1e-12);

            let w = Mat::uniform(m, k, 72);
            let serial_t = spmm_at_dense(&a, &w);
            assert!(
                spmm_at_dense_par(&a, &w).max_abs_diff(&serial_t) < 1e-12,
                "spmm_at_dense_par diverged at {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn parallel_kernels_handle_empty() {
        let a = Csr::empty(5, 7);
        let ht = Mat::uniform(7, 3, 73);
        assert_eq!(spmm_dense_t_par(&a, &ht), Mat::zeros(5, 3));
        let w = Mat::uniform(5, 3, 74);
        assert_eq!(spmm_at_dense_par(&a, &w), Mat::zeros(7, 3));
    }
}
