//! Sparse × tall-dense multiply kernels (the `MM` task for sparse inputs).
//!
//! The two products the algorithms need are `A·Hᵀ` (for the `W` update)
//! and `WᵀA` (for the `H` update). Both are computed here with the dense
//! operand and output held in a "k-contiguous" layout — every logical
//! column of the k-dimensional factor is a contiguous row — so each
//! visited nonzero triggers one contiguous axpy of length `k`:
//!
//! * [`spmm_dense_t`]: `V = A·Bᵀ` with `B` given as `Bt` (`n×k`), output
//!   `m×k`. Used as `V = A·Hᵀ` with `Ht`.
//! * [`spmm_at_dense`]: `Y = Aᵀ·W` (`n×k`) for `W` of shape `m×k`. `WᵀA`
//!   is its transpose; the algorithms keep the `n×k` layout throughout and
//!   only reinterpret, never physically transpose.
//!
//! Each kernel performs `2·nnz(A)·k` flops, the count the paper uses for
//! sparse inputs.

use crate::csr::Csr;
use nmf_matrix::gemm::axpy;
use nmf_matrix::Mat;
use rayon::prelude::*;

/// `V = A·Bᵀ` where `A` is `m×n` sparse and `Bt` is `n×k` dense
/// (i.e. `B` is `k×n`). Output is `m×k`.
pub fn spmm_dense_t(a: &Csr, bt: &Mat) -> Mat {
    let mut v = Mat::zeros(a.nrows(), bt.ncols());
    spmm_dense_t_into(a, bt, &mut v);
    v
}

/// `V = A·Bᵀ` into caller-owned `v` (overwritten).
pub fn spmm_dense_t_into(a: &Csr, bt: &Mat, v: &mut Mat) {
    assert_eq!(
        a.ncols(),
        bt.nrows(),
        "spmm_dense_t inner dimension mismatch"
    );
    assert_eq!(
        v.shape(),
        (a.nrows(), bt.ncols()),
        "spmm_dense_t output shape mismatch"
    );
    v.as_mut_slice().fill(0.0);
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let vrow = v.row_mut(i);
        for (&j, &x) in cols.iter().zip(vals) {
            axpy(x, bt.row(j), vrow);
        }
    }
}

/// `Y = Aᵀ·W` where `A` is `m×n` sparse and `W` is `m×k` dense.
/// Output is `n×k` (the transpose of `WᵀA`).
pub fn spmm_at_dense(a: &Csr, w: &Mat) -> Mat {
    let mut y = Mat::zeros(a.ncols(), w.ncols());
    spmm_at_dense_into(a, w, &mut y);
    y
}

/// `Y = Aᵀ·W` into caller-owned `y` (overwritten).
pub fn spmm_at_dense_into(a: &Csr, w: &Mat, y: &mut Mat) {
    assert_eq!(
        a.nrows(),
        w.nrows(),
        "spmm_at_dense inner dimension mismatch"
    );
    assert_eq!(
        y.shape(),
        (a.ncols(), w.ncols()),
        "spmm_at_dense output shape mismatch"
    );
    y.as_mut_slice().fill(0.0);
    let k = w.ncols();
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let wrow = w.row(i);
        for (&j, &x) in cols.iter().zip(vals) {
            let yrow = &mut y.as_mut_slice()[j * k..(j + 1) * k];
            axpy(x, wrow, yrow);
        }
    }
}

/// Rayon row-parallel `V = A·Bᵀ` for the standalone (sequential-baseline)
/// path: output rows are independent, so `V` is split into one contiguous
/// row stripe per worker thread and each stripe runs the serial kernel.
/// The distributed ranks use the serial kernels — each virtual-MPI rank
/// is already an OS thread.
pub fn spmm_dense_t_par(a: &Csr, bt: &Mat) -> Mat {
    let mut v = Mat::zeros(a.nrows(), bt.ncols());
    spmm_dense_t_par_into(a, bt, &mut v);
    v
}

/// Row-parallel `V = A·Bᵀ` into caller-owned `v` (overwritten).
pub fn spmm_dense_t_par_into(a: &Csr, bt: &Mat, v: &mut Mat) {
    assert_eq!(
        a.ncols(),
        bt.nrows(),
        "spmm_dense_t inner dimension mismatch"
    );
    assert_eq!(
        v.shape(),
        (a.nrows(), bt.ncols()),
        "spmm_dense_t output shape mismatch"
    );
    let k = bt.ncols();
    if k == 0 {
        return;
    }
    let stripe = a.nrows().div_ceil(rayon::current_num_threads()).max(1);
    v.as_mut_slice()
        .par_chunks_mut(stripe * k)
        .enumerate()
        .for_each(|(ci, vchunk)| {
            vchunk.fill(0.0);
            let r0 = ci * stripe;
            let rows = vchunk.len() / k;
            for local in 0..rows {
                let (cols, vals) = a.row(r0 + local);
                let vrow = &mut vchunk[local * k..(local + 1) * k];
                for (&j, &x) in cols.iter().zip(vals) {
                    axpy(x, bt.row(j), vrow);
                }
            }
        });
}

/// Rayon-parallel `Y = Aᵀ·W` for the standalone path.
///
/// The transpose product scatters along columns, so rows of `Y` cannot be
/// partitioned directly from CSR. Each worker instead reduces a
/// contiguous stripe of `A`'s rows into a private `n×k` accumulator, and
/// the accumulators are summed (itself column-parallel) at the end —
/// the standard row-split + private-accumulator SpMMᵀ scheme. Worth it
/// only when `nnz·k` dominates `threads·n·k`; callers on a hot serial
/// path should prefer [`spmm_at_dense`].
pub fn spmm_at_dense_par(a: &Csr, w: &Mat) -> Mat {
    assert_eq!(
        a.nrows(),
        w.nrows(),
        "spmm_at_dense inner dimension mismatch"
    );
    let n = a.ncols();
    let k = w.ncols();
    let threads = rayon::current_num_threads();
    let stripe = a.nrows().div_ceil(threads).max(1);
    let nstripes = a.nrows().div_ceil(stripe).max(1);
    // Private accumulators, one per stripe, built in parallel.
    let partials: Vec<Mat> = (0..nstripes)
        .into_par_iter()
        .map(|si| {
            let mut y = Mat::zeros(n, k);
            let r0 = si * stripe;
            let r1 = ((si + 1) * stripe).min(a.nrows());
            let ym = y.as_mut_slice();
            for i in r0..r1 {
                let (cols, vals) = a.row(i);
                let wrow = w.row(i);
                for (&j, &x) in cols.iter().zip(vals) {
                    axpy(x, wrow, &mut ym[j * k..(j + 1) * k]);
                }
            }
            y
        })
        .collect();
    // Sum the partials, parallel over row stripes of Y.
    let mut y = Mat::zeros(n, k);
    if k > 0 && n > 0 {
        let ystripe = n.div_ceil(threads).max(1);
        y.as_mut_slice()
            .par_chunks_mut(ystripe * k)
            .enumerate()
            .for_each(|(ci, ychunk)| {
                let off = ci * ystripe * k;
                for p in &partials {
                    let src = &p.as_slice()[off..off + ychunk.len()];
                    for (yv, sv) in ychunk.iter_mut().zip(src) {
                        *yv += sv;
                    }
                }
            });
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmf_matrix::gemm::{matmul_ta, matmul_tb};
    use nmf_matrix::rng::Fill;

    fn random_sparse(m: usize, n: usize, seed: u64) -> Csr {
        let mut d = Mat::uniform(m, n, seed);
        for (idx, v) in d.as_mut_slice().iter_mut().enumerate() {
            if idx % 4 != 0 {
                *v = 0.0;
            }
        }
        Csr::from_dense(&d)
    }

    #[test]
    fn a_ht_matches_dense() {
        let a = random_sparse(14, 9, 61);
        let ht = Mat::uniform(9, 5, 62); // Hᵀ, n×k
        let v = spmm_dense_t(&a, &ht);
        // Dense reference: A · (Htᵀ)ᵀ = A·Hᵀ with H = htᵀ.
        let expect = matmul_tb(&a.to_dense(), &ht.transpose());
        assert!(v.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn at_w_matches_dense() {
        let a = random_sparse(11, 13, 63);
        let w = Mat::uniform(11, 4, 64);
        let y = spmm_at_dense(&a, &w);
        let expect = matmul_ta(&a.to_dense(), &w);
        assert!(y.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn empty_matrix_yields_zero() {
        let a = Csr::empty(5, 7);
        let ht = Mat::uniform(7, 3, 65);
        assert_eq!(spmm_dense_t(&a, &ht), Mat::zeros(5, 3));
        let w = Mat::uniform(5, 3, 66);
        assert_eq!(spmm_at_dense(&a, &w), Mat::zeros(7, 3));
    }

    #[test]
    fn into_variants_overwrite() {
        let a = random_sparse(6, 6, 67);
        let ht = Mat::uniform(6, 2, 68);
        let mut v = Mat::filled(6, 2, f64::NAN);
        spmm_dense_t_into(&a, &ht, &mut v);
        assert!(v.all_finite());
    }

    #[test]
    fn parallel_kernels_match_serial() {
        for &(m, n, k) in &[
            (53usize, 47usize, 5usize),
            (200, 160, 16),
            (3, 2, 1),
            (17, 300, 8),
        ] {
            let a = random_sparse(m, n, (m + n) as u64);
            let bt = Mat::uniform(n, k, 71);
            let serial = spmm_dense_t(&a, &bt);
            assert!(
                spmm_dense_t_par(&a, &bt).max_abs_diff(&serial) < 1e-12,
                "spmm_dense_t_par diverged at {m}x{n}x{k}"
            );
            let mut v = Mat::filled(m, k, f64::NAN);
            spmm_dense_t_par_into(&a, &bt, &mut v);
            assert!(v.max_abs_diff(&serial) < 1e-12);

            let w = Mat::uniform(m, k, 72);
            let serial_t = spmm_at_dense(&a, &w);
            assert!(
                spmm_at_dense_par(&a, &w).max_abs_diff(&serial_t) < 1e-12,
                "spmm_at_dense_par diverged at {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn parallel_kernels_handle_empty() {
        let a = Csr::empty(5, 7);
        let ht = Mat::uniform(7, 3, 73);
        assert_eq!(spmm_dense_t_par(&a, &ht), Mat::zeros(5, 3));
        let w = Mat::uniform(5, 3, 74);
        assert_eq!(spmm_at_dense_par(&a, &w), Mat::zeros(7, 3));
    }
}
