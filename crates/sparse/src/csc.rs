//! Compressed sparse column *view* over a CSR matrix.
//!
//! The `Aᵀ·W` kernel is the sparse bottleneck of the ANLS iteration:
//! driven from CSR it scatters one length-`k` axpy into a different
//! output row per visited nonzero (the "transposed pass"), so the
//! output is written with no locality. Traversing the same nonzeros
//! column-by-column turns the product into a forward pass — each output
//! row is accumulated once, start to finish, while only the *reads* of
//! `W` hop around — which is the cache-friendly orientation when
//! `k`-rows fit in registers/L1 (see [`crate::spmm::spmm_at_dense_csc_into`]).
//!
//! [`CscView`] stores the column structure (`colptr`, `rowind`) plus,
//! for every CSC-ordered nonzero, the *position* of its value in the
//! owning CSR's row-major values array — one shared values ordering,
//! never a second copy of the numerical payload. A rank block keeps
//! both views over the one buffer ([`SpBlock`]).

use crate::csr::Csr;

/// The column-major index structure of a CSR matrix, sharing its values.
///
/// `colptr` has length `ncols + 1`; column `j`'s nonzeros live at
/// `rowind[colptr[j]..colptr[j+1]]` (row indices, strictly increasing)
/// and their values at `csr.values()[src[p]]` for `p` in the same range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CscView {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    /// Position in the CSR values array of each CSC-ordered nonzero.
    src: Vec<usize>,
}

impl CscView {
    /// Builds the column view of `a` (counting sort over columns,
    /// `O(nnz + ncols)`). Row indices within each column come out
    /// strictly increasing because CSR rows are scanned in order —
    /// the property that makes the CSC kernel bit-identical to the
    /// CSR transposed pass (same additions, same order).
    pub fn from_csr(a: &Csr) -> CscView {
        let mut counts = vec![0usize; a.ncols() + 1];
        for &j in a.indices() {
            counts[j + 1] += 1;
        }
        for j in 0..a.ncols() {
            counts[j + 1] += counts[j];
        }
        let colptr = counts.clone();
        let mut rowind = vec![0usize; a.nnz()];
        let mut src = vec![0usize; a.nnz()];
        let mut next = counts;
        for i in 0..a.nrows() {
            let lo = a.indptr()[i];
            let hi = a.indptr()[i + 1];
            for (p, &j) in (lo..hi).zip(&a.indices()[lo..hi]) {
                let q = next[j];
                rowind[q] = i;
                src[q] = p;
                next[j] += 1;
            }
        }
        CscView {
            nrows: a.nrows(),
            ncols: a.ncols(),
            colptr,
            rowind,
            src,
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowind.len()
    }

    /// Column `j` as `(row indices, CSR value positions)` slices.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[usize]) {
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        (&self.rowind[lo..hi], &self.src[lo..hi])
    }

    /// Whether this view indexes `a` (shape and nonzero count match;
    /// cheap sanity check used by the kernels' debug assertions).
    pub fn matches(&self, a: &Csr) -> bool {
        self.nrows == a.nrows() && self.ncols == a.ncols() && self.nnz() == a.nnz()
    }

    /// Reconstructs the CSR the view was built from, reading values
    /// through the shared ordering (round-trip test support).
    pub fn to_csr(&self, values: &[f64]) -> Csr {
        assert_eq!(values.len(), self.nnz(), "values length must equal nnz");
        // Transpose the column structure back to rows with the same
        // counting sort; to_csr ∘ from_csr is the identity.
        let mut counts = vec![0usize; self.nrows + 1];
        for &i in &self.rowind {
            counts[i + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut next = counts;
        for j in 0..self.ncols {
            let (rows, src) = self.col(j);
            for (&i, &p) in rows.iter().zip(src) {
                let q = next[i];
                indices[q] = j;
                vals[q] = values[p];
                next[i] += 1;
            }
        }
        Csr::from_parts(self.nrows, self.ncols, indptr, indices, vals)
    }

    /// Heap bytes held by the view's three index arrays.
    pub fn index_bytes(&self) -> usize {
        std::mem::size_of::<usize>() * (self.colptr.len() + self.rowind.len() + self.src.len())
    }
}

/// One rank's sparse block: a CSR and its column view over one shared
/// values buffer. `A·Hᵀ` runs the row-major kernel off the CSR; `Aᵀ·W`
/// runs the forward-traversal kernel off the CSC view.
#[derive(Clone, Debug, PartialEq)]
pub struct SpBlock {
    csr: Csr,
    csc: CscView,
}

impl SpBlock {
    /// Wraps a CSR block, building its column view once (the per-shard
    /// cost that `hpc_nmf`'s `SharedInput` cache amortizes across
    /// builds).
    pub fn from_csr(csr: Csr) -> SpBlock {
        let csc = CscView::from_csr(&csr);
        SpBlock { csr, csc }
    }

    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    #[inline]
    pub fn csc(&self) -> &CscView {
        &self.csc
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.csr.nrows()
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.csr.ncols()
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    pub fn fro_norm_sq(&self) -> f64 {
        self.csr.fro_norm_sq()
    }

    /// Resident heap bytes of the block (values + both index sets).
    pub fn resident_bytes(&self) -> usize {
        let usz = std::mem::size_of::<usize>();
        8 * self.csr.nnz()
            + usz * (self.csr.indptr().len() + self.csr.indices().len())
            + self.csc.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::banded;

    fn sample() -> Csr {
        let mut c = Coo::new(4, 3);
        c.push(0, 0, 1.0);
        c.push(0, 2, 2.0);
        c.push(2, 0, 3.0);
        c.push(2, 1, 4.0);
        c.push(3, 2, 5.0);
        c.to_csr()
    }

    #[test]
    fn column_view_matches_transpose() {
        let a = sample();
        let v = CscView::from_csr(&a);
        assert!(v.matches(&a));
        let t = a.transpose();
        for j in 0..a.ncols() {
            let (rows, src) = v.col(j);
            let (trows, tvals) = t.row(j);
            assert_eq!(rows, trows, "column {j} row set");
            let vals: Vec<f64> = src.iter().map(|&p| a.values()[p]).collect();
            assert_eq!(vals, tvals, "column {j} values via shared ordering");
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let a = banded(17, 3);
        let v = CscView::from_csr(&a);
        assert_eq!(v.to_csr(a.values()), a);
    }

    #[test]
    fn empty_rows_and_cols_are_fine() {
        let a = Csr::empty(5, 7);
        let v = CscView::from_csr(&a);
        assert_eq!(v.nnz(), 0);
        for j in 0..7 {
            assert!(v.col(j).0.is_empty());
        }
        assert_eq!(v.to_csr(&[]), a);
    }

    #[test]
    fn block_shares_the_values_buffer() {
        let b = SpBlock::from_csr(sample());
        assert_eq!(b.nnz(), 5);
        // The view carries positions, not values: every position is a
        // valid index into the one CSR buffer.
        for j in 0..b.ncols() {
            for &p in b.csc().col(j).1 {
                assert!(p < b.csr().values().len());
            }
        }
        assert!(b.resident_bytes() > 8 * b.nnz());
    }
}
