//! Matrix Market I/O.
//!
//! The paper's real-world inputs (webbase-2001 and the like) ship as
//! Matrix Market files; this module reads and writes the two formats the
//! library needs:
//!
//! * `coordinate real general` — sparse matrices ([`read_matrix_market`]
//!   returns a [`Csr`]);
//! * `array real general` — dense matrices (column-major per the spec),
//!   read into an [`nmf_matrix::Mat`].
//!
//! Pattern files (`coordinate pattern`) are read with all nonzeros set
//! to 1.0, the convention for adjacency matrices.

use crate::coo::Coo;
use crate::csr::Csr;
use nmf_matrix::Mat;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    Io(std::io::Error),
    /// Malformed header or body, with a description.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

struct Header {
    format: String,   // "coordinate" | "array"
    field: String,    // "real" | "integer" | "pattern"
    symmetry: String, // "general" | "symmetric"
}

fn read_header(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<Header, MmError> {
    let first = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let toks: Vec<&str> = first.split_whitespace().collect();
    if toks.len() < 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err("missing %%MatrixMarket banner"));
    }
    if !toks[1].eq_ignore_ascii_case("matrix") {
        return Err(parse_err(format!("unsupported object '{}'", toks[1])));
    }
    Ok(Header {
        format: toks[2].to_ascii_lowercase(),
        field: toks[3].to_ascii_lowercase(),
        symmetry: toks[4].to_ascii_lowercase(),
    })
}

/// Reads a sparse `coordinate` Matrix Market stream into CSR.
/// Symmetric files are expanded to general storage.
pub fn read_matrix_market(reader: impl Read) -> Result<Csr, MmError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header = read_header(&mut lines)?;
    if header.format != "coordinate" {
        return Err(parse_err(format!(
            "expected coordinate format, found '{}' (use read_matrix_market_dense)",
            header.format
        )));
    }
    let pattern = header.field == "pattern";
    if !pattern && header.field != "real" && header.field != "integer" {
        return Err(parse_err(format!("unsupported field '{}'", header.field)));
    }
    let symmetric = header.symmetry == "symmetric";
    if !symmetric && header.symmetry != "general" {
        return Err(parse_err(format!(
            "unsupported symmetry '{}'",
            header.symmetry
        )));
    }

    // Skip comments, read the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break line;
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| parse_err(format!("bad size token '{t}'")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must be 'rows cols nnz'"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(nrows, ncols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("missing column index"))?
            .parse()
            .map_err(|_| parse_err("bad column index"))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!(
                "entry ({i}, {j}) out of bounds (1-based)"
            )));
        }
        coo.push(i - 1, j - 1, v);
        if symmetric && i != j {
            coo.push(j - 1, i - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Reads a dense `array` Matrix Market stream (column-major) into a
/// row-major [`Mat`].
pub fn read_matrix_market_dense(reader: impl Read) -> Result<Mat, MmError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header = read_header(&mut lines)?;
    if header.format != "array" {
        return Err(parse_err(
            "expected array format (use read_matrix_market for sparse)",
        ));
    }
    if header.field != "real" && header.field != "integer" {
        return Err(parse_err(format!("unsupported field '{}'", header.field)));
    }
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break line;
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err("bad size token")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 2 {
        return Err(parse_err("array size line must be 'rows cols'"));
    }
    let (nrows, ncols) = (dims[0], dims[1]);
    let mut m = Mat::zeros(nrows, ncols);
    let mut idx = 0usize;
    for line in lines {
        let line = line?;
        for tok in line.split_whitespace() {
            if tok.starts_with('%') {
                break;
            }
            let v: f64 = tok
                .parse()
                .map_err(|_| parse_err(format!("bad value '{tok}'")))?;
            if idx >= nrows * ncols {
                return Err(parse_err("too many values"));
            }
            // Column-major order per the Matrix Market spec.
            let (col, row) = (idx / nrows, idx % nrows);
            m[(row, col)] = v;
            idx += 1;
        }
    }
    if idx != nrows * ncols {
        return Err(parse_err(format!(
            "expected {} values, found {idx}",
            nrows * ncols
        )));
    }
    Ok(m)
}

/// Writes `m` as `coordinate real general` Matrix Market.
pub fn write_matrix_market(m: &Csr, writer: impl Write) -> Result<(), MmError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for i in 0..m.nrows() {
        let (cols, vals) = m.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {v:.17e}", i + 1, j + 1)?;
        }
    }
    Ok(())
}

/// Writes `m` as `array real general` Matrix Market (column-major).
pub fn write_matrix_market_dense(m: &Mat, writer: impl Write) -> Result<(), MmError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "{} {}", m.nrows(), m.ncols())?;
    for j in 0..m.ncols() {
        for i in 0..m.nrows() {
            writeln!(w, "{:.17e}", m[(i, j)])?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::banded;
    use nmf_matrix::rng::Fill;

    #[test]
    fn sparse_round_trip() {
        let m = banded(9, 2);
        let mut bytes = Vec::new();
        write_matrix_market(&m, &mut bytes).unwrap();
        let back = read_matrix_market(bytes.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn dense_round_trip() {
        let m = Mat::uniform(7, 5, 9);
        let mut bytes = Vec::new();
        write_matrix_market_dense(&m, &mut bytes).unwrap();
        let back = read_matrix_market_dense(bytes.as_slice()).unwrap();
        assert!(back.max_abs_diff(&m) < 1e-15);
    }

    #[test]
    fn reads_pattern_and_comments() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    3 4 2\n\
                    1 1\n\
                    3 4\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 3), 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn expands_symmetric_storage() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 2\n\
                    2 1 5.0\n\
                    3 3 7.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 1), 5.0, "symmetric mirror entry");
        assert_eq!(m.get(2, 2), 7.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_matrix_market("not a matrix".as_bytes()).is_err());
        let bad_bounds = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(bad_bounds.as_bytes()).is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(wrong_count.as_bytes()).is_err());
    }

    #[test]
    fn dense_reader_is_column_major() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        let m = read_matrix_market_dense(text.as_bytes()).unwrap();
        // Column-major: first column is [1, 2].
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }
}
