//! Matrix I/O: Matrix Market text and the binary out-of-core format.
//!
//! The paper's real-world inputs (webbase-2001 and the like) ship as
//! Matrix Market files; this module reads and writes the two formats the
//! library needs:
//!
//! * `coordinate real general` — sparse matrices ([`read_matrix_market`]
//!   returns a [`Csr`]);
//! * `array real general` — dense matrices (column-major per the spec),
//!   read into an [`nmf_matrix::Mat`].
//!
//! Pattern files (`coordinate pattern`) are read with all nonzeros set
//! to 1.0, the convention for adjacency matrices.
//!
//! For matrices larger than RAM there is additionally a little-endian
//! binary CSR container (`NMFS`, see [`write_csr_binary`]) and a
//! memory-mapped panel-streaming reader ([`MmapCsr`]) that never maps
//! more than the header, the row pointers, and one row panel's indices
//! and values at a time — the ingest side of the shared pre-sharded
//! input layer.

use crate::coo::Coo;
use crate::csr::Csr;
use nmf_matrix::Mat;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::AsRawFd;
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    Io(std::io::Error),
    /// Malformed header or body, with a description.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

struct Header {
    format: String,   // "coordinate" | "array"
    field: String,    // "real" | "integer" | "pattern"
    symmetry: String, // "general" | "symmetric"
}

fn read_header(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
) -> Result<Header, MmError> {
    let first = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let toks: Vec<&str> = first.split_whitespace().collect();
    if toks.len() < 5 || !toks[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err("missing %%MatrixMarket banner"));
    }
    if !toks[1].eq_ignore_ascii_case("matrix") {
        return Err(parse_err(format!("unsupported object '{}'", toks[1])));
    }
    Ok(Header {
        format: toks[2].to_ascii_lowercase(),
        field: toks[3].to_ascii_lowercase(),
        symmetry: toks[4].to_ascii_lowercase(),
    })
}

/// Reads a sparse `coordinate` Matrix Market stream into CSR.
/// Symmetric files are expanded to general storage.
pub fn read_matrix_market(reader: impl Read) -> Result<Csr, MmError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header = read_header(&mut lines)?;
    if header.format != "coordinate" {
        return Err(parse_err(format!(
            "expected coordinate format, found '{}' (use read_matrix_market_dense)",
            header.format
        )));
    }
    let pattern = header.field == "pattern";
    if !pattern && header.field != "real" && header.field != "integer" {
        return Err(parse_err(format!("unsupported field '{}'", header.field)));
    }
    let symmetric = header.symmetry == "symmetric";
    if !symmetric && header.symmetry != "general" {
        return Err(parse_err(format!(
            "unsupported symmetry '{}'",
            header.symmetry
        )));
    }

    // Skip comments, read the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break line;
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| parse_err(format!("bad size token '{t}'")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must be 'rows cols nnz'"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(nrows, ncols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("missing column index"))?
            .parse()
            .map_err(|_| parse_err("bad column index"))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!(
                "entry ({i}, {j}) out of bounds (1-based)"
            )));
        }
        coo.push(i - 1, j - 1, v);
        if symmetric && i != j {
            coo.push(j - 1, i - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Reads a dense `array` Matrix Market stream (column-major) into a
/// row-major [`Mat`].
pub fn read_matrix_market_dense(reader: impl Read) -> Result<Mat, MmError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let header = read_header(&mut lines)?;
    if header.format != "array" {
        return Err(parse_err(
            "expected array format (use read_matrix_market for sparse)",
        ));
    }
    if header.field != "real" && header.field != "integer" {
        return Err(parse_err(format!("unsupported field '{}'", header.field)));
    }
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break line;
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err("bad size token")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 2 {
        return Err(parse_err("array size line must be 'rows cols'"));
    }
    let (nrows, ncols) = (dims[0], dims[1]);
    let mut m = Mat::zeros(nrows, ncols);
    let mut idx = 0usize;
    for line in lines {
        let line = line?;
        for tok in line.split_whitespace() {
            if tok.starts_with('%') {
                break;
            }
            let v: f64 = tok
                .parse()
                .map_err(|_| parse_err(format!("bad value '{tok}'")))?;
            if idx >= nrows * ncols {
                return Err(parse_err("too many values"));
            }
            // Column-major order per the Matrix Market spec.
            let (col, row) = (idx / nrows, idx % nrows);
            m[(row, col)] = v;
            idx += 1;
        }
    }
    if idx != nrows * ncols {
        return Err(parse_err(format!(
            "expected {} values, found {idx}",
            nrows * ncols
        )));
    }
    Ok(m)
}

/// Writes `m` as `coordinate real general` Matrix Market.
pub fn write_matrix_market(m: &Csr, writer: impl Write) -> Result<(), MmError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for i in 0..m.nrows() {
        let (cols, vals) = m.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {v:.17e}", i + 1, j + 1)?;
        }
    }
    Ok(())
}

/// Writes `m` as `array real general` Matrix Market (column-major).
pub fn write_matrix_market_dense(m: &Mat, writer: impl Write) -> Result<(), MmError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "{} {}", m.nrows(), m.ncols())?;
    for j in 0..m.ncols() {
        for i in 0..m.nrows() {
            writeln!(w, "{:.17e}", m[(i, j)])?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Binary CSR container ("NMFS") and memory-mapped panel streaming.
// ---------------------------------------------------------------------------

/// Magic bytes opening an `NMFS` binary CSR file.
pub const NMFS_MAGIC: [u8; 4] = *b"NMFS";
/// Current `NMFS` container version.
pub const NMFS_VERSION: u32 = 1;
/// Header bytes: magic, version, then `nrows`/`ncols`/`nnz` as `u64`.
const NMFS_HEADER_LEN: usize = 32;

/// Byte offset of the `indices` section for a matrix with `nrows` rows.
fn nmfs_indices_off(nrows: usize) -> u64 {
    NMFS_HEADER_LEN as u64 + 8 * (nrows as u64 + 1)
}

/// Byte offset of the `values` section.
fn nmfs_values_off(nrows: usize, nnz: usize) -> u64 {
    nmfs_indices_off(nrows) + 8 * nnz as u64
}

/// Writes `m` in the `NMFS` binary CSR container.
///
/// Layout (all little-endian, every section 8-aligned):
///
/// | offset              | contents                         |
/// |---------------------|----------------------------------|
/// | 0                   | magic `b"NMFS"`, version `u32`   |
/// | 8                   | `nrows`, `ncols`, `nnz` as `u64` |
/// | 32                  | `indptr`: `(nrows+1) × u64`      |
/// | 32 + 8(nrows+1)     | `indices`: `nnz × u64`           |
/// | … + 8·nnz           | `values`: `nnz × f64` (IEEE bits)|
pub fn write_csr_binary(m: &Csr, writer: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(&NMFS_MAGIC)?;
    w.write_all(&NMFS_VERSION.to_le_bytes())?;
    w.write_all(&(m.nrows() as u64).to_le_bytes())?;
    w.write_all(&(m.ncols() as u64).to_le_bytes())?;
    w.write_all(&(m.nnz() as u64).to_le_bytes())?;
    for &p in m.indptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &j in m.indices() {
        w.write_all(&(j as u64).to_le_bytes())?;
    }
    for &v in m.values() {
        w.write_all(&v.to_bits().to_le_bytes())?;
    }
    w.flush()
}

/// Writes `m` as an `NMFS` file at `path` (see [`write_csr_binary`]).
pub fn write_csr_binary_path(m: &Csr, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_csr_binary(m, File::create(path)?)
}

fn le_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

/// Reads a whole `NMFS` stream into a resident [`Csr`] (the in-RAM
/// parity path for [`MmapCsr`]; loads everything, so only for matrices
/// that fit in memory).
pub fn read_csr_binary(reader: impl Read) -> Result<Csr, MmError> {
    let mut r = BufReader::new(reader);
    let mut head = [0u8; NMFS_HEADER_LEN];
    r.read_exact(&mut head)?;
    let (nrows, ncols, nnz) = parse_nmfs_header(&head)?;
    let mut read_u64s = |n: usize| -> Result<Vec<u64>, MmError> {
        let mut buf = vec![0u8; 8 * n];
        r.read_exact(&mut buf)?;
        Ok((0..n).map(|i| le_u64(&buf, 8 * i)).collect())
    };
    let indptr: Vec<usize> = read_u64s(nrows + 1)?.iter().map(|&x| x as usize).collect();
    let indices: Vec<usize> = read_u64s(nnz)?.iter().map(|&x| x as usize).collect();
    let values: Vec<f64> = read_u64s(nnz)?.iter().map(|&x| f64::from_bits(x)).collect();
    Ok(Csr::from_parts(nrows, ncols, indptr, indices, values))
}

fn parse_nmfs_header(head: &[u8; NMFS_HEADER_LEN]) -> Result<(usize, usize, usize), MmError> {
    if head[..4] != NMFS_MAGIC {
        return Err(parse_err("not an NMFS file (bad magic)"));
    }
    let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if version != NMFS_VERSION {
        return Err(parse_err(format!("unsupported NMFS version {version}")));
    }
    Ok((
        le_u64(head, 8) as usize,
        le_u64(head, 16) as usize,
        le_u64(head, 24) as usize,
    ))
}

// Minimal mmap FFI. std already links libc on Linux, so declaring the
// two symbols directly avoids a dependency on the `libc` crate (the
// container has no network access for new crates).
extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
}

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;

/// mmap offsets must be page-aligned; 64 KiB is a multiple of every
/// page size in common use (4K/16K/64K), so aligning down to it is
/// always valid and needs no `sysconf` call.
const MAP_ALIGN: u64 = 64 * 1024;

/// A read-only mapping of a byte range of a file. The requested range
/// need not be page-aligned; the window maps the enclosing aligned span
/// and exposes just the requested bytes. Unmapped on drop.
struct MapWindow {
    base: *mut c_void,
    map_len: usize,
    skip: usize,
    len: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated, so
// sharing the window across threads is sound.
unsafe impl Send for MapWindow {}
unsafe impl Sync for MapWindow {}

impl MapWindow {
    fn map(file: &File, offset: u64, len: usize) -> std::io::Result<MapWindow> {
        if len == 0 {
            return Ok(MapWindow {
                base: std::ptr::null_mut(),
                map_len: 0,
                skip: 0,
                len: 0,
            });
        }
        let aligned = offset - offset % MAP_ALIGN;
        let skip = (offset - aligned) as usize;
        let map_len = len + skip;
        // SAFETY: valid fd, read-only private mapping, aligned offset.
        let base = unsafe {
            mmap(
                std::ptr::null_mut(),
                map_len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                aligned as i64,
            )
        };
        if base as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(MapWindow {
            base,
            map_len,
            skip,
            len,
        })
    }

    #[inline]
    fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: the mapping covers skip + len readable bytes.
        unsafe { std::slice::from_raw_parts((self.base as *const u8).add(self.skip), self.len) }
    }
}

impl Drop for MapWindow {
    fn drop(&mut self) {
        if self.map_len > 0 {
            // SAFETY: base/map_len came from a successful mmap.
            unsafe { munmap(self.base, self.map_len) };
        }
    }
}

/// A memory-mapped `NMFS` file, streamed by row panel.
///
/// Only the header and the row-pointer array are mapped for the lifetime
/// of the handle (`8·(nrows+1)` bytes — megabytes even for web-scale row
/// counts). Nonzero indices and values are mapped in per-panel windows
/// ([`MmapCsr::panel`]) and unmapped when the panel drops, so peak
/// address space stays near one panel regardless of file size — which is
/// what lets an input larger than the memory rlimit shard onto the grid.
pub struct MmapCsr {
    file: File,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// Header + indptr, mapped eagerly.
    head: MapWindow,
}

impl MmapCsr {
    /// Opens an `NMFS` file, validating the header and section sizes.
    pub fn open(path: impl AsRef<Path>) -> Result<MmapCsr, MmError> {
        let file = File::open(path)?;
        let mut head = [0u8; NMFS_HEADER_LEN];
        (&file).read_exact(&mut head)?;
        let (nrows, ncols, nnz) = parse_nmfs_header(&head)?;
        let expect = nmfs_values_off(nrows, nnz) + 8 * nnz as u64;
        let actual = file.metadata()?.len();
        if actual != expect {
            return Err(parse_err(format!(
                "NMFS file truncated: {actual} bytes, expected {expect}"
            )));
        }
        let head = MapWindow::map(&file, 0, NMFS_HEADER_LEN + 8 * (nrows + 1))?;
        let m = MmapCsr {
            file,
            nrows,
            ncols,
            nnz,
            head,
        };
        if m.indptr(0) != 0 || m.indptr(nrows) != nnz {
            return Err(parse_err("NMFS indptr does not span [0, nnz]"));
        }
        Ok(m)
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Row pointer `i` (`0 ..= nrows`), read from the mapped header.
    #[inline]
    pub fn indptr(&self, i: usize) -> usize {
        debug_assert!(i <= self.nrows);
        le_u64(self.head.bytes(), NMFS_HEADER_LEN + 8 * i) as usize
    }

    /// Maps rows `r0 .. r0+nr` as a panel: one index window and one
    /// value window covering exactly those rows' nonzeros.
    pub fn panel(&self, r0: usize, nr: usize) -> Result<CsrPanel<'_>, MmError> {
        assert!(r0 + nr <= self.nrows, "panel out of bounds");
        let lo = self.indptr(r0);
        let hi = self.indptr(r0 + nr);
        let span = hi - lo;
        let idx = MapWindow::map(
            &self.file,
            nmfs_indices_off(self.nrows) + 8 * lo as u64,
            8 * span,
        )?;
        let val = MapWindow::map(
            &self.file,
            nmfs_values_off(self.nrows, self.nnz) + 8 * lo as u64,
            8 * span,
        )?;
        let indptr: Vec<usize> = (0..=nr).map(|i| self.indptr(r0 + i) - lo).collect();
        Ok(CsrPanel {
            ncols: self.ncols,
            indptr,
            idx,
            val,
            _owner: std::marker::PhantomData,
        })
    }

    /// Extracts the `(r0..r0+nr) × (c0..c0+nc)` block as an owned,
    /// locally-reindexed [`Csr`] — the same contract as [`Csr::block`],
    /// mapping only the `nr`-row panel while it works.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Result<Csr, MmError> {
        assert!(c0 + nc <= self.ncols, "block out of bounds");
        Ok(self.panel(r0, nr)?.cols_block(c0, nc))
    }

    /// Squared Frobenius norm, streamed over row panels so the whole
    /// values section is never resident. Values are summed in file
    /// order — the same order as [`Csr::fro_norm_sq`] on the resident
    /// matrix, so the result is bit-identical.
    pub fn fro_norm_sq(&self) -> Result<f64, MmError> {
        let panel_rows = self.panel_rows_for_budget(DEFAULT_PANEL_BYTES);
        let mut acc = 0.0;
        let mut r0 = 0;
        while r0 < self.nrows {
            let nr = panel_rows.min(self.nrows - r0);
            let p = self.panel(r0, nr)?;
            for i in 0..nr {
                let (_, vals) = p.row_scratch(i);
                // One element at a time: the same left-to-right fold as
                // `Csr::fro_norm_sq`, so the association (and bits) match.
                for v in vals {
                    acc += v * v;
                }
            }
            r0 += nr;
        }
        Ok(acc)
    }

    /// A row-panel height that keeps one panel's mapped bytes near
    /// `budget` for this matrix's average row density (at least 1 row).
    pub fn panel_rows_for_budget(&self, budget: usize) -> usize {
        if self.nnz == 0 || self.nrows == 0 {
            return self.nrows.max(1);
        }
        let bytes_per_row = 16 * self.nnz / self.nrows + 1;
        (budget / bytes_per_row).clamp(1, self.nrows)
    }
}

/// Default per-panel byte budget for streaming traversals (16 MiB).
pub const DEFAULT_PANEL_BYTES: usize = 16 << 20;

/// A mapped window over a contiguous row range of an [`MmapCsr`].
///
/// Rows are addressed locally (`0 .. nr`). Indices and values are read
/// straight out of the mapped file bytes; nothing is copied until a
/// caller extracts an owned block.
pub struct CsrPanel<'a> {
    ncols: usize,
    /// Local row pointers, rebased to the panel start (`nr + 1` entries).
    indptr: Vec<usize>,
    idx: MapWindow,
    val: MapWindow,
    _owner: std::marker::PhantomData<&'a MmapCsr>,
}

impl CsrPanel<'_> {
    /// Number of rows in the panel.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Nonzeros mapped by the panel.
    #[inline]
    pub fn nnz(&self) -> usize {
        *self.indptr.last().unwrap()
    }

    /// Local row `i` as `(column, value)` iterators decoded from the
    /// mapped bytes.
    #[inline]
    pub fn row_scratch(
        &self,
        i: usize,
    ) -> (
        impl Iterator<Item = usize> + '_,
        impl Iterator<Item = f64> + '_,
    ) {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        let ib = self.idx.bytes();
        let vb = self.val.bytes();
        (
            (lo..hi).map(move |p| le_u64(ib, 8 * p) as usize),
            (lo..hi).map(move |p| f64::from_bits(le_u64(vb, 8 * p))),
        )
    }

    /// The whole panel as an owned [`Csr`] (all columns).
    pub fn to_csr(&self) -> Csr {
        self.cols_block(0, self.ncols)
    }

    /// Columns `c0 .. c0+nc` of the panel as an owned, locally
    /// reindexed [`Csr`] — bit-identical to `Csr::block` on the
    /// resident matrix over the same ranges.
    pub fn cols_block(&self, c0: usize, nc: usize) -> Csr {
        assert!(c0 + nc <= self.ncols, "column block out of bounds");
        let c1 = c0 + nc;
        let nr = self.nrows();
        let mut indptr = Vec::with_capacity(nr + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut cols: Vec<usize> = Vec::new();
        for i in 0..nr {
            let (cit, vit) = self.row_scratch(i);
            cols.clear();
            cols.extend(cit);
            // Columns are sorted within the row: binary search [c0, c1).
            let lo = cols.partition_point(|&c| c < c0);
            let hi = cols.partition_point(|&c| c < c1);
            indices.extend(cols[lo..hi].iter().map(|&c| c - c0));
            values.extend(vit.skip(lo).take(hi - lo));
            indptr.push(indices.len());
        }
        Csr::from_parts(nr, nc, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::banded;
    use nmf_matrix::rng::Fill;

    #[test]
    fn sparse_round_trip() {
        let m = banded(9, 2);
        let mut bytes = Vec::new();
        write_matrix_market(&m, &mut bytes).unwrap();
        let back = read_matrix_market(bytes.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn dense_round_trip() {
        let m = Mat::uniform(7, 5, 9);
        let mut bytes = Vec::new();
        write_matrix_market_dense(&m, &mut bytes).unwrap();
        let back = read_matrix_market_dense(bytes.as_slice()).unwrap();
        assert!(back.max_abs_diff(&m) < 1e-15);
    }

    #[test]
    fn reads_pattern_and_comments() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    % a comment\n\
                    3 4 2\n\
                    1 1\n\
                    3 4\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 3), 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn expands_symmetric_storage() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 2\n\
                    2 1 5.0\n\
                    3 3 7.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 1), 5.0, "symmetric mirror entry");
        assert_eq!(m.get(2, 2), 7.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_matrix_market("not a matrix".as_bytes()).is_err());
        let bad_bounds = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(bad_bounds.as_bytes()).is_err());
        let wrong_count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(wrong_count.as_bytes()).is_err());
    }

    fn tmp_nmfs(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nmf-io-{tag}-{}.nmfs", std::process::id()))
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let m = crate::gen::erdos_renyi(23, 17, 0.2, 7);
        let mut bytes = Vec::new();
        write_csr_binary(&m, &mut bytes).unwrap();
        assert_eq!(
            bytes.len() as u64,
            nmfs_values_off(23, m.nnz()) + 8 * m.nnz() as u64
        );
        let back = read_csr_binary(bytes.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn binary_preserves_negative_zero_and_nan_bits() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, -0.0);
        c.push(1, 1, f64::NAN);
        let m = c.to_csr();
        let mut bytes = Vec::new();
        write_csr_binary(&m, &mut bytes).unwrap();
        let back = read_csr_binary(bytes.as_slice()).unwrap();
        for (a, b) in m.values().iter().zip(back.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mmap_blocks_match_resident_blocks() {
        let m = crate::gen::erdos_renyi(61, 43, 0.08, 11);
        let path = tmp_nmfs("blocks");
        write_csr_binary_path(&m, &path).unwrap();
        let mm = MmapCsr::open(&path).unwrap();
        assert_eq!(mm.shape(), m.shape());
        assert_eq!(mm.nnz(), m.nnz());
        // Tile with a ragged 3×2 grid and compare every block.
        for (r0, nr) in [(0, 21), (21, 21), (42, 19)] {
            for (c0, nc) in [(0, 22), (22, 21)] {
                let a = mm.block(r0, c0, nr, nc).unwrap();
                let b = m.block(r0, c0, nr, nc);
                assert_eq!(a, b, "block ({r0},{c0})+({nr},{nc})");
            }
        }
        // Panel-wise reconstruction and streamed norm agree bit-for-bit.
        assert_eq!(mm.panel(17, 9).unwrap().to_csr(), m.rows_block(17, 9));
        assert_eq!(
            mm.fro_norm_sq().unwrap().to_bits(),
            m.fro_norm_sq().to_bits()
        );
        drop(mm);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_handles_empty_rows_and_empty_matrix() {
        let path = tmp_nmfs("empty");
        let m = Csr::empty(5, 4);
        write_csr_binary_path(&m, &path).unwrap();
        let mm = MmapCsr::open(&path).unwrap();
        assert_eq!(mm.nnz(), 0);
        assert_eq!(mm.block(1, 1, 3, 2).unwrap(), Csr::empty(3, 2));
        assert_eq!(mm.fro_norm_sq().unwrap(), 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_rejects_bad_files() {
        let path = tmp_nmfs("bad");
        std::fs::write(&path, b"definitely not an NMFS file, far too short header").unwrap();
        assert!(MmapCsr::open(&path).is_err());
        // Valid header, truncated body.
        let m = banded(9, 2);
        let mut bytes = Vec::new();
        write_csr_binary(&m, &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 8);
        std::fs::write(&path, &bytes).unwrap();
        assert!(MmapCsr::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panel_budget_is_sane() {
        let m = crate::gen::erdos_renyi(200, 50, 0.1, 3);
        let path = tmp_nmfs("budget");
        write_csr_binary_path(&m, &path).unwrap();
        let mm = MmapCsr::open(&path).unwrap();
        assert_eq!(mm.panel_rows_for_budget(usize::MAX / 32), 200);
        assert!(mm.panel_rows_for_budget(1) >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dense_reader_is_column_major() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        let m = read_matrix_market_dense(text.as_bytes()).unwrap();
        // Column-major: first column is [1, 2].
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }
}
