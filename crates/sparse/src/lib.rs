//! Sparse matrix substrate for the HPC-NMF reproduction.
//!
//! The paper's sparse inputs (Erdős–Rényi synthetic, webbase-2001 graph)
//! enter the algorithms only through two kernels: `A·Hᵀ` and `WᵀA`
//! (sparse-times-tall-dense). This crate provides:
//!
//! * [`Coo`] — a coordinate-format builder (sorts and sums duplicates);
//! * [`Csr`] — compressed sparse row storage with transpose, 2D block
//!   extraction (how the input is distributed over the processor grid),
//!   and norms;
//! * [`spmm`] — the two SpMM kernels, laid out so the dense operand and
//!   output are walked contiguously;
//! * [`gen`] — random sparse generators: Erdős–Rényi (the paper's SSYN)
//!   and a Chung–Lu power-law digraph standing in for webbase-2001.

pub mod coo;
pub mod csc;
pub mod csr;
pub mod gen;
pub mod io;
pub mod spmm;

pub use coo::Coo;
pub use csc::{CscView, SpBlock};
pub use csr::Csr;
pub use spmm::{
    csc_chosen, spmm_at_dense, spmm_at_dense_auto, spmm_at_dense_auto_into, spmm_at_dense_csc,
    spmm_at_dense_csc_into, spmm_at_dense_into, spmm_at_dense_par, spmm_dense_t, spmm_dense_t_into,
    spmm_dense_t_par, spmm_dense_t_par_into,
};
