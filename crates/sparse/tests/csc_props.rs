//! Property tests over the sparse layer: the CSC view is a faithful
//! re-indexing of its CSR, and the CSC-driven `Aᵀ·W` kernel is
//! **bit-for-bit** identical to the CSR transposed pass — on ragged
//! matrices with empty rows and empty columns, and on adversarial
//! payloads (`-0.0`, NaN) where a tolerance check would hide a
//! reordered sum.
//!
//! Bit-identity is the contract `SharedInput` relies on: swapping the
//! kernel orientation must not perturb any factorization trajectory
//! (see `docs/sharded-input.md`).

use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_sparse::io::{read_csr_binary, write_csr_binary};
use nmf_sparse::{spmm_at_dense, spmm_at_dense_csc, spmm_at_dense_csc_into, CscView, Csr};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ragged sparse matrix: every row draws its own degree, with zero
/// common — so empty rows, near-dense rows, and empty columns all
/// occur. Values are signed to exercise cancellation.
fn ragged(m: usize, n: usize, max_deg: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indptr = vec![0usize];
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for _ in 0..m {
        let deg = rng.gen_range(0..max_deg.min(n) + 1);
        let mut cols: Vec<usize> = (0..deg).map(|_| rng.gen_range(0..n)).collect();
        cols.sort_unstable();
        cols.dedup();
        for j in cols {
            indices.push(j);
            values.push(rng.gen::<f64>() * 2.0 - 1.0);
        }
        indptr.push(indices.len());
    }
    Csr::from_parts(m, n, indptr, indices, values)
}

fn bits_equal(a: &Mat, b: &Mat) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn csc_round_trips_to_the_same_csr(
        m in 0usize..40,
        n in 0usize..40,
        max_deg in 0usize..12,
        seed in 0u64..10_000,
    ) {
        let a = ragged(m, n, max_deg, seed);
        let view = CscView::from_csr(&a);
        prop_assert!(view.matches(&a));
        // Column structure is a permutation of the CSR's nonzeros...
        prop_assert_eq!(view.nnz(), a.nnz());
        // ...and transposing it back reproduces the CSR exactly,
        // values routed through the shared ordering.
        prop_assert_eq!(view.to_csr(a.values()), a);
    }

    #[test]
    fn csc_kernel_is_bit_identical_to_transposed_pass(
        m in 0usize..40,
        n in 0usize..40,
        max_deg in 0usize..12,
        k in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let a = ragged(m, n, max_deg, seed);
        let view = CscView::from_csr(&a);
        let w = Mat::uniform(m, k, seed ^ 0x57);
        let expect = spmm_at_dense(&a, &w);
        let got = spmm_at_dense_csc(&a, &view, &w);
        prop_assert!(bits_equal(&got, &expect), "csc kernel diverged on {m}x{n} k={k}");
        // The into-variant over a dirty output must fully overwrite.
        let mut y = Mat::uniform(n, k, seed ^ 0xD1);
        spmm_at_dense_csc_into(&a, &view, &w, &mut y);
        prop_assert!(bits_equal(&y, &expect), "into-variant left stale output");
    }

    #[test]
    fn nmfs_round_trip_is_bit_exact(
        m in 0usize..30,
        n in 0usize..30,
        max_deg in 0usize..10,
        seed in 0u64..10_000,
    ) {
        let a = ragged(m, n, max_deg, seed);
        let mut buf = Vec::new();
        write_csr_binary(&a, &mut buf).expect("in-memory write");
        let back = read_csr_binary(buf.as_slice()).expect("well-formed bytes");
        prop_assert_eq!(back.indptr(), a.indptr());
        prop_assert_eq!(back.indices(), a.indices());
        for (x, y) in back.values().iter().zip(a.values()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// `-0.0` and NaN survive the CSC orientation unchanged: the kernel
/// performs the same additions in the same order as the transposed
/// pass, so even non-finite payloads land bit-identically (mirrors the
/// dense suite in `crates/matrix/tests/kernel_equivalence.rs`).
#[test]
fn csc_kernel_propagates_negative_zero_and_nan() {
    let a = Csr::from_parts(
        3,
        4,
        vec![0, 2, 2, 4],
        vec![0, 2, 1, 2],
        vec![-0.0, f64::NAN, 1.0, -1.0],
    );
    let view = CscView::from_csr(&a);
    let mut w = Mat::zeros(3, 2);
    w[(0, 0)] = -0.0;
    w[(0, 1)] = 5.0;
    w[(2, 0)] = f64::NAN;
    w[(2, 1)] = -2.0;
    let expect = spmm_at_dense(&a, &w);
    let got = spmm_at_dense_csc(&a, &view, &w);
    assert!(
        expect.as_slice().iter().any(|v| v.is_nan()),
        "case must actually exercise NaN propagation"
    );
    for (x, y) in got.as_slice().iter().zip(expect.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
