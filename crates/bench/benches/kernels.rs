//! Criterion benches of the local computation kernels (the `MM` and
//! `Gram` tasks): dense GEMM in the shapes the algorithms use, sparse
//! SpMM, and the Gram products.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmf_matrix::rng::Fill;
use nmf_matrix::{
    cholesky, cholesky_solve_in_place, cholesky_solve_percol_in_place, gram, matmul,
    matmul_blocked_into, matmul_ikj, matmul_into, matmul_packed_into, matmul_par, matmul_ta,
    matmul_ta_blocked_into, matmul_ta_into, outer_gram, Mat, PackedPanels,
};
use nmf_sparse::gen::erdos_renyi;
use nmf_sparse::{spmm_at_dense, spmm_at_dense_par, spmm_dense_t, spmm_dense_t_par};
use std::time::Duration;

fn bench_dense_mm(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense_mm");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    // A_ij · Hⱼᵀ: (m/pr × n/pc) times (n/pc × k).
    for &(m, n, k) in &[
        (512usize, 512usize, 16usize),
        (512, 512, 64),
        (2048, 64, 16),
    ] {
        let a = Mat::uniform(m, n, 1);
        let ht = Mat::uniform(n, k, 2);
        g.throughput(Throughput::Elements((2 * m * n * k) as u64));
        g.bench_with_input(
            BenchmarkId::new("a_ht", format!("{m}x{n}x{k}")),
            &(),
            |b, ()| b.iter(|| matmul(&a, &ht)),
        );
        let w = Mat::uniform(m, k, 3);
        g.bench_with_input(
            BenchmarkId::new("at_w", format!("{m}x{n}x{k}")),
            &(),
            |b, ()| b.iter(|| matmul_ta(&a, &w)),
        );
    }
    g.finish();
}

fn bench_sparse_mm(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_mm");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for &(m, n, density, k) in &[
        (4096usize, 4096usize, 0.001f64, 16usize),
        (4096, 4096, 0.01, 16),
    ] {
        let a = erdos_renyi(m, n, density, 4);
        let ht = Mat::uniform(n, k, 5);
        let w = Mat::uniform(m, k, 6);
        g.throughput(Throughput::Elements((2 * a.nnz() * k) as u64));
        let label = format!("{m}x{n}_d{density}_k{k}");
        g.bench_with_input(BenchmarkId::new("a_ht", &label), &(), |b, ()| {
            b.iter(|| spmm_dense_t(&a, &ht))
        });
        g.bench_with_input(BenchmarkId::new("at_w", &label), &(), |b, ()| {
            b.iter(|| spmm_at_dense(&a, &w))
        });
    }
    g.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for &(r, k) in &[(4096usize, 16usize), (4096, 64)] {
        let x = Mat::uniform(r, k, 7);
        g.throughput(Throughput::Elements((r * k * k) as u64));
        g.bench_with_input(BenchmarkId::new("xtx", format!("{r}x{k}")), &(), |b, ()| {
            b.iter(|| gram(&x))
        });
        let xt = Mat::uniform(k, r, 8);
        g.bench_with_input(BenchmarkId::new("xxt", format!("{k}x{r}")), &(), |b, ()| {
            b.iter(|| outer_gram(&xt))
        });
    }
    g.finish();
}

/// The PR-1 acceptance comparison: cache-blocked GEMM vs the seed's
/// unblocked `ikj` kernel, on the shapes the drivers hit (the 512×512,
/// k=32 case is the recorded baseline), plus the rayon row-parallel
/// variant for the standalone path.
fn bench_gemm_blocked_vs_ikj(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_blocked_vs_ikj");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for &(m, n, k) in &[
        (512usize, 512usize, 32usize),
        (512, 512, 64),
        (2048, 64, 16),
    ] {
        let a = Mat::uniform(m, n, 1);
        let ht = Mat::uniform(n, k, 2);
        let label = format!("{m}x{n}x{k}");
        g.throughput(Throughput::Elements((2 * m * n * k) as u64));
        g.bench_with_input(BenchmarkId::new("blocked", &label), &(), |b, ()| {
            b.iter(|| matmul(&a, &ht))
        });
        g.bench_with_input(BenchmarkId::new("ikj_seed", &label), &(), |b, ()| {
            b.iter(|| matmul_ikj(&a, &ht))
        });
        g.bench_with_input(BenchmarkId::new("blocked_par", &label), &(), |b, ()| {
            b.iter(|| matmul_par(&a, &ht))
        });
    }
    g.finish();
}

/// The PR-6 acceptance comparison: the retained scalar cache-blocked
/// kernel vs the dispatched SIMD microkernel, packing the left operand
/// per call and (the steady-state engine path) once up front. The
/// 512×512, k=32 case is the recorded acceptance shape (target ≥3×
/// blocked for the prepacked path on AVX2+FMA hosts).
fn bench_gemm_simd(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_simd");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for &(m, n, k) in &[
        (512usize, 512usize, 32usize),
        (512, 512, 64),
        (2048, 64, 16),
    ] {
        let a = Mat::uniform(m, n, 1);
        let ht = Mat::uniform(n, k, 2);
        let mut out = Mat::zeros(m, k);
        let label = format!("{m}x{n}x{k}");
        g.throughput(Throughput::Elements((2 * m * n * k) as u64));
        g.bench_with_input(BenchmarkId::new("blocked", &label), &(), |b, ()| {
            b.iter(|| matmul_blocked_into(&a, &ht, &mut out))
        });
        g.bench_with_input(BenchmarkId::new("simd", &label), &(), |b, ()| {
            b.iter(|| matmul_into(&a, &ht, &mut out))
        });
        let p = PackedPanels::pack(&a);
        g.bench_with_input(BenchmarkId::new("simd_prepacked", &label), &(), |b, ()| {
            b.iter(|| matmul_packed_into(&p, &ht, &mut out))
        });
        // Transposed-left form (the Aᵀ·W product of the H update).
        let w = Mat::uniform(m, k, 3);
        let mut out_t = Mat::zeros(n, k);
        g.bench_with_input(BenchmarkId::new("ta_blocked", &label), &(), |b, ()| {
            b.iter(|| matmul_ta_blocked_into(&a, &w, &mut out_t))
        });
        g.bench_with_input(BenchmarkId::new("ta_simd", &label), &(), |b, ()| {
            b.iter(|| matmul_ta_into(&a, &w, &mut out_t))
        });
        let pt = PackedPanels::pack_transposed(&a);
        g.bench_with_input(BenchmarkId::new("ta_prepacked", &label), &(), |b, ()| {
            b.iter(|| matmul_packed_into(&pt, &w, &mut out_t))
        });
    }
    g.finish();
}

/// Batched (NC-wide register-blocked) vs column-at-a-time triangular
/// solves for the `k×k` normal-equation systems with tall right-hand
/// sides — the ABpp/Cholesky path of every ANLS iteration.
fn bench_chol_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("chol_solve");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for &(k, r) in &[(16usize, 512usize), (32, 512), (64, 4096)] {
        // A well-conditioned SPD system: G = XᵀX + I.
        let x = Mat::uniform(3 * k, k, 9);
        let mut gmat = gram(&x);
        for i in 0..k {
            gmat[(i, i)] += 1.0;
        }
        let l = cholesky(&gmat).expect("SPD by construction");
        let b0 = Mat::uniform(k, r, 10);
        let mut bwork = Mat::zeros(k, r);
        let label = format!("k{k}_rhs{r}");
        g.throughput(Throughput::Elements((2 * k * k * r) as u64));
        g.bench_with_input(BenchmarkId::new("batched", &label), &(), |b, ()| {
            b.iter(|| {
                bwork.copy_from(&b0);
                cholesky_solve_in_place(&l, &mut bwork);
            })
        });
        g.bench_with_input(BenchmarkId::new("per_column", &label), &(), |b, ()| {
            b.iter(|| {
                bwork.copy_from(&b0);
                cholesky_solve_percol_in_place(&l, &mut bwork);
            })
        });
    }
    g.finish();
}

/// Row-parallel SpMM vs serial, standalone-path shapes.
fn bench_sparse_mm_par(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_mm_par");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let (m, n, density, k) = (4096usize, 4096usize, 0.01f64, 16usize);
    let a = erdos_renyi(m, n, density, 4);
    let ht = Mat::uniform(n, k, 5);
    let w = Mat::uniform(m, k, 6);
    g.throughput(Throughput::Elements((2 * a.nnz() * k) as u64));
    let label = format!("{m}x{n}_d{density}_k{k}");
    g.bench_with_input(BenchmarkId::new("a_ht_serial", &label), &(), |b, ()| {
        b.iter(|| spmm_dense_t(&a, &ht))
    });
    g.bench_with_input(BenchmarkId::new("a_ht_par", &label), &(), |b, ()| {
        b.iter(|| spmm_dense_t_par(&a, &ht))
    });
    g.bench_with_input(BenchmarkId::new("at_w_serial", &label), &(), |b, ()| {
        b.iter(|| spmm_at_dense(&a, &w))
    });
    g.bench_with_input(BenchmarkId::new("at_w_par", &label), &(), |b, ()| {
        b.iter(|| spmm_at_dense_par(&a, &w))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dense_mm,
    bench_sparse_mm,
    bench_gram,
    bench_gemm_blocked_vs_ikj,
    bench_gemm_simd,
    bench_chol_solve,
    bench_sparse_mm_par
);
criterion_main!(benches);
