//! Criterion benches of the local computation kernels (the `MM` and
//! `Gram` tasks): dense GEMM in the shapes the algorithms use, sparse
//! SpMM, and the Gram products.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmf_matrix::rng::Fill;
use nmf_matrix::{gram, matmul, matmul_ikj, matmul_par, matmul_ta, outer_gram, Mat};
use nmf_sparse::gen::erdos_renyi;
use nmf_sparse::{spmm_at_dense, spmm_at_dense_par, spmm_dense_t, spmm_dense_t_par};
use std::time::Duration;

fn bench_dense_mm(c: &mut Criterion) {
    let mut g = c.benchmark_group("dense_mm");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    // A_ij · Hⱼᵀ: (m/pr × n/pc) times (n/pc × k).
    for &(m, n, k) in &[
        (512usize, 512usize, 16usize),
        (512, 512, 64),
        (2048, 64, 16),
    ] {
        let a = Mat::uniform(m, n, 1);
        let ht = Mat::uniform(n, k, 2);
        g.throughput(Throughput::Elements((2 * m * n * k) as u64));
        g.bench_with_input(
            BenchmarkId::new("a_ht", format!("{m}x{n}x{k}")),
            &(),
            |b, ()| b.iter(|| matmul(&a, &ht)),
        );
        let w = Mat::uniform(m, k, 3);
        g.bench_with_input(
            BenchmarkId::new("at_w", format!("{m}x{n}x{k}")),
            &(),
            |b, ()| b.iter(|| matmul_ta(&a, &w)),
        );
    }
    g.finish();
}

fn bench_sparse_mm(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_mm");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for &(m, n, density, k) in &[
        (4096usize, 4096usize, 0.001f64, 16usize),
        (4096, 4096, 0.01, 16),
    ] {
        let a = erdos_renyi(m, n, density, 4);
        let ht = Mat::uniform(n, k, 5);
        let w = Mat::uniform(m, k, 6);
        g.throughput(Throughput::Elements((2 * a.nnz() * k) as u64));
        let label = format!("{m}x{n}_d{density}_k{k}");
        g.bench_with_input(BenchmarkId::new("a_ht", &label), &(), |b, ()| {
            b.iter(|| spmm_dense_t(&a, &ht))
        });
        g.bench_with_input(BenchmarkId::new("at_w", &label), &(), |b, ()| {
            b.iter(|| spmm_at_dense(&a, &w))
        });
    }
    g.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for &(r, k) in &[(4096usize, 16usize), (4096, 64)] {
        let x = Mat::uniform(r, k, 7);
        g.throughput(Throughput::Elements((r * k * k) as u64));
        g.bench_with_input(BenchmarkId::new("xtx", format!("{r}x{k}")), &(), |b, ()| {
            b.iter(|| gram(&x))
        });
        let xt = Mat::uniform(k, r, 8);
        g.bench_with_input(BenchmarkId::new("xxt", format!("{k}x{r}")), &(), |b, ()| {
            b.iter(|| outer_gram(&xt))
        });
    }
    g.finish();
}

/// The PR-1 acceptance comparison: cache-blocked GEMM vs the seed's
/// unblocked `ikj` kernel, on the shapes the drivers hit (the 512×512,
/// k=32 case is the recorded baseline), plus the rayon row-parallel
/// variant for the standalone path.
fn bench_gemm_blocked_vs_ikj(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_blocked_vs_ikj");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for &(m, n, k) in &[
        (512usize, 512usize, 32usize),
        (512, 512, 64),
        (2048, 64, 16),
    ] {
        let a = Mat::uniform(m, n, 1);
        let ht = Mat::uniform(n, k, 2);
        let label = format!("{m}x{n}x{k}");
        g.throughput(Throughput::Elements((2 * m * n * k) as u64));
        g.bench_with_input(BenchmarkId::new("blocked", &label), &(), |b, ()| {
            b.iter(|| matmul(&a, &ht))
        });
        g.bench_with_input(BenchmarkId::new("ikj_seed", &label), &(), |b, ()| {
            b.iter(|| matmul_ikj(&a, &ht))
        });
        g.bench_with_input(BenchmarkId::new("blocked_par", &label), &(), |b, ()| {
            b.iter(|| matmul_par(&a, &ht))
        });
    }
    g.finish();
}

/// Row-parallel SpMM vs serial, standalone-path shapes.
fn bench_sparse_mm_par(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_mm_par");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let (m, n, density, k) = (4096usize, 4096usize, 0.01f64, 16usize);
    let a = erdos_renyi(m, n, density, 4);
    let ht = Mat::uniform(n, k, 5);
    let w = Mat::uniform(m, k, 6);
    g.throughput(Throughput::Elements((2 * a.nnz() * k) as u64));
    let label = format!("{m}x{n}_d{density}_k{k}");
    g.bench_with_input(BenchmarkId::new("a_ht_serial", &label), &(), |b, ()| {
        b.iter(|| spmm_dense_t(&a, &ht))
    });
    g.bench_with_input(BenchmarkId::new("a_ht_par", &label), &(), |b, ()| {
        b.iter(|| spmm_dense_t_par(&a, &ht))
    });
    g.bench_with_input(BenchmarkId::new("at_w_serial", &label), &(), |b, ()| {
        b.iter(|| spmm_at_dense(&a, &w))
    });
    g.bench_with_input(BenchmarkId::new("at_w_par", &label), &(), |b, ()| {
        b.iter(|| spmm_at_dense_par(&a, &w))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dense_mm,
    bench_sparse_mm,
    bench_gram,
    bench_gemm_blocked_vs_ikj,
    bench_sparse_mm_par
);
criterion_main!(benches);
