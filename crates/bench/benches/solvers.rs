//! Criterion benches of the NLS solvers (the `NLS` task), including the
//! BPP column-grouping ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nmf_matrix::rng::Fill;
use nmf_matrix::{gram, matmul_ta, Mat};
use nmf_nls::{Bpp, Hals, Mu, NlsSolver};
use std::time::Duration;

fn instance(r: usize, k: usize, seed: u64) -> (Mat, Mat) {
    let c = Mat::uniform(2 * k + 16, k, seed);
    let b = Mat::uniform(2 * k + 16, r, seed + 1);
    (gram(&c), matmul_ta(&b, &c))
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("nls_solvers");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for &(r, k) in &[(2048usize, 16usize), (2048, 50)] {
        let (gr, ctb) = instance(r, k, 11);
        let label = format!("r{r}_k{k}");
        g.bench_with_input(BenchmarkId::new("bpp", &label), &(), |b, ()| {
            b.iter(|| {
                let mut x = Mat::zeros(r, k);
                Bpp::default().update(&gr, &ctb, &mut x);
                x
            })
        });
        g.bench_with_input(BenchmarkId::new("mu", &label), &(), |b, ()| {
            let mut x = Mat::uniform(r, k, 12);
            b.iter(|| Mu::default().update(&gr, &ctb, &mut x))
        });
        g.bench_with_input(BenchmarkId::new("hals", &label), &(), |b, ()| {
            let mut x = Mat::uniform(r, k, 13);
            b.iter(|| Hals::default().update(&gr, &ctb, &mut x))
        });
    }
    g.finish();
}

fn bench_bpp_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpp_grouping");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let (r, k) = (2048usize, 32usize);
    let (gr, ctb) = instance(r, k, 21);
    g.bench_function("grouped", |b| {
        let mut solver = Bpp {
            group_columns: true,
            ..Bpp::default()
        };
        b.iter(|| {
            let mut x = Mat::zeros(r, k);
            solver.update(&gr, &ctb, &mut x);
            x
        })
    });
    g.bench_function("rowwise", |b| {
        let mut solver = Bpp {
            group_columns: false,
            ..Bpp::default()
        };
        b.iter(|| {
            let mut x = Mat::zeros(r, k);
            solver.update(&gr, &ctb, &mut x);
            x
        })
    });
    g.finish();
}

criterion_group!(benches, bench_solvers, bench_bpp_grouping);
criterion_main!(benches);
