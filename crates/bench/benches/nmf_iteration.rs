//! Criterion benches of whole NMF iterations: sequential vs Naive vs
//! HPC-NMF 1D/2D on scaled SSYN/DSYN-like inputs — the end-to-end
//! numbers behind the per-iteration comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpc_nmf::prelude::*;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_sparse::gen::erdos_renyi;
use std::time::Duration;

fn bench_dense_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("nmf_iter_dense");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let input = Input::Dense(Mat::uniform(720, 480, 31));
    let k = 16;
    let config = NmfConfig::new(k).with_max_iters(2);
    for (algo, p) in [
        (Algo::Sequential, 1usize),
        (Algo::Naive, 8),
        (Algo::Hpc1D, 8),
        (Algo::Hpc2D, 8),
    ] {
        g.bench_with_input(BenchmarkId::new(algo.name(), p), &(), |b, ()| {
            b.iter(|| factorize(&input, p, algo, &config).objective)
        });
    }
    g.finish();
}

fn bench_sparse_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("nmf_iter_sparse");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let input = Input::Sparse(erdos_renyi(2880, 1920, 0.02, 32));
    let k = 16;
    let config = NmfConfig::new(k).with_max_iters(2);
    for (algo, p) in [(Algo::Naive, 8usize), (Algo::Hpc1D, 8), (Algo::Hpc2D, 8)] {
        g.bench_with_input(BenchmarkId::new(algo.name(), p), &(), |b, ()| {
            b.iter(|| factorize(&input, p, algo, &config).objective)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dense_iteration, bench_sparse_iteration);
criterion_main!(benches);
