//! Criterion benches of the virtual-MPI collectives, including the
//! algorithm ablations (Bruck vs direct semantics are fixed; halving vs
//! ring reduce-scatter; Rabenseifner vs binomial-tree all-reduce).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nmf_vmpi::universe;
use std::time::Duration;

fn bench_all_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("all_gather");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for &(p, words) in &[(8usize, 4096usize), (16, 4096)] {
        g.bench_with_input(
            BenchmarkId::new("bruck", format!("p{p}_n{words}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    universe::run(p, |comm| {
                        let mine = vec![comm.rank() as f64; words / comm.size()];
                        comm.all_gather(&mine).len()
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_reduce_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduce_scatter");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for &p in &[8usize, 16] {
        let words = 8192usize;
        g.bench_with_input(BenchmarkId::new("halving", p), &(), |b, ()| {
            b.iter(|| {
                universe::run(p, |comm| {
                    let data = vec![1.0; words];
                    let counts = vec![words / comm.size(); comm.size()];
                    comm.reduce_scatter(&data, &counts).len()
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("ring", p), &(), |b, ()| {
            b.iter(|| {
                universe::run(p, |comm| {
                    let data = vec![1.0; words];
                    let counts = vec![words / comm.size(); comm.size()];
                    comm.reduce_scatter_ring(&data, &counts).len()
                })
            })
        });
    }
    g.finish();
}

fn bench_all_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("all_reduce");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    // k×k Gram payloads: the algorithm's actual all-reduce size.
    for &k in &[10usize, 50] {
        let words = k * k;
        g.bench_with_input(
            BenchmarkId::new("rabenseifner", format!("k{k}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    universe::run(8, |comm| {
                        let data = vec![comm.rank() as f64; words];
                        comm.all_reduce(&data).len()
                    })
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("binomial_tree", format!("k{k}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    universe::run(8, |comm| {
                        let data = vec![comm.rank() as f64; words];
                        comm.all_reduce_tree(&data).len()
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_all_gather,
    bench_reduce_scatter,
    bench_all_reduce
);
criterion_main!(benches);
