//! Criterion benches of the split-phase Grid2D schedule: synchronous
//! vs. overlapped per-iteration time at p = 16, dense and sparse — the
//! microbench behind `BENCH_PR7.json` (see `docs/comm-overlap.md`).
//!
//! `NMF_BENCH_QUICK=1` shrinks the shapes and measurement windows so CI
//! can smoke the group in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpc_nmf::prelude::*;
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_sparse::gen::chung_lu_power_law;
use std::time::Duration;

const P: usize = 16;

fn quick() -> bool {
    std::env::var("NMF_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn tune(g: &mut criterion::BenchmarkGroup<'_>) {
    if quick() {
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(600));
    } else {
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(3));
    }
}

fn config(k: usize, overlap: bool) -> NmfConfig {
    NmfConfig::new(k)
        .with_max_iters(2)
        .with_solver(SolverKind::Hals)
        .with_seed(41)
        .with_overlap(overlap)
}

fn bench_dense_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("comm_overlap_dense");
    tune(&mut g);
    let scale = if quick() { 4 } else { 1 };
    let input = Input::Dense(Mat::uniform(2048 / scale, 2048 / scale, 17));
    for overlap in [false, true] {
        let id = if overlap { "overlap" } else { "sync" };
        let cfg = config(32, overlap);
        g.bench_with_input(BenchmarkId::new(id, P), &(), |b, ()| {
            b.iter(|| factorize(&input, P, Algo::Hpc2D, &cfg).objective)
        });
    }
    g.finish();
}

fn bench_sparse_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("comm_overlap_sparse");
    tune(&mut g);
    let scale = if quick() { 4 } else { 1 };
    let input = Input::Sparse(chung_lu_power_law(
        16384 / scale,
        1_000_000 / (scale * scale),
        2.1,
        29,
    ));
    for overlap in [false, true] {
        let id = if overlap { "overlap" } else { "sync" };
        let cfg = config(32, overlap);
        g.bench_with_input(BenchmarkId::new(id, P), &(), |b, ()| {
            b.iter(|| factorize(&input, P, Algo::Hpc2D, &cfg).objective)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dense_overlap, bench_sparse_overlap);
criterion_main!(benches);
