//! Shared infrastructure for the experiment binaries and Criterion
//! benches that regenerate the paper's tables and figures.
//!
//! Two complementary modes, documented in `EXPERIMENTS.md`:
//!
//! * **measured** — real multithreaded runs of the actual drivers on
//!   scaled-down datasets (this machine cannot hold 600 cores or a
//!   172,800×115,200 dense matrix), with wall-clock per-task breakdowns
//!   from the instrumented drivers;
//! * **modeled** — the paper-scale α-β-γ projections of
//!   [`nmf_data::costmodel`], which reproduce the shape of the paper's
//!   plots at the original dimensions and processor counts.

use hpc_nmf::prelude::*;
use nmf_data::{Breakdown, Dataset, DatasetKind, PerfModel, Workload};
use nmf_vmpi::Op;

/// A per-iteration time breakdown row (seconds), in the paper's §6.3
/// task vocabulary.
#[derive(Clone, Copy, Debug, Default)]
pub struct Row {
    pub mm: f64,
    pub nls: f64,
    pub gram: f64,
    pub all_gather: f64,
    pub reduce_scatter: f64,
    pub all_reduce: f64,
}

impl Row {
    pub fn total(&self) -> f64 {
        self.mm + self.nls + self.gram + self.all_gather + self.reduce_scatter + self.all_reduce
    }

    pub fn from_model(b: &Breakdown) -> Row {
        Row {
            mm: b.mm,
            nls: b.nls,
            gram: b.gram,
            all_gather: b.all_gather,
            reduce_scatter: b.reduce_scatter,
            all_reduce: b.all_reduce,
        }
    }
}

/// Runs `algo` on `p` ranks for `iters` iterations and returns the mean
/// per-iteration breakdown (critical-path across ranks), skipping the
/// first iteration as warmup when more than one was run.
pub fn measure(input: &Input, p: usize, algo: Algo, k: usize, iters: usize) -> Row {
    let out = factorize(input, p, algo, &NmfConfig::new(k).with_max_iters(iters));
    let skip = usize::from(out.iters.len() > 1);
    let used = &out.iters[skip..];
    let denom = used.len().max(1) as f64;
    let mut row = Row::default();
    for rec in used {
        row.mm += rec.compute.mm.as_secs_f64();
        row.nls += rec.compute.nls.as_secs_f64();
        row.gram += rec.compute.gram.as_secs_f64();
        row.all_gather += rec.comm.op(Op::AllGather).time.as_secs_f64();
        row.reduce_scatter += rec.comm.op(Op::ReduceScatter).time.as_secs_f64();
        row.all_reduce += rec.comm.op(Op::AllReduce).time.as_secs_f64();
    }
    row.mm /= denom;
    row.nls /= denom;
    row.gram /= denom;
    row.all_gather /= denom;
    row.reduce_scatter /= denom;
    row.all_reduce /= denom;
    row
}

/// Paper-scale workload of a dataset at rank `k`.
pub fn paper_workload(kind: DatasetKind, k: usize) -> Workload {
    let (m, n) = kind.paper_dims();
    if kind.is_sparse() {
        Workload::sparse(m, n, k, kind.paper_nnz())
    } else {
        Workload::dense(m, n, k)
    }
}

/// Modeled per-iteration breakdown for a dataset at paper scale.
pub fn model_row(pm: &PerfModel, kind: DatasetKind, algo: Algo, p: usize, k: usize) -> Row {
    Row::from_model(&pm.breakdown(&paper_workload(kind, k), algo, p))
}

/// The dataset scales used for *measured* runs on one machine (chosen so
/// the largest measured configuration stays in the hundreds of
/// milliseconds per iteration).
pub fn measured_scale(kind: DatasetKind) -> usize {
    match kind {
        DatasetKind::Dsyn => 120,
        DatasetKind::Ssyn => 60,
        DatasetKind::Video => 120,
        DatasetKind::Webbase => 120,
    }
}

/// Builds the measured-mode dataset for `kind`.
pub fn measured_dataset(kind: DatasetKind, seed: u64) -> Dataset {
    kind.build(measured_scale(kind), seed)
}

/// The three algorithms the paper benchmarks, in its order.
pub const PAPER_ALGOS: [Algo; 3] = [Algo::Naive, Algo::Hpc1D, Algo::Hpc2D];

/// Prints a breakdown table: one row per (label, Row).
pub fn print_table(title: &str, unit_note: &str, rows: &[(String, Row)]) {
    println!("\n=== {title} ===");
    println!("(seconds per iteration{unit_note})");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "config", "MM", "NLS", "Gram", "AllG", "RedSc", "AllR", "total"
    );
    for (label, r) in rows {
        println!(
            "{:<22} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>10.4}",
            label,
            r.mm,
            r.nls,
            r.gram,
            r.all_gather,
            r.reduce_scatter,
            r.all_reduce,
            r.total()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_positive_breakdown() {
        let data = measured_dataset(DatasetKind::Ssyn, 1);
        let row = measure(&data.input, 4, Algo::Hpc2D, 5, 3);
        assert!(row.total() > 0.0);
        assert!(row.mm >= 0.0 && row.nls > 0.0);
    }

    #[test]
    fn paper_workloads_have_paper_dims() {
        let w = paper_workload(DatasetKind::Webbase, 50);
        assert_eq!((w.m, w.n), (1_000_005, 1_000_005));
        assert!(w.sparse);
        assert_eq!(w.nnz, 3_105_536);
    }
}
