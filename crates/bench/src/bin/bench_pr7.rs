//! PR7 evidence run: synchronous vs. split-phase (overlapped) Grid2D
//! schedules, measured as per-iteration wall time at p = 16 and p = 64
//! on the shapes named in the issue — a dense 2048×2048 at k = 32 and a
//! sparse webgraph-like matrix — plus small dense shapes whose
//! iterations are dominated by collective latency rather than local
//! flops (the communication-bound regime where the schedule change
//! matters most; on an oversubscribed host the win is measured in
//! scheduler wake chains avoided).
//!
//! Every (shape, p, mode) case runs in its own child process (the binary
//! re-executes itself), so a millisecond-scale case is never measured in
//! an address space polluted by a gigabyte-scale one. Writes
//! `BENCH_PR7.json` (or the path in `BENCH_PR7_OUT`) with the per-case
//! medians and the split-phase stats evidence (posts and the post→wait
//! overlap window actually achieved). Iteration and repeat counts shrink
//! under `NMF_BENCH_QUICK=1` so CI can smoke the run. `BENCH_PR7_ONLY`
//! filters shapes by substring (a development aid).

use hpc_nmf::dist::Dist1D;
use hpc_nmf::engine::{AnlsEngine, Grid2D};
use hpc_nmf::prelude::*;
use hpc_nmf::{init_ht, init_w};
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;
use nmf_sparse::gen::chung_lu_power_law;
use nmf_vmpi::{universe, CommStats};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// (name, k, iters per rep, timed reps). The communication-bound shapes
/// run many more iterations per rep because each iteration is ~1–3 ms.
const SHAPES: [(&str, usize, usize, usize); 4] = [
    ("dense-2048x2048-k32", 32, 8, 5),
    ("sparse-webgraph-16k-1m-k32", 32, 8, 5),
    ("dense-comm-bound-192x128-k16", 16, 60, 11),
    ("dense-comm-bound-384x256-k32", 32, 60, 11),
];

fn quick() -> bool {
    std::env::var("NMF_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Builds exactly one case's input (children construct nothing else).
fn make_input(shape: &str) -> Input {
    let scale = if quick() { 4 } else { 1 };
    match shape {
        "dense-2048x2048-k32" => Input::Dense(Mat::uniform(2048 / scale, 2048 / scale, 17)),
        "sparse-webgraph-16k-1m-k32" => Input::Sparse(chung_lu_power_law(
            16384 / scale,
            1_000_000 / (scale * scale),
            2.1,
            29,
        )),
        "dense-comm-bound-192x128-k16" => Input::Dense(Mat::uniform(192, 128, 13)),
        "dense-comm-bound-384x256-k32" => Input::Dense(Mat::uniform(384, 256, 19)),
        other => panic!("unknown bench shape {other}"),
    }
}

struct CaseResult {
    shape: &'static str,
    p: usize,
    grid: (usize, usize),
    iters: usize,
    sync_s: f64,
    ovl_s: f64,
    /// Post→wait overlap window achieved, rank-summed seconds per iter.
    window_s: f64,
    posts_per_iter: f64,
}

/// One timed run of the distributed iteration loop: every rank steps its
/// `AnlsEngine` back-to-back with no central controller in the loop (the
/// way an MPI job runs), so the measurement is the Grid2D schedule
/// itself. Returns the slowest rank's wall time and the rank-summed
/// communication counters.
fn run_once(input: &Input, grid: Grid, cfg: &NmfConfig, iters: usize) -> (Duration, CommStats) {
    let (m, n) = input.shape();
    let w0 = init_w(m, cfg.k, cfg.seed);
    let ht0 = init_ht(n, cfg.k, cfg.seed);
    let dist_m = Dist1D::new(m, grid.pr);
    let dist_n = Dist1D::new(n, grid.pc);
    let overlap = cfg.overlap;
    let per_rank = universe::run(grid.size(), |comm| {
        let (i, j) = grid.coords(comm.rank());
        let rows = dist_m.part(i);
        let cols = dist_n.part(j);
        let local = input.block(rows.offset, cols.offset, rows.len, cols.len);
        let wpart = Dist1D::new(rows.len, grid.pc).part(j);
        let hpart = Dist1D::new(cols.len, grid.pr).part(i);
        let w0_local = w0.rows_block(rows.offset + wpart.offset, wpart.len);
        let ht0_local = ht0.rows_block(cols.offset + hpart.offset, hpart.len);
        let scheme = Grid2D::new(comm, grid, (m, n), cfg.k).with_overlap(overlap);
        let mut engine = AnlsEngine::new(scheme, &local, cfg, w0_local, ht0_local);
        let t0 = Instant::now();
        for _ in 0..iters {
            engine.step();
        }
        let wall = t0.elapsed();
        let mut comm_total = CommStats::new();
        for rec in engine.records() {
            comm_total.merge(&rec.comm);
        }
        (wall, comm_total)
    });
    let mut wall = Duration::ZERO;
    let mut comm = CommStats::new();
    for r in per_rank {
        let (w, c) = r.result;
        wall = wall.max(w);
        comm.merge(&c);
    }
    (wall, comm)
}

/// Median per-iteration wall time over `reps` timed runs (plus one
/// warm-up run), and the summed comm stats of the last run.
fn run_case(
    input: &Input,
    p: usize,
    k: usize,
    iters: usize,
    reps: usize,
    overlap: bool,
) -> (f64, CommStats, (usize, usize)) {
    let cfg = NmfConfig::new(k)
        .with_max_iters(iters)
        .with_solver(SolverKind::Hals)
        .with_seed(41)
        .with_overlap(overlap);
    let (m, n) = input.shape();
    let grid = Grid::optimal(m, n, p);
    let mut samples = Vec::with_capacity(reps);
    let mut comm = CommStats::new();
    for rep in 0..=reps {
        let (wall, comm_run) = run_once(input, grid, &cfg, iters);
        if rep > 0 {
            // rep 0 is the warm-up (thread spawn, lazy init, page faults).
            samples.push(wall.as_secs_f64() / iters as f64);
        }
        comm = comm_run;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (samples[samples.len() / 2], comm, (grid.pr, grid.pc))
}

/// Child mode: run one (shape, p, mode) case and print one parseable
/// line. Spec format: `shape;p;overlap`.
fn child_main(spec: &str) {
    let mut it = spec.split(';');
    let shape = it.next().expect("shape in child spec");
    let p: usize = it.next().and_then(|s| s.parse().ok()).expect("p");
    let overlap: bool = it.next().and_then(|s| s.parse().ok()).expect("overlap");
    let (_, k, full_iters, full_reps) = *SHAPES
        .iter()
        .find(|(n, ..)| *n == shape)
        .expect("known shape");
    let (iters, reps) = if quick() {
        (2, 1)
    } else {
        (full_iters, full_reps)
    };
    let input = make_input(shape);
    let (median_s, comm, grid) = run_case(&input, p, k, iters, reps, overlap);
    println!(
        "CASE {} {} {} {} {} {} {:.9} {:.9} {}",
        shape,
        p,
        grid.0,
        grid.1,
        iters,
        overlap,
        median_s,
        comm.total_overlap().as_secs_f64() / iters as f64,
        comm.total_posts() as f64 / iters as f64,
    );
}

/// Re-executes this binary for one case and parses the `CASE` line.
fn spawn_case(shape: &str, p: usize, overlap: bool) -> (f64, f64, f64, (usize, usize), usize) {
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .env("BENCH_PR7_CHILD", format!("{shape};{p};{overlap}"))
        .output()
        .expect("spawn bench child");
    assert!(
        out.status.success(),
        "bench child failed for {shape} p={p}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("CASE "))
        .expect("child printed a CASE line");
    let f: Vec<&str> = line.split_whitespace().collect();
    let grid = (f[3].parse().expect("pr"), f[4].parse().expect("pc"));
    let iters = f[5].parse().expect("iters");
    (
        f[7].parse().expect("median"),
        f[8].parse().expect("window"),
        f[9].parse().expect("posts"),
        grid,
        iters,
    )
}

fn main() {
    if let Ok(spec) = std::env::var("BENCH_PR7_CHILD") {
        child_main(&spec);
        return;
    }
    // Optional substring filter over shape names.
    let only = std::env::var("BENCH_PR7_ONLY").ok();

    let mut results = Vec::new();
    for (shape, _, _, _) in SHAPES {
        if let Some(f) = &only {
            if !shape.contains(f.as_str()) {
                continue;
            }
        }
        for p in [16usize, 64] {
            let (sync_s, _, _, _, _) = spawn_case(shape, p, false);
            let (ovl_s, window_s, posts_per_iter, grid, iters) = spawn_case(shape, p, true);
            let r = CaseResult {
                shape,
                p,
                grid,
                iters,
                sync_s,
                ovl_s,
                window_s,
                posts_per_iter,
            };
            println!(
                "{:<34} p={:<3} grid={}x{}  sync {:.5} s/iter  overlap {:.5} s/iter  win {:+.1}%  window {:.4} rank-s/iter",
                r.shape,
                r.p,
                r.grid.0,
                r.grid.1,
                r.sync_s,
                r.ovl_s,
                (r.sync_s - r.ovl_s) / r.sync_s * 100.0,
                r.window_s
            );
            results.push(r);
        }
    }

    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"comm_overlap_pr7\",\n  \"quick\": ");
    s.push_str(if quick() { "true" } else { "false" });
    s.push_str(",\n  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str(&format!(
            "    {{\"shape\": \"{}\", \"p\": {}, \"grid\": [{}, {}], \"iters\": {}, \
             \"sync_s_per_iter\": {:.6}, \"overlap_s_per_iter\": {:.6}, \
             \"win_pct\": {:.2}, \"overlap_window_rank_s_per_iter\": {:.6}, \
             \"posts_per_iter\": {:.1}}}",
            r.shape,
            r.p,
            r.grid.0,
            r.grid.1,
            r.iters,
            r.sync_s,
            r.ovl_s,
            (r.sync_s - r.ovl_s) / r.sync_s * 100.0,
            r.window_s,
            r.posts_per_iter
        ));
    }
    s.push_str("\n  ]\n}\n");

    let path = std::env::var("BENCH_PR7_OUT").unwrap_or_else(|_| "BENCH_PR7.json".into());
    let mut f = std::fs::File::create(&path).expect("create BENCH_PR7.json");
    f.write_all(s.as_bytes()).expect("write BENCH_PR7.json");
    println!("wrote {path}");
}
