//! Ablation: processor-grid choice. For a fixed p, sweeps every divisor
//! pair `pr × pc = p` on a squarish and a tall-skinny input and shows
//! that the paper's `m/pr ≈ n/pc` prescription minimizes communication
//! (words counted from real runs, plus modeled paper-scale totals).
//!
//! ```sh
//! cargo run --release -p nmf-bench --bin ablation_grid
//! ```

use hpc_nmf::prelude::*;
use hpc_nmf::total_comm;
use nmf_bench::paper_workload;
use nmf_data::{DatasetKind, PerfModel};
use nmf_matrix::rng::Fill;
use nmf_matrix::Mat;

fn divisor_grids(p: usize) -> Vec<Grid> {
    (1..=p)
        .filter(|pr| p.is_multiple_of(*pr))
        .map(|pr| Grid::new(pr, p / pr))
        .collect()
}

fn main() {
    let p = 16usize;
    let k = 8usize;
    let iters = 3usize;

    for (label, m, n) in [
        ("squarish 320x240", 320usize, 240usize),
        ("tall-skinny 2048x48", 2048, 48),
    ] {
        println!("\n=== grid sweep on {label}, p={p}, k={k} (measured words/rank/iter) ===");
        let input = Input::Dense(Mat::uniform(m, n, 5));
        let optimal = Grid::optimal(m, n, p);
        let mut best: Option<(Grid, u64)> = None;
        for grid in divisor_grids(p) {
            let out = factorize(
                &input,
                p,
                Algo::HpcGrid(grid),
                &NmfConfig::new(k).with_max_iters(iters),
            );
            let words = total_comm(&out).total_words() / p as u64 / iters as u64;
            let marker = if grid == optimal {
                "  <- Grid::optimal"
            } else {
                ""
            };
            println!(
                "  {:>2} x {:<2} {:>10} words{marker}",
                grid.pr, grid.pc, words
            );
            if best.is_none_or(|(_, w)| words < w) {
                best = Some((grid, words));
            }
        }
        let (best_grid, _) = best.unwrap();
        println!(
            "  best measured grid: {}x{}; Grid::optimal chose {}x{}",
            best_grid.pr, best_grid.pc, optimal.pr, optimal.pc
        );
    }

    println!("\n=== paper-scale model: grid sweep on DSYN at p=600, k=50 ===");
    let pm = PerfModel::default();
    let w = paper_workload(DatasetKind::Dsyn, 50);
    let optimal = Grid::optimal(w.m, w.n, 600);
    for grid in divisor_grids(600) {
        let b = pm.hpc(&w, grid);
        let marker = if grid == optimal {
            "  <- Grid::optimal"
        } else {
            ""
        };
        println!(
            "  {:>3} x {:<3} comm {:>8.4}s  total {:>8.4}s{marker}",
            grid.pr,
            grid.pc,
            b.comm(),
            b.total()
        );
    }
}
