//! Table 3: per-iteration running times of the parallel NMF algorithms
//! for k = 50 — all datasets × algorithms × processor counts, in the
//! paper's layout.
//!
//! Section A prints the paper-scale model (the counterpart of the
//! paper's Edison numbers); Section B prints measured totals on this
//! machine at feasible rank counts.
//!
//! ```sh
//! cargo run --release -p nmf-bench --bin table3
//! ```

use nmf_bench::{measure, measured_dataset, model_row, PAPER_ALGOS};
use nmf_data::{DatasetKind, PerfModel};

const DATASETS: [DatasetKind; 4] = [
    DatasetKind::Dsyn,
    DatasetKind::Ssyn,
    DatasetKind::Video,
    DatasetKind::Webbase,
];

fn main() {
    let k = 50usize;
    let pm = PerfModel::default();

    println!("Table 3: per-iteration running times (seconds) for k = {k}");
    println!("\nSection A: paper-scale model (paper dims, Edison-like constants)\n");
    // The paper benchmarks the dense sets only at >= 216 cores (memory).
    let ps = [24usize, 96, 216, 384, 600];
    print!("{:<8}", "cores");
    for algo in PAPER_ALGOS {
        for kind in DATASETS {
            print!(
                " {:>13}",
                format!("{}/{}", algo.name().replace("HPC-NMF-", ""), kind.name())
            );
        }
    }
    println!();
    for &p in &ps {
        print!("{:<8}", p);
        for algo in PAPER_ALGOS {
            for kind in DATASETS {
                let dense_too_big_for_few_nodes =
                    !kind.is_sparse() && p < 216 && kind != DatasetKind::Video;
                if dense_too_big_for_few_nodes {
                    print!(" {:>13}", "-");
                } else {
                    print!(" {:>13.4}", model_row(&pm, kind, algo, p, k).total());
                }
            }
        }
        println!();
    }

    println!("\nSection B: measured on this machine (scaled datasets)\n");
    let ps_measured = [4usize, 8, 16];
    let iters = 3;
    print!("{:<8}", "ranks");
    for algo in PAPER_ALGOS {
        for kind in DATASETS {
            print!(
                " {:>13}",
                format!("{}/{}", algo.name().replace("HPC-NMF-", ""), kind.name())
            );
        }
    }
    println!();
    for &p in &ps_measured {
        print!("{:<8}", p);
        for algo in PAPER_ALGOS {
            for kind in DATASETS {
                let data = measured_dataset(kind, 44);
                let (m, n) = data.input.shape();
                let k_used = k.min(m.min(n) / 2).max(2);
                let row = measure(&data.input, p, algo, k_used, iters);
                print!(" {:>13.4}", row.total());
            }
        }
        println!();
    }

    println!(
        "\nQualitative check (§6.2): the paper quotes ~50 min/iteration for a Hadoop MU \
         implementation vs ~1 s/iteration for HPC-NMF on 24 nodes; every configuration \
         above is orders of magnitude below the Hadoop figure."
    );
}
