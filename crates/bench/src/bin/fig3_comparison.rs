//! Figure 3 (a, c, e, g): algorithmic comparison — per-iteration time
//! breakdown vs low rank k ∈ {10..50} for Naive, HPC-NMF-1D, and
//! HPC-NMF-2D on all four datasets.
//!
//! Section A reports *measured* runs of the real drivers on scaled
//! datasets at machine-feasible p; Section B reports the paper-scale
//! α-β-γ model at the paper's p = 600.
//!
//! ```sh
//! cargo run --release -p nmf-bench --bin fig3_comparison
//! ```

use hpc_nmf::prelude::*;
use nmf_bench::{measure, measured_dataset, model_row, print_table, Row, PAPER_ALGOS};
use nmf_data::{DatasetKind, PerfModel};

fn main() {
    let ks = [10usize, 20, 30, 40, 50];
    let p_measured = 16;
    let iters = 3;

    println!("Figure 3 (a/c/e/g): time breakdown vs k, all datasets");
    println!("Section A: measured on this machine (scaled datasets, p = {p_measured})");

    for kind in DatasetKind::ALL {
        let data = measured_dataset(kind, 42);
        let (m, n) = data.input.shape();
        let mut rows: Vec<(String, Row)> = Vec::new();
        for algo in PAPER_ALGOS {
            for &k in &ks {
                if k >= m.min(n) {
                    continue;
                }
                let row = measure(&data.input, p_measured, algo, k, iters);
                rows.push((format!("{:<12} k={k}", algo.name()), row));
            }
        }
        print_table(
            &format!("{} {}x{} measured, p={p_measured}", kind.name(), m, n),
            "",
            &rows,
        );
    }

    println!("\nSection B: paper-scale model (paper dims, p = 600, Edison-like machine)");
    let pm = PerfModel::default();
    for kind in DatasetKind::ALL {
        let (m, n) = kind.paper_dims();
        let mut rows: Vec<(String, Row)> = Vec::new();
        for algo in PAPER_ALGOS {
            for &k in &ks {
                rows.push((
                    format!("{:<12} k={k}", algo.name()),
                    model_row(&pm, kind, algo, 600, k),
                ));
            }
        }
        print_table(
            &format!("{} {}x{} modeled, p=600", kind.name(), m, n),
            " (modeled)",
            &rows,
        );

        // Headline ratio at k = 10 (the paper reports up to 4.4x on SSYN).
        let naive = model_row(&pm, kind, Algo::Naive, 600, 10).total();
        let hpc2d = model_row(&pm, kind, Algo::Hpc2D, 600, 10).total();
        println!(
            "{}: Naive/HPC-2D speedup at k=10: {:.1}x",
            kind.name(),
            naive / hpc2d
        );
    }
}
