//! Command-line NMF driver: factorize a Matrix Market file or a
//! generated dataset with any algorithm/solver/grid combination.
//!
//! ```sh
//! cargo run --release -p nmf_bench --bin nmf_cli -- --dataset ssyn --scale 200 \
//!     --algo hpc2d --ranks 8 --k 10 --iters 20
//! cargo run --release -p nmf_bench --bin nmf_cli -- --input graph.mtx --k 8
//! cargo run --release -p nmf_bench --bin nmf_cli -- --dataset dsyn --json
//! ```
//!
//! `--json` replaces the human-readable report with one JSON object on
//! stdout (objective, iterations, stop reason, per-task compute times,
//! per-collective communication words/messages) for scripted
//! benchmarking.

use hpc_nmf::prelude::*;
use hpc_nmf::total_comm;
use nmf_data::DatasetKind;
use nmf_vmpi::Op;
use std::process::exit;

struct Args {
    input: Option<String>,
    dataset: Option<String>,
    scale: usize,
    algo: String,
    ranks: usize,
    k: usize,
    iters: usize,
    tol: Option<f64>,
    solver: String,
    seed: u64,
    json: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            input: None,
            dataset: None,
            scale: 200,
            algo: "hpc2d".into(),
            ranks: 4,
            k: 10,
            iters: 20,
            tol: None,
            solver: "bpp".into(),
            seed: 42,
            json: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut val = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    exit(2);
                })
            };
            match flag.as_str() {
                "--input" => args.input = Some(val("--input")),
                "--dataset" => args.dataset = Some(val("--dataset")),
                "--scale" => args.scale = parse_num(&val("--scale")),
                "--algo" => args.algo = val("--algo"),
                "--ranks" | "-p" => args.ranks = parse_num(&val("--ranks")),
                "--k" | "-k" => args.k = parse_num(&val("--k")),
                "--iters" => args.iters = parse_num(&val("--iters")),
                "--tol" => args.tol = Some(parse_float(&val("--tol"))),
                "--solver" => args.solver = val("--solver"),
                "--seed" => args.seed = parse_num(&val("--seed")) as u64,
                "--json" => args.json = true,
                "--help" | "-h" => {
                    print_help();
                    exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    print_help();
                    exit(2);
                }
            }
        }
        args
    }
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected an integer, got '{s}'");
        exit(2);
    })
}

fn parse_float(s: &str) -> f64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a number, got '{s}'");
        exit(2);
    })
}

fn print_help() {
    println!(
        "nmf_cli — distributed NMF on a virtual MPI\n\
         \n\
         input (choose one):\n\
         \x20 --input FILE.mtx        Matrix Market file (coordinate or array)\n\
         \x20 --dataset NAME          dsyn | ssyn | video | webbase (generated)\n\
         \x20 --scale N               divide paper dims by N (default 200)\n\
         \n\
         options:\n\
         \x20 --algo A                seq | naive | hpc1d | hpc2d (default hpc2d)\n\
         \x20 --ranks P               virtual ranks (default 4)\n\
         \x20 --k K                   low rank (default 10)\n\
         \x20 --iters N               max iterations (default 20)\n\
         \x20 --tol T                 early-stop tolerance\n\
         \x20 --solver S              bpp | mu | hals | activeset (default bpp)\n\
         \x20 --seed N                RNG seed (default 42)\n\
         \x20 --json                  machine-readable run summary on stdout"
    );
}

fn load_input(args: &Args) -> Input {
    if let Some(path) = &args.input {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            exit(1);
        });
        // Peek the banner to pick sparse vs dense.
        let text = std::io::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        if text.lines().next().is_some_and(|l| l.contains("array")) {
            match nmf_sparse::io::read_matrix_market_dense(text.as_bytes()) {
                Ok(m) => Input::Dense(m),
                Err(e) => {
                    eprintln!("parse error: {e}");
                    exit(1);
                }
            }
        } else {
            match nmf_sparse::io::read_matrix_market(text.as_bytes()) {
                Ok(m) => Input::Sparse(m),
                Err(e) => {
                    eprintln!("parse error: {e}");
                    exit(1);
                }
            }
        }
    } else {
        let kind = match args.dataset.as_deref() {
            Some("dsyn") => DatasetKind::Dsyn,
            Some("ssyn") | None => DatasetKind::Ssyn,
            Some("video") => DatasetKind::Video,
            Some("webbase") => DatasetKind::Webbase,
            Some(other) => {
                eprintln!("unknown dataset '{other}'");
                exit(2);
            }
        };
        kind.build(args.scale, args.seed).input
    }
}

fn main() {
    let args = Args::parse();
    let input = load_input(&args);
    let (m, n) = input.shape();
    let algo = match args.algo.as_str() {
        "seq" => Algo::Sequential,
        "naive" => Algo::Naive,
        "hpc1d" => Algo::Hpc1D,
        "hpc2d" => Algo::Hpc2D,
        other => {
            eprintln!("unknown algorithm '{other}'");
            exit(2);
        }
    };
    let solver = match args.solver.as_str() {
        "bpp" => SolverKind::Bpp,
        "mu" => SolverKind::Mu,
        "hals" => SolverKind::Hals,
        "activeset" => SolverKind::ActiveSet,
        other => {
            eprintln!("unknown solver '{other}'");
            exit(2);
        }
    };
    let mut config = NmfConfig::new(args.k)
        .with_max_iters(args.iters)
        .with_solver(solver)
        .with_seed(args.seed);
    if let Some(t) = args.tol {
        config = config.with_tol(t);
    }

    let grid = algo.grid(m, n, args.ranks);
    if !args.json {
        println!(
            "{}x{} ({} nnz), {} on {} ranks (grid {}x{}), k={}, solver {:?}",
            m,
            n,
            input.nnz(),
            algo.name(),
            args.ranks,
            grid.pr,
            grid.pc,
            args.k,
            solver
        );
    }

    let t0 = std::time::Instant::now();
    let out = factorize(&input, args.ranks, algo, &config);
    let wall = t0.elapsed();

    if args.json {
        print_json(&args, &input, algo, grid, solver, &out, wall);
        return;
    }

    println!(
        "\n{} iterations in {:.2?} ({:.4} s/iter), stopped: {}",
        out.iterations,
        wall,
        wall.as_secs_f64() / out.iterations.max(1) as f64,
        out.stop.as_str()
    );
    println!("relative error: {:.6}", out.rel_error);
    println!("objective:      {:.6e}", out.objective);
    if !out.rank_comm.is_empty() {
        let comm = total_comm(&out);
        println!("\ncommunication (all ranks):");
        for op in [Op::AllGather, Op::ReduceScatter, Op::AllReduce] {
            let s = comm.op(op);
            println!(
                "  {:<15} {:>12} words {:>8} msgs",
                op.name(),
                s.words,
                s.messages
            );
        }
    }
}

/// A float as a JSON token: full-precision scientific for finite values,
/// `null` for NaN/inf (which are not valid JSON and would break every
/// consumer — a diverging run can legitimately produce them).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.17e}")
    } else {
        "null".to_string()
    }
}

/// One JSON object on stdout: everything a benchmark script wants,
/// hand-rolled (the container pulls no serde).
fn print_json(
    args: &Args,
    input: &Input,
    algo: Algo,
    grid: hpc_nmf::Grid,
    solver: SolverKind,
    out: &NmfOutput,
    wall: std::time::Duration,
) {
    let (m, n) = input.shape();
    let compute = out.compute_total();
    let comm = total_comm(out);
    let mut s = String::with_capacity(1024);
    s.push('{');
    s.push_str(&format!(
        "\"algo\":\"{}\",\"m\":{m},\"n\":{n},\"nnz\":{},\"ranks\":{},\"grid\":[{},{}],\"k\":{},\"solver\":\"{:?}\",\"seed\":{},",
        algo.name(),
        input.nnz(),
        args.ranks,
        grid.pr,
        grid.pc,
        args.k,
        solver,
        args.seed
    ));
    s.push_str(&format!(
        "\"iterations\":{},\"stop\":\"{}\",\"wall_seconds\":{:.6},\"objective\":{},\"rel_error\":{},",
        out.iterations,
        out.stop.as_str(),
        wall.as_secs_f64(),
        jnum(out.objective),
        jnum(out.rel_error)
    ));
    s.push_str(&format!(
        "\"compute_seconds\":{{\"mm\":{:.6},\"nls\":{:.6},\"gram\":{:.6}}},",
        compute.mm.as_secs_f64(),
        compute.nls.as_secs_f64(),
        compute.gram.as_secs_f64()
    ));
    s.push_str("\"objective_history\":[");
    for (i, rec) in out.iters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&jnum(rec.objective));
    }
    s.push_str("],\"comm\":{");
    for (i, op) in [Op::AllGather, Op::ReduceScatter, Op::AllReduce, Op::P2p]
        .into_iter()
        .enumerate()
    {
        if i > 0 {
            s.push(',');
        }
        let st = comm.op(op);
        s.push_str(&format!(
            "\"{}\":{{\"words\":{},\"messages\":{},\"seconds\":{:.6}}}",
            op.name(),
            st.words,
            st.messages,
            st.time.as_secs_f64()
        ));
    }
    s.push_str("}}");
    println!("{s}");
}
